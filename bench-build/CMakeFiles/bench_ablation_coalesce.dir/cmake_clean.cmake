file(REMOVE_RECURSE
  "../bench/bench_ablation_coalesce"
  "../bench/bench_ablation_coalesce.pdb"
  "CMakeFiles/bench_ablation_coalesce.dir/bench_ablation_coalesce.cpp.o"
  "CMakeFiles/bench_ablation_coalesce.dir/bench_ablation_coalesce.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_coalesce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
