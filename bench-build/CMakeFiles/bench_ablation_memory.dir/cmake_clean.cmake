file(REMOVE_RECURSE
  "../bench/bench_ablation_memory"
  "../bench/bench_ablation_memory.pdb"
  "CMakeFiles/bench_ablation_memory.dir/bench_ablation_memory.cpp.o"
  "CMakeFiles/bench_ablation_memory.dir/bench_ablation_memory.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
