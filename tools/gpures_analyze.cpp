// gpures-analyze: run the analysis pipeline over a dataset directory.
//
//   gpures-analyze --data DIR [--report all|table1|table2|table3|fig2|
//                              findings|trends|survival]
//                  [--export-csv DIR] [--export-json FILE]
//                  [--coalesce-window SECONDS] [--window SECONDS]
//                  [--node-level] [--regex] [--threads N]
//                  [--metrics FILE[.prom]] [--trace FILE]
//                  [--telemetry FILE [--telemetry-interval-ms N]]
//                  [--log-json FILE] [--log-level L] [--quiet]
//
// The dataset can come from gpures-simulate or from a site's own logs laid
// out in the same format (see src/analysis/dataset.h).  This is the
// command-line face of the paper's Fig. 1 pipeline.
//
// stdout carries the reports only; progress and ingest summaries go to
// stderr, observability artifacts to the requested files.  Metrics and
// tracing never change the analysis output (see tests/test_obs_differential).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/data_quality.h"
#include "analysis/dataset.h"
#include "analysis/export.h"
#include "common/io.h"
#include "common/strings.h"
#include "analysis/markdown_report.h"
#include "analysis/mitigation.h"
#include "analysis/reports.h"
#include "analysis/survival.h"
#include "analysis/trends.h"
#include "index/writer.h"
#include "obs/expfmt.h"
#include "obs/log.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "simd/dispatch.h"

using namespace gpures;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: gpures-analyze --data DIR [options]\n"
      "  --data DIR             dataset directory (required)\n"
      "  --report WHAT          all|table1|table2|table3|fig2|findings|\n"
      "                         trends|survival|mitigation   (default all)\n"
      "  --export-csv DIR       write table1..3 + fig2 CSV files (plus a\n"
      "                         run_manifest.json provenance record)\n"
      "  --export-json FILE     write everything as one JSON document\n"
      "  --report-md FILE       write a self-contained markdown report\n"
      "  --coalesce-window S    Stage II window (default 30)\n"
      "  --window S             job-failure attribution window (default 20)\n"
      "  --node-level           node-level attribution (default: device)\n"
      "  --regex                use the std::regex Stage-I matcher\n"
      "  --threads N            Stage I/II worker threads (0 = serial;\n"
      "                         output is byte-identical either way)\n"
      "  --simd B               Stage-I scan backend: auto|scalar|swar|avx2\n"
      "                         (default auto; every backend is\n"
      "                         byte-identical, only speed differs; an\n"
      "                         unavailable backend is a hard error)\n"
      "  --simd-info            print the dispatch decision and available\n"
      "                         backends, then exit\n"
      "  --write-index FILE     write the binary error index (gpures.idx)\n"
      "                         for gpures-query; deterministic across\n"
      "                         --threads\n"
      "  --metrics FILE         write the metrics registry snapshot; a\n"
      "                         .prom suffix selects Prometheus text\n"
      "                         exposition instead of JSON\n"
      "  --trace FILE           write a Chrome Trace Event JSON timeline\n"
      "  --telemetry FILE       sample metrics + process stats to JSONL\n"
      "                         while the run is in flight\n"
      "  --telemetry-interval-ms N\n"
      "                         sampling interval (default 1000)\n"
      "  --log-json FILE        mirror log records to FILE as JSONL\n"
      "  --log-level L          debug|info|warn|error (default info)\n"
      "  --ingest-policy P      strict (default): fail on the first corrupt\n"
      "                         input; lenient: quarantine corrupt lines,\n"
      "                         skip unreadable days, and keep going\n"
      "  --error-budget N       lenient: abort if any one file exceeds N\n"
      "                         quarantined lines / rejected rows (0 = off)\n"
      "  --quality-report FILE  write the data-quality accounting as JSON\n"
      "  --chaos-io-fault SPEC  testing: SUBSTRING:BYTES[:KIND[:TIMES]] —\n"
      "                         fail reads of paths containing SUBSTRING\n"
      "                         after BYTES; KIND fail|transient|eintr|\n"
      "                         short-read (see common/io.h)\n"
      "  --quiet                suppress progress and summaries on stderr\n");
}

/// Strict non-negative integer for CLI values.  std::atoll would silently
/// turn a typo like "5oo" into 0 — which for --error-budget means
/// "unlimited", quietly disabling the protection — so reject anything that
/// is not entirely digits.
long long parse_count(const char* flag, std::string_view s) {
  const long long v = common::parse_ll(s);
  if (v < 0) {
    std::fprintf(stderr,
                 "gpures-analyze: %s wants a non-negative integer, got '%s'\n",
                 flag, std::string(s).c_str());
    std::exit(2);
  }
  return v;
}

/// One checked write path for every artifact (reports, exports, metrics,
/// trace): open, short-write, and close failures all surface as an error
/// record and a nonzero exit at the call site.
bool write_artifact(const std::filesystem::path& path, std::string_view text) {
  const auto st = common::write_file_atomic(path.string(), text);
  if (!st.ok()) {
    obs::Logger::current().error("analyze", "artifact write failed",
                                 {{"path", path.string()},
                                  {"error", st.error().message}});
    return false;
  }
  return true;
}

/// Stable fingerprint of the effective pipeline configuration.
std::string config_fingerprint(const analysis::PipelineConfig& cfg) {
  std::string s;
  s += "coalesce_window=" + std::to_string(cfg.coalescer.window) + ";";
  s += "attribution_window=" + std::to_string(cfg.attribution_window) + ";";
  s += "attribution=" +
       std::to_string(static_cast<int>(cfg.attribution)) + ";";
  s += "regex=" + std::to_string(cfg.use_regex_parser ? 1 : 0) + ";";
  s += "threads=" + std::to_string(cfg.num_threads) + ";";
  s += "outlier_share=" + std::to_string(cfg.outlier_share) + ";";
  s += "outlier_min=" + std::to_string(cfg.outlier_min);
  return obs::hex64(obs::fnv1a64(s));
}

}  // namespace

int main(int argc, char** argv) {
  std::string data_dir;
  std::string report = "all";
  std::string csv_dir;
  std::string json_file;
  std::string md_file;
  std::string index_file;
  std::string metrics_file;
  std::string trace_file;
  std::string quality_file;
  std::string chaos_io_fault;
  std::string telemetry_file;
  long long telemetry_interval_ms = 1000;
  std::string log_json_file;
  obs::LogLevel log_level = obs::LogLevel::kInfo;
  bool quiet = false;
  std::string simd_choice;
  bool simd_info = false;
  analysis::PipelineConfig pcfg;
  analysis::IngestPolicy policy = analysis::IngestPolicy::kStrict;
  std::uint64_t error_budget = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "gpures-analyze: %s needs a value\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--data") {
      data_dir = next("--data");
    } else if (arg == "--report") {
      report = next("--report");
    } else if (arg == "--export-csv") {
      csv_dir = next("--export-csv");
    } else if (arg == "--export-json") {
      json_file = next("--export-json");
    } else if (arg == "--report-md") {
      md_file = next("--report-md");
    } else if (arg == "--coalesce-window") {
      pcfg.coalescer.window =
          parse_count("--coalesce-window", next("--coalesce-window"));
    } else if (arg == "--window") {
      pcfg.attribution_window = parse_count("--window", next("--window"));
    } else if (arg == "--node-level") {
      pcfg.attribution = analysis::Attribution::kNodeLevel;
    } else if (arg == "--regex") {
      pcfg.use_regex_parser = true;
    } else if (arg == "--threads") {
      const long long n = parse_count("--threads", next("--threads"));
      if (n > 256) {
        std::fprintf(stderr, "gpures-analyze: --threads must be in [0, 256]\n");
        return 2;
      }
      pcfg.num_threads = static_cast<std::uint32_t>(n);
    } else if (arg == "--simd") {
      simd_choice = next("--simd");
    } else if (arg == "--simd-info") {
      simd_info = true;
    } else if (arg == "--write-index") {
      index_file = next("--write-index");
    } else if (arg == "--metrics") {
      metrics_file = next("--metrics");
    } else if (arg == "--trace") {
      trace_file = next("--trace");
    } else if (arg == "--telemetry") {
      telemetry_file = next("--telemetry");
    } else if (arg == "--telemetry-interval-ms") {
      telemetry_interval_ms = parse_count("--telemetry-interval-ms",
                                          next("--telemetry-interval-ms"));
      if (telemetry_interval_ms == 0) {
        std::fprintf(stderr,
                     "gpures-analyze: --telemetry-interval-ms must be >= 1\n");
        return 2;
      }
    } else if (arg == "--log-json") {
      log_json_file = next("--log-json");
    } else if (arg == "--log-level") {
      const auto lvl = obs::parse_log_level(next("--log-level"));
      if (!lvl) {
        std::fprintf(stderr,
                     "gpures-analyze: --log-level must be debug|info|warn|"
                     "error\n");
        return 2;
      }
      log_level = *lvl;
    } else if (arg == "--ingest-policy") {
      const auto p = analysis::parse_ingest_policy(next("--ingest-policy"));
      if (!p) {
        std::fprintf(stderr,
                     "gpures-analyze: --ingest-policy must be strict or "
                     "lenient\n");
        return 2;
      }
      policy = *p;
    } else if (arg == "--error-budget") {
      error_budget = static_cast<std::uint64_t>(
          parse_count("--error-budget", next("--error-budget")));
    } else if (arg == "--quality-report") {
      quality_file = next("--quality-report");
    } else if (arg == "--chaos-io-fault") {
      chaos_io_fault = next("--chaos-io-fault");
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--progress") {
      quiet = false;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "gpures-analyze: unknown argument '%s'\n",
                   arg.c_str());
      usage();
      return 2;
    }
  }
  // --simd (CLI) beats GPURES_SIMD (environment) beats auto-detection.  The
  // library degrades a bad environment value to auto, but an explicit CLI
  // request for an unavailable backend is a hard usage error.
  if (!simd_choice.empty()) {
    const auto backend = simd::parse_backend(simd_choice);
    if (!backend) {
      std::fprintf(stderr,
                   "gpures-analyze: --simd must be auto|scalar|swar|avx2\n");
      return 2;
    }
    if (!simd::set_active(*backend)) {
      std::fprintf(stderr,
                   "gpures-analyze: --simd %s: backend not available on this "
                   "host\n",
                   simd_choice.c_str());
      return 2;
    }
  }
  if (simd_info) {
    // Machine-readable dispatch probe for CI matrix legs: which backend the
    // dispatcher resolved to (after --simd / GPURES_SIMD) and which the
    // host can run at all.
    std::printf("active %s\n",
                std::string(simd::to_string(simd::active())).c_str());
    std::printf("available");
    for (const auto b : simd::all_available()) {
      std::printf(" %s", std::string(simd::to_string(b)).c_str());
    }
    std::printf("\n");
    return 0;
  }
  if (data_dir.empty()) {
    usage();
    return 2;
  }

  // Structured logging for everything past flag parsing.  --quiet keeps the
  // text sink but raises the bar to errors; a JSONL sink, when requested,
  // records every level regardless.
  obs::Logger::Options log_opts;
  log_opts.min_level = log_level;
  if (quiet) log_opts.text_min_level = obs::LogLevel::kError;
  log_opts.jsonl_path = log_json_file;
  log_opts.max_per_key = 100;
  obs::Logger logger(log_opts);
  obs::Logger::install(&logger);
  auto& log = obs::Logger::current();
  if (!logger.sink_status().ok()) {
    std::fprintf(stderr, "gpures-analyze: %s\n",
                 logger.sink_status().error().message.c_str());
    return 1;
  }

  const auto manifest = analysis::read_manifest(data_dir);
  if (!manifest.ok()) {
    log.error("analyze", manifest.error().message);
    return 1;
  }
  pcfg.periods = manifest.value().periods;
  cluster::Topology topo(manifest.value().spec);

  obs::MetricsRegistry registry;
  pcfg.metrics = &registry;
  obs::Tracer tracer;
  if (!trace_file.empty()) obs::Tracer::install(&tracer);

  // Live telemetry: background sampling of this registry + /proc/self into
  // a JSONL sidecar.  Strictly an observer — golden-compared artifacts are
  // byte-identical with the sampler on or off at any interval.
  obs::TelemetrySampler::Options topts;
  topts.path = telemetry_file;
  topts.interval = std::chrono::milliseconds(telemetry_interval_ms);
  topts.registry = &registry;
  obs::TelemetrySampler telemetry(topts);
  if (!telemetry_file.empty()) {
    const auto st = telemetry.start();
    if (!st.ok()) {
      log.error("analyze", st.error().message);
      return 1;
    }
  }

  obs::RunManifest run;
  run.tool = "gpures-analyze";
  run.dataset = data_dir;
  run.config_hash = config_fingerprint(pcfg);
  run.threads = pcfg.num_threads;
  run.started_at = obs::wall_clock_iso();
  // Record the resolved scan backend in the provenance manifest and the log:
  // artifacts are byte-identical across backends, but a throughput anomaly
  // should be attributable to the dispatch decision after the fact.
  const auto simd_backend = std::string(simd::to_string(simd::active()));
  run.extra.emplace_back("simd_backend", simd_backend);
  log.info("analyze", "simd dispatch",
           {{"backend", simd_backend},
            {"avx2_available",
             simd::available(simd::Backend::kAvx2) ? "true" : "false"}});

  analysis::AnalysisPipeline pipe(topo, pcfg);

  analysis::DataQualityReport quality;
  analysis::IngestOptions iopt;
  iopt.policy = policy;
  iopt.error_budget = error_budget;
  iopt.expect_begin = manifest.value().periods.pre.begin;
  iopt.expect_end = manifest.value().periods.op.end;
  iopt.quality = &quality;
  // Always wired: the logger's min_level (error under --quiet) decides
  // whether a warning reaches the text sink, and the JSONL sink keeps the
  // record either way.
  iopt.warn = [&log](const std::string& msg) {
    log.warn("ingest", msg);
  };

  common::IoFaultPlan fault_plan;
  if (!chaos_io_fault.empty()) {
    auto parsed = common::parse_io_fault_spec(chaos_io_fault);
    if (!parsed.ok()) {
      std::fprintf(stderr, "gpures-analyze: --chaos-io-fault: %s\n",
                   parsed.error().message.c_str());
      return 2;
    }
    fault_plan = std::move(parsed).take();
    common::set_io_fault_plan(&fault_plan);
  }

  obs::ProgressReporter progress("ingesting day", !quiet);
  const auto loaded = analysis::load_dataset(data_dir, pipe, iopt, &progress);
  progress.finish();
  common::set_io_fault_plan(nullptr);
  if (!loaded.ok()) {
    obs::Tracer::install(nullptr);
    log.error("analyze", loaded.error().message);
    return 1;
  }

  // Surface the ingest accounting on the observability plane: counters in
  // the metrics registry and headline figures in the run manifest.
  registry.counter("ingest.lines_kept").add(quality.lines_kept);
  registry.counter("ingest.lines_quarantined").add(quality.quarantined_lines());
  registry.counter("ingest.bytes_quarantined").add(quality.quarantined_bytes());
  registry.counter("ingest.days_missing").add(quality.missing_days.size());
  registry.counter("ingest.days_skipped").add(quality.skipped_days.size());
  registry.counter("ingest.days_zero_byte").add(quality.zero_byte_days);
  registry.counter("ingest.stray_files").add(quality.stray_files.size());
  registry.counter("ingest.accounting_rows_rejected")
      .add(quality.accounting_rows_rejected);
  run.extra.emplace_back("ingest_policy",
                         std::string(analysis::to_string(policy)));
  run.extra.emplace_back("ingest_clean", quality.clean() ? "true" : "false");
  run.extra.emplace_back("lines_quarantined",
                         std::to_string(quality.quarantined_lines()));
  const auto c = pipe.counters();
  log.info("analyze", "ingest complete",
           {{"day_files", loaded.value()},
            {"lines", c.log_lines},
            {"xid_records", c.xid_records},
            {"lifecycle_records", c.lifecycle_records},
            {"jobs", pipe.jobs().jobs.size()},
            {"accounting_errors", c.accounting_errors}});

  const auto stats = pipe.error_stats();
  const bool all = report == "all";
  if (all || report == "table1") {
    std::printf("%s\n", analysis::render_table1(stats).c_str());
  }
  if (all || report == "findings") {
    std::printf("%s\n", analysis::render_findings(stats).c_str());
  }
  if ((all || report == "table2") && !pipe.jobs().jobs.empty()) {
    std::printf("%s\n", analysis::render_table2(pipe.job_impact()).c_str());
  }
  if ((all || report == "table3") && !pipe.jobs().jobs.empty()) {
    std::printf("%s\n", analysis::render_table3(pipe.job_stats()).c_str());
  }
  if (all || report == "fig2") {
    std::printf("%s\n",
                analysis::render_fig2(pipe.availability(), pipe.mttf_estimate_h())
                    .c_str());
  }
  if (all || report == "trends") {
    std::printf("%s\n",
                analysis::render_trends(pipe.errors(), pcfg.periods,
                                        pipe.pool())
                    .c_str());
  }
  if ((all || report == "mitigation") && !pipe.jobs().jobs.empty()) {
    analysis::JobImpactConfig icfg;
    icfg.window = pcfg.attribution_window;
    icfg.period = pcfg.periods.op;
    icfg.attribution = pcfg.attribution;
    std::printf("%s\n", analysis::render_mitigation(pipe.jobs(), pipe.errors(),
                                                    icfg, pipe.pool())
                            .c_str());
  }
  if (all || report == "survival") {
    std::printf("%s\n",
                analysis::render_survival(pipe.errors(), pcfg.periods,
                                          topo.total_gpus(), pipe.pool())
                    .c_str());
  }

  if (!csv_dir.empty()) {
    namespace fs = std::filesystem;
    const auto impact = pipe.job_impact();
    const auto jobs = pipe.job_stats();
    const auto avail = pipe.availability();
    const auto write_csv = [&](const char* name, auto&& render) {
      std::ostringstream os;
      render(os);
      return write_artifact(fs::path(csv_dir) / name, os.str());
    };
    const bool ok =
        write_csv("table1.csv",
                  [&](std::ostream& os) { analysis::write_table1_csv(os, stats); }) &&
        write_csv("table2.csv",
                  [&](std::ostream& os) { analysis::write_table2_csv(os, impact); }) &&
        write_csv("table3.csv",
                  [&](std::ostream& os) { analysis::write_table3_csv(os, jobs); }) &&
        write_csv("fig2.csv",
                  [&](std::ostream& os) { analysis::write_fig2_csv(os, avail); });
    if (!ok) return 1;
    log.info("analyze", "wrote CSV exports", {{"dir", csv_dir}});
  }

  if (!md_file.empty()) {
    analysis::MarkdownReportOptions mopts;
    mopts.quality = &quality;
    if (!write_artifact(md_file,
                        analysis::render_markdown_report(pipe, topo, mopts))) {
      return 1;
    }
    log.info("analyze", "wrote markdown report", {{"path", md_file}});
  }

  if (!index_file.empty()) {
    const auto avail = pipe.availability();
    index::IndexBuildInput in;
    in.periods = pcfg.periods;
    in.attribution_window = pcfg.attribution_window;
    in.attribution = pcfg.attribution;
    in.outlier_share = pcfg.outlier_share;
    in.outlier_min = pcfg.outlier_min;
    in.topo = &topo;
    in.errors = &pipe.errors();
    in.jobs = &pipe.jobs();
    in.unavailability = &avail.intervals;
    const auto wrote = index::write_index(in, index_file);
    if (!wrote.ok()) {
      log.error("analyze", wrote.error().message);
      return 1;
    }
    const auto& ws = wrote.value();
    log.info("analyze", "wrote index",
             {{"path", index_file},
              {"bytes", ws.bytes},
              {"errors", ws.errors},
              {"jobs", ws.jobs},
              {"unavailability", ws.unavailability}});
    run.extra.emplace_back("index_bytes",
                           std::to_string(wrote.value().bytes));
  }

  if (!json_file.empty()) {
    const auto impact = pipe.job_impact();
    const auto jobs = pipe.job_stats();
    const auto avail = pipe.availability();
    analysis::ExportBundle bundle;
    bundle.error_stats = &stats;
    bundle.job_stats = &jobs;
    bundle.job_impact = &impact;
    bundle.availability = &avail;
    bundle.mttf_h = pipe.mttf_estimate_h();
    if (!write_artifact(json_file, analysis::to_json(bundle) + "\n")) return 1;
    log.info("analyze", "wrote JSON export", {{"path", json_file}});
  }

  obs::Tracer::install(nullptr);
  run.finished_at = obs::wall_clock_iso();
  run.extra.emplace_back("day_files", std::to_string(loaded.value()));
  run.extra.emplace_back("errors",
                         std::to_string(pipe.errors().size()));
  run.extra.emplace_back("jobs", std::to_string(pipe.jobs().jobs.size()));

  if (!csv_dir.empty()) {
    const auto run_path =
        std::filesystem::path(csv_dir) / "run_manifest.json";
    if (!write_artifact(run_path, run.to_json(&registry))) return 1;
  }
  if (!quality_file.empty() &&
      !write_artifact(quality_file, quality.to_json() + "\n")) {
    return 1;
  }
  // Stop sampling before serializing the registry so the telemetry file
  // ends with a "final" sample and the --metrics artifact sees quiescent
  // writers (all snapshot views agree exactly; see obs/metrics.h).
  telemetry.stop();
  if (!metrics_file.empty() &&
      !write_artifact(metrics_file,
                      obs::render_metrics_file(registry, metrics_file))) {
    return 1;
  }
  if (!trace_file.empty() &&
      !write_artifact(trace_file, tracer.to_chrome_json())) {
    return 1;
  }
  return 0;
}
