// gpures-corrupt: deterministically corrupt a dataset for chaos testing.
//
//   gpures-corrupt --in DIR --out DIR [--seed N] [--faults SPEC]
//
// Copies the dataset at --in to --out while applying the requested fault
// matrix (see src/chaos/chaos.h).  The same (seed, spec) pair always
// produces the same corrupted bytes, and a machine-readable ledger of what
// was done — and what a lenient ingest must observe — is written to
// OUT/corruption_ledger.json (and to --ledger FILE if given).
//
// Fault spec: comma-separated "fault[:count]" from
//   truncate garbage overlong duplicate reorder missing-day
//   missing-accounting skew bad-accounting zero-byte io-fault
// or "all" for the full matrix (minus missing-accounting) with defaults.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "chaos/chaos.h"
#include "common/strings.h"

using namespace gpures;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: gpures-corrupt --in DIR --out DIR [options]\n"
      "  --in DIR       clean dataset directory (required)\n"
      "  --out DIR      corrupted copy destination (required)\n"
      "  --seed N       corruption seed (default 1)\n"
      "  --faults SPEC  comma-separated fault[:count] list, or 'all'\n"
      "                 (default all)\n"
      "  --ledger FILE  also write the corruption ledger JSON here\n"
      "  --quiet        no summary on stderr\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string in_dir;
  std::string out_dir;
  std::string faults = "all";
  std::string ledger_file;
  std::uint64_t seed = 1;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "gpures-corrupt: %s needs a value\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--in") {
      in_dir = next("--in");
    } else if (arg == "--out") {
      out_dir = next("--out");
    } else if (arg == "--seed") {
      // Strict parse: std::atoll would fold a typo into seed 0 silently,
      // and a wrong seed corrupts "deterministically" — just not the way
      // the ledger on record says.
      const char* s = next("--seed");
      const long long v = common::parse_ll(s);
      if (v < 0) {
        std::fprintf(stderr,
                     "gpures-corrupt: --seed wants a non-negative integer, "
                     "got '%s'\n",
                     s);
        return 2;
      }
      seed = static_cast<std::uint64_t>(v);
    } else if (arg == "--faults") {
      faults = next("--faults");
    } else if (arg == "--ledger") {
      ledger_file = next("--ledger");
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "gpures-corrupt: unknown argument '%s'\n",
                   arg.c_str());
      usage();
      return 2;
    }
  }
  if (in_dir.empty() || out_dir.empty()) {
    usage();
    return 2;
  }

  const auto spec = chaos::CorruptionSpec::parse(faults);
  if (!spec.ok()) {
    std::fprintf(stderr, "gpures-corrupt: %s\n", spec.error().message.c_str());
    return 2;
  }

  const auto ledger = chaos::corrupt_dataset(in_dir, out_dir, seed,
                                             spec.value());
  if (!ledger.ok()) {
    std::fprintf(stderr, "gpures-corrupt: %s\n",
                 ledger.error().message.c_str());
    return 1;
  }
  if (!ledger_file.empty()) {
    const auto st = ledger.value().write(ledger_file);
    if (!st.ok()) {
      std::fprintf(stderr, "gpures-corrupt: %s\n", st.error().message.c_str());
      return 1;
    }
  }
  if (!quiet) {
    const auto& l = ledger.value();
    std::fprintf(
        stderr,
        "corrupted %s -> %s (seed %llu, %zu fault applications): "
        "%llu binary, %llu overlong, %llu torn lines; %llu missing, "
        "%llu zero-byte days; accounting %s, %llu rows malformed\n",
        in_dir.c_str(), out_dir.c_str(),
        static_cast<unsigned long long>(l.seed), l.applied.size(),
        static_cast<unsigned long long>(l.expect_binary_lines),
        static_cast<unsigned long long>(l.expect_overlong_lines),
        static_cast<unsigned long long>(l.expect_torn_lines),
        static_cast<unsigned long long>(l.expect_missing_days),
        static_cast<unsigned long long>(l.expect_zero_byte_days),
        l.expect_accounting_missing ? "removed" : "present",
        static_cast<unsigned long long>(l.expect_accounting_rejected_rows));
    if (!l.io_fault_path.empty()) {
      std::fprintf(stderr,
                   "planned I/O fault: arm --chaos-io-fault %s:%llu on the "
                   "analyzer to trigger it\n",
                   l.io_fault_path.c_str(),
                   static_cast<unsigned long long>(l.io_fault_after_bytes));
    }
  }
  return 0;
}
