// gpures-corrupt: deterministically corrupt a dataset for chaos testing.
//
//   gpures-corrupt --in DIR --out DIR [--seed N] [--faults SPEC]
//
// Copies the dataset at --in to --out while applying the requested fault
// matrix (see src/chaos/chaos.h).  The same (seed, spec) pair always
// produces the same corrupted bytes, and a machine-readable ledger of what
// was done — and what a lenient ingest must observe — is written to
// OUT/corruption_ledger.json (and to --ledger FILE if given).
//
// Fault spec: comma-separated "fault[:count]" from
//   truncate garbage overlong duplicate reorder missing-day
//   missing-accounting skew bad-accounting zero-byte io-fault
// or "all" for the full matrix (minus missing-accounting) with defaults.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "chaos/chaos.h"
#include "common/io.h"
#include "common/strings.h"
#include "obs/log.h"

using namespace gpures;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: gpures-corrupt --in DIR --out DIR [options]\n"
      "  --in DIR       clean dataset directory (required)\n"
      "  --out DIR      corrupted copy destination (required)\n"
      "  --seed N       corruption seed (default 1)\n"
      "  --faults SPEC  comma-separated fault[:count] list, or 'all'\n"
      "                 (default all)\n"
      "  --ledger FILE  also write the corruption ledger JSON here\n"
      "  --chaos-io-fault SPEC\n"
      "                 record SUBSTRING:BYTES[:KIND[:TIMES]] as the ledger's\n"
      "                 I/O fault plan (KIND fail|transient|eintr|short-read;\n"
      "                 see common/io.h).  Transient kinds are absorbed by a\n"
      "                 retrying reader (gpures-serve) but fail a single-shot\n"
      "                 batch read\n"
      "  --log-json FILE  structured JSONL log sidecar\n"
      "  --log-level L    debug|info|warn|error (default info)\n"
      "  --quiet        no summary on stderr\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string in_dir;
  std::string out_dir;
  std::string faults = "all";
  std::string ledger_file;
  std::string chaos_io_fault;
  std::string log_json_file;
  obs::LogLevel log_level = obs::LogLevel::kInfo;
  std::uint64_t seed = 1;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "gpures-corrupt: %s needs a value\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--in") {
      in_dir = next("--in");
    } else if (arg == "--out") {
      out_dir = next("--out");
    } else if (arg == "--seed") {
      // Strict parse: std::atoll would fold a typo into seed 0 silently,
      // and a wrong seed corrupts "deterministically" — just not the way
      // the ledger on record says.
      const char* s = next("--seed");
      const long long v = common::parse_ll(s);
      if (v < 0) {
        std::fprintf(stderr,
                     "gpures-corrupt: --seed wants a non-negative integer, "
                     "got '%s'\n",
                     s);
        return 2;
      }
      seed = static_cast<std::uint64_t>(v);
    } else if (arg == "--faults") {
      faults = next("--faults");
    } else if (arg == "--ledger") {
      ledger_file = next("--ledger");
    } else if (arg == "--chaos-io-fault") {
      chaos_io_fault = next("--chaos-io-fault");
    } else if (arg == "--log-json") {
      log_json_file = next("--log-json");
    } else if (arg == "--log-level") {
      const char* s = next("--log-level");
      const auto parsed = obs::parse_log_level(s);
      if (!parsed) {
        std::fprintf(stderr, "gpures-corrupt: unknown --log-level '%s'\n", s);
        return 2;
      }
      log_level = *parsed;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "gpures-corrupt: unknown argument '%s'\n",
                   arg.c_str());
      usage();
      return 2;
    }
  }
  if (in_dir.empty() || out_dir.empty()) {
    usage();
    return 2;
  }

  obs::Logger::Options log_opts;
  log_opts.min_level = log_level;
  if (quiet) log_opts.text_min_level = obs::LogLevel::kError;
  log_opts.jsonl_path = log_json_file;
  obs::Logger logger(log_opts);
  if (!logger.sink_status().ok()) {
    std::fprintf(stderr, "gpures-corrupt: %s\n",
                 logger.sink_status().error().message.c_str());
    return 1;
  }
  obs::Logger::install(&logger);

  const auto spec = chaos::CorruptionSpec::parse(faults);
  if (!spec.ok()) {
    logger.error("corrupt", spec.error().message);
    return 2;
  }

  const auto corrupted = chaos::corrupt_dataset(in_dir, out_dir, seed,
                                                spec.value());
  if (!corrupted.ok()) {
    logger.error("corrupt", corrupted.error().message);
    return 1;
  }
  chaos::CorruptionLedger l = corrupted.value();
  if (!chaos_io_fault.empty()) {
    // Record the requested runtime fault plan in the ledger so a harness can
    // arm exactly this spec on the reader side.  It overrides whatever the
    // io-fault fault picked; the dataset bytes are untouched.
    auto plan = common::parse_io_fault_spec(chaos_io_fault);
    if (!plan.ok()) {
      std::fprintf(stderr, "gpures-corrupt: --chaos-io-fault: %s\n",
                   plan.error().message.c_str());
      return 2;
    }
    l.io_fault_path = plan.value().path_substring;
    l.io_fault_after_bytes = plan.value().fail_after_bytes;
    l.io_fault_kind = std::string(common::to_string(plan.value().kind));
    l.io_fault_times = plan.value().times;
    const auto st =
        l.write(std::filesystem::path(out_dir) / "corruption_ledger.json");
    if (!st.ok()) {
      logger.error("corrupt", "ledger write failed",
                   {{"path", out_dir}, {"error", st.error().message}});
      return 1;
    }
  }
  if (!ledger_file.empty()) {
    const auto st = l.write(ledger_file);
    if (!st.ok()) {
      logger.error("corrupt", "ledger write failed",
                   {{"path", ledger_file}, {"error", st.error().message}});
      return 1;
    }
  }
  logger.info(
      "corrupt", "corrupted dataset",
      {{"in", in_dir},
       {"out", out_dir},
       {"seed", l.seed},
       {"fault_applications", static_cast<std::uint64_t>(l.applied.size())},
       {"binary_lines", l.expect_binary_lines},
       {"overlong_lines", l.expect_overlong_lines},
       {"torn_lines", l.expect_torn_lines},
       {"missing_days", l.expect_missing_days},
       {"zero_byte_days", l.expect_zero_byte_days},
       {"accounting_missing", l.expect_accounting_missing},
       {"accounting_rejected_rows", l.expect_accounting_rejected_rows}});
  if (!l.io_fault_path.empty()) {
    logger.info("corrupt", "planned I/O fault armed",
                {{"path", l.io_fault_path},
                 {"after_bytes", l.io_fault_after_bytes},
                 {"kind", l.io_fault_kind},
                 {"times", l.io_fault_times},
                 {"hint", "pass --chaos-io-fault to the analyzer to trigger"}});
  }
  return 0;
}
