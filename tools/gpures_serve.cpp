// gpures-serve: crash-safe follow-mode ingestion daemon.
//
//   gpures-serve --data DIR [--follow] [--resume]
//                [--checkpoint-dir DIR] [--checkpoint-interval N]
//                [--retry-max N] [--retry-backoff-ms N] [--retry-deadline-ms N]
//                [--report WHAT] [--write-index FILE] [--export-json FILE]
//                [--quality-report FILE] [--metrics FILE] ...
//
// Tails the dataset the way a site would feed live logs: day files may grow,
// rotate, appear late, or fail to read.  Ingestion state is checkpointed
// atomically (see src/serve/checkpoint.h), so `kill -9` at any point followed
// by `--resume` produces final artifacts byte-identical to an uninterrupted
// run — at any --threads.  Sources whose retry budget is exhausted are
// degraded (quarantined, counted, re-probed), never fatal in lenient mode.
//
// Default is --once: drain everything currently on disk, emit the same
// artifacts gpures-analyze would, and exit.  --follow keeps tailing until
// SIGINT/SIGTERM, then checkpoints, finalizes, and emits.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>

#include "analysis/export.h"
#include "analysis/mitigation.h"
#include "analysis/reports.h"
#include "analysis/survival.h"
#include "analysis/trends.h"
#include "common/io.h"
#include "common/strings.h"
#include "index/writer.h"
#include "obs/expfmt.h"
#include "obs/log.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "serve/serve.h"
#include "simd/dispatch.h"

using namespace gpures;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

void usage() {
  std::fprintf(
      stderr,
      "usage: gpures-serve --data DIR [options]\n"
      "  --data DIR             dataset directory (required)\n"
      "  --follow               keep tailing until SIGINT/SIGTERM\n"
      "                         (default: --once, drain and exit)\n"
      "  --once                 drain everything on disk, emit, exit\n"
      "  --resume               restore the latest checkpoint before serving\n"
      "  --checkpoint-dir DIR   where to persist checkpoints (off when unset)\n"
      "  --checkpoint-interval N  ticks between snapshots (default 16)\n"
      "  --poll-ms N            follow-mode sleep between idle ticks\n"
      "                         (default 200)\n"
      "  --max-ticks N          stop after N ticks (testing; 0 = unlimited)\n"
      "  --threads N            chunk-parse worker threads (0 = serial;\n"
      "                         output is byte-identical either way)\n"
      "  --max-chunk-bytes N    read granularity (default 4194304)\n"
      "  --retry-max N          read attempts before degrading (default 5)\n"
      "  --retry-backoff-ms N   first retry delay (default 10; doubles,\n"
      "                         capped by --retry-backoff-max-ms)\n"
      "  --retry-backoff-max-ms N  backoff cap (default 1000)\n"
      "  --retry-deadline-ms N  total backoff budget per read (0 = off)\n"
      "  --stall-ticks N        watchdog threshold (default 8)\n"
      "  --reprobe-ticks N      degraded-source re-probe cadence (default 16)\n"
      "  --ingest-policy P      strict|lenient (default lenient: degrade and\n"
      "                         keep serving; strict fails fast like batch)\n"
      "  --error-budget N       lenient: abort if any one file exceeds N\n"
      "                         quarantined lines / rejected rows (0 = off)\n"
      "  --coalesce-window S    Stage II window (default 30)\n"
      "  --window S             job-failure attribution window (default 20)\n"
      "  --node-level           node-level attribution (default: device)\n"
      "  --report WHAT          all|none|table1|table2|table3|fig2|findings|\n"
      "                         trends|survival|mitigation   (default all)\n"
      "  --write-index FILE     write the binary error index (gpures.idx)\n"
      "  --export-json FILE     write everything as one JSON document\n"
      "  --quality-report FILE  write the data-quality accounting as JSON\n"
      "  --metrics FILE         write the metrics snapshot (.prom = text\n"
      "                         exposition)\n"
      "  --simd B               Stage-I scan backend: auto|scalar|swar|avx2\n"
      "  --log-json FILE        mirror log records to FILE as JSONL\n"
      "  --log-level L          debug|info|warn|error (default info)\n"
      "  --chaos-io-fault SPEC  testing: SUBSTRING:BYTES[:KIND[:TIMES]]\n"
      "                         (see common/io.h)\n"
      "  --chaos-kill POINT:N   testing: raise SIGKILL at the Nth occurrence\n"
      "                         of POINT (tick|ckpt-pre|ckpt-post)\n"
      "  --quiet                suppress warnings on stderr\n");
}

long long parse_count(const char* flag, std::string_view s) {
  const long long v = common::parse_ll(s);
  if (v < 0) {
    std::fprintf(stderr,
                 "gpures-serve: %s wants a non-negative integer, got '%s'\n",
                 flag, std::string(s).c_str());
    std::exit(2);
  }
  return v;
}

/// Every artifact goes through the same atomic tmp+rename path the index and
/// checkpoints use: a crash mid-emit never leaves a torn file for a reader.
bool write_artifact(const std::filesystem::path& path, std::string_view text) {
  const auto st = common::write_file_atomic(path.string(), text);
  if (!st.ok()) {
    obs::Logger::current().error("serve", "artifact write failed",
                                 {{"path", path.string()},
                                  {"error", st.error().message}});
    return false;
  }
  return true;
}

struct ChaosKill {
  std::string point;
  std::uint64_t nth = 0;  ///< 1-based occurrence that fires
  std::uint64_t hits = 0;
};

}  // namespace

int main(int argc, char** argv) {
  serve::ServeConfig scfg;
  std::string report = "all";
  std::string index_file;
  std::string json_file;
  std::string quality_file;
  std::string metrics_file;
  std::string log_json_file;
  std::string chaos_io_fault;
  std::string chaos_kill_spec;
  std::string simd_choice;
  obs::LogLevel log_level = obs::LogLevel::kInfo;
  bool follow = false;
  bool resume = false;
  bool quiet = false;
  long long poll_ms = 200;
  long long max_ticks = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "gpures-serve: %s needs a value\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--data") {
      scfg.data_dir = next("--data");
    } else if (arg == "--follow") {
      follow = true;
    } else if (arg == "--once") {
      follow = false;
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--checkpoint-dir") {
      scfg.checkpoint_dir = next("--checkpoint-dir");
    } else if (arg == "--checkpoint-interval") {
      scfg.checkpoint_interval = static_cast<std::uint64_t>(parse_count(
          "--checkpoint-interval", next("--checkpoint-interval")));
      if (scfg.checkpoint_interval == 0) {
        std::fprintf(stderr,
                     "gpures-serve: --checkpoint-interval must be >= 1\n");
        return 2;
      }
    } else if (arg == "--poll-ms") {
      poll_ms = parse_count("--poll-ms", next("--poll-ms"));
    } else if (arg == "--max-ticks") {
      max_ticks = parse_count("--max-ticks", next("--max-ticks"));
    } else if (arg == "--threads") {
      const long long n = parse_count("--threads", next("--threads"));
      if (n > 256) {
        std::fprintf(stderr, "gpures-serve: --threads must be in [0, 256]\n");
        return 2;
      }
      scfg.threads = static_cast<std::uint32_t>(n);
    } else if (arg == "--max-chunk-bytes") {
      const long long n =
          parse_count("--max-chunk-bytes", next("--max-chunk-bytes"));
      if (n == 0) {
        std::fprintf(stderr, "gpures-serve: --max-chunk-bytes must be >= 1\n");
        return 2;
      }
      scfg.max_chunk_bytes = static_cast<std::uint64_t>(n);
    } else if (arg == "--retry-max") {
      const long long n = parse_count("--retry-max", next("--retry-max"));
      if (n == 0) {
        std::fprintf(stderr, "gpures-serve: --retry-max must be >= 1\n");
        return 2;
      }
      scfg.retry.max_attempts = static_cast<std::uint32_t>(n);
    } else if (arg == "--retry-backoff-ms") {
      scfg.retry.backoff_ms = static_cast<std::uint64_t>(
          parse_count("--retry-backoff-ms", next("--retry-backoff-ms")));
    } else if (arg == "--retry-backoff-max-ms") {
      scfg.retry.backoff_max_ms = static_cast<std::uint64_t>(parse_count(
          "--retry-backoff-max-ms", next("--retry-backoff-max-ms")));
    } else if (arg == "--retry-deadline-ms") {
      scfg.retry.deadline_ms = static_cast<std::uint64_t>(
          parse_count("--retry-deadline-ms", next("--retry-deadline-ms")));
    } else if (arg == "--stall-ticks") {
      scfg.stall_ticks = static_cast<std::uint64_t>(
          parse_count("--stall-ticks", next("--stall-ticks")));
    } else if (arg == "--reprobe-ticks") {
      scfg.reprobe_ticks = static_cast<std::uint64_t>(
          parse_count("--reprobe-ticks", next("--reprobe-ticks")));
    } else if (arg == "--ingest-policy") {
      const auto p = analysis::parse_ingest_policy(next("--ingest-policy"));
      if (!p) {
        std::fprintf(
            stderr,
            "gpures-serve: --ingest-policy must be strict or lenient\n");
        return 2;
      }
      scfg.policy = *p;
    } else if (arg == "--error-budget") {
      scfg.error_budget = static_cast<std::uint64_t>(
          parse_count("--error-budget", next("--error-budget")));
    } else if (arg == "--coalesce-window") {
      scfg.coalescer.window =
          parse_count("--coalesce-window", next("--coalesce-window"));
    } else if (arg == "--window") {
      scfg.attribution_window = parse_count("--window", next("--window"));
    } else if (arg == "--node-level") {
      scfg.attribution = analysis::Attribution::kNodeLevel;
    } else if (arg == "--report") {
      report = next("--report");
    } else if (arg == "--write-index") {
      index_file = next("--write-index");
    } else if (arg == "--export-json") {
      json_file = next("--export-json");
    } else if (arg == "--quality-report") {
      quality_file = next("--quality-report");
    } else if (arg == "--metrics") {
      metrics_file = next("--metrics");
    } else if (arg == "--simd") {
      simd_choice = next("--simd");
    } else if (arg == "--log-json") {
      log_json_file = next("--log-json");
    } else if (arg == "--log-level") {
      const auto lvl = obs::parse_log_level(next("--log-level"));
      if (!lvl) {
        std::fprintf(
            stderr,
            "gpures-serve: --log-level must be debug|info|warn|error\n");
        return 2;
      }
      log_level = *lvl;
    } else if (arg == "--chaos-io-fault") {
      chaos_io_fault = next("--chaos-io-fault");
    } else if (arg == "--chaos-kill") {
      chaos_kill_spec = next("--chaos-kill");
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "gpures-serve: unknown argument '%s'\n",
                   arg.c_str());
      usage();
      return 2;
    }
  }
  if (!simd_choice.empty()) {
    const auto backend = simd::parse_backend(simd_choice);
    if (!backend) {
      std::fprintf(stderr,
                   "gpures-serve: --simd must be auto|scalar|swar|avx2\n");
      return 2;
    }
    if (!simd::set_active(*backend)) {
      std::fprintf(
          stderr,
          "gpures-serve: --simd %s: backend not available on this host\n",
          simd_choice.c_str());
      return 2;
    }
  }
  if (scfg.data_dir.empty()) {
    usage();
    return 2;
  }

  obs::Logger::Options log_opts;
  log_opts.min_level = log_level;
  if (quiet) log_opts.text_min_level = obs::LogLevel::kError;
  log_opts.jsonl_path = log_json_file;
  log_opts.max_per_key = 100;
  obs::Logger logger(log_opts);
  obs::Logger::install(&logger);
  auto& log = obs::Logger::current();
  if (!logger.sink_status().ok()) {
    std::fprintf(stderr, "gpures-serve: %s\n",
                 logger.sink_status().error().message.c_str());
    return 1;
  }

  common::IoFaultPlan fault_plan;
  if (!chaos_io_fault.empty()) {
    auto parsed = common::parse_io_fault_spec(chaos_io_fault);
    if (!parsed.ok()) {
      std::fprintf(stderr, "gpures-serve: --chaos-io-fault: %s\n",
                   parsed.error().message.c_str());
      return 2;
    }
    fault_plan = std::move(parsed).take();
    common::set_io_fault_plan(&fault_plan);
  }

  ChaosKill chaos_kill;
  if (!chaos_kill_spec.empty()) {
    const auto colon = chaos_kill_spec.rfind(':');
    if (colon == std::string::npos || colon == 0) {
      std::fprintf(stderr, "gpures-serve: --chaos-kill wants POINT:N\n");
      return 2;
    }
    chaos_kill.point = chaos_kill_spec.substr(0, colon);
    if (chaos_kill.point != "tick" && chaos_kill.point != "ckpt-pre" &&
        chaos_kill.point != "ckpt-post") {
      std::fprintf(
          stderr,
          "gpures-serve: --chaos-kill POINT must be tick|ckpt-pre|ckpt-post\n");
      return 2;
    }
    chaos_kill.nth = static_cast<std::uint64_t>(parse_count(
        "--chaos-kill", std::string_view(chaos_kill_spec).substr(colon + 1)));
    if (chaos_kill.nth == 0) {
      std::fprintf(stderr, "gpures-serve: --chaos-kill N must be >= 1\n");
      return 2;
    }
  }

  obs::MetricsRegistry registry;
  scfg.metrics = &registry;
  scfg.warn = [&log](const std::string& msg) { log.warn("serve", msg); };
  if (!chaos_kill.point.empty()) {
    scfg.chaos_point = [&chaos_kill](const char* point) {
      if (chaos_kill.point != point) return;
      if (++chaos_kill.hits == chaos_kill.nth) {
        // A real, unblockable kill: no destructors, no atexit, no flush —
        // exactly the crash the checkpoint recovery contract is tested
        // against.
        std::raise(SIGKILL);
      }
    };
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  // The session takes the config; keep the analysis knobs the emit phase
  // still needs.
  const common::Duration attribution_window = scfg.attribution_window;
  const analysis::Attribution attribution = scfg.attribution;
  const double outlier_share = scfg.outlier_share;
  const std::uint64_t outlier_min = scfg.outlier_min;

  serve::ServeSession session(std::move(scfg));
  auto st = session.open(resume);
  if (!st.ok()) {
    log.error("serve", st.error().message);
    return 1;
  }

  // The serve loop.  --once drains what is on disk; --follow keeps tailing
  // until a signal arrives, sleeping between idle ticks.
  while (true) {
    st = session.tick();
    if (!st.ok()) {
      log.error("serve", st.error().message);
      return 1;
    }
    if (g_stop != 0) break;
    if (max_ticks > 0 &&
        session.ticks() >= static_cast<std::uint64_t>(max_ticks)) {
      break;
    }
    if (!follow && session.idle()) break;
    if (follow && session.idle() && poll_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
    }
  }

  // Graceful shutdown: persist the pre-drain state first (a follow-mode
  // restart resumes the tail), then drain and emit.
  st = session.checkpoint_now();
  if (!st.ok()) {
    log.error("serve", st.error().message);
    return 1;
  }
  st = session.finalize();
  if (!st.ok()) {
    log.error("serve", st.error().message);
    return 1;
  }
  common::set_io_fault_plan(nullptr);

  const auto& quality = session.quality();
  registry.counter("ingest.lines_kept").add(quality.lines_kept);
  registry.counter("ingest.lines_quarantined")
      .add(quality.quarantined_lines());
  registry.counter("ingest.bytes_quarantined")
      .add(quality.quarantined_bytes());
  registry.counter("ingest.days_missing").add(quality.missing_days.size());
  registry.counter("ingest.days_skipped").add(quality.skipped_days.size());
  registry.counter("ingest.days_zero_byte").add(quality.zero_byte_days);
  registry.counter("ingest.stray_files").add(quality.stray_files.size());
  registry.counter("ingest.accounting_rows_rejected")
      .add(quality.accounting_rows_rejected);

  log.info("serve", "serve complete",
           {{"ticks", session.ticks()},
            {"errors", session.errors().size()},
            {"jobs", session.jobs().jobs.size()},
            {"degraded_sources", session.degraded_count()},
            {"checkpoint_seq", session.checkpoint_seq()}});

  const auto& topo = session.topo();
  const auto& periods = session.periods();
  const bool all = report == "all";
  if (report != "none") {
    const auto stats = session.error_stats();
    if (all || report == "table1") {
      std::printf("%s\n", analysis::render_table1(stats).c_str());
    }
    if (all || report == "findings") {
      std::printf("%s\n", analysis::render_findings(stats).c_str());
    }
    if ((all || report == "table2") && !session.jobs().jobs.empty()) {
      std::printf("%s\n", analysis::render_table2(session.job_impact()).c_str());
    }
    if ((all || report == "table3") && !session.jobs().jobs.empty()) {
      std::printf("%s\n", analysis::render_table3(session.job_stats()).c_str());
    }
    if (all || report == "fig2") {
      std::printf("%s\n",
                  analysis::render_fig2(session.availability(),
                                        session.mttf_estimate_h())
                      .c_str());
    }
    if (all || report == "trends") {
      std::printf("%s\n",
                  analysis::render_trends(session.errors(), periods,
                                          session.pool())
                      .c_str());
    }
    if ((all || report == "mitigation") && !session.jobs().jobs.empty()) {
      analysis::JobImpactConfig icfg;
      icfg.window = attribution_window;
      icfg.period = periods.op;
      icfg.attribution = attribution;
      std::printf("%s\n",
                  analysis::render_mitigation(session.jobs(), session.errors(),
                                              icfg, session.pool())
                      .c_str());
    }
    if (all || report == "survival") {
      std::printf("%s\n",
                  analysis::render_survival(session.errors(), periods,
                                            topo.total_gpus(), session.pool())
                      .c_str());
    }
  }

  if (!index_file.empty()) {
    const auto avail = session.availability();
    index::IndexBuildInput in;
    in.periods = periods;
    in.attribution_window = attribution_window;
    in.attribution = attribution;
    in.outlier_share = outlier_share;
    in.outlier_min = outlier_min;
    in.topo = &topo;
    in.errors = &session.errors();
    in.jobs = &session.jobs();
    in.unavailability = &avail.intervals;
    const auto wrote = index::write_index(in, index_file);
    if (!wrote.ok()) {
      log.error("serve", wrote.error().message);
      return 1;
    }
    log.info("serve", "wrote index",
             {{"path", index_file}, {"bytes", wrote.value().bytes}});
  }

  if (!json_file.empty()) {
    const auto stats = session.error_stats();
    const auto impact = session.job_impact();
    const auto jobs = session.job_stats();
    const auto avail = session.availability();
    analysis::ExportBundle bundle;
    bundle.error_stats = &stats;
    bundle.job_stats = &jobs;
    bundle.job_impact = &impact;
    bundle.availability = &avail;
    bundle.mttf_h = session.mttf_estimate_h();
    if (!write_artifact(json_file, analysis::to_json(bundle) + "\n")) return 1;
  }

  if (!quality_file.empty() &&
      !write_artifact(quality_file, quality.to_json() + "\n")) {
    return 1;
  }
  if (!metrics_file.empty() &&
      !write_artifact(metrics_file,
                      obs::render_metrics_file(registry, metrics_file))) {
    return 1;
  }
  return 0;
}
