// gpures-query: answer resilience questions from a gpures.idx artifact
// without re-running the pipeline.
//
//   gpures-query --index gpures.idx [--node gpua042] [--xid 63]
//                [--from 2022-10-01 --to 2023-01-01]
//                [--report count|impact|availability|all]
//                [--format json|csv|md] [--window S] [--node-level]
//                [--cache N] [--metrics FILE[.prom]] [--slow-query-us N]
//                [--log-json FILE] [--log-level L] [--info]
//
// The artifact comes from `gpures-analyze --data DIR --write-index FILE`.
// Query semantics match the batch pipeline exactly (see src/index/query.h);
// the reader memory-maps the file, so repeated invocations are served from
// the page cache.  Exit status: 0 on success, 1 on a bad/corrupt index or
// unknown node, 2 on usage errors.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "common/io.h"
#include "common/json.h"
#include "common/strings.h"
#include "common/time.h"
#include "index/query.h"
#include "index/reader.h"
#include "obs/expfmt.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "xid/xid.h"

using namespace gpures;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: gpures-query --index FILE [options]\n"
      "  --index FILE     gpures.idx artifact (required)\n"
      "  --node NAME      restrict to one node (e.g. gpua042)\n"
      "  --xid N          restrict to one XID (family-merged: 120 -> 119)\n"
      "  --from TS        window start, YYYY-MM-DD[ HH:MM:SS]\n"
      "  --to TS          window end (exclusive); default: recorded study\n"
      "                   window\n"
      "  --report WHAT    count|impact|availability|all  (default all)\n"
      "  --format F       json|csv|md                    (default md)\n"
      "  --window S       attribution window override (default: recorded)\n"
      "  --node-level     node-level attribution (default: recorded)\n"
      "  --cache N        LRU result-cache capacity (0 disables; default 64)\n"
      "  --metrics FILE   write query.* metrics snapshot; a .prom suffix\n"
      "                   selects Prometheus text exposition\n"
      "  --slow-query-us N\n"
      "                   log queries slower than N microseconds (0 = off)\n"
      "  --log-json FILE  mirror log records to FILE as JSONL\n"
      "  --log-level L    debug|info|warn|error (default info)\n"
      "  --info           print artifact metadata and exit\n");
}

long long parse_count_arg(const char* flag, std::string_view s) {
  const long long v = common::parse_ll(s);
  if (v < 0) {
    std::fprintf(stderr,
                 "gpures-query: %s wants a non-negative integer, got '%s'\n",
                 flag, std::string(s).c_str());
    std::exit(2);
  }
  return v;
}

common::TimePoint parse_time_arg(const char* flag, std::string_view s) {
  const auto t = common::parse_iso(s);
  if (!t.has_value()) {
    std::fprintf(stderr,
                 "gpures-query: %s wants YYYY-MM-DD[ HH:MM:SS], got '%s'\n",
                 flag, std::string(s).c_str());
    std::exit(2);
  }
  return *t;
}

std::string fmt_or_dash(double v) {
  if (!std::isfinite(v)) return "-";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

const char* family_abbrev(xid::Code code) {
  const auto d = xid::describe(code);
  return d.has_value() ? d->abbrev.data() : "?";
}

void render_md(const index::QueryEngine& eng, const index::Predicate& p,
               const index::IndexReader& reader, bool want_count,
               bool want_impact, bool want_avail,
               const index::CountResult* count,
               const index::ImpactResult* impact,
               const index::AvailabilityResult* avail) {
  std::printf("# gpures-query\n\n");
  std::printf("- index: %s\n", reader.path().c_str());
  std::printf("- window: %s .. %s (%.2f h)\n",
              common::format_iso(p.from).c_str(),
              common::format_iso(p.to).c_str(),
              common::to_hours(p.to - p.from));
  if (p.node.has_value()) {
    std::printf("- node: %s\n",
                std::string(reader.node_name(
                                static_cast<std::uint32_t>(*p.node)))
                    .c_str());
  }
  if (p.xid.has_value()) std::printf("- xid: %u\n", unsigned{*p.xid});
  std::printf("- attribution: %s, window %llds\n",
              eng.node_level() ? "node" : "device",
              static_cast<long long>(eng.effective_window()));
  if (want_count && count != nullptr) {
    std::printf("\n## Errors\n\n");
    std::printf("| errors | MTBE system (h) | MTBE per node (h) |\n");
    std::printf("|---|---|---|\n");
    std::printf("| %llu | %s | %s |\n",
                static_cast<unsigned long long>(count->count),
                fmt_or_dash(count->mtbe_system_h).c_str(),
                fmt_or_dash(count->mtbe_per_node_h).c_str());
  }
  if (want_impact && impact != nullptr) {
    std::printf("\n## Job impact\n\n");
    std::printf("jobs analyzed: %llu, failed (any cause): %llu, "
                "GPU-failed: %llu\n\n",
                static_cast<unsigned long long>(impact->jobs_analyzed),
                static_cast<unsigned long long>(impact->failed_jobs_total),
                static_cast<unsigned long long>(impact->gpu_failed_jobs));
    std::printf("| XID | family | encountering | failed | P(fail) | 95%% CI |\n");
    std::printf("|---|---|---|---|---|---|\n");
    for (const auto& r : impact->rows) {
      std::printf("| %u | %s | %llu | %llu | %s | [%s, %s] |\n",
                  unsigned{xid::to_number(r.code)}, family_abbrev(r.code),
                  static_cast<unsigned long long>(r.encountering_jobs),
                  static_cast<unsigned long long>(r.failed_jobs),
                  fmt_or_dash(r.failure_probability).c_str(),
                  fmt_or_dash(r.ci.lo).c_str(), fmt_or_dash(r.ci.hi).c_str());
    }
  }
  if (want_avail && avail != nullptr) {
    std::printf("\n## Availability\n\n");
    std::printf(
        "| intervals | node-hours lost | MTTR (h) | MTTF (h) | availability "
        "|\n");
    std::printf("|---|---|---|---|---|\n");
    std::printf("| %llu | %.4f | %s | %s | %s |\n",
                static_cast<unsigned long long>(avail->intervals),
                avail->hours_lost, fmt_or_dash(avail->mttr_h).c_str(),
                fmt_or_dash(avail->mttf_h).c_str(),
                fmt_or_dash(avail->availability).c_str());
  }
}

void render_csv(bool want_count, bool want_impact, bool want_avail,
                const index::CountResult* count,
                const index::ImpactResult* impact,
                const index::AvailabilityResult* avail) {
  const auto num = [](double v) {
    if (!std::isfinite(v)) return std::string();
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return std::string(buf);
  };
  if (want_count && count != nullptr) {
    std::printf("report,count,window_hours,mtbe_system_h,mtbe_per_node_h\n");
    std::printf("count,%llu,%s,%s,%s\n",
                static_cast<unsigned long long>(count->count),
                num(count->window_hours).c_str(),
                num(count->mtbe_system_h).c_str(),
                num(count->mtbe_per_node_h).c_str());
  }
  if (want_impact && impact != nullptr) {
    std::printf(
        "report,xid,encountering_jobs,failed_jobs,failure_probability,ci_lo,"
        "ci_hi\n");
    for (const auto& r : impact->rows) {
      std::printf("impact,%u,%llu,%llu,%s,%s,%s\n",
                  unsigned{xid::to_number(r.code)},
                  static_cast<unsigned long long>(r.encountering_jobs),
                  static_cast<unsigned long long>(r.failed_jobs),
                  num(r.failure_probability).c_str(), num(r.ci.lo).c_str(),
                  num(r.ci.hi).c_str());
    }
  }
  if (want_avail && avail != nullptr) {
    std::printf(
        "report,intervals,hours_lost,mttr_h,mttf_h,availability\n");
    std::printf("availability,%llu,%s,%s,%s,%s\n",
                static_cast<unsigned long long>(avail->intervals),
                num(avail->hours_lost).c_str(), num(avail->mttr_h).c_str(),
                num(avail->mttf_h).c_str(), num(avail->availability).c_str());
  }
}

void render_json(const index::QueryEngine& eng, const index::Predicate& p,
                 const index::IndexReader& reader, bool want_count,
                 bool want_impact, bool want_avail,
                 const index::CountResult* count,
                 const index::ImpactResult* impact,
                 const index::AvailabilityResult* avail) {
  common::JsonWriter w;
  const auto fin = [&w](double v) {
    std::isfinite(v) ? w.value(v) : w.null();
  };
  w.begin_object();
  w.key("query");
  w.begin_object();
  w.kv("index", reader.path());
  w.kv("from", common::format_iso(p.from));
  w.kv("to", common::format_iso(p.to));
  w.key("node");
  if (p.node.has_value()) {
    w.value(std::string_view(
        reader.node_name(static_cast<std::uint32_t>(*p.node))));
  } else {
    w.null();
  }
  w.key("xid");
  if (p.xid.has_value()) {
    w.value(std::uint64_t{*p.xid});
  } else {
    w.null();
  }
  w.kv("attribution", eng.node_level() ? "node" : "device");
  w.kv("attribution_window_s",
       static_cast<std::int64_t>(eng.effective_window()));
  w.end_object();
  if (want_count && count != nullptr) {
    w.key("count");
    w.begin_object();
    w.kv("errors", count->count);
    w.kv("window_hours", count->window_hours);
    w.key("mtbe_system_h");
    fin(count->mtbe_system_h);
    w.key("mtbe_per_node_h");
    fin(count->mtbe_per_node_h);
    w.end_object();
  }
  if (want_impact && impact != nullptr) {
    w.key("impact");
    w.begin_object();
    w.kv("jobs_analyzed", impact->jobs_analyzed);
    w.kv("failed_jobs_total", impact->failed_jobs_total);
    w.kv("gpu_failed_jobs", impact->gpu_failed_jobs);
    w.key("rows");
    w.begin_array();
    for (const auto& r : impact->rows) {
      w.begin_object();
      w.kv("xid", std::uint64_t{xid::to_number(r.code)});
      w.kv("encountering_jobs", r.encountering_jobs);
      w.kv("failed_jobs", r.failed_jobs);
      w.kv("failure_probability", r.failure_probability);
      w.kv("ci_lo", r.ci.lo);
      w.kv("ci_hi", r.ci.hi);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  if (want_avail && avail != nullptr) {
    w.key("availability");
    w.begin_object();
    w.kv("intervals", avail->intervals);
    w.kv("hours_lost", avail->hours_lost);
    w.key("mttr_h");
    fin(avail->mttr_h);
    w.key("mttf_h");
    fin(avail->mttf_h);
    w.key("availability");
    fin(avail->availability);
    w.end_object();
  }
  w.end_object();
  std::printf("%s\n", std::move(w).str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string index_file;
  std::string node_name;
  std::string report = "all";
  std::string format = "md";
  std::string metrics_file;
  std::string log_json_file;
  obs::LogLevel log_level = obs::LogLevel::kInfo;
  bool info = false;
  bool have_from = false;
  bool have_to = false;
  index::Predicate pred;
  index::QueryOptions qopts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "gpures-query: %s needs a value\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--index") {
      index_file = next("--index");
    } else if (arg == "--node") {
      node_name = next("--node");
    } else if (arg == "--xid") {
      const long long x = parse_count_arg("--xid", next("--xid"));
      if (x > 0xffff) {
        std::fprintf(stderr, "gpures-query: --xid must be in [0, 65535]\n");
        return 2;
      }
      pred.xid = static_cast<std::uint16_t>(x);
    } else if (arg == "--from") {
      pred.from = parse_time_arg("--from", next("--from"));
      have_from = true;
    } else if (arg == "--to") {
      pred.to = parse_time_arg("--to", next("--to"));
      have_to = true;
    } else if (arg == "--report") {
      report = next("--report");
    } else if (arg == "--format") {
      format = next("--format");
    } else if (arg == "--window") {
      qopts.attribution_window = parse_count_arg("--window", next("--window"));
    } else if (arg == "--node-level") {
      qopts.attribution = 1;
    } else if (arg == "--cache") {
      qopts.cache_capacity = static_cast<std::size_t>(
          parse_count_arg("--cache", next("--cache")));
    } else if (arg == "--metrics") {
      metrics_file = next("--metrics");
    } else if (arg == "--slow-query-us") {
      qopts.slow_query_us = static_cast<double>(
          parse_count_arg("--slow-query-us", next("--slow-query-us")));
    } else if (arg == "--log-json") {
      log_json_file = next("--log-json");
    } else if (arg == "--log-level") {
      const auto lvl = obs::parse_log_level(next("--log-level"));
      if (!lvl) {
        std::fprintf(
            stderr,
            "gpures-query: --log-level must be debug|info|warn|error\n");
        return 2;
      }
      log_level = *lvl;
    } else if (arg == "--info") {
      info = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "gpures-query: unknown argument '%s'\n",
                   arg.c_str());
      usage();
      return 2;
    }
  }
  if (index_file.empty()) {
    usage();
    return 2;
  }
  const bool want_count = report == "all" || report == "count";
  const bool want_impact = report == "all" || report == "impact";
  const bool want_avail = report == "all" || report == "availability";
  if (!want_count && !want_impact && !want_avail) {
    std::fprintf(stderr,
                 "gpures-query: --report must be count, impact, "
                 "availability, or all\n");
    return 2;
  }
  if (format != "json" && format != "csv" && format != "md") {
    std::fprintf(stderr, "gpures-query: --format must be json, csv, or md\n");
    return 2;
  }

  obs::Logger::Options log_opts;
  log_opts.min_level = log_level;
  log_opts.jsonl_path = log_json_file;
  log_opts.max_per_key = 100;
  obs::Logger logger(log_opts);
  obs::Logger::install(&logger);
  if (!logger.sink_status().ok()) {
    std::fprintf(stderr, "gpures-query: %s\n",
                 logger.sink_status().error().message.c_str());
    return 1;
  }

  auto opened = index::IndexReader::open(index_file);
  if (!opened.ok()) {
    obs::Logger::current().error("query", opened.error().message);
    return 1;
  }
  const index::IndexReader reader = std::move(opened).take();
  const auto& meta = reader.meta();

  if (info) {
    std::printf("gpures index %s (%llu bytes, format v%u)\n",
                index_file.c_str(),
                static_cast<unsigned long long>(reader.file_bytes()),
                1u);
    std::printf("  study window: %s .. %s (op from %s)\n",
                common::format_iso(meta.periods.pre.begin).c_str(),
                common::format_iso(meta.periods.op.end).c_str(),
                common::format_iso(meta.periods.op.begin).c_str());
    std::printf("  nodes: %u, attribution: %s, window: %llds\n",
                meta.node_count, meta.attribution == 0 ? "device" : "node",
                static_cast<long long>(meta.attribution_window));
    std::printf("  errors: %llu (%llu exposure entries), jobs: %llu, "
                "unavailability intervals: %llu\n",
                static_cast<unsigned long long>(meta.error_count),
                static_cast<unsigned long long>(meta.loc_entry_count),
                static_cast<unsigned long long>(meta.job_count),
                static_cast<unsigned long long>(meta.unavail_count));
    return 0;
  }

  if (!node_name.empty()) {
    const auto idx = reader.node_index(node_name);
    if (!idx.has_value()) {
      obs::Logger::current().error("query", "node is not in this index",
                                   {{"node", node_name}});
      return 1;
    }
    pred.node = *idx;
  }

  obs::MetricsRegistry registry;
  if (!metrics_file.empty()) qopts.metrics = &registry;
  index::QueryEngine engine(reader, qopts);
  if (!have_from) pred.from = meta.periods.pre.begin;
  if (!have_to) pred.to = meta.periods.op.end;
  if (pred.to < pred.from) {
    std::fprintf(stderr, "gpures-query: --to must not precede --from\n");
    return 2;
  }

  index::CountResult count;
  index::ImpactResult impact;
  index::AvailabilityResult avail;
  if (want_count) count = engine.count(pred);
  if (want_impact) impact = engine.impact(pred);
  if (want_avail) avail = engine.availability(pred);

  if (format == "md") {
    render_md(engine, pred, reader, want_count, want_impact, want_avail,
              &count, &impact, &avail);
  } else if (format == "csv") {
    render_csv(want_count, want_impact, want_avail, &count, &impact, &avail);
  } else {
    render_json(engine, pred, reader, want_count, want_impact, want_avail,
                &count, &impact, &avail);
  }

  if (!metrics_file.empty()) {
    // Same checked atomic write path gpures-analyze uses: tmp+rename, so a
    // crash mid-write never leaves a torn snapshot, and open/short-write/
    // rename failures exit nonzero instead of vanishing in a bad() stream.
    const auto st = common::write_file_atomic(
        metrics_file, obs::render_metrics_file(registry, metrics_file));
    if (!st.ok()) {
      obs::Logger::current().error("query", st.error().message);
      return 1;
    }
  }
  return 0;
}
