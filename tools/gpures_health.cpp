// gpures-health: render an operator health report from telemetry sidecars.
//
//   gpures-health --metrics FILE [--telemetry FILE] [--format md|json]
//                 [--out FILE]
//
// Consumes the observability artifacts the other tools emit — the metrics
// registry snapshot JSON (--metrics) and the live telemetry sampler JSONL
// (--telemetry) — and renders one operator-facing report: pipeline
// throughput, latency quantiles per histogram family, query cache
// effectiveness, ingest quality (drop reasons), and an RSS/CPU timeline.
//
// The report is a pure function of its input files: no clocks, no
// environment probes, so the same sidecars always render the same bytes.
// Exit code 0 even when the report flags findings — this is a reporting
// tool, not a gate; use the "status" field for alerting.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/io.h"
#include "common/json.h"
#include "obs/metrics.h"
#include "obs/quantile.h"

using namespace gpures;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: gpures-health --metrics FILE [options]\n"
      "  --metrics FILE    metrics registry snapshot JSON, as written by\n"
      "                    gpures-analyze/-query/-simulate --metrics (required)\n"
      "  --telemetry FILE  telemetry sampler JSONL (from --telemetry)\n"
      "  --format F        report format: md (default) or json\n"
      "  --out FILE        write the report here instead of stdout\n");
}

// ---------------------------------------------------------------------------
// Parsed sidecar model

struct HistData {
  std::string name;  ///< rendered name, labels included
  std::string family;
  std::vector<obs::Label> labels;
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  double sum = 0.0;

  /// Per the relaxed-read contract the per-bucket counts are authoritative;
  /// the sampled "count" field may lag and is ignored here.
  std::uint64_t bucket_total() const {
    std::uint64_t t = 0;
    for (const std::uint64_t c : counts) t += c;
    return t;
  }
};

struct GaugeData {
  double value = 0.0;
  double max = 0.0;
};

struct Metrics {
  std::map<std::string, double> counters;    // rendered name -> value
  std::map<std::string, GaugeData> gauges;   // rendered name -> value/max
  std::vector<HistData> histograms;          // registry (sorted-name) order
};

struct TelemetrySample {
  double seq = 0.0;
  double elapsed_ms = 0.0;
  std::string reason;
  bool proc_valid = false;
  double rss_kb = 0.0;
  double cpu_s = 0.0;  // utime + stime
  double open_fds = 0.0;
  double log_lines = -1.0;  // pipe.log_lines counter at sample time, if present
};

struct Finding {
  std::string severity;  // "warn" | "info"
  std::string message;
};

common::Result<Metrics> load_metrics(const std::string& path) {
  auto text = common::read_file(path);
  if (!text.ok()) return text.error();
  auto doc = common::parse_json(text.value());
  if (!doc.ok()) {
    return common::Error::make(path + ": " + doc.error().message);
  }
  const auto& root = doc.value();
  if (!root.is_object()) {
    return common::Error::make(path + ": metrics snapshot must be an object");
  }
  Metrics m;
  if (const auto* counters = root.find("counters");
      counters != nullptr && counters->is_object()) {
    for (const auto& [name, v] : counters->members()) {
      if (v.is_number()) m.counters.emplace(name, v.as_number());
    }
  }
  if (const auto* gauges = root.find("gauges");
      gauges != nullptr && gauges->is_object()) {
    for (const auto& [name, v] : gauges->members()) {
      if (!v.is_object()) continue;
      GaugeData g;
      if (const auto* value = v.find("value"); value && value->is_number()) {
        g.value = value->as_number();
      }
      if (const auto* max = v.find("max"); max && max->is_number()) {
        g.max = max->as_number();
      }
      m.gauges.emplace(name, g);
    }
  }
  if (const auto* hists = root.find("histograms");
      hists != nullptr && hists->is_object()) {
    for (const auto& [name, v] : hists->members()) {
      if (!v.is_object()) continue;
      HistData h;
      h.name = name;
      auto parsed = obs::parse_labeled_name(name);
      h.family = std::move(parsed.family);
      h.labels = std::move(parsed.labels);
      if (const auto* bounds = v.find("bounds");
          bounds != nullptr && bounds->is_array()) {
        for (const auto& b : bounds->items()) {
          if (b.is_number()) h.bounds.push_back(b.as_number());
        }
      }
      if (const auto* counts = v.find("counts");
          counts != nullptr && counts->is_array()) {
        for (const auto& c : counts->items()) {
          if (c.is_number()) {
            h.counts.push_back(static_cast<std::uint64_t>(c.as_number()));
          }
        }
      }
      if (const auto* sum = v.find("sum"); sum && sum->is_number()) {
        h.sum = sum->as_number();
      }
      if (h.counts.size() != h.bounds.size() + 1) continue;  // malformed entry
      m.histograms.push_back(std::move(h));
    }
  }
  return m;
}

common::Result<std::vector<TelemetrySample>> load_telemetry(
    const std::string& path) {
  auto text = common::read_file(path);
  if (!text.ok()) return text.error();
  std::vector<TelemetrySample> samples;
  std::string_view rest = text.value();
  std::size_t line_no = 0;
  while (!rest.empty()) {
    ++line_no;
    const auto nl = rest.find('\n');
    const std::string_view line =
        nl == std::string_view::npos ? rest : rest.substr(0, nl);
    rest = nl == std::string_view::npos ? std::string_view{}
                                        : rest.substr(nl + 1);
    if (line.empty()) continue;
    auto doc = common::parse_json(line);
    if (!doc.ok()) {
      return common::Error::make(path + ":" + std::to_string(line_no) + ": " +
                                 doc.error().message);
    }
    const auto& rec = doc.value();
    if (!rec.is_object()) continue;
    TelemetrySample s;
    if (const auto* v = rec.find("seq"); v && v->is_number()) {
      s.seq = v->as_number();
    }
    if (const auto* v = rec.find("elapsed_ms"); v && v->is_number()) {
      s.elapsed_ms = v->as_number();
    }
    if (const auto* v = rec.find("reason"); v && v->is_string()) {
      s.reason = v->as_string();
    }
    if (const auto* proc = rec.find("proc");
        proc != nullptr && proc->is_object()) {
      if (const auto* v = proc->find("valid"); v && v->is_bool()) {
        s.proc_valid = v->as_bool();
      }
      if (const auto* v = proc->find("rss_kb"); v && v->is_number()) {
        s.rss_kb = v->as_number();
      }
      double cpu = 0.0;
      if (const auto* v = proc->find("utime_s"); v && v->is_number()) {
        cpu += v->as_number();
      }
      if (const auto* v = proc->find("stime_s"); v && v->is_number()) {
        cpu += v->as_number();
      }
      s.cpu_s = cpu;
      if (const auto* v = proc->find("open_fds"); v && v->is_number()) {
        s.open_fds = v->as_number();
      }
    }
    if (const auto* counters = rec.find("counters");
        counters != nullptr && counters->is_object()) {
      if (const auto* v = counters->find("pipe.log_lines");
          v != nullptr && v->is_number()) {
        s.log_lines = v->as_number();
      }
    }
    samples.push_back(std::move(s));
  }
  return samples;
}

// ---------------------------------------------------------------------------
// Derived views

double counter_or(const Metrics& m, std::string_view name, double fallback) {
  const auto it = m.counters.find(std::string(name));
  return it == m.counters.end() ? fallback : it->second;
}

double gauge_or(const Metrics& m, std::string_view name, double fallback) {
  const auto it = m.gauges.find(std::string(name));
  return it == m.gauges.end() ? fallback : it->second.value;
}

/// Any serve.* counter or gauge in the snapshot means it came from
/// gpures-serve and the daemon section applies.
bool has_serve_metrics(const Metrics& m) {
  for (const auto& [name, value] : m.counters) {
    if (name.rfind("serve.", 0) == 0) return true;
  }
  for (const auto& [name, g] : m.gauges) {
    if (name.rfind("serve.", 0) == 0) return true;
  }
  return false;
}

/// Sum of every counter in a family across label sets (and the unlabeled
/// child, if present).
double family_sum(const Metrics& m, std::string_view family) {
  double total = 0.0;
  for (const auto& [name, value] : m.counters) {
    if (obs::parse_labeled_name(name).family == family) total += value;
  }
  return total;
}

struct HistRow {
  const HistData* h = nullptr;
  std::uint64_t count = 0;
  double mean = std::numeric_limits<double>::quiet_NaN();
  double p50 = std::numeric_limits<double>::quiet_NaN();
  double p95 = std::numeric_limits<double>::quiet_NaN();
  double p99 = std::numeric_limits<double>::quiet_NaN();
};

HistRow hist_row(const HistData& h) {
  HistRow r;
  r.h = &h;
  r.count = h.bucket_total();
  if (r.count > 0) r.mean = h.sum / static_cast<double>(r.count);
  r.p50 = obs::estimate_quantile(h.bounds, h.counts, 0.50);
  r.p95 = obs::estimate_quantile(h.bounds, h.counts, 0.95);
  r.p99 = obs::estimate_quantile(h.bounds, h.counts, 0.99);
  return r;
}

/// Timeline rows capped for readability: first, last, and evenly spaced
/// interior samples (deterministic selection).
std::vector<std::size_t> timeline_indices(std::size_t n, std::size_t cap) {
  std::vector<std::size_t> out;
  if (n == 0) return out;
  if (n <= cap) {
    for (std::size_t i = 0; i < n; ++i) out.push_back(i);
    return out;
  }
  for (std::size_t i = 0; i < cap; ++i) {
    out.push_back(i * (n - 1) / (cap - 1));
  }
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// Rendering helpers

std::string fmt_num(double v) {
  if (!std::isfinite(v)) return "n/a";
  char buf[64];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", v);
  }
  return buf;
}

std::string fmt_pct(double v) {
  if (!std::isfinite(v)) return "n/a";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f%%", v * 100.0);
  return buf;
}

std::string label_text(const std::vector<obs::Label>& labels) {
  if (labels.empty()) return "-";
  std::string out;
  for (const auto& l : labels) {
    if (!out.empty()) out += ", ";
    out += l.key;
    out += '=';
    out += l.value;
  }
  return out;
}

void json_number_or_null(common::JsonWriter& w, std::string_view key,
                         double v) {
  w.key(key);
  if (std::isfinite(v)) {
    w.value(v);
  } else {
    w.null();
  }
}

// ---------------------------------------------------------------------------
// Report assembly

struct Report {
  std::string metrics_path;
  std::string telemetry_path;
  Metrics metrics;
  std::vector<TelemetrySample> samples;
  std::vector<Finding> findings;

  // Derived once so md and json renderings agree.
  double log_lines = 0.0;
  double dropped_total = 0.0;
  double drop_rate = std::numeric_limits<double>::quiet_NaN();
  double cache_hits = 0.0;
  double cache_misses = 0.0;
  double cache_evictions = 0.0;
  double cache_hit_ratio = std::numeric_limits<double>::quiet_NaN();
  std::vector<HistRow> latency;

  // Daemon health (present only in gpures-serve snapshots).
  bool has_serve = false;
  double serve_degraded = 0.0;
  double serve_stalled = 0.0;
  double serve_retry_attempts = 0.0;
  double serve_retry_recovered = 0.0;
  double serve_retry_exhausted = 0.0;
  double serve_ckpt_age = 0.0;
  double serve_ckpt_interval = 0.0;
  double serve_ckpt_failures = 0.0;
  double serve_watermark_lag_bytes = 0.0;
};

void derive(Report& r) {
  const Metrics& m = r.metrics;
  r.log_lines = counter_or(m, "pipe.log_lines", 0.0);
  r.dropped_total = family_sum(m, "ingest.lines_dropped");
  const double seen = r.log_lines + r.dropped_total;
  if (seen > 0.0) r.drop_rate = r.dropped_total / seen;
  r.cache_hits = family_sum(m, "query.cache.hits");
  r.cache_misses = family_sum(m, "query.cache.misses");
  r.cache_evictions = family_sum(m, "query.cache.evictions");
  const double lookups = r.cache_hits + r.cache_misses;
  if (lookups > 0.0) r.cache_hit_ratio = r.cache_hits / lookups;
  for (const auto& h : m.histograms) r.latency.push_back(hist_row(h));

  if (std::isfinite(r.drop_rate) && r.drop_rate > 0.01) {
    r.findings.push_back(
        {"warn", "ingest drop rate above 1% (" + fmt_pct(r.drop_rate) +
                     "); check quarantine reasons"});
  }
  if (counter_or(m, "pipe.accounting_errors", 0.0) > 0.0) {
    r.findings.push_back(
        {"warn",
         "accounting rows rejected (pipe.accounting_errors=" +
             fmt_num(counter_or(m, "pipe.accounting_errors", 0.0)) + ")"});
  }
  if (lookups >= 100.0 && std::isfinite(r.cache_hit_ratio) &&
      r.cache_hit_ratio < 0.5) {
    r.findings.push_back({"info", "query cache hit ratio below 50% (" +
                                      fmt_pct(r.cache_hit_ratio) + ")"});
  }
  r.has_serve = has_serve_metrics(m);
  if (r.has_serve) {
    r.serve_degraded = gauge_or(m, "serve.sources.degraded", 0.0);
    r.serve_stalled = gauge_or(m, "serve.sources.stalled", 0.0);
    r.serve_retry_attempts = counter_or(m, "serve.retry.attempts", 0.0);
    r.serve_retry_recovered = counter_or(m, "serve.retry.recovered", 0.0);
    r.serve_retry_exhausted = counter_or(m, "serve.retry.exhausted", 0.0);
    r.serve_ckpt_age = gauge_or(m, "serve.checkpoint.age_ticks", 0.0);
    r.serve_ckpt_interval =
        gauge_or(m, "serve.checkpoint.interval_ticks", 0.0);
    r.serve_ckpt_failures = counter_or(m, "serve.checkpoint.failures", 0.0);
    r.serve_watermark_lag_bytes = gauge_or(m, "serve.frontier.lag_bytes", 0.0);
    if (r.serve_degraded > 0.0) {
      r.findings.push_back(
          {"warn", fmt_num(r.serve_degraded) +
                       " serve source(s) degraded (retry budget exhausted); "
                       "see the quality report's degraded_sources"});
    }
    if (r.serve_stalled > 0.0) {
      r.findings.push_back(
          {"warn", fmt_num(r.serve_stalled) +
                       " serve source(s) stalled (watermark not advancing)"});
    }
    if (r.serve_retry_exhausted > 0.0) {
      r.findings.push_back(
          {"warn", "serve read retries exhausted " +
                       fmt_num(r.serve_retry_exhausted) +
                       " time(s); sources were degraded"});
    }
    if (r.serve_ckpt_failures > 0.0) {
      r.findings.push_back({"warn", "serve checkpoint writes failed " +
                                        fmt_num(r.serve_ckpt_failures) +
                                        " time(s); recovery window is stale"});
    }
    if (r.serve_ckpt_interval > 0.0 &&
        r.serve_ckpt_age > 3.0 * r.serve_ckpt_interval) {
      r.findings.push_back(
          {"warn", "last serve checkpoint is " + fmt_num(r.serve_ckpt_age) +
                       " ticks old (interval " +
                       fmt_num(r.serve_ckpt_interval) +
                       "); a crash now replays that much work"});
    }
    if (r.serve_retry_attempts > 0.0 && r.serve_retry_exhausted == 0.0) {
      r.findings.push_back(
          {"info", fmt_num(r.serve_retry_attempts) +
                       " transient read fault(s) absorbed by retry (" +
                       fmt_num(r.serve_retry_recovered) + " reads recovered)"});
    }
  }
  if (r.samples.size() >= 2) {
    const auto& first = r.samples.front();
    const auto& last = r.samples.back();
    if (first.proc_valid && last.proc_valid && first.rss_kb > 0.0 &&
        last.rss_kb > 2.0 * first.rss_kb &&
        last.rss_kb - first.rss_kb > 102400.0) {
      r.findings.push_back(
          {"info", "RSS more than doubled over the run (" +
                       fmt_num(first.rss_kb) + " kB -> " +
                       fmt_num(last.rss_kb) + " kB)"});
    }
  }
}

std::string_view status(const Report& r) {
  for (const auto& f : r.findings) {
    if (f.severity == "warn") return "attention";
  }
  return "ok";
}

std::string render_md(const Report& r) {
  std::string out;
  out += "# gpures health report\n\n";
  out += "- metrics: `" + r.metrics_path + "`\n";
  if (!r.telemetry_path.empty()) {
    out += "- telemetry: `" + r.telemetry_path + "` (" +
           std::to_string(r.samples.size()) + " samples)\n";
  }
  out += "- status: **";
  out += status(r);
  out += "**\n";

  if (!r.findings.empty()) {
    out += "\n## Findings\n\n";
    for (const auto& f : r.findings) {
      out += "- [" + f.severity + "] " + f.message + "\n";
    }
  }

  out += "\n## Pipeline throughput\n\n";
  out += "| counter | value |\n|---|---|\n";
  static const char* kPipeline[] = {
      "pipe.log_lines",         "pipe.xid_records",
      "pipe.lifecycle_records", "pipe.rejected_lines",
      "pipe.unknown_hosts",     "pipe.accounting_lines",
      "pipe.accounting_errors", "pipe.out_of_order_observations",
      "pipe.errors_coalesced",
  };
  bool any_pipeline = false;
  for (const char* name : kPipeline) {
    const auto it = r.metrics.counters.find(name);
    if (it == r.metrics.counters.end()) continue;
    any_pipeline = true;
    out += "| " + it->first + " | " + fmt_num(it->second) + " |\n";
  }
  if (!any_pipeline) out += "| (no pipeline counters in snapshot) | |\n";

  out += "\n## Latency quantiles\n\n";
  if (r.latency.empty()) {
    out += "No histograms in snapshot.\n";
  } else {
    out +=
        "| family | labels | count | mean | p50 | p95 | p99 |\n"
        "|---|---|---|---|---|---|---|\n";
    for (const auto& row : r.latency) {
      out += "| " + row.h->family + " | " + label_text(row.h->labels) + " | " +
             std::to_string(row.count) + " | " + fmt_num(row.mean) + " | " +
             fmt_num(row.p50) + " | " + fmt_num(row.p95) + " | " +
             fmt_num(row.p99) + " |\n";
    }
    out += "\nValues are in each family's native unit (see its `# UNIT` in "
           "the Prometheus exposition); latency families are microseconds.\n";
  }

  if (r.has_serve) {
    out += "\n## Serve\n\n";
    out += "| metric | value |\n|---|---|\n";
    static const char* kServeCounters[] = {
        "serve.ticks",           "serve.bytes_ingested",
        "serve.log_lines",       "serve.errors_coalesced",
        "serve.retry.attempts",  "serve.retry.recovered",
        "serve.retry.exhausted", "serve.sources.degraded_total",
        "serve.checkpoint.writes", "serve.checkpoint.failures",
    };
    for (const char* name : kServeCounters) {
      const auto it = r.metrics.counters.find(name);
      if (it == r.metrics.counters.end()) continue;
      out += "| " + it->first + " | " + fmt_num(it->second) + " |\n";
    }
    static const char* kServeGauges[] = {
        "serve.sources.total",          "serve.sources.sealed",
        "serve.sources.degraded",       "serve.sources.stalled",
        "serve.watermark_epoch",        "serve.frontier.lag_bytes",
        "serve.checkpoint.age_ticks",   "serve.checkpoint.last_seq",
        "serve.checkpoint.interval_ticks",
    };
    for (const char* name : kServeGauges) {
      const auto it = r.metrics.gauges.find(name);
      if (it == r.metrics.gauges.end()) continue;
      out += "| " + it->first + " | " + fmt_num(it->second.value) + " |\n";
    }
  }

  out += "\n## Query cache\n\n";
  if (r.cache_hits + r.cache_misses + r.cache_evictions == 0.0) {
    out += "No query cache activity in snapshot.\n";
  } else {
    out += "| metric | value |\n|---|---|\n";
    out += "| hits | " + fmt_num(r.cache_hits) + " |\n";
    out += "| misses | " + fmt_num(r.cache_misses) + " |\n";
    out += "| evictions | " + fmt_num(r.cache_evictions) + " |\n";
    out += "| hit ratio | " + fmt_pct(r.cache_hit_ratio) + " |\n";
  }

  out += "\n## Ingest quality\n\n";
  bool any_dropped = false;
  for (const auto& [name, value] : r.metrics.counters) {
    const auto parsed = obs::parse_labeled_name(name);
    if (parsed.family != "ingest.lines_dropped") continue;
    if (!any_dropped) {
      out += "| reason | lines dropped |\n|---|---|\n";
      any_dropped = true;
    }
    std::string reason = "(unlabeled)";
    for (const auto& l : parsed.labels) {
      if (l.key == "reason") reason = l.value;
    }
    out += "| " + reason + " | " + fmt_num(value) + " |\n";
  }
  if (any_dropped) {
    out += "| **total** | " + fmt_num(r.dropped_total) + " |\n";
    out += "\nDrop rate: " + fmt_pct(r.drop_rate) +
           " of observed raw lines.\n";
  } else {
    out += "No lines quarantined.\n";
  }
  if (const auto it = r.metrics.gauges.find("ingest.prefetch.in_flight");
      it != r.metrics.gauges.end()) {
    out += "Peak prefetch depth: " + fmt_num(it->second.max) + " days.\n";
  }

  if (!r.telemetry_path.empty()) {
    out += "\n## Resource timeline\n\n";
    if (r.samples.empty()) {
      out += "Telemetry file contained no samples.\n";
    } else {
      const auto& first = r.samples.front();
      const auto& last = r.samples.back();
      out += "- duration: " + fmt_num(last.elapsed_ms) + " ms across " +
             std::to_string(r.samples.size()) + " samples\n";
      if (last.proc_valid) {
        double peak_rss = 0.0;
        double peak_fds = 0.0;
        for (const auto& s : r.samples) {
          peak_rss = std::max(peak_rss, s.rss_kb);
          peak_fds = std::max(peak_fds, s.open_fds);
        }
        out += "- RSS: start " + fmt_num(first.rss_kb) + " kB, peak " +
               fmt_num(peak_rss) + " kB, final " + fmt_num(last.rss_kb) +
               " kB\n";
        out += "- CPU time: " + fmt_num(last.cpu_s) + " s\n";
        out += "- open fds: peak " + fmt_num(peak_fds) + "\n";
      }
      if (first.log_lines >= 0.0 && last.log_lines > first.log_lines &&
          last.elapsed_ms > first.elapsed_ms) {
        const double rate = (last.log_lines - first.log_lines) /
                            ((last.elapsed_ms - first.elapsed_ms) / 1000.0);
        out += "- ingest rate: " + fmt_num(rate) + " lines/s over the "
               "sampled window\n";
      }
      out += "\n| seq | elapsed_ms | reason | rss_kb | cpu_s | open_fds |\n"
             "|---|---|---|---|---|---|\n";
      for (const std::size_t i :
           timeline_indices(r.samples.size(), 12)) {
        const auto& s = r.samples[i];
        out += "| " + fmt_num(s.seq) + " | " + fmt_num(s.elapsed_ms) + " | " +
               s.reason + " | " + fmt_num(s.rss_kb) + " | " +
               fmt_num(s.cpu_s) + " | " + fmt_num(s.open_fds) + " |\n";
      }
    }
  }
  return out;
}

std::string render_json(const Report& r) {
  common::JsonWriter w;
  w.begin_object();
  w.kv("status", status(r));
  w.key("source");
  w.begin_object();
  w.kv("metrics", r.metrics_path);
  if (!r.telemetry_path.empty()) w.kv("telemetry", r.telemetry_path);
  w.end_object();
  w.key("findings");
  w.begin_array();
  for (const auto& f : r.findings) {
    w.begin_object();
    w.kv("severity", f.severity);
    w.kv("message", f.message);
    w.end_object();
  }
  w.end_array();
  w.key("pipeline");
  w.begin_object();
  for (const auto& [name, value] : r.metrics.counters) {
    if (name.rfind("pipe.", 0) == 0) w.kv(name, value);
  }
  w.end_object();
  w.key("latency");
  w.begin_array();
  for (const auto& row : r.latency) {
    w.begin_object();
    w.kv("family", row.h->family);
    w.key("labels");
    w.begin_object();
    for (const auto& l : row.h->labels) w.kv(l.key, l.value);
    w.end_object();
    w.kv("count", row.count);
    json_number_or_null(w, "mean", row.mean);
    json_number_or_null(w, "p50", row.p50);
    json_number_or_null(w, "p95", row.p95);
    json_number_or_null(w, "p99", row.p99);
    w.end_object();
  }
  w.end_array();
  if (r.has_serve) {
    w.key("serve");
    w.begin_object();
    w.kv("sources_degraded", r.serve_degraded);
    w.kv("sources_stalled", r.serve_stalled);
    w.kv("retry_attempts", r.serve_retry_attempts);
    w.kv("retry_recovered", r.serve_retry_recovered);
    w.kv("retry_exhausted", r.serve_retry_exhausted);
    w.kv("checkpoint_age_ticks", r.serve_ckpt_age);
    w.kv("checkpoint_interval_ticks", r.serve_ckpt_interval);
    w.kv("checkpoint_failures", r.serve_ckpt_failures);
    w.kv("frontier_lag_bytes", r.serve_watermark_lag_bytes);
    w.end_object();
  }
  w.key("cache");
  w.begin_object();
  w.kv("hits", r.cache_hits);
  w.kv("misses", r.cache_misses);
  w.kv("evictions", r.cache_evictions);
  json_number_or_null(w, "hit_ratio", r.cache_hit_ratio);
  w.end_object();
  w.key("ingest");
  w.begin_object();
  w.key("dropped_by_reason");
  w.begin_object();
  for (const auto& [name, value] : r.metrics.counters) {
    const auto parsed = obs::parse_labeled_name(name);
    if (parsed.family != "ingest.lines_dropped") continue;
    std::string reason = "(unlabeled)";
    for (const auto& l : parsed.labels) {
      if (l.key == "reason") reason = l.value;
    }
    w.kv(reason, value);
  }
  w.end_object();
  w.kv("dropped_total", r.dropped_total);
  json_number_or_null(w, "drop_rate", r.drop_rate);
  if (const auto it = r.metrics.gauges.find("ingest.prefetch.in_flight");
      it != r.metrics.gauges.end()) {
    w.kv("prefetch_peak_depth", it->second.max);
  }
  w.end_object();
  if (!r.telemetry_path.empty()) {
    w.key("telemetry");
    w.begin_object();
    w.kv("samples", static_cast<std::uint64_t>(r.samples.size()));
    if (!r.samples.empty()) {
      const auto& first = r.samples.front();
      const auto& last = r.samples.back();
      w.kv("duration_ms", last.elapsed_ms);
      double peak_rss = 0.0;
      for (const auto& s : r.samples) peak_rss = std::max(peak_rss, s.rss_kb);
      w.kv("rss_kb_start", first.rss_kb);
      w.kv("rss_kb_peak", peak_rss);
      w.kv("rss_kb_final", last.rss_kb);
      w.kv("cpu_s_final", last.cpu_s);
      w.key("timeline");
      w.begin_array();
      for (const auto& s : r.samples) {
        w.begin_object();
        w.kv("seq", s.seq);
        w.kv("elapsed_ms", s.elapsed_ms);
        w.kv("reason", s.reason);
        w.kv("rss_kb", s.rss_kb);
        w.kv("cpu_s", s.cpu_s);
        w.kv("open_fds", s.open_fds);
        w.end_object();
      }
      w.end_array();
    }
    w.end_object();
  }
  w.end_object();
  std::string out = std::move(w).str();
  out += '\n';
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_file;
  std::string telemetry_file;
  std::string out_file;
  std::string format = "md";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "gpures-health: %s needs a value\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--metrics") {
      metrics_file = next("--metrics");
    } else if (arg == "--telemetry") {
      telemetry_file = next("--telemetry");
    } else if (arg == "--out") {
      out_file = next("--out");
    } else if (arg == "--format") {
      format = next("--format");
      if (format != "md" && format != "json") {
        std::fprintf(stderr, "gpures-health: --format wants md or json\n");
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "gpures-health: unknown argument '%s'\n",
                   arg.c_str());
      usage();
      return 2;
    }
  }
  if (metrics_file.empty()) {
    usage();
    return 2;
  }

  Report report;
  report.metrics_path = metrics_file;
  report.telemetry_path = telemetry_file;
  auto metrics = load_metrics(metrics_file);
  if (!metrics.ok()) {
    std::fprintf(stderr, "gpures-health: %s\n",
                 metrics.error().message.c_str());
    return 1;
  }
  report.metrics = std::move(metrics).take();
  if (!telemetry_file.empty()) {
    auto samples = load_telemetry(telemetry_file);
    if (!samples.ok()) {
      std::fprintf(stderr, "gpures-health: %s\n",
                   samples.error().message.c_str());
      return 1;
    }
    report.samples = std::move(samples).take();
  }
  derive(report);

  const std::string rendered =
      format == "json" ? render_json(report) : render_md(report);
  if (out_file.empty()) {
    std::fwrite(rendered.data(), 1, rendered.size(), stdout);
    return 0;
  }
  const auto st = common::write_text_file(out_file, rendered);
  if (!st.ok()) {
    std::fprintf(stderr, "gpures-health: %s\n", st.error().message.c_str());
    return 1;
  }
  return 0;
}
