// gpures-simulate: generate a synthetic Delta-style dataset on disk.
//
//   gpures-simulate --out DIR [--seed N] [--quick] [--no-jobs]
//                   [--nodes N] [--threads N] [--shards N]
//                   [--noise N] [--scale F] [--metrics FILE] [--trace FILE]
//                   [--quiet]
//
// Produces a dataset directory (manifest.txt, syslog/syslog-YYYY-MM-DD.log,
// slurm_accounting.txt) that gpures-analyze — or any external tooling — can
// consume, plus a run_manifest.json provenance record.  The full campaign
// writes ~1170 day files with ~3M lines and a ~1.5M-row accounting dump.
//
// stdout stays clean (nothing is written to it); progress and summaries go
// to stderr, observability artifacts to the requested files.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "analysis/campaign.h"
#include "analysis/config_file.h"
#include "analysis/dataset.h"
#include "common/io.h"
#include "common/strings.h"
#include "obs/expfmt.h"
#include "obs/log.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "simd/dispatch.h"

using namespace gpures;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: gpures-simulate --out DIR [--seed N] [--quick] "
               "[--no-jobs] [--nodes N] [--threads N] [--shards N]\n"
               "                       [--noise N] [--scale F] [--config FILE] "
               "[--metrics FILE] [--trace FILE] [--quiet]\n"
               "  --out DIR      dataset directory to create (required)\n"
               "  --seed N       campaign seed (default 42)\n"
               "  --quick        90-day campaign instead of the 1170-day one\n"
               "  --no-jobs      skip the Slurm workload (error logs only)\n"
               "  --nodes N      fleet size: a Delta-shaped cluster of N nodes\n"
               "                 (default 106; fault + workload rates scale\n"
               "                 with the GPU count)\n"
               "  --threads N    worker threads for simulation shards and the\n"
               "                 analysis pipeline (default 0 = serial;\n"
               "                 output is byte-identical at any value)\n"
               "  --shards N     simulation shard count (default 0 = one per\n"
               "                 ~16 nodes; changes the sample path, unlike\n"
               "                 --threads)\n"
               "  --noise N      noise lines per day (default 200)\n"
               "  --scale F      workload scale factor (default 1.0)\n"
               "  --config FILE  key=value scenario overrides (applied last;\n"
               "                 see --list-config-keys)\n"
               "  --metrics FILE write the metrics registry snapshot as JSON\n"
               "                 (or Prometheus text with a .prom suffix)\n"
               "  --trace FILE   write a Chrome Trace Event JSON timeline\n"
               "  --simd B       scan backend: auto|scalar|swar|avx2 (default\n"
               "                 auto; byte-identical output either way)\n"
               "  --simd-info    print dispatch decision + available backends\n"
               "  --quiet        suppress progress and summary on stderr\n"
               "  --list-config-keys\n");
}

/// Checked artifact write: failures surface as an error record + exit 1 at
/// the call site (atomic tmp+rename via common::write_file_atomic, so a
/// crash mid-write never leaves a torn artifact).
bool write_artifact(const std::filesystem::path& path, std::string_view text) {
  const auto st = common::write_file_atomic(path.string(), text);
  if (!st.ok()) {
    obs::Logger::current().error("simulate", "artifact write failed",
                                 {{"path", path.string()},
                                  {"error", st.error().message}});
    return false;
  }
  return true;
}

/// Stable fingerprint of the effective campaign configuration.
std::string config_fingerprint(const analysis::CampaignConfig& cfg,
                               const std::string& config_text) {
  std::string s;
  s += "seed=" + std::to_string(cfg.seed) + ";";
  s += "with_jobs=" + std::to_string(cfg.with_jobs ? 1 : 0) + ";";
  s += "noise=" + std::to_string(cfg.noise_lines_per_day) + ";";
  s += "scale=" + std::to_string(cfg.workload_scale) + ";";
  s += "study_begin=" + std::to_string(cfg.faults.study_begin) + ";";
  s += "op_begin=" + std::to_string(cfg.faults.op_begin) + ";";
  s += "study_end=" + std::to_string(cfg.faults.study_end) + ";";
  s += "nodes=" + std::to_string(cfg.spec.node_count()) + ";";
  s += "sim_shards=" + std::to_string(cfg.sim_shards) + ";";
  s += "config_file=" + config_text;
  return obs::hex64(obs::fnv1a64(s));
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir;
  std::string config_file;
  std::string metrics_file;
  std::string trace_file;
  bool quiet = false;
  std::string simd_choice;
  bool simd_info = false;
  analysis::CampaignConfig cfg = analysis::CampaignConfig::delta_a100();
  bool quick = false;
  long long fleet_nodes = -1;  // -1 = keep the configured (106-node) spec

  // Shared by --threads/--shards/--nodes: non-negative integer or exit 2.
  auto parse_count = [](const char* what, const char* value) -> long long {
    const long long v = common::parse_ll(value);
    if (v < 0) {
      std::fprintf(stderr,
                   "gpures-simulate: %s needs a non-negative integer, got "
                   "'%s'\n",
                   what, value);
      std::exit(2);
    }
    return v;
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "gpures-simulate: %s needs a value\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--out") {
      out_dir = next("--out");
    } else if (arg == "--seed") {
      cfg.seed = static_cast<std::uint64_t>(std::strtoull(next("--seed"), nullptr, 10));
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--no-jobs") {
      cfg.with_jobs = false;
    } else if (arg == "--nodes") {
      fleet_nodes = parse_count("--nodes", next("--nodes"));
      if (fleet_nodes < 1) {
        std::fprintf(stderr, "gpures-simulate: --nodes must be >= 1\n");
        return 2;
      }
    } else if (arg == "--threads") {
      cfg.pipeline.num_threads =
          static_cast<std::uint32_t>(parse_count("--threads", next("--threads")));
    } else if (arg == "--shards") {
      cfg.sim_shards =
          static_cast<std::int32_t>(parse_count("--shards", next("--shards")));
    } else if (arg == "--noise") {
      cfg.noise_lines_per_day = std::strtod(next("--noise"), nullptr);
    } else if (arg == "--scale") {
      cfg.workload_scale = std::strtod(next("--scale"), nullptr);
    } else if (arg == "--config") {
      config_file = next("--config");
    } else if (arg == "--metrics") {
      metrics_file = next("--metrics");
    } else if (arg == "--trace") {
      trace_file = next("--trace");
    } else if (arg == "--simd") {
      simd_choice = next("--simd");
    } else if (arg == "--simd-info") {
      simd_info = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--progress") {
      quiet = false;
    } else if (arg == "--list-config-keys") {
      for (const auto& k : analysis::supported_config_keys()) {
        std::printf("%s\n", k.c_str());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "gpures-simulate: unknown argument '%s'\n",
                   arg.c_str());
      usage();
      return 2;
    }
  }
  // Same selection contract as gpures-analyze: explicit --simd beats
  // GPURES_SIMD beats auto, and an unavailable explicit request is an error.
  if (!simd_choice.empty()) {
    const auto backend = simd::parse_backend(simd_choice);
    if (!backend) {
      std::fprintf(stderr,
                   "gpures-simulate: --simd must be auto|scalar|swar|avx2\n");
      return 2;
    }
    if (!simd::set_active(*backend)) {
      std::fprintf(stderr,
                   "gpures-simulate: --simd %s: backend not available on this "
                   "host\n",
                   simd_choice.c_str());
      return 2;
    }
  }
  if (simd_info) {
    std::printf("active %s\n",
                std::string(simd::to_string(simd::active())).c_str());
    std::printf("available");
    for (const auto b : simd::all_available()) {
      std::printf(" %s", std::string(simd::to_string(b)).c_str());
    }
    std::printf("\n");
    return 0;
  }
  if (out_dir.empty()) {
    usage();
    return 2;
  }
  if (quick) {
    const auto seed = cfg.seed;
    const auto noise = cfg.noise_lines_per_day;
    const bool with_jobs = cfg.with_jobs;
    const double scale_mult = cfg.workload_scale;
    const auto threads = cfg.pipeline.num_threads;
    const auto shards = cfg.sim_shards;
    cfg = analysis::CampaignConfig::quick();
    cfg.seed = seed;
    cfg.noise_lines_per_day = noise;
    cfg.with_jobs = with_jobs;
    cfg.workload_scale *= scale_mult;
    cfg.pipeline.num_threads = threads;
    cfg.sim_shards = shards;
  }
  std::string config_text;
  if (!config_file.empty()) {
    auto loaded = analysis::load_config_file(config_file, cfg);
    if (!loaded.ok()) {
      std::fprintf(stderr, "gpures-simulate: %s\n",
                   loaded.error().message.c_str());
      return 1;
    }
    cfg = std::move(loaded).take();
    auto text = common::read_file(config_file);
    if (text.ok()) config_text = std::move(text).take();
  }
  if (fleet_nodes > 0) {
    // A Delta-shaped fleet: keep the study's 100:6 ratio of 4-way to 8-way
    // nodes and scale every per-cluster intensity (fault rates, workload,
    // but not noise — noise is per-day, drawn per cluster) by the GPU ratio,
    // so per-GPU statistics stay at the paper's levels at any fleet size.
    const auto nodes8 = static_cast<std::int32_t>(
        std::llround(static_cast<double>(fleet_nodes) * 6.0 / 106.0));
    const auto nodes4 = static_cast<std::int32_t>(fleet_nodes) - nodes8;
    const double base_gpus = cfg.spec.total_gpus();
    cfg.spec = cluster::ClusterSpec::scaled(nodes4, nodes8);
    const double ratio = cfg.spec.total_gpus() / base_gpus;
    cfg.faults.scale *= ratio;
    cfg.workload_scale *= ratio;
    // Configured episodes pin specific GPUs; on fleets too small to host
    // them they are dropped rather than remapped.
    const auto node_count = cfg.spec.node_count();
    std::erase_if(cfg.faults.uncontained_episodes,
                  [&](const auto& ep) { return ep.gpu.node >= node_count; });
    std::erase_if(cfg.faults.degraded_memory_episodes,
                  [&](const auto& ep) { return ep.gpu.node >= node_count; });
  }

  analysis::DatasetManifest manifest;
  manifest.name = quick ? "delta-a100-quick" : "delta-a100-full";
  manifest.spec = cfg.spec;
  manifest.periods = analysis::StudyPeriods::make(
      cfg.faults.study_begin, cfg.faults.op_begin, cfg.faults.study_end);

  obs::Logger::Options log_opts;
  if (quiet) log_opts.text_min_level = obs::LogLevel::kError;
  obs::Logger logger(log_opts);
  obs::Logger::install(&logger);

  obs::MetricsRegistry registry;
  cfg.metrics = &registry;
  obs::Tracer tracer;
  if (!trace_file.empty()) obs::Tracer::install(&tracer);

  obs::RunManifest run;
  run.tool = "gpures-simulate";
  run.dataset = out_dir;
  run.seed = cfg.seed;
  run.config_hash = config_fingerprint(cfg, config_text);
  run.threads = cfg.pipeline.num_threads;
  run.started_at = obs::wall_clock_iso();
  run.extra.emplace_back("simd_backend",
                         std::string(simd::to_string(simd::active())));

  int rc = 0;
  try {
    analysis::DatasetWriter writer(out_dir, manifest);
    analysis::DeltaCampaign campaign(cfg);
    campaign.set_dataset_writer(&writer);
    obs::ProgressReporter progress("simulating day", !quiet);
    campaign.set_progress_reporter(&progress);
    campaign.run();
    progress.finish();
    writer.finalize().throw_if_error();

    run.finished_at = obs::wall_clock_iso();
    run.extra.emplace_back("day_files", std::to_string(writer.days_written()));
    run.extra.emplace_back("sim_shards", std::to_string(campaign.sim_shards()));
    run.extra.emplace_back("raw_lines", std::to_string(campaign.raw_log_lines()));
    run.extra.emplace_back("accounting_rows",
                           std::to_string(campaign.job_records().size()));
    if (quick) run.extra.emplace_back("mode", "quick");

    logger.info("simulate", "wrote dataset",
                {{"dir", out_dir},
                 {"day_files", writer.days_written()},
                 {"raw_lines", campaign.raw_log_lines()},
                 {"accounting_rows", campaign.job_records().size()}});
  } catch (const std::exception& e) {
    logger.error("simulate", e.what());
    rc = 1;
  }
  obs::Tracer::install(nullptr);
  if (rc != 0) return rc;

  // Provenance manifest rides along with the dataset (per-stage totals come
  // from the embedded metrics snapshot).
  const auto run_path = std::filesystem::path(out_dir) / "run_manifest.json";
  if (!write_artifact(run_path, run.to_json(&registry))) return 1;
  if (!metrics_file.empty() &&
      !write_artifact(metrics_file,
                      obs::render_metrics_file(registry, metrics_file))) {
    return 1;
  }
  if (!trace_file.empty() &&
      !write_artifact(trace_file, tracer.to_chrome_json())) {
    return 1;
  }
  return 0;
}
