// gpures-simulate: generate a synthetic Delta-style dataset on disk.
//
//   gpures-simulate --out DIR [--seed N] [--quick] [--no-jobs]
//                   [--noise N] [--scale F]
//
// Produces a dataset directory (manifest.txt, syslog/syslog-YYYY-MM-DD.log,
// slurm_accounting.txt) that gpures-analyze — or any external tooling — can
// consume.  The full campaign writes ~1170 day files with ~3M lines and a
// ~1.5M-row accounting dump.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "analysis/campaign.h"
#include "analysis/config_file.h"
#include "analysis/dataset.h"

using namespace gpures;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: gpures-simulate --out DIR [--seed N] [--quick] "
               "[--no-jobs] [--noise N] [--scale F] [--config FILE]\n"
               "  --out DIR      dataset directory to create (required)\n"
               "  --seed N       campaign seed (default 42)\n"
               "  --quick        90-day campaign instead of the 1170-day one\n"
               "  --no-jobs      skip the Slurm workload (error logs only)\n"
               "  --noise N      noise lines per day (default 200)\n"
               "  --scale F      workload scale factor (default 1.0)\n"
               "  --config FILE  key=value scenario overrides (applied last;\n"
               "                 see --list-config-keys)\n"
               "  --list-config-keys\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir;
  std::string config_file;
  analysis::CampaignConfig cfg = analysis::CampaignConfig::delta_a100();
  bool quick = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "gpures-simulate: %s needs a value\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--out") {
      out_dir = next("--out");
    } else if (arg == "--seed") {
      cfg.seed = static_cast<std::uint64_t>(std::strtoull(next("--seed"), nullptr, 10));
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--no-jobs") {
      cfg.with_jobs = false;
    } else if (arg == "--noise") {
      cfg.noise_lines_per_day = std::strtod(next("--noise"), nullptr);
    } else if (arg == "--scale") {
      cfg.workload_scale = std::strtod(next("--scale"), nullptr);
    } else if (arg == "--config") {
      config_file = next("--config");
    } else if (arg == "--list-config-keys") {
      for (const auto& k : analysis::supported_config_keys()) {
        std::printf("%s\n", k.c_str());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "gpures-simulate: unknown argument '%s'\n",
                   arg.c_str());
      usage();
      return 2;
    }
  }
  if (out_dir.empty()) {
    usage();
    return 2;
  }
  if (quick) {
    const auto seed = cfg.seed;
    const auto noise = cfg.noise_lines_per_day;
    const bool with_jobs = cfg.with_jobs;
    const double scale_mult = cfg.workload_scale;
    cfg = analysis::CampaignConfig::quick();
    cfg.seed = seed;
    cfg.noise_lines_per_day = noise;
    cfg.with_jobs = with_jobs;
    cfg.workload_scale *= scale_mult;
  }
  if (!config_file.empty()) {
    auto loaded = analysis::load_config_file(config_file, cfg);
    if (!loaded.ok()) {
      std::fprintf(stderr, "gpures-simulate: %s\n",
                   loaded.error().message.c_str());
      return 1;
    }
    cfg = std::move(loaded).take();
  }

  analysis::DatasetManifest manifest;
  manifest.name = quick ? "delta-a100-quick" : "delta-a100-full";
  manifest.spec = cfg.spec;
  manifest.periods = analysis::StudyPeriods::make(
      cfg.faults.study_begin, cfg.faults.op_begin, cfg.faults.study_end);

  try {
    analysis::DatasetWriter writer(out_dir, manifest);
    analysis::DeltaCampaign campaign(cfg);
    campaign.set_dataset_writer(&writer);
    campaign.set_progress([](int day, int total) {
      if (day % 100 == 0 || day == total) {
        std::fprintf(stderr, "\rsimulating day %d/%d", day, total);
      }
      if (day == total) std::fprintf(stderr, "\n");
    });
    campaign.run();
    writer.finalize();

    std::printf("wrote dataset to %s: %llu day files, %llu raw lines, "
                "%zu accounting rows\n",
                out_dir.c_str(),
                static_cast<unsigned long long>(writer.days_written()),
                static_cast<unsigned long long>(campaign.raw_log_lines()),
                campaign.job_records().size());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gpures-simulate: %s\n", e.what());
    return 1;
  }
  return 0;
}
