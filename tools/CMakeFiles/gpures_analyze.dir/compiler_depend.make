# Empty compiler generated dependencies file for gpures_analyze.
# This may be replaced when dependencies are built.
