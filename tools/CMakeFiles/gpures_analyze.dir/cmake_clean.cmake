file(REMOVE_RECURSE
  "CMakeFiles/gpures_analyze.dir/gpures_analyze.cpp.o"
  "CMakeFiles/gpures_analyze.dir/gpures_analyze.cpp.o.d"
  "gpures-analyze"
  "gpures-analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpures_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
