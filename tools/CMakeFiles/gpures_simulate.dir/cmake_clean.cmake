file(REMOVE_RECURSE
  "CMakeFiles/gpures_simulate.dir/gpures_simulate.cpp.o"
  "CMakeFiles/gpures_simulate.dir/gpures_simulate.cpp.o.d"
  "gpures-simulate"
  "gpures-simulate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpures_simulate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
