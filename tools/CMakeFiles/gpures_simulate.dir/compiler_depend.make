# Empty compiler generated dependencies file for gpures_simulate.
# This may be replaced when dependencies are built.
