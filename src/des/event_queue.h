// Discrete-event simulation core.
//
// A minimal but production-grade DES kernel: a stable priority queue of
// (time, sequence, callback) entries with cancellation support.  The cluster
// fault simulator and the Slurm scheduler share engines so that error
// injection and job lifecycle events interleave on a single clock; under the
// sharded fleet simulation each node-range shard additionally owns a private
// engine (see cluster/sharded_sim.h).
//
// Storage is a hand-rolled binary heap over a vector (not std::priority_queue)
// so that campaigns can reserve() capacity up front and so that the
// lazily-cancelled tombstone set can be compacted: cancel() is O(1) and
// leaves the entry in the heap, but once tombstones outnumber half the
// pending events the heap is rebuilt without them — long campaigns with many
// cancelled job-end events would otherwise grow the heap without bound.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_set>
#include <vector>

#include "common/time.h"
#include "obs/metrics.h"

namespace gpures::des {

/// Handle for a scheduled event; used to cancel it.
using EventId = std::uint64_t;

/// The simulation engine.
///
/// Events scheduled for the same timestamp fire in scheduling order (stable),
/// which makes simulations reproducible independent of heap tie-breaking.
class Engine {
 public:
  using Callback = std::function<void()>;

  explicit Engine(common::TimePoint start = 0) : now_(start) {}

  common::TimePoint now() const { return now_; }

  /// Attach observability counters (des.events_scheduled/dispatched/
  /// cancelled, des.queue_depth gauge).  Pass nullptr to detach.  Metrics
  /// record only event counts and queue depth — never time — so attaching
  /// a registry cannot change simulation results.
  void set_metrics(obs::MetricsRegistry* m);

  /// Labeled-family variant: registers the same des.* metrics as children
  /// with the given labels (e.g. {{"shard", "3"}}), so per-shard engines
  /// report distinct series instead of racing on one shared gauge.
  void set_metrics(obs::MetricsRegistry* m, std::span<const obs::Label> labels);

  /// Pre-size internal storage for `n` concurrently-pending events (heap and
  /// id sets).  Purely an allocation hint; never changes results.
  void reserve(std::size_t n);

  /// Schedule `cb` at absolute time `t` (must be >= now()).
  EventId schedule_at(common::TimePoint t, Callback cb);

  /// Schedule `cb` after `delay` seconds.
  EventId schedule_after(common::Duration delay, Callback cb);

  /// Cancel a pending event.  Returns false if it already fired or was
  /// cancelled.  Cancellation is O(1); storage is reclaimed lazily, and the
  /// heap is compacted once tombstones exceed half the pending count.
  bool cancel(EventId id);

  /// True if no runnable events remain.
  bool empty() const { return pending_.empty(); }

  /// Number of pending (non-cancelled) events.
  std::size_t pending() const { return pending_.size(); }

  /// Cancelled-but-not-yet-reclaimed entries still occupying heap slots
  /// (diagnostics; exercised by the compaction tests).
  std::size_t cancelled_tombstones() const { return cancelled_.size(); }

  /// Run until the queue empties or the clock passes `until`.
  /// Events at exactly `until` are executed.  Returns the number of events
  /// dispatched.
  std::uint64_t run_until(common::TimePoint until);

  /// Run until the queue is empty.
  std::uint64_t run();

  /// Dispatch exactly one event if available; returns whether one ran.
  bool step();

  /// Total events dispatched over the engine's lifetime.
  std::uint64_t dispatched_total() const { return dispatched_total_; }

 private:
  struct Entry {
    common::TimePoint time;
    std::uint64_t seq;
    EventId id;
    Callback cb;
  };

  /// Heap comparator: "a sorts after b", i.e. the heap top is the entry with
  /// the smallest (time, seq).
  static bool entry_after(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }

  /// Pop the heap top without dispatching (tombstone reclamation).
  void pop_top();

  /// Rebuild the heap without cancelled entries once tombstones exceed half
  /// the pending count (with a floor so tiny queues never thrash).
  void maybe_compact();

  static constexpr std::size_t kCompactMin = 64;

  common::TimePoint now_;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t dispatched_total_ = 0;
  obs::Counter* scheduled_metric_ = nullptr;
  obs::Counter* dispatched_metric_ = nullptr;
  obs::Counter* cancelled_metric_ = nullptr;
  obs::Gauge* depth_metric_ = nullptr;
  std::vector<Entry> heap_;                ///< binary min-heap on (time, seq)
  std::unordered_set<EventId> pending_;    ///< scheduled, not yet fired/cancelled
  std::unordered_set<EventId> cancelled_;  ///< cancelled, tombstone until popped
};

}  // namespace gpures::des
