// Discrete-event simulation core.
//
// A minimal but production-grade DES kernel: a stable priority queue of
// (time, sequence, callback) entries with cancellation support.  Both the
// cluster fault simulator and the Slurm scheduler run on one shared engine so
// that error injection and job lifecycle events interleave on a single clock.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/time.h"
#include "obs/metrics.h"

namespace gpures::des {

/// Handle for a scheduled event; used to cancel it.
using EventId = std::uint64_t;

/// The simulation engine.
///
/// Events scheduled for the same timestamp fire in scheduling order (stable),
/// which makes simulations reproducible independent of heap tie-breaking.
class Engine {
 public:
  using Callback = std::function<void()>;

  explicit Engine(common::TimePoint start = 0) : now_(start) {}

  common::TimePoint now() const { return now_; }

  /// Attach observability counters (des.events_scheduled/dispatched/
  /// cancelled, des.queue_depth gauge).  Pass nullptr to detach.  Metrics
  /// record only event counts and queue depth — never time — so attaching
  /// a registry cannot change simulation results.
  void set_metrics(obs::MetricsRegistry* m);

  /// Schedule `cb` at absolute time `t` (must be >= now()).
  EventId schedule_at(common::TimePoint t, Callback cb);

  /// Schedule `cb` after `delay` seconds.
  EventId schedule_after(common::Duration delay, Callback cb);

  /// Cancel a pending event.  Returns false if it already fired or was
  /// cancelled.  Cancellation is O(1); storage is reclaimed lazily.
  bool cancel(EventId id);

  /// True if no runnable events remain.
  bool empty() const { return pending_.empty(); }

  /// Number of pending (non-cancelled) events.
  std::size_t pending() const { return pending_.size(); }

  /// Run until the queue empties or the clock passes `until`.
  /// Events at exactly `until` are executed.  Returns the number of events
  /// dispatched.
  std::uint64_t run_until(common::TimePoint until);

  /// Run until the queue is empty.
  std::uint64_t run();

  /// Dispatch exactly one event if available; returns whether one ran.
  bool step();

 private:
  struct Entry {
    common::TimePoint time;
    std::uint64_t seq;
    EventId id;
    Callback cb;

    // Min-heap on (time, seq): std::priority_queue is a max-heap, so invert.
    friend bool operator<(const Entry& a, const Entry& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  common::TimePoint now_;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  obs::Counter* scheduled_metric_ = nullptr;
  obs::Counter* dispatched_metric_ = nullptr;
  obs::Counter* cancelled_metric_ = nullptr;
  obs::Gauge* depth_metric_ = nullptr;
  std::priority_queue<Entry> queue_;
  std::unordered_set<EventId> pending_;    ///< scheduled, not yet fired/cancelled
  std::unordered_set<EventId> cancelled_;  ///< cancelled, tombstone until popped
};

}  // namespace gpures::des
