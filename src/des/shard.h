// Sharded-simulation building blocks: contiguous index partitioning and a
// deterministic k-way merge of per-shard sorted event logs.
//
// The fleet simulator splits the cluster's node index space into contiguous
// shards, runs each shard on a private Engine, and merges the per-shard
// ordered event logs back into one global stream.  Both helpers here are
// pure functions of their inputs — shard boundaries depend only on
// (item count, shard count), never on worker-thread count, and the merge is
// a stable total order — which is what makes the sharded simulation
// byte-identical at any --threads (see DESIGN.md "Sharded simulation
// determinism").
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace gpures::des {

/// Contiguous [begin, end) slice of an index space.
struct IndexRange {
  std::int32_t begin = 0;
  std::int32_t end = 0;  ///< exclusive

  std::int32_t size() const { return end - begin; }
  bool contains(std::int32_t i) const { return i >= begin && i < end; }
};

/// Split [0, n) into `shards` contiguous ranges whose sizes differ by at
/// most one (the first n % shards ranges get the extra item).  `shards` is
/// clamped to [1, max(n, 1)], so every returned range is non-empty.
inline std::vector<IndexRange> partition_range(std::int32_t n,
                                               std::int32_t shards) {
  if (n < 0) n = 0;
  shards = std::clamp<std::int32_t>(shards, 1, std::max<std::int32_t>(n, 1));
  std::vector<IndexRange> out;
  out.reserve(static_cast<std::size_t>(shards));
  const std::int32_t base = n / shards;
  const std::int32_t extra = n % shards;
  std::int32_t at = 0;
  for (std::int32_t s = 0; s < shards; ++s) {
    const std::int32_t len = base + (s < extra ? 1 : 0);
    out.push_back({at, at + len});
    at += len;
  }
  return out;
}

/// Default shard sizing: one shard per `per_shard` items, clamped to
/// [1, max_shards].  Deliberately independent of thread count — the shard
/// structure defines the simulation, threads only decide who runs it.
inline std::int32_t auto_shard_count(std::int32_t items, std::int32_t per_shard,
                                     std::int32_t max_shards) {
  if (items <= 0 || per_shard <= 0) return 1;
  const std::int32_t want = (items + per_shard - 1) / per_shard;
  return std::clamp<std::int32_t>(want, 1, std::max<std::int32_t>(max_shards, 1));
}

/// Stable k-way merge of per-shard vectors, each already sorted under
/// `less`: repeatedly emits the smallest head, breaking cross-shard ties
/// toward the lower shard index.  The output order is a pure function of
/// the inputs, independent of how the shards were produced.
template <typename T, typename Less>
std::vector<T> merge_sorted_shards(std::vector<std::vector<T>>&& shards,
                                   Less less) {
  std::size_t total = 0;
  for (const auto& s : shards) total += s.size();
  std::vector<T> out;
  out.reserve(total);

  // Head cursor per shard; a binary heap of shard indices keyed by the head
  // element (ties toward lower shard index).
  std::vector<std::size_t> pos(shards.size(), 0);
  const auto head_after = [&](std::size_t a, std::size_t b) {
    const T& ea = shards[a][pos[a]];
    const T& eb = shards[b][pos[b]];
    if (less(ea, eb)) return false;
    if (less(eb, ea)) return true;
    return a > b;
  };
  std::vector<std::size_t> heads;
  heads.reserve(shards.size());
  for (std::size_t s = 0; s < shards.size(); ++s) {
    if (!shards[s].empty()) heads.push_back(s);
  }
  std::make_heap(heads.begin(), heads.end(), head_after);
  while (!heads.empty()) {
    std::pop_heap(heads.begin(), heads.end(), head_after);
    const std::size_t s = heads.back();
    heads.pop_back();
    out.push_back(std::move(shards[s][pos[s]]));
    if (++pos[s] < shards[s].size()) {
      heads.push_back(s);
      std::push_heap(heads.begin(), heads.end(), head_after);
    }
  }
  return out;
}

}  // namespace gpures::des
