#include "des/event_queue.h"

#include <stdexcept>

namespace gpures::des {

void Engine::set_metrics(obs::MetricsRegistry* m) {
  if (m == nullptr) {
    scheduled_metric_ = nullptr;
    dispatched_metric_ = nullptr;
    cancelled_metric_ = nullptr;
    depth_metric_ = nullptr;
    return;
  }
  scheduled_metric_ = &m->counter("des.events_scheduled");
  dispatched_metric_ = &m->counter("des.events_dispatched");
  cancelled_metric_ = &m->counter("des.events_cancelled");
  depth_metric_ = &m->gauge("des.queue_depth");
}

EventId Engine::schedule_at(common::TimePoint t, Callback cb) {
  if (t < now_) {
    throw std::invalid_argument("Engine::schedule_at: time in the past");
  }
  const EventId id = next_id_++;
  queue_.push(Entry{t, next_seq_++, id, std::move(cb)});
  pending_.insert(id);
  if (scheduled_metric_ != nullptr) {
    scheduled_metric_->inc();
    depth_metric_->set(static_cast<std::int64_t>(pending_.size()));
  }
  return id;
}

EventId Engine::schedule_after(common::Duration delay, Callback cb) {
  if (delay < 0) {
    throw std::invalid_argument("Engine::schedule_after: negative delay");
  }
  return schedule_at(now_ + delay, std::move(cb));
}

bool Engine::cancel(EventId id) {
  if (pending_.erase(id) == 0) return false;  // already fired or cancelled
  cancelled_.insert(id);                      // tombstone until popped
  if (cancelled_metric_ != nullptr) {
    cancelled_metric_->inc();
    depth_metric_->set(static_cast<std::int64_t>(pending_.size()));
  }
  return true;
}

bool Engine::step() {
  while (!queue_.empty()) {
    // priority_queue::top returns const&; copy out then pop (entries hold a
    // std::function whose copy is cheap relative to callback work).
    Entry e = queue_.top();
    queue_.pop();
    if (cancelled_.erase(e.id) > 0) continue;  // skip cancelled tombstone
    now_ = e.time;
    pending_.erase(e.id);
    if (dispatched_metric_ != nullptr) {
      dispatched_metric_->inc();
      depth_metric_->set(static_cast<std::int64_t>(pending_.size()));
    }
    e.cb();
    return true;
  }
  return false;
}

std::uint64_t Engine::run_until(common::TimePoint until) {
  std::uint64_t dispatched = 0;
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (cancelled_.contains(top.id)) {
      cancelled_.erase(top.id);
      queue_.pop();
      continue;
    }
    if (top.time > until) break;
    if (step()) ++dispatched;
  }
  // Even if nothing ran, advance the clock to `until` so successive windows
  // (e.g. day-by-day simulation) observe monotonic time.
  if (now_ < until) now_ = until;
  return dispatched;
}

std::uint64_t Engine::run() {
  std::uint64_t dispatched = 0;
  while (step()) ++dispatched;
  return dispatched;
}

}  // namespace gpures::des
