#include "des/event_queue.h"

#include <algorithm>
#include <stdexcept>

namespace gpures::des {

void Engine::set_metrics(obs::MetricsRegistry* m) {
  set_metrics(m, std::span<const obs::Label>{});
}

void Engine::set_metrics(obs::MetricsRegistry* m,
                         std::span<const obs::Label> labels) {
  if (m == nullptr) {
    scheduled_metric_ = nullptr;
    dispatched_metric_ = nullptr;
    cancelled_metric_ = nullptr;
    depth_metric_ = nullptr;
    return;
  }
  scheduled_metric_ = &m->counter("des.events_scheduled", labels);
  dispatched_metric_ = &m->counter("des.events_dispatched", labels);
  cancelled_metric_ = &m->counter("des.events_cancelled", labels);
  depth_metric_ = &m->gauge("des.queue_depth", labels);
}

void Engine::reserve(std::size_t n) {
  heap_.reserve(n);
  pending_.reserve(n);
  cancelled_.reserve(n / 2 + 1);
}

EventId Engine::schedule_at(common::TimePoint t, Callback cb) {
  if (t < now_) {
    throw std::invalid_argument("Engine::schedule_at: time in the past");
  }
  const EventId id = next_id_++;
  heap_.push_back(Entry{t, next_seq_++, id, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), entry_after);
  pending_.insert(id);
  if (scheduled_metric_ != nullptr) {
    scheduled_metric_->inc();
    depth_metric_->set(static_cast<std::int64_t>(pending_.size()));
  }
  return id;
}

EventId Engine::schedule_after(common::Duration delay, Callback cb) {
  if (delay < 0) {
    throw std::invalid_argument("Engine::schedule_after: negative delay");
  }
  return schedule_at(now_ + delay, std::move(cb));
}

bool Engine::cancel(EventId id) {
  if (pending_.erase(id) == 0) return false;  // already fired or cancelled
  cancelled_.insert(id);                      // tombstone until popped
  if (cancelled_metric_ != nullptr) {
    cancelled_metric_->inc();
    depth_metric_->set(static_cast<std::int64_t>(pending_.size()));
  }
  maybe_compact();
  return true;
}

void Engine::pop_top() {
  std::pop_heap(heap_.begin(), heap_.end(), entry_after);
  heap_.pop_back();
}

void Engine::maybe_compact() {
  if (cancelled_.size() < kCompactMin ||
      cancelled_.size() * 2 <= pending_.size()) {
    return;
  }
  // Drop tombstoned entries in place, then restore the heap invariant.  The
  // surviving entries keep their relative order before make_heap, so the
  // rebuilt layout — and therefore all subsequent pops — is a deterministic
  // function of the operation sequence alone.
  std::erase_if(heap_, [this](const Entry& e) {
    return cancelled_.contains(e.id);
  });
  std::make_heap(heap_.begin(), heap_.end(), entry_after);
  cancelled_.clear();
}

bool Engine::step() {
  while (!heap_.empty()) {
    if (cancelled_.erase(heap_.front().id) > 0) {  // skip cancelled tombstone
      pop_top();
      continue;
    }
    // Move the entry out before dispatching: the callback may schedule or
    // cancel events, which mutates the heap.
    Entry e = std::move(heap_.front());
    pop_top();
    now_ = e.time;
    pending_.erase(e.id);
    ++dispatched_total_;
    if (dispatched_metric_ != nullptr) {
      dispatched_metric_->inc();
      depth_metric_->set(static_cast<std::int64_t>(pending_.size()));
    }
    e.cb();
    return true;
  }
  return false;
}

std::uint64_t Engine::run_until(common::TimePoint until) {
  std::uint64_t dispatched = 0;
  while (!heap_.empty()) {
    const Entry& top = heap_.front();
    if (cancelled_.contains(top.id)) {
      cancelled_.erase(top.id);
      pop_top();
      continue;
    }
    if (top.time > until) break;
    if (step()) ++dispatched;
  }
  // Even if nothing ran, advance the clock to `until` so successive windows
  // (e.g. day-by-day simulation) observe monotonic time.
  if (now_ < until) now_ = until;
  return dispatched;
}

std::uint64_t Engine::run() {
  std::uint64_t dispatched = 0;
  while (step()) ++dispatched;
  return dispatched;
}

}  // namespace gpures::des
