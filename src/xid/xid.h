// NVIDIA XID error catalog for the A100 (Ampere) resilience study.
//
// This module encodes the error taxonomy of the reproduced paper's Table I:
// the critical XID codes, their component category (GPU hardware / NVLink
// interconnect / GPU memory), human-readable descriptions, and the recovery
// action the NVIDIA deployment guide prescribes.  XID 13 (Graphics Engine
// Exception) and XID 43 (Reset Channel Verification Error) are present in the
// catalog but flagged `excluded_from_study` because they are typically
// triggered by user code and are not indicators of degraded GPU health.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

namespace gpures::xid {

/// Component category an XID error is attributed to (paper Table I).
enum class Category : std::uint8_t {
  kHardware,      ///< GSP, PMU, MMU, bus — non-memory GPU hardware
  kInterconnect,  ///< NVLink GPU-to-GPU fabric
  kMemory,        ///< HBM2e ECC / row remapping / error containment
  kSoftware,      ///< user-triggered, excluded from resilience statistics
};

std::string_view to_string(Category c);

/// The XID codes tracked by the study.  Values match NVIDIA's XID numbers.
enum class Code : std::uint16_t {
  kGraphicsEngineError = 13,   // excluded (user-triggered)
  kMmuError = 31,              // memory management unit fault
  kResetChannelError = 43,     // excluded (user-triggered)
  kDoubleBitEcc = 48,          // uncorrectable DBE
  kRowRemapEvent = 63,         // row remapping recorded (RRE)
  kRowRemapFailure = 64,       // spare rows exhausted (RRF)
  kNvlinkError = 74,           // NVLink interconnect error
  kFallenOffBus = 79,          // GPU no longer reachable on PCIe
  kContainedEccError = 94,     // uncorrectable error successfully contained
  kUncontainedEccError = 95,   // containment failed
  kGspRpcTimeout = 119,        // GSP RPC timeout
  kGspError = 120,             // GSP error
  kPmuSpiFailure = 122,        // PMU SPI RPC read failure
  kPmuCommunicationError = 123 // PMU communication error
};

/// Stable integer for map keys / logs.
constexpr std::uint16_t to_number(Code c) { return static_cast<std::uint16_t>(c); }

/// Row-remap / containment outcomes are *recovery events*; true errors are
/// the rest.  The distinction matters when estimating MTBE: the paper counts
/// all of Table I's rows as "errors" except where noted.
struct Descriptor {
  Code code;
  std::string_view abbrev;         ///< e.g. "MMU Err.", "GSP Error"
  std::string_view name;           ///< long name
  Category category;
  std::string_view description;    ///< paper Table I description
  std::string_view recovery;       ///< prescribed recovery action
  bool excluded_from_study;        ///< XID 13 / 43
  bool requires_reset;             ///< GPU reset or node reboot to clear
};

/// Full catalog (all codes above, in XID order).
std::span<const Descriptor> catalog();

/// Catalog lookup by code; nullopt for codes the study does not track.
std::optional<Descriptor> describe(Code c);
std::optional<Descriptor> describe(std::uint16_t xid_number);

/// True if the given raw XID number is one the study tracks (including the
/// excluded software codes, which Stage I still parses and then filters).
bool is_known(std::uint16_t xid_number);

/// Paper reporting rows merge the two GSP codes (119/120) and the two PMU
/// codes (122/123).  `merge_key` maps a code to its canonical reporting code.
Code merge_key(Code c);

/// The canonical reporting codes, in the paper's Table I row order:
/// 31, 48, 63, 64, 74, 79, 94, 95, 119(+120), 122(+123).
std::span<const Code> report_order();

}  // namespace gpures::xid
