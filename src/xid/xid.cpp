#include "xid/xid.h"

#include <array>
#include <cstddef>

namespace gpures::xid {

namespace {

constexpr std::array<Descriptor, 14> kCatalog = {{
    {Code::kGraphicsEngineError, "SW Err.", "Graphics Engine Exception",
     Category::kSoftware,
     "Graphics engine exception, typically triggered by user code "
     "(illegal instruction, out-of-bounds access).",
     "None; application-level bug.", /*excluded=*/true, /*reset=*/false},
    {Code::kMmuError, "MMU Err.", "MMU Error", Category::kHardware,
     "GPU memory management unit (MMU) error.",
     "MMU error due to invalid memory access or driver/hardware bugs.",
     /*excluded=*/false, /*reset=*/false},
    {Code::kResetChannelError, "Reset Chan.", "Reset Channel Verification Error",
     Category::kSoftware,
     "Reset channel verification error, typically user-job triggered.",
     "None; not an indicator of degraded GPU health.",
     /*excluded=*/true, /*reset=*/false},
    {Code::kDoubleBitEcc, "DBE", "Double Bit ECC Error", Category::kMemory,
     "Double bit ECC memory error (DBE), uncorrectable by SECDED.",
     "Triggers RRE; GPU reset or node reboot needed if RRE failed.",
     /*excluded=*/false, /*reset=*/true},
    {Code::kRowRemapEvent, "RRE", "Row Remapping Event", Category::kMemory,
     "Row remapping event, triggered by 1 DBE or 2 SBEs at the same address.",
     "GPU reset needed for row remapping to take effect.",
     /*excluded=*/false, /*reset=*/true},
    {Code::kRowRemapFailure, "RRF", "Row Remapping Failure", Category::kMemory,
     "Row remapping failure: all spare rows for the bank are exhausted.",
     "A GPU reset is needed to clear this error; GPU replacement tracked.",
     /*excluded=*/false, /*reset=*/true},
    {Code::kNvlinkError, "NVLink Err.", "NVLink Error", Category::kInterconnect,
     "NVLink error indicating connection issues between GPUs over NVLink.",
     "GPU reset or SRE intervention required.",
     /*excluded=*/false, /*reset=*/true},
    {Code::kFallenOffBus, "Off-Bus", "GPU Fallen Off the Bus",
     Category::kHardware,
     "GPU has fallen off the system bus and is not reachable.",
     "GPU reset or SRE intervention required.",
     /*excluded=*/false, /*reset=*/true},
    {Code::kContainedEccError, "Contained", "Contained Memory Error",
     Category::kMemory,
     "Uncorrectable contained ECC error; containment terminated the "
     "affected processes and prevented propagation.",
     "Not specified.", /*excluded=*/false, /*reset=*/false},
    {Code::kUncontainedEccError, "Uncontained", "Uncontained Memory Error",
     Category::kMemory,
     "Uncontained memory error: uncorrectable error containment failed.",
     "GPU reset or SRE intervention required.",
     /*excluded=*/false, /*reset=*/true},
    {Code::kGspRpcTimeout, "GSP Err.", "GSP RPC Timeout", Category::kHardware,
     "GPU System Processor (GSP) RPC timeout; GSP offloads driver tasks "
     "from the host CPU.",
     "GPU reset or SRE intervention required.",
     /*excluded=*/false, /*reset=*/true},
    {Code::kGspError, "GSP Err.", "GSP Error", Category::kHardware,
     "GPU System Processor (GSP) error.",
     "GPU reset or SRE intervention required.",
     /*excluded=*/false, /*reset=*/true},
    {Code::kPmuSpiFailure, "PMU SPI Err.", "PMU SPI RPC Read Failure",
     Category::kHardware,
     "PMU SPI RPC read failure, indicating failed communication with the "
     "Power Management Unit.",
     "Not specified.", /*excluded=*/false, /*reset=*/false},
    {Code::kPmuCommunicationError, "PMU SPI Err.", "PMU Communication Error",
     Category::kHardware,
     "PMU communication error; can prevent core/memory clock changes and "
     "propagate to MMU errors.",
     "Not specified.", /*excluded=*/false, /*reset=*/false},
}};

constexpr std::array<Code, 10> kReportOrder = {
    Code::kMmuError,        Code::kDoubleBitEcc,      Code::kRowRemapEvent,
    Code::kRowRemapFailure, Code::kNvlinkError,       Code::kFallenOffBus,
    Code::kContainedEccError, Code::kUncontainedEccError,
    Code::kGspRpcTimeout,   Code::kPmuSpiFailure};

// Perfect-hash dispatch: every tracked XID number is < 128, so a direct
// 128-slot index table maps a raw code to its catalog row in one probe —
// Stage II calls describe() once per coalesced observation, and the old
// linear scan compared up to 14 entries per call.
constexpr std::size_t kCodeTableSize = 128;

constexpr std::array<std::int8_t, kCodeTableSize> build_code_index() {
  std::array<std::int8_t, kCodeTableSize> table{};
  for (auto& slot : table) slot = -1;
  for (std::size_t i = 0; i < kCatalog.size(); ++i) {
    table[to_number(kCatalog[i].code)] = static_cast<std::int8_t>(i);
  }
  return table;
}

constexpr std::array<std::int8_t, kCodeTableSize> kCodeIndex =
    build_code_index();

}  // namespace

std::string_view to_string(Category c) {
  switch (c) {
    case Category::kHardware: return "Hardware";
    case Category::kInterconnect: return "Interconnect";
    case Category::kMemory: return "Memory";
    case Category::kSoftware: return "Software";
  }
  return "Unknown";
}

std::span<const Descriptor> catalog() { return kCatalog; }

std::optional<Descriptor> describe(Code c) { return describe(to_number(c)); }

std::optional<Descriptor> describe(std::uint16_t xid_number) {
  if (xid_number >= kCodeTableSize) return std::nullopt;
  const std::int8_t idx = kCodeIndex[xid_number];
  if (idx < 0) return std::nullopt;
  return kCatalog[static_cast<std::size_t>(idx)];
}

bool is_known(std::uint16_t xid_number) {
  return xid_number < kCodeTableSize && kCodeIndex[xid_number] >= 0;
}

Code merge_key(Code c) {
  switch (c) {
    case Code::kGspError: return Code::kGspRpcTimeout;
    case Code::kPmuCommunicationError: return Code::kPmuSpiFailure;
    default: return c;
  }
}

std::span<const Code> report_order() { return kReportOrder; }

}  // namespace gpures::xid
