#include "xid/event.h"

// Currently header-only; TU anchors the target.
