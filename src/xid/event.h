// Event records shared between the simulator (ground truth) and the analysis
// pipeline (recovered from raw logs).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"
#include "xid/xid.h"

namespace gpures::xid {

/// Identifies a GPU within the cluster: node index + local GPU slot.
struct GpuId {
  std::int32_t node = -1;  ///< index into the cluster's node list
  std::int32_t slot = -1;  ///< local GPU index within the node (0..7)

  friend auto operator<=>(const GpuId&, const GpuId&) = default;
};

/// Flat key usable in hash maps.
constexpr std::uint64_t gpu_key(GpuId id) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(id.node)) << 8) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(id.slot) & 0xff);
}

/// One GPU error occurrence.  The simulator produces these as ground truth;
/// the pipeline reconstructs them from syslog.  `raw_line_count` is how many
/// duplicated raw log lines this (coalesced) error produced.
struct GpuErrorEvent {
  common::TimePoint time = 0;
  GpuId gpu;
  Code code = Code::kMmuError;
  std::uint32_t raw_line_count = 1;
  /// Free-form detail rendered into the syslog payload (e.g. fault address).
  std::string detail;

  friend bool operator<(const GpuErrorEvent& a, const GpuErrorEvent& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.gpu != b.gpu) return a.gpu < b.gpu;
    return to_number(a.code) < to_number(b.code);
  }
};

/// A node-level unavailability interval (drain + reboot or replacement).
struct DowntimeInterval {
  std::int32_t node = -1;
  common::TimePoint begin = 0;
  common::TimePoint end = 0;
  bool replacement = false;  ///< true when the GPU was physically swapped

  common::Duration duration() const { return end - begin; }
};

/// Ground-truth trace the simulator produces alongside raw logs, used only
/// for validating the pipeline (never as pipeline input).
struct GroundTruth {
  std::vector<GpuErrorEvent> errors;       ///< coalesced, time-ordered
  std::vector<DowntimeInterval> downtime;  ///< time-ordered by begin
};

}  // namespace gpures::xid
