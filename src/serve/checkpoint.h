// Crash-safe checkpoints for the follow-mode serve daemon.
//
// A checkpoint is a complete snapshot of the daemon's ingestion state taken
// between ticks: per-source byte offsets and quality tallies, the
// accounting-tail cursor, the coalescer's open groups, every error emitted
// so far, lifecycle records, the job table, and the watermark.  Because the
// serve loop is deterministic given (dataset bytes, config), restoring the
// latest checkpoint and replaying the remaining ticks reproduces the exact
// byte sequence an uninterrupted run would have produced — the property the
// kill-resume differential suite asserts.
//
// On disk a checkpoint is a single file in the gpures.idx style: fixed
// header (magic, version, endian tag) with an XXH64 over the header and an
// XXH64 over the payload, written via common::write_file_atomic so a crash
// mid-write leaves the previous checkpoint intact.  The store rotates
// `keep` generations; load_latest walks newest-to-oldest and falls back
// past any file whose checksum no longer verifies — a single flipped bit
// degrades to the previous generation, never to a crash.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/coalesce.h"
#include "analysis/extraction.h"
#include "analysis/job_stats.h"
#include "common/error.h"
#include "common/time.h"
#include "logsys/day_buffer.h"

namespace gpures::serve {

inline constexpr char kCheckpointMagic[8] = {'G', 'P', 'U', 'R',
                                             'E', 'S', 'C', 'K'};
inline constexpr std::uint32_t kCheckpointVersion = 1;
inline constexpr std::uint32_t kCheckpointEndianTag = 0x01020304u;
/// magic(8) + version(4) + endian(4) + payload_size(8) + payload_hash(8) +
/// header_hash(8).
inline constexpr std::size_t kCheckpointHeaderSize = 40;

/// Persistent slice of one tailed day file's state.
struct SourceSnapshot {
  std::string name;              ///< file name (syslog-YYYY-MM-DD.log)
  common::TimePoint date = 0;
  std::uint64_t offset = 0;      ///< consumed bytes (always a line boundary,
                                 ///< except after the final torn fragment)
  std::uint64_t lines_seen = 0;  ///< physical lines consumed
  bool existed = false;          ///< a stat/read ever saw the file
  bool sealed = false;           ///< fully consumed, quality recorded
  bool degraded = false;         ///< quarantined after retry exhaustion
  bool recovered = false;        ///< degraded, but a later re-probe succeeded
  std::string degrade_reason;
  std::uint64_t last_progress_tick = 0;
  common::TimePoint last_event = 0;  ///< per-source watermark
  logsys::ScreenCounts counts;       ///< cumulative across chunks
};

/// Persistent accounting-tail state.
struct AccountingSnapshot {
  bool seen = false;  ///< the dump existed at least once
  bool degraded = false;
  std::string degrade_reason;
  std::uint64_t offset = 0;   ///< consumed bytes (line boundary)
  std::uint64_t line_no = 0;  ///< physical lines consumed
  std::uint64_t rows_kept = 0;
  std::uint64_t rows_rejected = 0;
  std::uint64_t bytes_rejected = 0;
};

/// Everything a resumed daemon needs to continue byte-identically.
struct CheckpointData {
  std::uint64_t config_hash = 0;  ///< guard: resume must match the run config
  std::uint64_t seq = 0;          ///< checkpoint generation (1-based)
  std::uint64_t tick = 0;         ///< tick count at snapshot time
  common::TimePoint watermark = 0;
  std::vector<SourceSnapshot> sources;  ///< date order
  AccountingSnapshot accounting;
  std::vector<std::string> stray_files;  ///< observed so far, sorted
  analysis::CoalescerState coalescer;
  std::vector<analysis::CoalescedError> errors;  ///< emitted so far, feed order
  std::vector<analysis::LifecycleRecord> lifecycle;
  analysis::JobTable jobs;
};

/// Serialize to the on-disk byte layout (header + checksummed payload).
std::string serialize_checkpoint(const CheckpointData& data);

/// Parse and verify a checkpoint image.  Any header/payload corruption —
/// bad magic, wrong version, size mismatch, checksum mismatch, truncated
/// field — returns an Error describing the defect; it never crashes.
common::Result<CheckpointData> parse_checkpoint(std::string_view bytes);

/// Rotating on-disk checkpoint store: `dir/ckpt-<seq>.bin`, newest `keep`
/// generations retained.
class CheckpointStore {
 public:
  explicit CheckpointStore(std::filesystem::path dir, std::uint32_t keep = 2);

  /// Atomically write `data` as generation data.seq, then prune generations
  /// older than the previous one.
  common::Status write(const CheckpointData& data) const;

  /// Load the newest checkpoint that verifies.  Corrupt newer generations
  /// are reported through `note` and skipped (clean fallback); an empty
  /// optional means no usable checkpoint exists (fresh start).
  common::Result<std::optional<CheckpointData>> load_latest(
      const std::function<void(const std::string&)>& note) const;

  /// The path generation `seq` lives at (exposed for tests and chaos).
  std::filesystem::path path_for(std::uint64_t seq) const;

  const std::filesystem::path& dir() const { return dir_; }

 private:
  std::filesystem::path dir_;
  std::uint32_t keep_;
};

}  // namespace gpures::serve
