#include "serve/checkpoint.h"

#include <algorithm>
#include <cstring>

#include "common/hash.h"
#include "common/io.h"
#include "index/format.h"
#include "xid/xid.h"

namespace gpures::serve {

namespace {

using index::load_le16;
using index::load_le32;
using index::load_le64;
using index::store_le16;
using index::store_le32;
using index::store_le64;

void append_le16(std::string& s, std::uint16_t v) {
  unsigned char b[2];
  store_le16(b, v);
  s.append(reinterpret_cast<const char*>(b), 2);
}
void append_le32(std::string& s, std::uint32_t v) {
  unsigned char b[4];
  store_le32(b, v);
  s.append(reinterpret_cast<const char*>(b), 4);
}
void append_le64(std::string& s, std::uint64_t v) {
  unsigned char b[8];
  store_le64(b, v);
  s.append(reinterpret_cast<const char*>(b), 8);
}
void append_i64(std::string& s, std::int64_t v) {
  append_le64(s, static_cast<std::uint64_t>(v));
}
void append_i32(std::string& s, std::int32_t v) {
  append_le32(s, static_cast<std::uint32_t>(v));
}
void append_u8(std::string& s, std::uint8_t v) {
  s.push_back(static_cast<char>(v));
}
void append_str(std::string& s, std::string_view v) {
  append_le32(s, static_cast<std::uint32_t>(v.size()));
  s.append(v);
}

void append_error(std::string& s, const analysis::CoalescedError& e) {
  append_i64(s, e.time);
  append_i64(s, e.last);
  append_i32(s, e.gpu.node);
  append_i32(s, e.gpu.slot);
  append_le16(s, xid::to_number(e.code));
  append_le16(s, e.raw_xid);
  append_le32(s, e.raw_lines);
}

/// first_category is one of three static strings (or null); a small enum
/// survives serialization where the pointer cannot.
std::uint8_t category_code(const char* category) {
  if (category == nullptr) return 0;
  if (std::strcmp(category, "torn") == 0) return 1;
  if (std::strcmp(category, "overlong") == 0) return 2;
  return 3;  // "binary"
}
const char* category_from_code(std::uint8_t code) {
  switch (code) {
    case 1:
      return "torn";
    case 2:
      return "overlong";
    case 3:
      return "binary";
    default:
      return nullptr;
  }
}

/// Bounds-checked little-endian reader over the payload.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  bool failed() const { return failed_; }

  std::uint64_t u64() {
    if (!take(8)) return 0;
    return load_le64(at(pos_ - 8));
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::uint32_t u32() {
    if (!take(4)) return 0;
    return load_le32(at(pos_ - 4));
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::uint16_t u16() {
    if (!take(2)) return 0;
    return load_le16(at(pos_ - 2));
  }
  std::uint8_t u8() {
    if (!take(1)) return 0;
    return static_cast<std::uint8_t>(data_[pos_ - 1]);
  }
  std::string str() {
    const std::uint32_t len = u32();
    if (!take(len)) return {};
    return std::string(data_.substr(pos_ - len, len));
  }
  analysis::CoalescedError error() {
    analysis::CoalescedError e;
    e.time = i64();
    e.last = i64();
    e.gpu.node = i32();
    e.gpu.slot = i32();
    e.code = static_cast<xid::Code>(u16());
    e.raw_xid = u16();
    e.raw_lines = u32();
    return e;
  }
  bool done() const { return pos_ == data_.size(); }

 private:
  bool take(std::size_t n) {
    if (failed_ || data_.size() - pos_ < n) {
      failed_ = true;
      return false;
    }
    pos_ += n;
    return true;
  }
  const unsigned char* at(std::size_t p) const {
    return reinterpret_cast<const unsigned char*>(data_.data()) + p;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace

std::string serialize_checkpoint(const CheckpointData& data) {
  std::string p;
  append_le64(p, data.config_hash);
  append_le64(p, data.seq);
  append_le64(p, data.tick);
  append_i64(p, data.watermark);

  append_le32(p, static_cast<std::uint32_t>(data.sources.size()));
  for (const auto& src : data.sources) {
    append_str(p, src.name);
    append_i64(p, src.date);
    append_le64(p, src.offset);
    append_le64(p, src.lines_seen);
    std::uint8_t flags = 0;
    if (src.existed) flags |= 1;
    if (src.sealed) flags |= 2;
    if (src.degraded) flags |= 4;
    if (src.recovered) flags |= 8;
    append_u8(p, flags);
    append_str(p, src.degrade_reason);
    append_le64(p, src.last_progress_tick);
    append_i64(p, src.last_event);
    const auto& c = src.counts;
    append_le64(p, c.kept_lines);
    append_le64(p, c.kept_bytes);
    append_le64(p, c.binary_lines);
    append_le64(p, c.binary_bytes);
    append_le64(p, c.overlong_lines);
    append_le64(p, c.overlong_bytes);
    append_le64(p, c.torn_lines);
    append_le64(p, c.torn_bytes);
    append_le64(p, c.crlf_bytes);
    append_le64(p, c.first_line);
    append_le64(p, c.first_offset);
    append_u8(p, category_code(c.first_category));
  }

  {
    const auto& a = data.accounting;
    std::uint8_t flags = 0;
    if (a.seen) flags |= 1;
    if (a.degraded) flags |= 2;
    append_u8(p, flags);
    append_str(p, a.degrade_reason);
    append_le64(p, a.offset);
    append_le64(p, a.line_no);
    append_le64(p, a.rows_kept);
    append_le64(p, a.rows_rejected);
    append_le64(p, a.bytes_rejected);
  }

  append_le32(p, static_cast<std::uint32_t>(data.stray_files.size()));
  for (const auto& f : data.stray_files) append_str(p, f);

  append_le64(p, data.coalescer.records_in);
  append_le64(p, data.coalescer.errors_out);
  append_le64(p, data.coalescer.out_of_order);
  append_le32(p, static_cast<std::uint32_t>(data.coalescer.open.size()));
  for (const auto& e : data.coalescer.open) append_error(p, e);

  append_le64(p, data.errors.size());
  for (const auto& e : data.errors) append_error(p, e);

  append_le64(p, data.lifecycle.size());
  for (const auto& l : data.lifecycle) {
    append_i64(p, l.time);
    append_u8(p, static_cast<std::uint8_t>(l.kind));
    append_str(p, l.host);
  }

  append_le64(p, data.jobs.jobs.size());
  for (const auto& j : data.jobs.jobs) {
    append_le64(p, j.id);
    append_i64(p, j.start);
    append_i64(p, j.end);
    append_i32(p, j.gpus);
    append_u8(p, static_cast<std::uint8_t>(j.state));
    append_u8(p, j.is_ml ? 1 : 0);
    append_u8(p, j.inline_count);
    for (const auto g : j.gpus_inline) append_i32(p, g);
    append_i32(p, j.spill_index);
  }
  append_le64(p, data.jobs.spill.size());
  for (const auto& s : data.jobs.spill) {
    append_le32(p, static_cast<std::uint32_t>(s.size()));
    for (const auto g : s) append_i32(p, g);
  }

  std::string out;
  out.reserve(kCheckpointHeaderSize + p.size());
  out.append(kCheckpointMagic, sizeof(kCheckpointMagic));
  append_le32(out, kCheckpointVersion);
  append_le32(out, kCheckpointEndianTag);
  append_le64(out, p.size());
  append_le64(out, common::xxhash64(p));
  append_le64(out, common::xxhash64(std::string_view(out)));
  out += p;
  return out;
}

common::Result<CheckpointData> parse_checkpoint(std::string_view bytes) {
  if (bytes.size() < kCheckpointHeaderSize) {
    return common::Error::make("checkpoint: file shorter than header (" +
                               std::to_string(bytes.size()) + " bytes)");
  }
  if (std::memcmp(bytes.data(), kCheckpointMagic, sizeof(kCheckpointMagic)) !=
      0) {
    return common::Error::make("checkpoint: bad magic");
  }
  const auto* h = reinterpret_cast<const unsigned char*>(bytes.data());
  const std::uint32_t version = load_le32(h + 8);
  if (version != kCheckpointVersion) {
    return common::Error::make("checkpoint: unsupported version " +
                               std::to_string(version));
  }
  if (load_le32(h + 12) != kCheckpointEndianTag) {
    return common::Error::make("checkpoint: endian tag mismatch");
  }
  const std::uint64_t payload_size = load_le64(h + 16);
  const std::uint64_t payload_hash = load_le64(h + 24);
  const std::uint64_t header_hash = load_le64(h + 32);
  if (common::xxhash64(bytes.substr(0, 32)) != header_hash) {
    return common::Error::make("checkpoint: header checksum mismatch");
  }
  if (bytes.size() - kCheckpointHeaderSize != payload_size) {
    return common::Error::make(
        "checkpoint: payload size mismatch (header says " +
        std::to_string(payload_size) + ", file carries " +
        std::to_string(bytes.size() - kCheckpointHeaderSize) + ")");
  }
  const std::string_view payload = bytes.substr(kCheckpointHeaderSize);
  if (common::xxhash64(payload) != payload_hash) {
    return common::Error::make("checkpoint: payload checksum mismatch");
  }

  Cursor c(payload);
  CheckpointData data;
  data.config_hash = c.u64();
  data.seq = c.u64();
  data.tick = c.u64();
  data.watermark = c.i64();

  const std::uint32_t nsources = c.u32();
  for (std::uint32_t i = 0; i < nsources && !c.failed(); ++i) {
    SourceSnapshot src;
    src.name = c.str();
    src.date = c.i64();
    src.offset = c.u64();
    src.lines_seen = c.u64();
    const std::uint8_t flags = c.u8();
    src.existed = (flags & 1) != 0;
    src.sealed = (flags & 2) != 0;
    src.degraded = (flags & 4) != 0;
    src.recovered = (flags & 8) != 0;
    src.degrade_reason = c.str();
    src.last_progress_tick = c.u64();
    src.last_event = c.i64();
    auto& sc = src.counts;
    sc.kept_lines = c.u64();
    sc.kept_bytes = c.u64();
    sc.binary_lines = c.u64();
    sc.binary_bytes = c.u64();
    sc.overlong_lines = c.u64();
    sc.overlong_bytes = c.u64();
    sc.torn_lines = c.u64();
    sc.torn_bytes = c.u64();
    sc.crlf_bytes = c.u64();
    sc.first_line = c.u64();
    sc.first_offset = c.u64();
    sc.first_category = category_from_code(c.u8());
    data.sources.push_back(std::move(src));
  }

  {
    auto& a = data.accounting;
    const std::uint8_t flags = c.u8();
    a.seen = (flags & 1) != 0;
    a.degraded = (flags & 2) != 0;
    a.degrade_reason = c.str();
    a.offset = c.u64();
    a.line_no = c.u64();
    a.rows_kept = c.u64();
    a.rows_rejected = c.u64();
    a.bytes_rejected = c.u64();
  }

  const std::uint32_t nstray = c.u32();
  for (std::uint32_t i = 0; i < nstray && !c.failed(); ++i) {
    data.stray_files.push_back(c.str());
  }

  data.coalescer.records_in = c.u64();
  data.coalescer.errors_out = c.u64();
  data.coalescer.out_of_order = c.u64();
  const std::uint32_t nopen = c.u32();
  for (std::uint32_t i = 0; i < nopen && !c.failed(); ++i) {
    data.coalescer.open.push_back(c.error());
  }

  const std::uint64_t nerrors = c.u64();
  for (std::uint64_t i = 0; i < nerrors && !c.failed(); ++i) {
    data.errors.push_back(c.error());
  }

  const std::uint64_t nlife = c.u64();
  for (std::uint64_t i = 0; i < nlife && !c.failed(); ++i) {
    analysis::LifecycleRecord l;
    l.time = c.i64();
    l.kind = static_cast<analysis::LifecycleRecord::Kind>(c.u8());
    l.host = c.str();
    data.lifecycle.push_back(std::move(l));
  }

  const std::uint64_t njobs = c.u64();
  for (std::uint64_t i = 0; i < njobs && !c.failed(); ++i) {
    analysis::JobView j;
    j.id = c.u64();
    j.start = c.i64();
    j.end = c.i64();
    j.gpus = c.i32();
    j.state = static_cast<slurm::JobState>(c.u8());
    j.is_ml = c.u8() != 0;
    j.inline_count = c.u8();
    for (auto& g : j.gpus_inline) g = c.i32();
    j.spill_index = c.i32();
    data.jobs.jobs.push_back(j);
  }
  const std::uint64_t nspill = c.u64();
  for (std::uint64_t i = 0; i < nspill && !c.failed(); ++i) {
    const std::uint32_t n = c.u32();
    std::vector<analysis::PackedGpu> gpus;
    for (std::uint32_t g = 0; g < n && !c.failed(); ++g) {
      gpus.push_back(c.i32());
    }
    data.jobs.spill.push_back(std::move(gpus));
  }

  if (c.failed() || !c.done()) {
    return common::Error::make(
        "checkpoint: payload truncated or trailing garbage");
  }
  return data;
}

CheckpointStore::CheckpointStore(std::filesystem::path dir, std::uint32_t keep)
    : dir_(std::move(dir)), keep_(keep == 0 ? 1 : keep) {}

std::filesystem::path CheckpointStore::path_for(std::uint64_t seq) const {
  char name[32];
  std::snprintf(name, sizeof(name), "ckpt-%08llu.bin",
                static_cast<unsigned long long>(seq));
  return dir_ / name;
}

namespace {

/// The generation number of `name` when it looks like ckpt-<seq>.bin.
std::optional<std::uint64_t> checkpoint_seq(std::string_view name) {
  if (name.size() < 10 || name.substr(0, 5) != "ckpt-" ||
      name.substr(name.size() - 4) != ".bin") {
    return std::nullopt;
  }
  const auto digits = name.substr(5, name.size() - 9);
  if (digits.empty()) return std::nullopt;
  std::uint64_t seq = 0;
  for (const char ch : digits) {
    if (ch < '0' || ch > '9') return std::nullopt;
    seq = seq * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  return seq;
}

}  // namespace

common::Status CheckpointStore::write(const CheckpointData& data) const {
  const auto bytes = serialize_checkpoint(data);
  const auto path = path_for(data.seq);
  auto st = common::write_file_atomic(path.string(), bytes);
  if (!st.ok()) return st;
  // Prune generations older than the newest `keep_`.  A failed remove is
  // harmless (extra generations only cost disk), so errors are ignored.
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const auto seq = checkpoint_seq(entry.path().filename().string());
    if (seq.has_value() && *seq + keep_ <= data.seq) {
      std::error_code rm;
      std::filesystem::remove(entry.path(), rm);
    }
  }
  return common::Status{};
}

common::Result<std::optional<CheckpointData>> CheckpointStore::load_latest(
    const std::function<void(const std::string&)>& note) const {
  std::error_code ec;
  if (!std::filesystem::is_directory(dir_, ec)) return std::optional<CheckpointData>{};
  std::vector<std::pair<std::uint64_t, std::filesystem::path>> found;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const auto seq = checkpoint_seq(entry.path().filename().string());
    if (seq.has_value()) found.emplace_back(*seq, entry.path());
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [seq, path] : found) {
    auto bytes = common::read_file(path.string());
    if (!bytes.ok()) {
      if (note) {
        note("checkpoint " + path.filename().string() +
             " unreadable, falling back: " + bytes.error().message);
      }
      continue;
    }
    auto parsed = parse_checkpoint(bytes.value());
    if (!parsed.ok()) {
      if (note) {
        note("checkpoint " + path.filename().string() +
             " corrupt, falling back: " + parsed.error().message);
      }
      continue;
    }
    return std::optional<CheckpointData>(std::move(parsed).take());
  }
  return std::optional<CheckpointData>{};
}

}  // namespace gpures::serve
