// Crash-safe follow-mode ingestion (the gpures-serve daemon core).
//
// A ServeSession tails a dataset directory the way a site would feed live
// logs: day files may grow, rotate, appear late, or fail to read; the
// accounting dump may trail behind.  The session advances a *frontier* —
// day sources are consumed strictly in date order, chunk by chunk, feeding
// a single streaming coalescer — so the final errors / lifecycle / jobs
// sequences are byte-identical to what the batch pipeline (gpures-analyze)
// would produce over the same final bytes.  Chunk boundaries never affect
// results: classification and parsing are per-line, and chunks are always
// cut at the last newline.
//
// Resilience contract:
//  * Every source read runs under a bounded exponential-backoff retry
//    policy.  Transient faults (EINTR, fail-N-then-succeed, short reads —
//    see common::IoFaultPlan) are absorbed and counted.
//  * When the retry budget is exhausted, the source is *degraded*: it is
//    quarantined from further ingestion, reported in serve.* metrics and in
//    the data-quality report, and re-probed on a backoff cadence; the
//    session keeps serving every other source and still exits 0.
//  * A stall watchdog flags sources whose watermark stops advancing.
//  * With a checkpoint directory configured, the session persists an
//    atomic, checksummed snapshot every N ticks (see serve/checkpoint.h);
//    kill -9 at any point followed by open(resume=true) replays to the
//    same final artifacts, at any thread count.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/availability.h"
#include "analysis/coalesce.h"
#include "analysis/data_quality.h"
#include "analysis/dataset.h"
#include "analysis/error_stats.h"
#include "analysis/extraction.h"
#include "analysis/job_impact.h"
#include "analysis/job_stats.h"
#include "analysis/periods.h"
#include "cluster/topology.h"
#include "common/error.h"
#include "common/thread_pool.h"
#include "logsys/day_buffer.h"
#include "obs/metrics.h"
#include "serve/checkpoint.h"

namespace gpures::serve {

/// Bounded exponential backoff applied to every source read.
struct RetryPolicy {
  std::uint32_t max_attempts = 5;     ///< total tries per read (>= 1)
  std::uint64_t backoff_ms = 10;      ///< first retry delay
  std::uint64_t backoff_max_ms = 1000;
  std::uint64_t deadline_ms = 0;      ///< total backoff budget; 0 = none
};

struct ServeConfig {
  std::filesystem::path data_dir;
  /// Empty disables checkpointing (still crash-safe, just resumes from
  /// scratch).
  std::filesystem::path checkpoint_dir;
  std::uint64_t checkpoint_interval = 16;  ///< ticks between snapshots
  std::uint32_t threads = 0;               ///< chunk-parse workers; 0 = serial
  std::uint64_t max_chunk_bytes = 4 << 20;
  /// Ticks without growth before a torn EOF fragment of a *rotated* day
  /// (a later day file exists) is consumed as torn, and before a
  /// non-advancing source is flagged stalled.
  std::uint64_t stall_ticks = 8;
  std::uint64_t reprobe_ticks = 16;  ///< degraded-source re-probe cadence
  RetryPolicy retry;
  analysis::IngestPolicy policy = analysis::IngestPolicy::kLenient;
  std::uint64_t error_budget = 0;
  logsys::LineScreen screen;
  analysis::CoalescerConfig coalescer;
  common::Duration attribution_window = 20;
  analysis::Attribution attribution = analysis::Attribution::kGpuLevel;
  double outlier_share = 0.5;
  std::uint64_t outlier_min = 1000;
  /// Registry for the serve.* metrics; the session owns a private one when
  /// null.  Metrics never feed back into analysis results.
  obs::MetricsRegistry* metrics = nullptr;
  /// Human-readable warnings (degradations, quarantines, stalls); null =
  /// silent.
  std::function<void(const std::string&)> warn;
  /// Test hook fired at named scheduler points ("tick", "ckpt-pre",
  /// "ckpt-post"); the CLI's --chaos-kill raises SIGKILL from here.
  std::function<void(const char*)> chaos_point;
  /// Backoff sleep, injectable so fault tests run at full speed; null uses
  /// a real sleep.  Sleeping never affects results, only wall-clock.
  std::function<void(std::uint64_t)> sleep_ms;
};

class ServeSession {
 public:
  explicit ServeSession(ServeConfig cfg);
  ~ServeSession();

  ServeSession(const ServeSession&) = delete;
  ServeSession& operator=(const ServeSession&) = delete;

  /// Read the manifest, discover sources, and (when `resume` and a usable
  /// checkpoint exists) restore the persisted ingestion state.  A checkpoint
  /// written under a different analysis configuration is rejected.
  common::Status open(bool resume);

  /// One scheduler tick: rescan the directory, re-probe degraded sources,
  /// pump one chunk of the frontier day source and one of the accounting
  /// tail, run the stall watchdog, refresh gauges, and checkpoint on the
  /// configured cadence.  Returns an error only for fatal conditions
  /// (strict-mode offense, exceeded error budget) — I/O trouble degrades
  /// sources instead.
  common::Status tick();

  /// True when the last tick consumed nothing and every source is drained
  /// to EOF (sealed, degraded, or a final still-growing file at EOF).  The
  /// --once loop exits here; follow mode keeps ticking.
  bool idle() const { return idle_; }

  /// Drain every remaining byte (including torn EOF fragments and the
  /// accounting tail), flush the coalescer, sort results, and derive the
  /// data-quality report.  After this the result accessors are valid and
  /// the outputs equal a batch gpures-analyze run over the same bytes.
  common::Status finalize();

  /// Force a checkpoint now (used at graceful shutdown).  No-op without a
  /// checkpoint directory.
  common::Status checkpoint_now();

  // ---- results (valid after finalize()) ----
  const std::vector<analysis::CoalescedError>& errors() const {
    return errors_;
  }
  const std::vector<analysis::LifecycleRecord>& lifecycle() const {
    return lifecycle_;
  }
  const analysis::JobTable& jobs() const { return jobs_; }
  const analysis::DataQualityReport& quality() const { return quality_; }

  analysis::ErrorStats error_stats() const;
  analysis::JobStats job_stats() const;
  analysis::JobImpact job_impact() const;
  analysis::AvailabilityStats availability() const;
  double mttf_estimate_h() const;

  // ---- introspection ----
  const cluster::Topology& topo() const { return *topo_; }
  const analysis::StudyPeriods& periods() const { return periods_; }
  common::ThreadPool* pool() const { return pool_.get(); }
  const obs::MetricsRegistry& metrics() const { return *metrics_; }
  obs::MetricsRegistry& metrics() { return *metrics_; }
  std::uint64_t ticks() const { return tick_; }
  std::uint64_t checkpoint_seq() const { return seq_; }
  common::TimePoint watermark() const { return watermark_; }
  /// Stable hash of the analysis-relevant configuration (threads excluded:
  /// resuming at a different --threads is valid and byte-identical).
  std::uint64_t config_hash() const;
  /// Sources currently degraded (day files and/or accounting).
  std::uint64_t degraded_count() const;

 private:
  struct Source;
  struct Metrics;

  common::Status scan_sources();
  void reprobe_degraded();
  /// Read [offset, offset+max) of `path` under the retry policy.  On
  /// exhaustion returns the last error; the *caller* decides between
  /// degradation (lenient) and a fatal error (strict).
  common::Result<std::string> read_with_retry(const std::string& path,
                                              std::uint64_t offset,
                                              std::uint64_t max_bytes);
  void degrade(Source& src, const std::string& reason);
  void degrade_accounting(const std::string& reason);
  /// Pump one chunk of the frontier source.  `drain` (finalize) consumes
  /// torn fragments immediately instead of waiting out stall_ticks.
  common::Status pump_frontier(bool drain);
  common::Status pump_accounting(bool drain);
  /// Feed `text` (cut at a line boundary, or a final torn fragment when
  /// `torn_tail`) of day source `src` through screen -> parse -> coalescer.
  common::Status consume_day_text(Source& src, std::string&& text,
                                  bool torn_tail);
  common::Status consume_accounting_text(std::string&& text);
  common::Status accounting_line(std::string_view line, std::uint64_t line_no,
                                 std::uint64_t byte_start);
  void seal(Source& src);
  void advance_frontier();
  void watchdog_and_gauges();
  common::Status maybe_checkpoint();
  CheckpointData snapshot() const;
  void restore(CheckpointData&& data);
  void derive_quality();

  ServeConfig cfg_;
  analysis::StudyPeriods periods_;
  std::unique_ptr<cluster::Topology> topo_;
  std::unique_ptr<common::ThreadPool> pool_;
  std::vector<std::unique_ptr<analysis::LineParser>> parsers_;
  std::unique_ptr<analysis::Coalescer> coalescer_;
  std::unique_ptr<CheckpointStore> store_;

  std::vector<Source> sources_;  ///< date order
  std::size_t frontier_ = 0;     ///< first unsealed, undegraded source
  AccountingSnapshot acct_;
  std::string acct_fragment_pending_;  ///< unterminated tail seen at EOF
  bool acct_at_eof_ = false;
  std::vector<std::string> strays_;  ///< sorted, deduplicated

  std::vector<analysis::CoalescedError> errors_;
  std::vector<analysis::LifecycleRecord> lifecycle_;
  analysis::JobTable jobs_;
  analysis::DataQualityReport quality_;

  std::uint64_t tick_ = 0;
  std::uint64_t seq_ = 0;  ///< last checkpoint generation written/restored
  std::uint64_t last_checkpoint_tick_ = 0;
  common::TimePoint watermark_ = 0;
  bool dirty_ = false;  ///< state changed since the last checkpoint
  bool idle_ = false;
  bool opened_ = false;
  bool finished_ = false;

  obs::MetricsRegistry* metrics_ = nullptr;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  std::unique_ptr<Metrics> m_;
};

}  // namespace gpures::serve
