#include "serve/serve.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <variant>

#include "common/hash.h"
#include "common/io.h"
#include "common/strings.h"
#include "slurm/accounting.h"
#include "xid/xid.h"

namespace gpures::serve {

namespace fs = std::filesystem;

namespace {

// Same total order the batch pipeline sorts by: two distinct errors can
// never tie (same (gpu, code) errors are > window apart by construction).
bool error_before(const analysis::CoalescedError& a,
                  const analysis::CoalescedError& b) {
  if (a.time != b.time) return a.time < b.time;
  if (a.gpu != b.gpu) return a.gpu < b.gpu;
  return xid::to_number(a.code) < xid::to_number(b.code);
}

std::uint64_t count_newlines(std::string_view text) {
  std::uint64_t n = 0;
  for (const char c : text) {
    if (c == '\n') ++n;
  }
  return n;
}

}  // namespace

/// One tailed day file.  The persistent slice is mirrored in
/// SourceSnapshot; `at_eof` is transient (re-derived by the next read).
struct ServeSession::Source {
  std::string name;
  std::string path;
  common::TimePoint date = 0;
  std::uint64_t offset = 0;
  std::uint64_t lines_seen = 0;
  bool existed = false;
  bool sealed = false;
  bool degraded = false;
  bool recovered = false;
  std::string degrade_reason;
  std::uint64_t last_progress_tick = 0;
  common::TimePoint last_event = 0;
  logsys::ScreenCounts counts;
  bool at_eof = false;  ///< last read saw EOF (not checkpointed)
  bool stalled = false; ///< watchdog latch, to warn once per stall
};

struct ServeSession::Metrics {
  obs::Counter* ticks = nullptr;
  obs::Counter* chunks = nullptr;
  obs::Counter* bytes = nullptr;
  obs::Counter* log_lines = nullptr;
  obs::Counter* xid_records = nullptr;
  obs::Counter* lifecycle_records = nullptr;
  obs::Counter* rejected_lines = nullptr;
  obs::Counter* unknown_hosts = nullptr;
  obs::Counter* dropped_torn = nullptr;
  obs::Counter* dropped_binary = nullptr;
  obs::Counter* dropped_overlong = nullptr;
  obs::Counter* accounting_lines = nullptr;
  obs::Counter* accounting_errors = nullptr;
  obs::Counter* out_of_order = nullptr;
  obs::Counter* errors_coalesced = nullptr;
  obs::Counter* retry_attempts = nullptr;
  obs::Counter* retry_recovered = nullptr;
  obs::Counter* retry_exhausted = nullptr;
  obs::Counter* degraded_total = nullptr;
  obs::Counter* ckpt_writes = nullptr;
  obs::Counter* ckpt_bytes = nullptr;
  obs::Counter* ckpt_failures = nullptr;
  obs::Gauge* sources_total = nullptr;
  obs::Gauge* sources_sealed = nullptr;
  obs::Gauge* sources_degraded = nullptr;
  obs::Gauge* sources_stalled = nullptr;
  obs::Gauge* watermark_epoch = nullptr;
  obs::Gauge* ckpt_age_ticks = nullptr;
  obs::Gauge* ckpt_last_seq = nullptr;
  obs::Gauge* ckpt_interval_ticks = nullptr;
  obs::Gauge* lag_bytes = nullptr;
};

ServeSession::ServeSession(ServeConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.metrics != nullptr) {
    metrics_ = cfg_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  m_ = std::make_unique<Metrics>();
  auto& reg = *metrics_;
  m_->ticks = &reg.counter("serve.ticks");
  m_->chunks = &reg.counter("serve.chunks");
  m_->bytes = &reg.counter("serve.bytes_ingested");
  m_->log_lines = &reg.counter("serve.log_lines");
  m_->xid_records = &reg.counter("serve.xid_records");
  m_->lifecycle_records = &reg.counter("serve.lifecycle_records");
  m_->rejected_lines = &reg.counter("serve.rejected_lines");
  m_->unknown_hosts = &reg.counter("serve.unknown_hosts");
  reg.describe("ingest.lines_dropped",
               "Raw log lines quarantined by the ingest screen, by reason",
               "lines");
  m_->dropped_torn = &reg.counter("ingest.lines_dropped", {{"reason", "torn"}});
  m_->dropped_binary =
      &reg.counter("ingest.lines_dropped", {{"reason", "binary"}});
  m_->dropped_overlong =
      &reg.counter("ingest.lines_dropped", {{"reason", "overlong"}});
  m_->accounting_lines = &reg.counter("serve.accounting_lines");
  m_->accounting_errors = &reg.counter("serve.accounting_errors");
  m_->out_of_order = &reg.counter("serve.out_of_order_observations");
  m_->errors_coalesced = &reg.counter("serve.errors_coalesced");
  m_->retry_attempts = &reg.counter("serve.retry.attempts");
  m_->retry_recovered = &reg.counter("serve.retry.recovered");
  m_->retry_exhausted = &reg.counter("serve.retry.exhausted");
  m_->degraded_total = &reg.counter("serve.sources.degraded_total");
  m_->ckpt_writes = &reg.counter("serve.checkpoint.writes");
  m_->ckpt_bytes = &reg.counter("serve.checkpoint.bytes");
  m_->ckpt_failures = &reg.counter("serve.checkpoint.failures");
  m_->sources_total = &reg.gauge("serve.sources.total");
  m_->sources_sealed = &reg.gauge("serve.sources.sealed");
  m_->sources_degraded = &reg.gauge("serve.sources.degraded");
  m_->sources_stalled = &reg.gauge("serve.sources.stalled");
  m_->watermark_epoch = &reg.gauge("serve.watermark_epoch");
  m_->ckpt_age_ticks = &reg.gauge("serve.checkpoint.age_ticks");
  m_->ckpt_last_seq = &reg.gauge("serve.checkpoint.last_seq");
  m_->ckpt_interval_ticks = &reg.gauge("serve.checkpoint.interval_ticks");
  m_->lag_bytes = &reg.gauge("serve.frontier.lag_bytes");

  if (cfg_.threads > 0) {
    pool_ = std::make_unique<common::ThreadPool>(cfg_.threads);
    for (std::uint32_t w = 0; w < cfg_.threads; ++w) {
      parsers_.push_back(std::make_unique<analysis::FastLineParser>());
    }
  } else {
    parsers_.push_back(std::make_unique<analysis::FastLineParser>());
  }
  coalescer_ = std::make_unique<analysis::Coalescer>(
      cfg_.coalescer, [this](const analysis::CoalescedError& e) {
        errors_.push_back(e);
        m_->errors_coalesced->inc();
      });
}

ServeSession::~ServeSession() = default;

std::uint64_t ServeSession::config_hash() const {
  std::string s = "serve-ckpt-v1;";
  s += "coalesce_window=" + std::to_string(cfg_.coalescer.window) + ";";
  s += "filter=" + std::to_string(cfg_.coalescer.filter_to_catalog ? 1 : 0) +
       ";";
  s += "merge=" + std::to_string(cfg_.coalescer.merge_families ? 1 : 0) + ";";
  s += "attribution_window=" + std::to_string(cfg_.attribution_window) + ";";
  s += "attribution=" + std::to_string(static_cast<int>(cfg_.attribution)) +
       ";";
  s += "outlier_share=" + std::to_string(cfg_.outlier_share) + ";";
  s += "outlier_min=" + std::to_string(cfg_.outlier_min) + ";";
  s += "policy=" + std::to_string(static_cast<int>(cfg_.policy)) + ";";
  s += "error_budget=" + std::to_string(cfg_.error_budget) + ";";
  s += "max_line_len=" + std::to_string(cfg_.screen.max_line_len) + ";";
  s += "pre=" + std::to_string(periods_.pre.begin) + "," +
       std::to_string(periods_.pre.end) + ";";
  s += "op=" + std::to_string(periods_.op.begin) + "," +
       std::to_string(periods_.op.end) + ";";
  s += "nodes=" + std::to_string(topo_ ? topo_->node_count() : 0) + ";";
  s += "gpus=" + std::to_string(topo_ ? topo_->total_gpus() : 0);
  return common::xxhash64(s);
}

std::uint64_t ServeSession::degraded_count() const {
  std::uint64_t n = acct_.degraded ? 1 : 0;
  for (const auto& src : sources_) {
    if (src.degraded) ++n;
  }
  return n;
}

common::Status ServeSession::open(bool resume) {
  common::check(!opened_, "ServeSession: open() called twice");
  const auto manifest = analysis::read_manifest(cfg_.data_dir);
  if (!manifest.ok()) return manifest.error();
  periods_ = manifest.value().periods;
  topo_ = std::make_unique<cluster::Topology>(manifest.value().spec);

  if (!fs::is_directory(cfg_.data_dir / "syslog")) {
    return common::Error::make("dataset: missing syslog/ in " +
                               cfg_.data_dir.string());
  }
  if (!cfg_.checkpoint_dir.empty()) {
    std::error_code ec;
    fs::create_directories(cfg_.checkpoint_dir, ec);
    if (ec) {
      return common::Error::make("serve: cannot create checkpoint dir " +
                                 cfg_.checkpoint_dir.string() + ": " +
                                 ec.message());
    }
    store_ = std::make_unique<CheckpointStore>(cfg_.checkpoint_dir);
    m_->ckpt_interval_ticks->set(
        static_cast<std::int64_t>(cfg_.checkpoint_interval));
  }

  opened_ = true;
  if (resume && store_ != nullptr) {
    auto loaded = store_->load_latest(cfg_.warn);
    if (!loaded.ok()) return loaded.error();
    if (loaded.value().has_value()) {
      auto& data = *loaded.value();
      if (data.config_hash != config_hash()) {
        return common::Error::make(
            "serve: checkpoint was written under a different configuration; "
            "refusing to resume (delete the checkpoint dir or rerun with the "
            "original flags)");
      }
      restore(std::move(data));
      if (cfg_.warn) {
        cfg_.warn("resumed from checkpoint seq " + std::to_string(seq_) +
                  " at tick " + std::to_string(tick_));
      }
    }
  }
  return scan_sources();
}

common::Status ServeSession::scan_sources() {
  const auto syslog_dir = cfg_.data_dir / "syslog";
  std::error_code ec;
  fs::directory_iterator it(syslog_dir, ec);
  if (ec) {
    // The directory existed at open(); treat a transient disappearance like
    // any other source hiccup — keep the known sources, note it, move on.
    if (cfg_.warn) {
      cfg_.warn("cannot scan " + syslog_dir.string() + ": " + ec.message());
    }
    return {};
  }
  for (const auto& entry : fs::directory_iterator(syslog_dir, ec)) {
    const auto name = entry.path().filename().string();
    const auto date = analysis::day_file_date(name);
    if (!date || !entry.is_regular_file()) {
      const auto pos = std::lower_bound(strays_.begin(), strays_.end(), name);
      if (pos == strays_.end() || *pos != name) {
        strays_.insert(pos, name);
        dirty_ = true;
        if (cfg_.warn) cfg_.warn("ignoring stray entry in syslog/: " + name);
      }
      continue;
    }
    const auto pos = std::lower_bound(
        sources_.begin(), sources_.end(), *date,
        [](const Source& s, common::TimePoint d) { return s.date < d; });
    if (pos != sources_.end() && pos->date == *date) continue;  // known
    Source src;
    src.name = name;
    src.path = entry.path().string();
    src.date = *date;
    src.existed = true;
    src.last_progress_tick = tick_;
    const auto idx = static_cast<std::size_t>(pos - sources_.begin());
    sources_.insert(pos, std::move(src));
    dirty_ = true;
    // The slot has passed once any *later* day has been consumed: ingesting
    // this file now would break the batch-equivalent ordering contract, so
    // it can only be reported.  idx == frontier_ still counts when the
    // displaced frontier source was already partially read.
    bool slot_passed = idx < frontier_;
    for (std::size_t j = idx + 1; !slot_passed && j < sources_.size(); ++j) {
      slot_passed = sources_[j].offset > 0 || sources_[j].sealed;
    }
    if (slot_passed) {
      if (idx < frontier_) ++frontier_;
      degrade(sources_[idx],
              "day file appeared after its ingest slot had passed");
    }
  }
  return {};
}

void ServeSession::degrade(Source& src, const std::string& reason) {
  if (src.degraded) return;
  src.degraded = true;
  src.degrade_reason = reason;
  dirty_ = true;
  m_->degraded_total->inc();
  if (cfg_.warn) {
    cfg_.warn("degrading source " + src.name + ": " + reason +
              " (keeping " + std::to_string(src.offset) +
              " ingested bytes; will re-probe)");
  }
}

void ServeSession::degrade_accounting(const std::string& reason) {
  if (acct_.degraded) return;
  acct_.degraded = true;
  acct_.degrade_reason = reason;
  dirty_ = true;
  m_->degraded_total->inc();
  if (cfg_.warn) {
    cfg_.warn("degrading source slurm_accounting.txt: " + reason +
              " (keeping " + std::to_string(acct_.offset) +
              " ingested bytes; will re-probe)");
  }
}

void ServeSession::reprobe_degraded() {
  const auto probe = [](const std::string& path, std::uint64_t offset) {
    return common::read_file_range(path, offset, 1).ok();
  };
  for (auto& src : sources_) {
    if (!src.degraded || src.recovered) continue;
    if (probe(src.path, src.offset)) {
      src.recovered = true;
      dirty_ = true;
      if (cfg_.warn) {
        cfg_.warn("degraded source " + src.name +
                  " is readable again (its ingest slot has passed; data is "
                  "not re-ingested, only reported)");
      }
    }
  }
  if (acct_.degraded) {
    const auto path = (cfg_.data_dir / "slurm_accounting.txt").string();
    if (probe(path, acct_.offset)) {
      // Unlike a day file, the accounting tail has no ordering constraint
      // against other sources — resume it where it left off.
      acct_.degraded = false;
      acct_.degrade_reason.clear();
      dirty_ = true;
      if (cfg_.warn) {
        cfg_.warn("accounting dump is readable again, resuming the tail at "
                  "byte " +
                  std::to_string(acct_.offset));
      }
    }
  }
}

common::Result<std::string> ServeSession::read_with_retry(
    const std::string& path, std::uint64_t offset, std::uint64_t max_bytes) {
  const std::uint32_t max_attempts = std::max(1u, cfg_.retry.max_attempts);
  std::uint64_t backoff = cfg_.retry.backoff_ms;
  std::uint64_t slept = 0;
  for (std::uint32_t attempt = 1;; ++attempt) {
    auto r = common::read_file_range(path, offset, max_bytes);
    if (r.ok()) {
      if (attempt > 1) m_->retry_recovered->inc();
      return r;
    }
    const bool out_of_attempts = attempt >= max_attempts;
    const bool out_of_time =
        cfg_.retry.deadline_ms > 0 && slept >= cfg_.retry.deadline_ms;
    if (out_of_attempts || out_of_time) {
      m_->retry_exhausted->inc();
      return r.error();
    }
    m_->retry_attempts->inc();
    if (cfg_.sleep_ms) {
      cfg_.sleep_ms(backoff);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    }
    slept += backoff;
    backoff = std::min(backoff * 2, cfg_.retry.backoff_max_ms);
  }
}

void ServeSession::advance_frontier() {
  while (frontier_ < sources_.size() &&
         (sources_[frontier_].sealed || sources_[frontier_].degraded)) {
    ++frontier_;
  }
}

void ServeSession::seal(Source& src) {
  src.sealed = true;
  dirty_ = true;
  watermark_ = std::max(watermark_, src.date + common::kDay);
  if (cfg_.warn) {
    if (src.counts.quarantined_lines() > 0) {
      cfg_.warn("quarantined " +
                std::to_string(src.counts.quarantined_lines()) +
                " corrupt lines (" +
                std::to_string(src.counts.quarantined_bytes()) + " bytes) in " +
                src.path);
    }
    if (src.counts.crlf_bytes > 0) {
      cfg_.warn("normalized " + std::to_string(src.counts.crlf_bytes) +
                " CRLF line terminators in " + src.path);
    }
  }
}

common::Status ServeSession::pump_frontier(bool drain) {
  advance_frontier();
  if (frontier_ >= sources_.size()) return {};
  Source& src = sources_[frontier_];
  // Grow the read until it holds a newline or reaches EOF: a single line
  // longer than max_chunk_bytes (quarantined as overlong later) must not
  // wedge the frontier.
  std::uint64_t max = cfg_.max_chunk_bytes;
  std::string chunk;
  bool at_end = false;
  while (true) {
    auto r = read_with_retry(src.path, src.offset, max);
    if (!r.ok()) {
      if (cfg_.policy == analysis::IngestPolicy::kStrict) {
        return common::Error::make("dataset: cannot read " + src.path + ": " +
                                   r.error().message);
      }
      degrade(src, r.error().message);
      return {};
    }
    chunk = std::move(r).take();
    at_end = chunk.size() < max;
    if (at_end || chunk.find('\n') != std::string::npos) break;
    max *= 2;
  }
  m_->chunks->inc();
  const bool later_exists = frontier_ + 1 < sources_.size();
  if (chunk.empty()) {
    src.at_eof = true;
    if (later_exists || drain) {
      seal(src);
      advance_frontier();
    }
    return {};
  }
  const auto nl = chunk.rfind('\n');
  if (nl == std::string::npos) {
    // A newline-less tail.  While the file can still be mid-append, leave
    // it for the next tick; once it is rotation-final (a later day exists
    // and it stopped growing) or we are draining, it is a torn fragment.
    src.at_eof = at_end;
    const bool rotation_final =
        later_exists && tick_ >= src.last_progress_tick + cfg_.stall_ticks;
    if (at_end && (drain || rotation_final)) {
      auto st = consume_day_text(src, std::move(chunk), true);
      if (!st.ok()) return st;
      seal(src);
      advance_frontier();
    }
    return {};
  }
  const bool tail_remains = nl + 1 < chunk.size();
  chunk.resize(nl + 1);
  auto st = consume_day_text(src, std::move(chunk), false);
  if (!st.ok()) return st;
  src.last_progress_tick = tick_;
  src.stalled = false;
  if (at_end && !tail_remains) {
    src.at_eof = true;
    if (later_exists || drain) {
      seal(src);
      advance_frontier();
    }
  } else {
    src.at_eof = false;
  }
  return {};
}

common::Status ServeSession::consume_day_text(Source& src, std::string&& text,
                                              bool torn_tail) {
  const std::uint64_t base_offset = src.offset;
  const std::uint64_t base_lines = src.lines_seen;
  const std::uint64_t n_bytes = text.size();
  const std::uint64_t n_lines = count_newlines(text) + (torn_tail ? 1 : 0);
  logsys::ScreenCounts sc;
  auto day =
      logsys::DayBuffer::from_text(src.date, std::move(text), cfg_.screen, sc);
  if (sc.torn_lines > 0) m_->dropped_torn->add(sc.torn_lines);
  if (sc.binary_lines > 0) m_->dropped_binary->add(sc.binary_lines);
  if (sc.overlong_lines > 0) m_->dropped_overlong->add(sc.overlong_lines);
  if (sc.quarantined_lines() > 0 &&
      cfg_.policy == analysis::IngestPolicy::kStrict) {
    // Chunk-relative offense location + the bytes/lines already consumed =
    // the same absolute location batch strict ingest reports.
    return common::Error::at(
        "dataset: " + std::string(sc.first_category) +
            " line rejected by strict ingest",
        src.path, base_lines + sc.first_line, base_offset + sc.first_offset);
  }
  // Fold the chunk tallies into the source's cumulative counts.
  auto& c = src.counts;
  c.kept_lines += sc.kept_lines;
  c.kept_bytes += sc.kept_bytes;
  c.binary_lines += sc.binary_lines;
  c.binary_bytes += sc.binary_bytes;
  c.overlong_lines += sc.overlong_lines;
  c.overlong_bytes += sc.overlong_bytes;
  c.torn_lines += sc.torn_lines;
  c.torn_bytes += sc.torn_bytes;
  c.crlf_bytes += sc.crlf_bytes;
  if (c.first_category == nullptr && sc.first_category != nullptr) {
    c.first_category = sc.first_category;
    c.first_line = base_lines + sc.first_line;
    c.first_offset = base_offset + sc.first_offset;
  }
  if (cfg_.error_budget > 0 && c.quarantined_lines() > cfg_.error_budget) {
    return common::Error::make(
        "dataset: per-day error budget exceeded: " +
        std::to_string(c.quarantined_lines()) + " quarantined lines in " +
        src.path + " (budget " + std::to_string(cfg_.error_budget) + ")");
  }
  src.offset += n_bytes;
  src.lines_seen += n_lines;
  dirty_ = true;
  m_->bytes->add(n_bytes);

  // Stage I over the chunk.  Parallel mode splits the lines into one
  // contiguous range per worker and merges range-ordered — the observation
  // sequence is the line sequence either way, so results are byte-identical
  // at any thread count.
  struct Parsed {
    std::vector<analysis::XidObservation> obs;
    std::vector<analysis::LifecycleRecord> lifecycle;
  };
  const auto parse_range = [&](const analysis::LineParser& parser,
                               std::size_t lo, std::size_t hi, Parsed& out) {
    std::uint64_t lines = 0, rejected = 0, unknown = 0, xids = 0, lifes = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      ++lines;
      auto parsed = parser.parse(day.line(i), src.date);
      if (!parsed) {
        ++rejected;
        continue;
      }
      if (auto* xrec = std::get_if<analysis::XidRecord>(&*parsed)) {
        const auto node = topo_->node_index(xrec->host);
        if (!node) {
          ++unknown;
          continue;
        }
        const auto slot = topo_->slot_for_pci(*node, xrec->pci);
        if (!slot) {
          ++unknown;
          continue;
        }
        ++xids;
        analysis::XidObservation obs;
        obs.time = xrec->time;
        obs.gpu = {*node, *slot};
        obs.xid = xrec->xid;
        out.obs.push_back(obs);
      } else if (auto* lrec =
                     std::get_if<analysis::LifecycleRecord>(&*parsed)) {
        if (!topo_->node_index(lrec->host)) {
          ++unknown;
          continue;
        }
        ++lifes;
        out.lifecycle.push_back(std::move(*lrec));
      }
    }
    m_->log_lines->add(lines);
    m_->rejected_lines->add(rejected);
    m_->unknown_hosts->add(unknown);
    m_->xid_records->add(xids);
    m_->lifecycle_records->add(lifes);
  };

  const std::size_t n = day.size();
  std::vector<Parsed> parts;
  if (pool_ != nullptr && n >= 2 * pool_->size()) {
    const std::size_t workers = pool_->size();
    parts.resize(workers);
    pool_->parallel_for(workers, [&](std::size_t i, std::size_t w) {
      const std::size_t lo = i * n / workers;
      const std::size_t hi = (i + 1) * n / workers;
      parse_range(*parsers_[w % parsers_.size()], lo, hi, parts[i]);
    });
  } else {
    parts.resize(1);
    parse_range(*parsers_[0], 0, n, parts[0]);
  }
  for (auto& part : parts) {
    for (auto& l : part.lifecycle) lifecycle_.push_back(std::move(l));
    for (const auto& o : part.obs) {
      coalescer_->add(o);
      if (o.time > watermark_) watermark_ = o.time;
      if (o.time > src.last_event) src.last_event = o.time;
    }
  }
  return {};
}

common::Status ServeSession::pump_accounting(bool drain) {
  if (acct_.degraded) return {};
  const auto path = (cfg_.data_dir / "slurm_accounting.txt").string();
  std::error_code ec;
  if (!fs::exists(cfg_.data_dir / "slurm_accounting.txt", ec)) {
    // Absent is a coverage gap, not an error — same as the batch loader.
    acct_at_eof_ = true;
    return {};
  }
  if (!acct_.seen) {
    acct_.seen = true;
    dirty_ = true;
  }
  std::uint64_t max = cfg_.max_chunk_bytes;
  std::string chunk;
  bool at_end = false;
  while (true) {
    auto r = read_with_retry(path, acct_.offset, max);
    if (!r.ok()) {
      if (cfg_.policy == analysis::IngestPolicy::kStrict) {
        return common::Error::make("dataset: " + r.error().message);
      }
      degrade_accounting(r.error().message);
      return {};
    }
    chunk = std::move(r).take();
    at_end = chunk.size() < max;
    if (at_end || chunk.find('\n') != std::string::npos) break;
    max *= 2;
  }
  m_->chunks->inc();
  if (chunk.empty()) {
    acct_at_eof_ = true;
    return {};
  }
  const auto nl = chunk.rfind('\n');
  if (nl == std::string::npos) {
    acct_at_eof_ = at_end;
    if (drain && at_end) {
      // Final unterminated row: the batch loader processes it too.
      return consume_accounting_text(std::move(chunk));
    }
    return {};
  }
  const bool tail_remains = nl + 1 < chunk.size();
  chunk.resize(nl + 1);
  acct_at_eof_ = at_end && !tail_remains;
  return consume_accounting_text(std::move(chunk));
}

common::Status ServeSession::consume_accounting_text(std::string&& text) {
  const std::uint64_t base = acct_.offset;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t nlpos = text.find('\n', start);
    const std::size_t end = nlpos == std::string::npos ? text.size() : nlpos;
    const auto line = std::string_view(text).substr(start, end - start);
    auto st = accounting_line(line, acct_.line_no + 1, base + start);
    if (!st.ok()) return st;
    acct_.line_no += 1;
    if (nlpos == std::string::npos) break;
    start = nlpos + 1;
  }
  acct_.offset += text.size();
  dirty_ = true;
  m_->bytes->add(text.size());
  return {};
}

common::Status ServeSession::accounting_line(std::string_view line,
                                             std::uint64_t line_no,
                                             std::uint64_t byte_start) {
  const auto path = (cfg_.data_dir / "slurm_accounting.txt").string();
  const auto trimmed = common::trim(line);
  if (trimmed.empty()) return {};
  m_->accounting_lines->inc();
  if (trimmed == slurm::accounting_header()) return {};
  auto rec = slurm::parse_accounting_line(trimmed, *topo_);
  if (!rec.ok()) {
    m_->accounting_errors->inc();
    if (cfg_.policy == analysis::IngestPolicy::kStrict) {
      return common::Error::at("dataset: malformed accounting row", path,
                               line_no, byte_start);
    }
    acct_.rows_rejected += 1;
    acct_.bytes_rejected += trimmed.size();
    if (cfg_.error_budget > 0 && acct_.rows_rejected > cfg_.error_budget) {
      return common::Error::make(
          "dataset: accounting error budget exceeded: " +
          std::to_string(acct_.rows_rejected) + " rejected rows in " + path +
          " (budget " + std::to_string(cfg_.error_budget) + ")");
    }
    return {};
  }
  jobs_.add(rec.value());
  acct_.rows_kept += 1;
  return {};
}

void ServeSession::watchdog_and_gauges() {
  std::int64_t sealed = 0, degraded = 0, stalled = 0;
  for (auto& src : sources_) {
    if (src.sealed) ++sealed;
    if (src.degraded) ++degraded;
  }
  advance_frontier();
  if (frontier_ < sources_.size()) {
    Source& src = sources_[frontier_];
    const bool tail_of_run = frontier_ + 1 >= sources_.size() && src.at_eof;
    if (!tail_of_run &&
        tick_ >= src.last_progress_tick + std::max<std::uint64_t>(
                                              1, cfg_.stall_ticks)) {
      ++stalled;
      if (!src.stalled) {
        src.stalled = true;
        if (cfg_.warn) {
          cfg_.warn("watchdog: source " + src.name +
                    " has not advanced for " +
                    std::to_string(tick_ - src.last_progress_tick) + " ticks");
        }
      }
    }
    std::error_code ec;
    const auto size = fs::file_size(src.path, ec);
    if (!ec && size >= src.offset) {
      m_->lag_bytes->set(static_cast<std::int64_t>(size - src.offset));
    }
  } else {
    m_->lag_bytes->set(0);
  }
  if (acct_.degraded) ++degraded;
  m_->sources_total->set(static_cast<std::int64_t>(sources_.size()));
  m_->sources_sealed->set(sealed);
  m_->sources_degraded->set(degraded);
  m_->sources_stalled->set(stalled);
  m_->watermark_epoch->set(watermark_);
  if (store_ != nullptr) {
    m_->ckpt_age_ticks->set(static_cast<std::int64_t>(
        tick_ - std::min(tick_, last_checkpoint_tick_)));
    m_->ckpt_last_seq->set(static_cast<std::int64_t>(seq_));
  }
}

common::Status ServeSession::tick() {
  common::check(opened_, "ServeSession: tick() before open()");
  common::check(!finished_, "ServeSession: tick() after finalize()");
  ++tick_;
  m_->ticks->inc();
  if (cfg_.chaos_point) cfg_.chaos_point("tick");
  const std::uint64_t bytes_before = m_->bytes->value();
  const std::size_t sources_before = sources_.size();
  const std::uint64_t sealed_degraded_before = [&] {
    std::uint64_t n = 0;
    for (const auto& s : sources_) {
      if (s.sealed || s.degraded) ++n;
    }
    return n;
  }();

  auto st = scan_sources();
  if (!st.ok()) return st;
  if (cfg_.reprobe_ticks > 0 && tick_ % cfg_.reprobe_ticks == 0) {
    reprobe_degraded();
  }
  st = pump_frontier(false);
  if (!st.ok()) return st;
  st = pump_accounting(false);
  if (!st.ok()) return st;

  const std::uint64_t sealed_degraded_after = [&] {
    std::uint64_t n = 0;
    for (const auto& s : sources_) {
      if (s.sealed || s.degraded) ++n;
    }
    return n;
  }();
  const bool progressed = m_->bytes->value() != bytes_before ||
                          sources_.size() != sources_before ||
                          sealed_degraded_after != sealed_degraded_before;
  advance_frontier();
  bool days_drained = frontier_ >= sources_.size();
  if (!days_drained && frontier_ + 1 >= sources_.size() &&
      sources_[frontier_].at_eof) {
    days_drained = true;  // final day tailed to EOF (fragment, if any, waits)
  }
  idle_ = !progressed && days_drained && (acct_at_eof_ || acct_.degraded);

  watchdog_and_gauges();
  return maybe_checkpoint();
}

common::Status ServeSession::maybe_checkpoint() {
  if (store_ == nullptr) return {};
  const std::uint64_t interval = std::max<std::uint64_t>(
      1, cfg_.checkpoint_interval);
  if (tick_ % interval != 0 || !dirty_) return {};
  return checkpoint_now();
}

common::Status ServeSession::checkpoint_now() {
  if (store_ == nullptr) return {};
  if (cfg_.chaos_point) cfg_.chaos_point("ckpt-pre");
  CheckpointData data = snapshot();
  data.seq = seq_ + 1;
  const auto st = store_->write(data);
  if (!st.ok()) {
    // A checkpoint that cannot be written degrades durability, not service:
    // keep ingesting, count it, and let the next cadence try again.
    m_->ckpt_failures->inc();
    if (cfg_.warn) {
      cfg_.warn("checkpoint write failed: " + st.error().message);
    }
    return {};
  }
  seq_ = data.seq;
  last_checkpoint_tick_ = tick_;
  dirty_ = false;
  m_->ckpt_writes->inc();
  m_->ckpt_bytes->add(serialize_checkpoint(data).size());
  m_->ckpt_last_seq->set(static_cast<std::int64_t>(seq_));
  m_->ckpt_age_ticks->set(0);
  if (cfg_.chaos_point) cfg_.chaos_point("ckpt-post");
  return {};
}

CheckpointData ServeSession::snapshot() const {
  CheckpointData data;
  data.config_hash = config_hash();
  data.seq = seq_;
  data.tick = tick_;
  data.watermark = watermark_;
  data.sources.reserve(sources_.size());
  for (const auto& src : sources_) {
    SourceSnapshot s;
    s.name = src.name;
    s.date = src.date;
    s.offset = src.offset;
    s.lines_seen = src.lines_seen;
    s.existed = src.existed;
    s.sealed = src.sealed;
    s.degraded = src.degraded;
    s.recovered = src.recovered;
    s.degrade_reason = src.degrade_reason;
    s.last_progress_tick = src.last_progress_tick;
    s.last_event = src.last_event;
    s.counts = src.counts;
    data.sources.push_back(std::move(s));
  }
  data.accounting = acct_;
  data.stray_files = strays_;
  data.coalescer = coalescer_->state();
  data.errors = errors_;
  data.lifecycle = lifecycle_;
  data.jobs = jobs_;
  return data;
}

void ServeSession::restore(CheckpointData&& data) {
  tick_ = data.tick;
  seq_ = data.seq;
  last_checkpoint_tick_ = data.tick;
  watermark_ = data.watermark;
  sources_.clear();
  for (auto& s : data.sources) {
    Source src;
    src.name = s.name;
    src.path = (cfg_.data_dir / "syslog" / s.name).string();
    src.date = s.date;
    src.offset = s.offset;
    src.lines_seen = s.lines_seen;
    src.existed = s.existed;
    src.sealed = s.sealed;
    src.degraded = s.degraded;
    src.recovered = s.recovered;
    src.degrade_reason = std::move(s.degrade_reason);
    src.last_progress_tick = s.last_progress_tick;
    src.last_event = s.last_event;
    src.counts = s.counts;
    sources_.push_back(std::move(src));
  }
  frontier_ = 0;
  advance_frontier();
  acct_ = std::move(data.accounting);
  strays_ = std::move(data.stray_files);
  coalescer_->restore(data.coalescer);
  errors_ = std::move(data.errors);
  lifecycle_ = std::move(data.lifecycle);
  jobs_ = std::move(data.jobs);
  dirty_ = false;
}

common::Status ServeSession::finalize() {
  common::check(opened_, "ServeSession: finalize() before open()");
  if (finished_) return {};
  // Drain the remaining day bytes in date order (torn EOF fragments are
  // consumed immediately) — every pump either consumes bytes, seals, or
  // degrades, so this terminates.
  while (true) {
    advance_frontier();
    if (frontier_ >= sources_.size()) break;
    auto st = pump_frontier(true);
    if (!st.ok()) return st;
  }
  // Drain the accounting tail the same way.
  while (!acct_.degraded) {
    const std::uint64_t before = acct_.offset;
    auto st = pump_accounting(true);
    if (!st.ok()) return st;
    if (acct_.offset == before) break;  // absent, or tailed to EOF
  }
  coalescer_->flush();
  m_->out_of_order->add(coalescer_->out_of_order());
  std::sort(errors_.begin(), errors_.end(), error_before);
  std::stable_sort(lifecycle_.begin(), lifecycle_.end(),
                   [](const analysis::LifecycleRecord& a,
                      const analysis::LifecycleRecord& b) {
                     return a.time < b.time;
                   });
  derive_quality();
  watchdog_and_gauges();
  finished_ = true;
  return {};
}

void ServeSession::derive_quality() {
  auto& q = quality_;
  q = analysis::DataQualityReport{};
  q.policy = cfg_.policy;
  q.error_budget = cfg_.error_budget;
  // Coverage over the manifest period, exactly like the batch loader.
  const common::TimePoint begin = periods_.pre.begin;
  const common::TimePoint end = periods_.op.end;
  if (end > begin) {
    std::size_t next = 0;
    for (common::TimePoint t = common::start_of_day(begin); t < end;
         t += common::kDay) {
      q.days_expected += 1;
      while (next < sources_.size() && sources_[next].date < t) ++next;
      if (next >= sources_.size() || sources_[next].date != t) {
        q.missing_days.push_back(common::format_date(t));
      }
    }
  }
  for (const auto& src : sources_) {
    if (src.degraded && src.offset == 0) {
      // Nothing of this day made it in: the batch-lenient equivalent of an
      // unreadable day — a recorded coverage gap.
      q.skipped_days.push_back(analysis::SkippedDay{
          common::format_date(src.date), src.degrade_reason});
    } else {
      q.days_present += 1;
      const auto& c = src.counts;
      q.lines_kept += c.kept_lines;
      q.bytes_kept += c.kept_bytes;
      q.binary_lines += c.binary_lines;
      q.binary_bytes += c.binary_bytes;
      q.overlong_lines += c.overlong_lines;
      q.overlong_bytes += c.overlong_bytes;
      q.torn_lines += c.torn_lines;
      q.torn_bytes += c.torn_bytes;
      q.crlf_bytes += c.crlf_bytes;
      const std::uint64_t file_bytes = src.offset;
      if (file_bytes == 0) q.zero_byte_days += 1;
      if (c.quarantined_lines() > 0 || file_bytes == 0 || c.crlf_bytes > 0) {
        analysis::DayQuality dq;
        dq.date = common::format_date(src.date);
        dq.file_bytes = file_bytes;
        dq.lines_kept = c.kept_lines;
        dq.bytes_kept = c.kept_bytes;
        dq.binary_lines = c.binary_lines;
        dq.binary_bytes = c.binary_bytes;
        dq.overlong_lines = c.overlong_lines;
        dq.overlong_bytes = c.overlong_bytes;
        dq.torn_lines = c.torn_lines;
        dq.torn_bytes = c.torn_bytes;
        dq.crlf_bytes = c.crlf_bytes;
        q.days.push_back(std::move(dq));
      }
    }
    if (src.degraded) {
      q.degraded_sources.push_back(analysis::DegradedSource{
          src.name, src.degrade_reason, src.offset});
    }
  }
  q.stray_files = strays_;
  q.accounting_present = acct_.seen && !(acct_.degraded && acct_.offset == 0);
  if (acct_.degraded) {
    q.accounting_error = acct_.degrade_reason;
    q.degraded_sources.push_back(analysis::DegradedSource{
        "slurm_accounting.txt", acct_.degrade_reason, acct_.offset});
  }
  if (!acct_.seen && cfg_.warn) {
    cfg_.warn("no slurm_accounting.txt in " + cfg_.data_dir.string() +
              ", job analyses will be empty");
  }
  q.accounting_rows_kept = acct_.rows_kept;
  q.accounting_rows_rejected = acct_.rows_rejected;
  q.accounting_bytes_rejected = acct_.bytes_rejected;
}

analysis::ErrorStats ServeSession::error_stats() const {
  analysis::ErrorStatsConfig cfg;
  cfg.node_count = topo_->node_count();
  cfg.outlier_share = cfg_.outlier_share;
  cfg.outlier_min = cfg_.outlier_min;
  return analysis::compute_error_stats(errors_, periods_, cfg);
}

analysis::JobStats ServeSession::job_stats() const {
  return analysis::compute_job_stats(jobs_, periods_.whole());
}

analysis::JobImpact ServeSession::job_impact() const {
  analysis::JobImpactConfig cfg;
  cfg.window = cfg_.attribution_window;
  cfg.period = periods_.op;
  cfg.attribution = cfg_.attribution;
  return analysis::compute_job_impact(jobs_, errors_, cfg, pool_.get(),
                                      nullptr);
}

analysis::AvailabilityStats ServeSession::availability() const {
  analysis::AvailabilityConfig cfg;
  cfg.period = periods_.op;
  cfg.node_count = topo_->node_count();
  return analysis::compute_availability(lifecycle_, cfg, pool_.get());
}

double ServeSession::mttf_estimate_h() const {
  return error_stats().total.op.mtbe_per_node_h;
}

}  // namespace gpures::serve
