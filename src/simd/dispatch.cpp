#include "simd/dispatch.h"

#include <atomic>
#include <cstdlib>

namespace gpures::simd {

namespace {

bool cpu_has_avx2() {
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

// -1 = not yet resolved; otherwise a Backend value.  Relaxed is enough: the
// value is write-once-then-read and any racing first reads resolve to the
// same environment-derived answer.
std::atomic<int> g_active{-1};

Backend resolve_from_env() {
  const char* env = std::getenv("GPURES_SIMD");
  if (env != nullptr) {
    const auto parsed = parse_backend(env);
    // An unavailable or unrecognized value degrades to auto: the library
    // cannot refuse to start.  The CLIs validate --simd explicitly.
    if (parsed && available(*parsed)) return *parsed;
  }
  return best_available();
}

}  // namespace

bool available(Backend b) {
  switch (b) {
    case Backend::kScalar:
    case Backend::kSwar:
      return true;
    case Backend::kAvx2:
      return cpu_has_avx2();
  }
  return false;
}

Backend best_available() {
  return available(Backend::kAvx2) ? Backend::kAvx2 : Backend::kSwar;
}

std::vector<Backend> all_available() {
  std::vector<Backend> out{Backend::kScalar, Backend::kSwar};
  if (available(Backend::kAvx2)) out.push_back(Backend::kAvx2);
  return out;
}

std::string_view to_string(Backend b) {
  switch (b) {
    case Backend::kScalar: return "scalar";
    case Backend::kSwar: return "swar";
    case Backend::kAvx2: return "avx2";
  }
  return "unknown";
}

std::optional<Backend> parse_backend(std::string_view name) {
  if (name == "scalar") return Backend::kScalar;
  if (name == "swar") return Backend::kSwar;
  if (name == "avx2") return Backend::kAvx2;
  if (name == "auto") return best_available();
  return std::nullopt;
}

Backend active() {
  int v = g_active.load(std::memory_order_relaxed);
  if (v < 0) {
    v = static_cast<int>(resolve_from_env());
    g_active.store(v, std::memory_order_relaxed);
  }
  return static_cast<Backend>(v);
}

bool set_active(Backend b) {
  if (!available(b)) return false;
  g_active.store(static_cast<int>(b), std::memory_order_relaxed);
  return true;
}

}  // namespace gpures::simd
