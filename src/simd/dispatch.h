// Runtime ISA dispatch for the Stage-I scan kernels.
//
// Three backends implement every kernel in simd/scan.h behind one API:
//
//  * kScalar — the reference implementation (libc memchr / plain loops,
//    exactly the code the pre-SIMD parser ran);
//  * kSwar   — portable 8-byte word tricks, no intrinsics;
//  * kAvx2   — 32-byte AVX2 lanes, compiled with a target attribute and
//    selected only when CPUID reports the ISA.
//
// The dispatch contract is determinism-first: every backend returns
// bit-identical results for every input, so the active backend can never
// change a pipeline artifact — only how fast it is produced.  The
// differential suites (tests/test_simd.cpp, tests/test_simd_differential.cpp)
// enforce this from single kernels up to full golden-pipeline runs.
//
// Selection order: an explicit set_active() call (the CLIs' --simd flag)
// wins; otherwise the GPURES_SIMD environment variable ("scalar", "swar",
// "avx2", "auto"); otherwise the best backend the host supports.  An
// unavailable or unrecognized environment value degrades to auto rather
// than failing: the library cannot refuse to start, but the CLIs reject an
// explicitly requested unavailable backend with a hard error.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace gpures::simd {

enum class Backend : std::uint8_t { kScalar = 0, kSwar = 1, kAvx2 = 2 };

/// True if this host can run the backend (scalar and SWAR always can;
/// AVX2 requires CPUID support on x86).
bool available(Backend b);

/// The fastest available backend (avx2 > swar > scalar).
Backend best_available();

/// Every backend this host can run, in kScalar..kAvx2 order — the iteration
/// set for differential tests and per-backend benchmarks.
std::vector<Backend> all_available();

std::string_view to_string(Backend b);

/// Parse a backend name; "auto" maps to best_available().  nullopt for
/// anything else (including an empty string).
std::optional<Backend> parse_backend(std::string_view name);

/// The backend the dispatched kernels currently use.  First call resolves
/// the GPURES_SIMD environment variable; later calls are one relaxed
/// atomic load.
Backend active();

/// Select the active backend.  Returns false (and changes nothing) if the
/// backend is unavailable on this host.  Not synchronized against kernels
/// running concurrently — callers switch backends between pipeline runs,
/// not during them (the CLIs set it once before any ingestion starts).
bool set_active(Backend b);

}  // namespace gpures::simd
