// The Stage-I scan kernel family: byte search, line slicing, and substring
// search over raw log bytes, in scalar / SWAR / AVX2 variants behind one
// dispatch table.
//
// These are the inner loops of ingestion: DayBuffer::from_text slices a
// whole day file with next_line (one fused pass finds the newline AND
// classifies binary bytes, replacing the memchr-then-byte-loop double scan),
// and FastLineParser pre-filters every line with find_terminator and
// find_substr before any field parsing.
//
// Contract (enforced by tests/test_simd.cpp differential fuzzing):
//  * every backend returns bit-identical results for every input — the
//    scalar variant is the reference, SWAR and AVX2 must match it exactly;
//  * kernels never read past p + n.  Vector variants process whole 8- or
//    32-byte blocks and hand the remainder to the scalar tail loop, so a
//    newline in the final partial lane or a lone '\r' at a chunk edge is
//    handled by the same code path the reference uses;
//  * positions are leftmost-match, "not found" is n.
#pragma once

#include <cstddef>
#include <cstdint>

#include "simd/dispatch.h"

namespace gpures::simd {

/// Result of one fused line scan: the offset of the first '\n' (or n if the
/// buffer ends without one) and whether any byte before it is "binary" — a
/// control byte other than '\t', or DEL.  This is exactly the quarantine
/// screen's is_binary_line predicate fused into the newline search.
struct LineScan {
  std::size_t eol = 0;
  bool binary = false;
};

/// One backend's kernel table.  Callers fetch it once per file (or per
/// parsed line) and pay one indirect call per kernel invocation.
struct ScanOps {
  /// First index of `c` in [p, p+n), else n.
  std::size_t (*find_byte)(const char* p, std::size_t n, char c);
  /// First index of '\n' or '\r' in [p, p+n), else n (the parser's
  /// line-terminator check, one pass instead of two finds).
  std::size_t (*find_terminator)(const char* p, std::size_t n);
  /// Fused newline search + binary classification; see LineScan.
  LineScan (*next_line)(const char* p, std::size_t n);
  /// Occurrences of `c` in [p, p+n).
  std::size_t (*count_byte)(const char* p, std::size_t n, char c);
  /// Leftmost index where needle [q, q+m) occurs in [p, p+n), else n.
  /// m must be >= 1; m > n returns n.
  std::size_t (*find_substr)(const char* p, std::size_t n, const char* q,
                             std::size_t m);
};

/// The kernel table for one backend.  Requesting kAvx2 on a host without
/// AVX2 support returns the SWAR table (callers select backends through
/// dispatch.h, which never hands out an unavailable backend).
const ScanOps& ops(Backend b);

/// ops(active()) — the table the production paths use.
const ScanOps& active_ops();

}  // namespace gpures::simd
