#include "simd/scan.h"

#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define GPURES_SIMD_X86 1
#endif

namespace gpures::simd {

namespace {

// Binary byte per the quarantine screen: control bytes other than '\t'
// cannot occur in a text log line; DEL rounds out the set.  '\n' never
// reaches the predicate (scans stop at the terminator) and a '\r' counts —
// CRLF terminators are normalized away before classification, so any '\r'
// the scanner sees is a lone one.
inline bool is_binary_byte(unsigned char c) {
  return (c < 0x20 && c != '\t') || c == 0x7f;
}

// --- scalar: the reference implementation ---------------------------------
//
// Exactly the code the pre-SIMD parser ran: libc memchr for byte search
// (itself vectorized by the platform) and plain byte loops for
// classification.  The differential suites hold the other backends to these
// functions bit for bit.

std::size_t scalar_find_byte(const char* p, std::size_t n, char c) {
  if (n == 0) return 0;  // empty views may carry a null pointer; memchr is
                         // declared nonnull in glibc
  const void* hit = std::memchr(p, c, n);
  return hit == nullptr
             ? n
             : static_cast<std::size_t>(static_cast<const char*>(hit) - p);
}

std::size_t scalar_find_terminator(const char* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (p[i] == '\n' || p[i] == '\r') return i;
  }
  return n;
}

LineScan scalar_next_line(const char* p, std::size_t n) {
  LineScan out;
  std::size_t i = 0;
  bool binary = false;
  for (; i < n; ++i) {
    const unsigned char c = static_cast<unsigned char>(p[i]);
    if (c == '\n') break;
    binary = binary || is_binary_byte(c);
  }
  out.eol = i;
  out.binary = binary;
  return out;
}

std::size_t scalar_count_byte(const char* p, std::size_t n, char c) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) count += (p[i] == c);
  return count;
}

std::size_t scalar_find_substr(const char* p, std::size_t n, const char* q,
                               std::size_t m) {
  if (m == 0 || m > n) return n;
  const char first = q[0];
  std::size_t i = 0;
  const std::size_t last_start = n - m;
  while (i <= last_start) {
    const void* hit = std::memchr(p + i, first, last_start - i + 1);
    if (hit == nullptr) return n;
    i = static_cast<std::size_t>(static_cast<const char*>(hit) - p);
    if (std::memcmp(p + i, q, m) == 0) return i;
    ++i;
  }
  return n;
}

// --- SWAR: portable 8-byte word tricks ------------------------------------
//
// Exact per-byte masks only: the folklore (x - kOnes) & ~x & kHigh zero test
// can misreport bytes above the first zero (cross-byte borrow), which is
// fine for find-first but wrong for counting and classification — so every
// mask below uses borrow-free formulations.

constexpr std::uint64_t kOnes = 0x0101010101010101ull;
constexpr std::uint64_t kHigh = 0x8080808080808080ull;

inline std::uint64_t load8(const char* p) {
  std::uint64_t w;
  std::memcpy(&w, p, 8);
  return w;
}

/// High bit set in every byte of `x` that is zero.  Exact: (b | 0x80) - 1
/// is computed per byte with no cross-byte borrow (every byte is >= 0x80
/// before the subtraction).
inline std::uint64_t zero_mask(std::uint64_t x) {
  return ~(x | ((x | kHigh) - kOnes)) & kHigh;
}

/// High bit set in every byte equal to `c`.
inline std::uint64_t eq_mask(std::uint64_t x, char c) {
  return zero_mask(x ^ (kOnes * static_cast<unsigned char>(c)));
}

/// High bit set in every byte with unsigned value < 0x20.  (b & 0x7f) +
/// 0x60 stays within the byte, so the add is carry-free; the high bit of
/// the sum is set iff (b & 0x7f) >= 0x20, and ~x clears bytes >= 0x80.
inline std::uint64_t lt32_mask(std::uint64_t x) {
  const std::uint64_t t = (x & ~kHigh) + (kOnes * 0x60);
  return ~t & ~x & kHigh;
}

/// High bit set in every binary byte (see is_binary_byte).  '\n' bytes are
/// reported too — next_line masks everything at or after the terminator.
inline std::uint64_t binary_mask(std::uint64_t x) {
  return (lt32_mask(x) & ~eq_mask(x, '\t')) | eq_mask(x, 0x7f);
}

inline std::size_t first_byte_index(std::uint64_t high_bit_mask) {
  // Lowest set bit is the high bit of the first matching byte: bit 8*i+7.
  return static_cast<std::size_t>(__builtin_ctzll(high_bit_mask)) >> 3;
}

std::size_t swar_find_byte(const char* p, std::size_t n, char c) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const std::uint64_t m = eq_mask(load8(p + i), c);
    if (m != 0) return i + first_byte_index(m);
  }
  for (; i < n; ++i) {
    if (p[i] == c) return i;
  }
  return n;
}

std::size_t swar_find_terminator(const char* p, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const std::uint64_t w = load8(p + i);
    const std::uint64_t m = eq_mask(w, '\n') | eq_mask(w, '\r');
    if (m != 0) return i + first_byte_index(m);
  }
  for (; i < n; ++i) {
    if (p[i] == '\n' || p[i] == '\r') return i;
  }
  return n;
}

LineScan swar_next_line(const char* p, std::size_t n) {
  std::size_t i = 0;
  std::uint64_t binary = 0;
  for (; i + 8 <= n; i += 8) {
    const std::uint64_t w = load8(p + i);
    const std::uint64_t nl = eq_mask(w, '\n');
    std::uint64_t bin = binary_mask(w);
    if (nl != 0) {
      // Keep only bytes strictly before the first newline: bits below its
      // high bit cover exactly the earlier bytes' high-bit positions.
      const int bit = __builtin_ctzll(nl);
      bin &= (1ull << bit) - 1;
      return LineScan{i + (static_cast<std::size_t>(bit) >> 3),
                      (binary | bin) != 0};
    }
    binary |= bin;
  }
  bool tail_binary = false;
  for (; i < n; ++i) {
    const unsigned char c = static_cast<unsigned char>(p[i]);
    if (c == '\n') break;
    tail_binary = tail_binary || is_binary_byte(c);
  }
  return LineScan{i, binary != 0 || tail_binary};
}

std::size_t swar_count_byte(const char* p, std::size_t n, char c) {
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    count += static_cast<std::size_t>(
        __builtin_popcountll(eq_mask(load8(p + i), c)));
  }
  for (; i < n; ++i) count += (p[i] == c);
  return count;
}

std::size_t swar_find_substr(const char* p, std::size_t n, const char* q,
                             std::size_t m) {
  if (m == 0 || m > n) return n;
  const char first = q[0];
  const std::size_t last_start = n - m;
  std::size_t i = 0;
  while (i + 8 <= last_start + 1) {
    std::uint64_t cand = eq_mask(load8(p + i), first);
    while (cand != 0) {
      const std::size_t at = i + first_byte_index(cand);
      if (std::memcmp(p + at, q, m) == 0) return at;
      cand &= cand - 1;  // clear the lowest candidate, try the next
    }
    i += 8;
  }
  for (; i <= last_start; ++i) {
    if (p[i] == first && std::memcmp(p + i, q, m) == 0) return i;
  }
  return n;
}

// --- AVX2: 32-byte lanes behind a target attribute -------------------------
//
// Compiled for AVX2 in this one translation unit and reached only through
// the dispatch table, which never selects them unless CPUID reports the
// ISA.  Tails below 32 bytes run the scalar reference so partial lanes
// cannot diverge from it.

#if defined(GPURES_SIMD_X86)

__attribute__((target("avx2"))) inline unsigned avx2_eq_bits(__m256i x,
                                                             char c) {
  return static_cast<unsigned>(
      _mm256_movemask_epi8(_mm256_cmpeq_epi8(x, _mm256_set1_epi8(c))));
}

__attribute__((target("avx2"))) std::size_t avx2_find_byte(const char* p,
                                                           std::size_t n,
                                                           char c) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    const unsigned m = avx2_eq_bits(x, c);
    if (m != 0) return i + static_cast<std::size_t>(__builtin_ctz(m));
  }
  const std::size_t at = scalar_find_byte(p + i, n - i, c);
  return at == n - i ? n : i + at;
}

__attribute__((target("avx2"))) std::size_t avx2_find_terminator(
    const char* p, std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    const unsigned m = avx2_eq_bits(x, '\n') | avx2_eq_bits(x, '\r');
    if (m != 0) return i + static_cast<std::size_t>(__builtin_ctz(m));
  }
  const std::size_t at = scalar_find_terminator(p + i, n - i);
  return at == n - i ? n : i + at;
}

__attribute__((target("avx2"))) unsigned avx2_binary_bits(__m256i x) {
  // b <= 0x1f unsigned  <=>  min(b, 0x1f) == b.
  const __m256i ctrl = _mm256_cmpeq_epi8(
      _mm256_min_epu8(x, _mm256_set1_epi8(0x1f)), x);
  const unsigned lt32 = static_cast<unsigned>(_mm256_movemask_epi8(ctrl));
  return (lt32 & ~avx2_eq_bits(x, '\t')) | avx2_eq_bits(x, 0x7f);
}

__attribute__((target("avx2"))) LineScan avx2_next_line(const char* p,
                                                        std::size_t n) {
  std::size_t i = 0;
  unsigned binary = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    const unsigned nl = avx2_eq_bits(x, '\n');
    unsigned bin = avx2_binary_bits(x);
    if (nl != 0) {
      const unsigned bit = static_cast<unsigned>(__builtin_ctz(nl));
      bin &= (1u << bit) - 1u;
      return LineScan{i + bit, (binary | bin) != 0};
    }
    binary |= bin;
  }
  const LineScan tail = scalar_next_line(p + i, n - i);
  return LineScan{i + tail.eol, binary != 0 || tail.binary};
}

__attribute__((target("avx2"))) std::size_t avx2_count_byte(const char* p,
                                                            std::size_t n,
                                                            char c) {
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    count += static_cast<std::size_t>(__builtin_popcount(avx2_eq_bits(x, c)));
  }
  return count + scalar_count_byte(p + i, n - i, c);
}

__attribute__((target("avx2"))) std::size_t avx2_find_substr(const char* p,
                                                             std::size_t n,
                                                             const char* q,
                                                             std::size_t m) {
  if (m == 0 || m > n) return n;
  // First+last byte filter: a candidate position must match needle[0] at i
  // and needle[m-1] at i + m - 1; only the survivors pay a memcmp.  The
  // second load sits m - 1 bytes ahead, so the vector loop stops early
  // enough that both loads stay inside the buffer.
  const __m256i first = _mm256_set1_epi8(q[0]);
  const __m256i last = _mm256_set1_epi8(q[m - 1]);
  const std::size_t last_start = n - m;
  std::size_t i = 0;
  while (i + 32 + m - 1 <= n) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i + m - 1));
    unsigned cand = static_cast<unsigned>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(a, first))) &
        static_cast<unsigned>(
            _mm256_movemask_epi8(_mm256_cmpeq_epi8(b, last)));
    while (cand != 0) {
      const std::size_t at = i + static_cast<std::size_t>(__builtin_ctz(cand));
      if (at > last_start) return n;
      if (std::memcmp(p + at, q, m) == 0) return at;
      cand &= cand - 1;
    }
    i += 32;
  }
  if (i > last_start) return n;
  const std::size_t span = n - i;
  const std::size_t at = scalar_find_substr(p + i, span, q, m);
  return at == span ? n : i + at;
}

#endif  // GPURES_SIMD_X86

constexpr ScanOps kScalarOps = {scalar_find_byte, scalar_find_terminator,
                                scalar_next_line, scalar_count_byte,
                                scalar_find_substr};

constexpr ScanOps kSwarOps = {swar_find_byte, swar_find_terminator,
                              swar_next_line, swar_count_byte,
                              swar_find_substr};

#if defined(GPURES_SIMD_X86)
constexpr ScanOps kAvx2Ops = {avx2_find_byte, avx2_find_terminator,
                              avx2_next_line, avx2_count_byte,
                              avx2_find_substr};
#else
constexpr ScanOps kAvx2Ops = kSwarOps;
#endif

}  // namespace

const ScanOps& ops(Backend b) {
  switch (b) {
    case Backend::kScalar: return kScalarOps;
    case Backend::kSwar: return kSwarOps;
    case Backend::kAvx2: return available(Backend::kAvx2) ? kAvx2Ops : kSwarOps;
  }
  return kScalarOps;
}

const ScanOps& active_ops() { return ops(active()); }

}  // namespace gpures::simd
