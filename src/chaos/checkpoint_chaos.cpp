#include "chaos/checkpoint_chaos.h"

#include "common/hash.h"
#include "common/io.h"
#include "common/rng.h"
#include "index/format.h"
#include "serve/checkpoint.h"

namespace gpures::chaos {

namespace {

// Header field offsets (see serve/checkpoint.h): magic[8], version u32,
// endian u32, payload_size u64, payload_hash u64, header_hash u64.
constexpr std::uint64_t kOffVersion = 8;
constexpr std::uint64_t kOffHeaderHash = 32;
constexpr std::uint64_t kHeaderHashedBytes = 32;

unsigned char* bytes_at(std::string& s, std::uint64_t off) {
  return reinterpret_cast<unsigned char*>(s.data()) + off;
}

CheckpointCorruption flip_bit(std::string& s, common::Rng& rng,
                              std::uint64_t lo, std::uint64_t hi,
                              CheckpointFault fault, std::string_view where) {
  CheckpointCorruption c;
  c.fault = fault;
  c.original_size = s.size();
  c.corrupted_size = s.size();
  c.byte_offset = lo + rng.uniform_u64(hi - lo);
  c.bit = static_cast<std::uint32_t>(rng.uniform_u64(8));
  *bytes_at(s, c.byte_offset) ^= static_cast<unsigned char>(1u << c.bit);
  c.detail = "flipped bit " + std::to_string(c.bit) + " of byte " +
             std::to_string(c.byte_offset) + " (" + std::string(where) + ")";
  return c;
}

}  // namespace

std::string_view to_string(CheckpointFault fault) {
  switch (fault) {
    case CheckpointFault::kHeaderBitFlip: return "header-bit-flip";
    case CheckpointFault::kPayloadBitFlip: return "payload-bit-flip";
    case CheckpointFault::kAnyBitFlip: return "any-bit-flip";
    case CheckpointFault::kTruncate: return "truncate";
    case CheckpointFault::kVersionBump: return "version-bump";
  }
  return "unknown";
}

common::Result<CheckpointCorruption> corrupt_checkpoint_bytes(
    std::string& bytes, std::uint64_t seed, CheckpointFault fault) {
  common::Rng rng(seed);
  rng = rng.fork(to_string(fault));

  const std::uint64_t size = bytes.size();
  if (size < serve::kCheckpointHeaderSize) {
    return common::Error::make(
        "corrupt_checkpoint: input is smaller than a checkpoint header (" +
        std::to_string(size) + " bytes)");
  }

  switch (fault) {
    case CheckpointFault::kHeaderBitFlip:
      return flip_bit(bytes, rng, 0, serve::kCheckpointHeaderSize, fault,
                      "header");
    case CheckpointFault::kPayloadBitFlip: {
      if (size <= serve::kCheckpointHeaderSize) {
        return common::Error::make(
            "corrupt_checkpoint: no payload bytes to corrupt");
      }
      return flip_bit(bytes, rng, serve::kCheckpointHeaderSize, size, fault,
                      "payload");
    }
    case CheckpointFault::kAnyBitFlip:
      return flip_bit(bytes, rng, 0, size, fault, "anywhere");
    case CheckpointFault::kTruncate: {
      CheckpointCorruption c;
      c.fault = fault;
      c.original_size = size;
      // Cut anywhere in [0, size): always strictly shorter, so either the
      // header check or the payload-size check must fire.
      c.byte_offset = rng.uniform_u64(size);
      bytes.resize(c.byte_offset);
      c.corrupted_size = bytes.size();
      c.detail = "truncated from " + std::to_string(size) + " to " +
                 std::to_string(c.byte_offset) + " bytes";
      return c;
    }
    case CheckpointFault::kVersionBump: {
      CheckpointCorruption c;
      c.fault = fault;
      c.original_size = size;
      c.corrupted_size = size;
      c.byte_offset = kOffVersion;
      index::store_le32(bytes_at(bytes, kOffVersion),
                        serve::kCheckpointVersion + 1);
      // Keep the header self-consistent so the reader's rejection is the
      // version check, not the header checksum.
      index::store_le64(bytes_at(bytes, kOffHeaderHash),
                        common::xxhash64(bytes.data(), kHeaderHashedBytes));
      c.detail = "bumped version to " +
                 std::to_string(serve::kCheckpointVersion + 1) +
                 ", header hash fixed up";
      return c;
    }
  }
  return common::Error::make("corrupt_checkpoint: unknown fault");
}

common::Result<CheckpointCorruption> corrupt_checkpoint_file(
    const std::filesystem::path& src, const std::filesystem::path& dst,
    std::uint64_t seed, CheckpointFault fault) {
  auto text = common::read_file(src.string());
  if (!text.ok()) return text.error();
  std::string bytes = std::move(text).take();
  auto c = corrupt_checkpoint_bytes(bytes, seed, fault);
  if (!c.ok()) return c;
  const auto st = common::write_text_file(dst.string(), bytes);
  if (!st.ok()) return st.error();
  return c;
}

}  // namespace gpures::chaos
