// Structure-aware corrupter for serve checkpoint files (ckpt-NNNNNNNN.bin).
//
// Sibling of the index corrupter (index_chaos.h), specialized to the
// checkpoint layout (see serve/checkpoint.h): a 40-byte header — magic,
// version, endian tag, payload size, payload XXH64, header XXH64 — followed
// by the serialized payload.  Faults target specific validation steps so
// tests can assert parse_checkpoint fails on the *intended* check, and that
// CheckpointStore::load_latest falls back past the damaged generation
// instead of crashing.  kVersionBump recomputes the header hash so the
// reader's rejection is provably version negotiation, not an incidental
// checksum mismatch.
//
// Deterministic: (seed, fault) over the same input bytes always produces
// the same corrupted bytes.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>

#include "common/error.h"

namespace gpures::chaos {

enum class CheckpointFault : std::uint8_t {
  kHeaderBitFlip,   ///< flip one bit in the 40-byte header
  kPayloadBitFlip,  ///< flip one bit in the payload
  kAnyBitFlip,      ///< flip one bit anywhere in the file
  kTruncate,        ///< cut the file short
  kVersionBump,     ///< future format version, header hash fixed up
};

std::string_view to_string(CheckpointFault fault);

/// What was done, for test diagnostics.
struct CheckpointCorruption {
  CheckpointFault fault = CheckpointFault::kAnyBitFlip;
  std::uint64_t original_size = 0;
  std::uint64_t corrupted_size = 0;
  std::uint64_t byte_offset = 0;  ///< flipped byte / first truncated byte
  std::uint32_t bit = 0;          ///< flipped bit index for bit-flip faults
  std::string detail;
};

/// Corrupt serialized checkpoint `bytes` in place.  Fails (without touching
/// `bytes`) when the input is too small to host the fault.
common::Result<CheckpointCorruption> corrupt_checkpoint_bytes(
    std::string& bytes, std::uint64_t seed, CheckpointFault fault);

/// Read `src`, corrupt, write `dst` (never modifies `src`; `src` == `dst`
/// overwrites in place on disk).
common::Result<CheckpointCorruption> corrupt_checkpoint_file(
    const std::filesystem::path& src, const std::filesystem::path& dst,
    std::uint64_t seed, CheckpointFault fault);

}  // namespace gpures::chaos
