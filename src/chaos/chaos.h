// Deterministic dataset corrupter for chaos-testing the ingestion path.
//
// Real three-year syslog archives do not arrive pristine: files get torn by
// crashed collectors, interleaved with binary garbage, truncated to zero by
// full disks, or simply lost.  This library takes a *clean* dataset
// directory and produces a corrupted copy exhibiting a requested fault
// matrix, reproducibly from (seed, spec): the same pair always yields the
// same corrupted bytes.
//
// Every fault application is recorded in a CorruptionLedger that states, in
// the same categories the loader's DataQualityReport uses, exactly what a
// lenient ingest of the corrupted copy must observe (quarantined lines and
// bytes per category, missing/zero-byte days, rejected accounting rows).
// Tests and the CI chaos job reconcile ledger against report — if the two
// ever disagree, either the corrupter or the loader is lying about a byte.
//
// Fault applications target *disjoint* day files (a shuffled day list is
// consumed left to right), so per-category expectations never collide.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.h"

namespace gpures::chaos {

/// One kind of injected corruption.  Line-level faults corrupt lines within
/// a single (fresh) day file; file-level faults consume `count` day files.
enum class Fault : std::uint8_t {
  kTruncate,           ///< tear the final line of a day file (no trailing \n)
  kGarbage,            ///< inject binary-garbage lines into a day file
  kOverlong,           ///< inject printable lines longer than the line screen
  kDuplicate,          ///< duplicate existing lines (valid but repeated data)
  kReorder,            ///< shuffle a day file's line order
  kMissingDay,         ///< delete whole day files (coverage gaps)
  kMissingAccounting,  ///< delete slurm_accounting.txt
  kSkew,               ///< shift syslog timestamps by +12 h (clock skew)
  kBadAccounting,      ///< malform accounting data rows (extra field)
  kZeroByte,           ///< truncate day files to zero bytes
  kIoFault,            ///< plan a mid-read I/O failure on one day file
};

std::string_view to_string(Fault fault);

/// One fault with its magnitude: lines to inject/corrupt for line-level
/// faults, files to consume for file-level ones (ignored for
/// missing-accounting and io-fault, which are singular).
struct FaultSpec {
  Fault fault = Fault::kGarbage;
  std::uint64_t count = 1;
};

/// A parsed fault matrix.
struct CorruptionSpec {
  std::vector<FaultSpec> faults;

  /// Parse a comma-separated spec: "fault[:count],...", e.g.
  /// "garbage:5,truncate,missing-day:2".  The name "all" expands to the
  /// full fault matrix with default counts.  Unknown names and bad counts
  /// are errors naming the offending token.
  static common::Result<CorruptionSpec> parse(std::string_view text);

  /// Canonical render ("garbage:5,truncate:1,...") — parse(canonical()) is
  /// the identity, and the ledger records it for reproduction.
  std::string canonical() const;
};

/// Machine-readable record of what was done and what a lenient ingest of
/// the corrupted copy must observe.
struct CorruptionLedger {
  std::uint64_t seed = 0;
  std::string spec;  ///< canonical spec string

  /// One entry per fault application that actually touched a file.
  struct Applied {
    std::string fault;
    std::string file;         ///< file name, or "" for dataset-level faults
    std::uint64_t count = 0;  ///< lines corrupted / files consumed
  };
  std::vector<Applied> applied;

  // ---- observable expectations (lenient ingest of the corrupted copy) ----
  // Byte counts exclude line terminators, matching ScreenCounts.
  std::uint64_t expect_binary_lines = 0;
  std::uint64_t expect_binary_bytes = 0;
  std::uint64_t expect_overlong_lines = 0;
  std::uint64_t expect_overlong_bytes = 0;
  std::uint64_t expect_torn_lines = 0;
  std::uint64_t expect_torn_bytes = 0;
  std::uint64_t expect_missing_days = 0;
  std::uint64_t expect_zero_byte_days = 0;
  /// Days skipped as unreadable *when the recorded I/O fault is armed*.
  std::uint64_t expect_skipped_days = 0;
  bool expect_accounting_missing = false;
  std::uint64_t expect_accounting_rejected_rows = 0;
  std::uint64_t expect_accounting_rejected_bytes = 0;

  // ---- runtime fault plan (not materialized on disk) ----
  /// When non-empty, arm common::IoFaultPlan{io_fault_path,
  /// io_fault_after_bytes, kind, times} before loading to trigger the
  /// planned failure.  `io_fault_kind` is the canonical kind name
  /// ("fail", "transient", "eintr", "short-read"); transient kinds carry
  /// `io_fault_times` (how many operations fail before recovery), so a
  /// retrying reader — gpures-serve — is expected to absorb them while a
  /// single-shot batch read still fails.
  std::string io_fault_path;
  std::uint64_t io_fault_after_bytes = 0;
  std::string io_fault_kind = "fail";
  std::uint64_t io_fault_times = 0;

  std::string to_json() const;
  /// Write to_json() to `path` (the corrupter drops it next to the dataset
  /// as corruption_ledger.json; the loader never reads it).
  common::Status write(const std::filesystem::path& path) const;
};

/// Line length beyond which the loader's default screen quarantines a line;
/// overlong injections exceed this.  Kept equal to
/// logsys::LineScreen::max_line_len's default.
inline constexpr std::uint64_t kScreenMaxLineLen = 8192;

/// Copy the dataset at `src` to `dst` (created if needed, files
/// overwritten), applying `spec` with randomness derived purely from
/// `seed`.  Returns the ledger (also written to dst/corruption_ledger.json)
/// or an error.  Requested counts are clamped to the material available
/// (day files, accounting rows); the ledger records what was actually done.
common::Result<CorruptionLedger> corrupt_dataset(
    const std::filesystem::path& src, const std::filesystem::path& dst,
    std::uint64_t seed, const CorruptionSpec& spec);

}  // namespace gpures::chaos
