#include "chaos/index_chaos.h"

#include <fstream>

#include "common/hash.h"
#include "common/io.h"
#include "common/rng.h"
#include "index/format.h"

namespace gpures::chaos {

namespace {

namespace ix = gpures::index;

unsigned char* bytes_at(std::string& s, std::uint64_t off) {
  return reinterpret_cast<unsigned char*>(s.data()) + off;
}

/// Re-derive the header hash after editing header fields, keeping the file
/// self-consistent up to (but not including) the fault under test.
void fix_header_hash(std::string& s) {
  ix::store_le64(bytes_at(s, ix::kOffHeaderHash),
                 common::xxhash64(s.data(), ix::kHeaderHashedBytes));
}

void fix_table_hash(std::string& s) {
  ix::store_le64(bytes_at(s, ix::kOffTableHash),
                 common::xxhash64(s.data() + ix::kSectionTableOffset,
                                  ix::kSectionCount * ix::kSectionEntrySize));
  fix_header_hash(s);
}

IndexCorruption flip_bit(std::string& s, common::Rng& rng, std::uint64_t lo,
                         std::uint64_t hi, IndexFault fault,
                         std::string_view where) {
  IndexCorruption c;
  c.fault = fault;
  c.original_size = s.size();
  c.corrupted_size = s.size();
  c.byte_offset = lo + rng.uniform_u64(hi - lo);
  c.bit = static_cast<std::uint32_t>(rng.uniform_u64(8));
  *bytes_at(s, c.byte_offset) ^= static_cast<unsigned char>(1u << c.bit);
  c.detail = "flipped bit " + std::to_string(c.bit) + " of byte " +
             std::to_string(c.byte_offset) + " (" + std::string(where) + ")";
  return c;
}

}  // namespace

std::string_view to_string(IndexFault fault) {
  switch (fault) {
    case IndexFault::kHeaderBitFlip: return "header-bit-flip";
    case IndexFault::kTableBitFlip: return "table-bit-flip";
    case IndexFault::kPayloadBitFlip: return "payload-bit-flip";
    case IndexFault::kAnyBitFlip: return "any-bit-flip";
    case IndexFault::kTruncate: return "truncate";
    case IndexFault::kVersionBump: return "version-bump";
    case IndexFault::kBadSectionHash: return "bad-section-hash";
  }
  return "unknown";
}

common::Result<IndexCorruption> corrupt_index_bytes(std::string& bytes,
                                                    std::uint64_t seed,
                                                    IndexFault fault) {
  common::Rng rng(seed);
  // Independent draw streams per fault kind, so seed N's truncation point
  // is unrelated to seed N's flip position.
  rng = rng.fork(to_string(fault));

  const std::uint64_t size = bytes.size();
  if (size < ix::kSectionBase) {
    return common::Error::make(
        "corrupt_index: input is smaller than a header + section table (" +
        std::to_string(size) + " bytes); not a gpures index");
  }

  switch (fault) {
    case IndexFault::kHeaderBitFlip:
      return flip_bit(bytes, rng, 0, ix::kHeaderSize, fault, "header");
    case IndexFault::kTableBitFlip:
      return flip_bit(bytes, rng, ix::kSectionTableOffset, ix::kSectionBase,
                      fault, "section table");
    case IndexFault::kPayloadBitFlip:
      if (size == ix::kSectionBase) {
        return common::Error::make(
            "corrupt_index: index has no section payload bytes to corrupt");
      }
      return flip_bit(bytes, rng, ix::kSectionBase, size, fault,
                      "section payload");
    case IndexFault::kAnyBitFlip:
      return flip_bit(bytes, rng, 0, size, fault, "anywhere");
    case IndexFault::kTruncate: {
      IndexCorruption c;
      c.fault = fault;
      c.original_size = size;
      c.corrupted_size = rng.uniform_u64(size);  // in [0, size)
      c.byte_offset = c.corrupted_size;
      bytes.resize(c.corrupted_size);
      c.detail = "truncated " + std::to_string(size) + " bytes to " +
                 std::to_string(c.corrupted_size);
      return c;
    }
    case IndexFault::kVersionBump: {
      IndexCorruption c;
      c.fault = fault;
      c.original_size = size;
      c.corrupted_size = size;
      c.byte_offset = ix::kOffVersion;
      const std::uint32_t v =
          ix::kFormatVersion + 1 +
          static_cast<std::uint32_t>(rng.uniform_u64(1000));
      ix::store_le32(bytes_at(bytes, ix::kOffVersion), v);
      // All checksums stay valid: the only thing wrong with this file is
      // that it comes from the future.
      fix_header_hash(bytes);
      c.detail = "bumped format version to " + std::to_string(v);
      return c;
    }
    case IndexFault::kBadSectionHash: {
      const std::uint64_t section = rng.uniform_u64(ix::kSectionCount);
      const std::uint64_t hash_off = ix::kSectionTableOffset +
                                     section * ix::kSectionEntrySize + 24;
      IndexCorruption c =
          flip_bit(bytes, rng, hash_off, hash_off + 8, fault, "section hash");
      c.fault = fault;
      // Header and table hashes are fixed up, so the reader reaches — and
      // must fail on — the per-section checksum itself.
      fix_table_hash(bytes);
      c.detail += "; section " + std::to_string(section + 1) + " (" +
                  std::string(ix::section_name(
                      static_cast<ix::SectionId>(section + 1))) +
                  "), table/header hashes recomputed";
      return c;
    }
  }
  return common::Error::make("corrupt_index: unknown fault");
}

common::Result<IndexCorruption> corrupt_index_file(
    const std::filesystem::path& src, const std::filesystem::path& dst,
    std::uint64_t seed, IndexFault fault) {
  auto bytes = common::read_file(src.string());
  if (!bytes.ok()) return bytes.error();
  std::string data = std::move(bytes).take();
  auto done = corrupt_index_bytes(data, seed, fault);
  if (!done.ok()) return done.error();
  std::ofstream os(dst, std::ios::trunc | std::ios::binary);
  if (!os ||
      !os.write(data.data(), static_cast<std::streamsize>(data.size()))) {
    return common::Error::at("cannot write corrupted index", dst.string(),
                             std::nullopt);
  }
  return done;
}

}  // namespace gpures::chaos
