#include "chaos/chaos.h"

#include <algorithm>
#include <fstream>

#include "analysis/dataset.h"
#include "common/io.h"
#include "common/json.h"
#include "common/rng.h"
#include "common/strings.h"

namespace gpures::chaos {

namespace fs = std::filesystem;

std::string_view to_string(Fault fault) {
  switch (fault) {
    case Fault::kTruncate:
      return "truncate";
    case Fault::kGarbage:
      return "garbage";
    case Fault::kOverlong:
      return "overlong";
    case Fault::kDuplicate:
      return "duplicate";
    case Fault::kReorder:
      return "reorder";
    case Fault::kMissingDay:
      return "missing-day";
    case Fault::kMissingAccounting:
      return "missing-accounting";
    case Fault::kSkew:
      return "skew";
    case Fault::kBadAccounting:
      return "bad-accounting";
    case Fault::kZeroByte:
      return "zero-byte";
    case Fault::kIoFault:
      return "io-fault";
  }
  return "unknown";
}

namespace {

struct FaultName {
  std::string_view name;
  Fault fault;
  std::uint64_t default_count;
};

// Canonical order; "all" expands to this list minus missing-accounting
// (which would shadow bad-accounting — request it explicitly).
constexpr FaultName kFaults[] = {
    {"truncate", Fault::kTruncate, 1},
    {"garbage", Fault::kGarbage, 3},
    {"overlong", Fault::kOverlong, 2},
    {"duplicate", Fault::kDuplicate, 5},
    {"reorder", Fault::kReorder, 1},
    {"missing-day", Fault::kMissingDay, 1},
    {"missing-accounting", Fault::kMissingAccounting, 1},
    {"skew", Fault::kSkew, 1},
    {"bad-accounting", Fault::kBadAccounting, 3},
    {"zero-byte", Fault::kZeroByte, 1},
    {"io-fault", Fault::kIoFault, 1},
};

const FaultName* find_fault(std::string_view name) {
  for (const auto& f : kFaults) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

}  // namespace

common::Result<CorruptionSpec> CorruptionSpec::parse(std::string_view text) {
  CorruptionSpec spec;
  for (const auto raw : common::split(text, ',')) {
    const auto token = common::trim(raw);
    if (token.empty()) {
      return common::Error::make("chaos spec: empty fault token");
    }
    const auto colon = token.find(':');
    const auto name = token.substr(0, colon);
    std::uint64_t count = 0;
    bool have_count = false;
    if (colon != std::string_view::npos) {
      const long long c = common::parse_ll(token.substr(colon + 1));
      if (c <= 0) {
        return common::Error::make("chaos spec: bad count in '" +
                                   std::string(token) + "'");
      }
      count = static_cast<std::uint64_t>(c);
      have_count = true;
    }
    if (name == "all") {
      if (have_count) {
        return common::Error::make("chaos spec: 'all' takes no count");
      }
      for (const auto& f : kFaults) {
        if (f.fault == Fault::kMissingAccounting) continue;
        spec.faults.push_back(FaultSpec{f.fault, f.default_count});
      }
      continue;
    }
    const FaultName* f = find_fault(name);
    if (f == nullptr) {
      return common::Error::make("chaos spec: unknown fault '" +
                                 std::string(name) + "'");
    }
    spec.faults.push_back(
        FaultSpec{f->fault, have_count ? count : f->default_count});
  }
  if (spec.faults.empty()) {
    return common::Error::make("chaos spec: no faults requested");
  }
  return spec;
}

std::string CorruptionSpec::canonical() const {
  std::string out;
  for (const auto& f : faults) {
    if (!out.empty()) out += ',';
    out += to_string(f.fault);
    out += ':';
    out += std::to_string(f.count);
  }
  return out;
}

std::string CorruptionLedger::to_json() const {
  common::JsonWriter w;
  w.begin_object();
  w.kv("seed", seed);
  w.kv("spec", spec);

  w.key("expect");
  w.begin_object();
  w.kv("binary_lines", expect_binary_lines);
  w.kv("binary_bytes", expect_binary_bytes);
  w.kv("overlong_lines", expect_overlong_lines);
  w.kv("overlong_bytes", expect_overlong_bytes);
  w.kv("torn_lines", expect_torn_lines);
  w.kv("torn_bytes", expect_torn_bytes);
  w.kv("missing_days", expect_missing_days);
  w.kv("zero_byte_days", expect_zero_byte_days);
  w.kv("skipped_days", expect_skipped_days);
  w.kv("accounting_missing", expect_accounting_missing);
  w.kv("accounting_rejected_rows", expect_accounting_rejected_rows);
  w.kv("accounting_rejected_bytes", expect_accounting_rejected_bytes);
  w.end_object();

  w.key("io_fault");
  w.begin_object();
  w.kv("path", io_fault_path);
  w.kv("after_bytes", io_fault_after_bytes);
  w.kv("kind", io_fault_kind);
  w.kv("times", io_fault_times);
  w.end_object();

  w.key("applied");
  w.begin_array();
  for (const auto& a : applied) {
    w.begin_object();
    w.kv("fault", a.fault);
    w.kv("file", a.file);
    w.kv("count", a.count);
    w.end_object();
  }
  w.end_array();

  w.end_object();
  return std::move(w).str();
}

common::Status CorruptionLedger::write(const fs::path& path) const {
  std::ofstream os(path, std::ios::trunc | std::ios::binary);
  if (!os) {
    return common::Error::make("chaos: cannot write ledger " + path.string());
  }
  os << to_json() << '\n';
  os.flush();
  if (!os) {
    return common::Error::make("chaos: ledger write failed: " + path.string());
  }
  return {};
}

namespace {

common::Status write_file(const fs::path& path, std::string_view text) {
  std::ofstream os(path, std::ios::trunc | std::ios::binary);
  if (!os) {
    return common::Error::make("chaos: cannot write " + path.string());
  }
  os.write(text.data(), static_cast<std::streamsize>(text.size()));
  os.flush();
  if (!os) {
    return common::Error::make("chaos: write failed on " + path.string());
  }
  return {};
}

/// Split into lines without terminators, dropping trailing empties (day
/// files never legitimately end in blank lines).
std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    const auto nl = text.find('\n', start);
    const auto end = nl == std::string_view::npos ? text.size() : nl;
    lines.emplace_back(text.substr(start, end - start));
    if (nl == std::string_view::npos) break;
    start = nl + 1;
  }
  while (!lines.empty() && lines.back().empty()) lines.pop_back();
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines,
                       bool final_newline) {
  std::string out;
  std::size_t bytes = 0;
  for (const auto& l : lines) bytes += l.size() + 1;
  out.reserve(bytes);
  for (const auto& l : lines) {
    out += l;
    out += '\n';
  }
  if (!final_newline && !out.empty()) out.pop_back();
  return out;
}

/// A binary-garbage payload: random bytes, '\n' remapped so the payload
/// stays one line, and a guaranteed control byte so the line screen can
/// never mistake it for text.
std::string garbage_payload(common::Rng& rng) {
  const std::size_t len = 16 + rng.uniform_u64(64);
  std::string payload(len, '\0');
  for (std::size_t i = 0; i < len; i += 8) {
    std::uint64_t bits = rng.next_u64();
    for (std::size_t j = i; j < std::min(i + 8, len); ++j) {
      char c = static_cast<char>(bits & 0xff);
      bits >>= 8;
      if (c == '\n') c = '\x01';
      payload[j] = c;
    }
  }
  payload[0] = static_cast<char>(1 + rng.uniform_u64(8));  // 0x01..0x08
  return payload;
}

std::string overlong_payload(common::Rng& rng) {
  const std::size_t len = kScreenMaxLineLen + 1 + rng.uniform_u64(2048);
  std::string payload(len, 'x');
  for (std::size_t i = 0; i < len; ++i) {
    payload[i] = static_cast<char>('a' + (i % 26));
  }
  return payload;
}

/// Shift a syslog header hour by +12 in place; returns whether the line
/// looked like "Mon DD HH:MM:SS ..." and was changed.
bool skew_line(std::string& line) {
  // "May  5 07:23:01" — hour digits at [7,9), colons at 9 and 12.
  if (line.size() < 15 || line[9] != ':' || line[12] != ':') return false;
  if (line[7] < '0' || line[7] > '9' || line[8] < '0' || line[8] > '9') {
    return false;
  }
  const int hour = (line[7] - '0') * 10 + (line[8] - '0');
  if (hour > 23) return false;
  const int skewed = (hour + 12) % 24;
  line[7] = static_cast<char>('0' + skewed / 10);
  line[8] = static_cast<char>('0' + skewed % 10);
  return true;
}

/// What the corrupter will do to one day file.
struct DayAction {
  Fault fault = Fault::kTruncate;
  std::uint64_t count = 0;  ///< lines, for line-level faults
  bool active = false;
};

}  // namespace

common::Result<CorruptionLedger> corrupt_dataset(const fs::path& src,
                                                 const fs::path& dst,
                                                 std::uint64_t seed,
                                                 const CorruptionSpec& spec) {
  if (!fs::is_directory(src / "syslog")) {
    return common::Error::make("chaos: not a dataset directory (no syslog/): " +
                               src.string());
  }
  std::error_code ec;
  fs::create_directories(dst / "syslog", ec);
  if (ec) {
    return common::Error::make("chaos: cannot create " + dst.string() + ": " +
                               ec.message());
  }

  CorruptionLedger ledger;
  ledger.seed = seed;
  ledger.spec = spec.canonical();
  common::Rng rng(seed);

  // Day files in name (= date) order; everything else in syslog/ is copied
  // verbatim so pre-existing strays survive the corruption pass.
  std::vector<std::string> days;
  std::vector<fs::path> strays;
  for (const auto& entry : fs::directory_iterator(src / "syslog")) {
    const auto name = entry.path().filename().string();
    if (entry.is_regular_file() && analysis::day_file_date(name)) {
      days.push_back(name);
    } else if (entry.is_regular_file()) {
      strays.push_back(entry.path());
    }
  }
  std::sort(days.begin(), days.end());

  // Disjoint target assignment: a shuffled day list consumed left to right,
  // so no day receives two faults and every ledger expectation is exact.
  std::vector<std::size_t> order(days.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  auto target_rng = rng.fork("targets");
  target_rng.shuffle(order);
  std::size_t cursor = 0;
  const auto take_days = [&](std::uint64_t want) {
    std::vector<std::size_t> out;
    while (out.size() < want && cursor < order.size()) {
      out.push_back(order[cursor++]);
    }
    return out;
  };

  std::vector<DayAction> actions(days.size());
  bool accounting_missing = false;
  std::uint64_t bad_accounting_rows = 0;
  for (const auto& f : spec.faults) {
    switch (f.fault) {
      case Fault::kMissingAccounting:
        accounting_missing = true;
        break;
      case Fault::kBadAccounting:
        bad_accounting_rows += f.count;
        break;
      case Fault::kGarbage:
      case Fault::kOverlong:
      case Fault::kDuplicate:
        // Line-level: all `count` lines land in one fresh day.
        for (const auto i : take_days(1)) {
          actions[i] = DayAction{f.fault, f.count, true};
        }
        break;
      case Fault::kTruncate:
      case Fault::kReorder:
      case Fault::kMissingDay:
      case Fault::kSkew:
      case Fault::kZeroByte:
        for (const auto i : take_days(f.count)) {
          actions[i] = DayAction{f.fault, 1, true};
        }
        break;
      case Fault::kIoFault:
        for (const auto i : take_days(1)) {
          actions[i] = DayAction{f.fault, 1, true};
        }
        break;
    }
  }

  const auto note = [&ledger](Fault fault, const std::string& file,
                              std::uint64_t count) {
    ledger.applied.push_back(
        CorruptionLedger::Applied{std::string(to_string(fault)), file, count});
  };

  for (std::size_t i = 0; i < days.size(); ++i) {
    const auto& name = days[i];
    auto text = common::read_file((src / "syslog" / name).string());
    if (!text.ok()) {
      return common::Error::make("chaos: " + text.error().message);
    }
    const auto dst_path = dst / "syslog" / name;
    const DayAction& act = actions[i];
    if (!act.active) {
      auto st = write_file(dst_path, text.value());
      if (!st.ok()) return st.error();
      continue;
    }
    auto fault_rng = rng.fork(to_string(act.fault)).fork(name);
    switch (act.fault) {
      case Fault::kMissingDay:
        ledger.expect_missing_days += 1;
        note(act.fault, name, 1);
        continue;  // nothing written
      case Fault::kZeroByte: {
        auto st = write_file(dst_path, "");
        if (!st.ok()) return st.error();
        ledger.expect_zero_byte_days += 1;
        note(act.fault, name, 1);
        continue;
      }
      case Fault::kIoFault: {
        auto st = write_file(dst_path, text.value());
        if (!st.ok()) return st.error();
        ledger.io_fault_path = name;
        ledger.io_fault_after_bytes =
            std::max<std::uint64_t>(1, text.value().size() / 2);
        ledger.expect_skipped_days += 1;
        note(act.fault, name, 1);
        continue;
      }
      default:
        break;
    }
    auto lines = split_lines(text.value());
    bool final_newline = true;
    std::uint64_t applied = 0;
    switch (act.fault) {
      case Fault::kTruncate: {
        if (lines.empty()) break;
        auto& last = lines.back();
        const std::uint64_t frag =
            1 + fault_rng.uniform_u64(std::max<std::size_t>(last.size(), 1));
        last.resize(std::min<std::size_t>(frag, last.size()));
        final_newline = false;
        ledger.expect_torn_lines += 1;
        ledger.expect_torn_bytes += last.size();
        applied = 1;
        break;
      }
      case Fault::kGarbage:
        for (std::uint64_t k = 0; k < act.count; ++k) {
          auto payload = garbage_payload(fault_rng);
          ledger.expect_binary_lines += 1;
          ledger.expect_binary_bytes += payload.size();
          const std::size_t pos = fault_rng.uniform_u64(lines.size() + 1);
          lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(pos),
                       std::move(payload));
          ++applied;
        }
        break;
      case Fault::kOverlong:
        for (std::uint64_t k = 0; k < act.count; ++k) {
          auto payload = overlong_payload(fault_rng);
          ledger.expect_overlong_lines += 1;
          ledger.expect_overlong_bytes += payload.size();
          const std::size_t pos = fault_rng.uniform_u64(lines.size() + 1);
          lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(pos),
                       std::move(payload));
          ++applied;
        }
        break;
      case Fault::kDuplicate:
        for (std::uint64_t k = 0; k < act.count && !lines.empty(); ++k) {
          const std::size_t idx = fault_rng.uniform_u64(lines.size());
          lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(idx) + 1,
                       lines[idx]);
          ++applied;
        }
        break;
      case Fault::kReorder:
        fault_rng.shuffle(lines);
        applied = 1;
        break;
      case Fault::kSkew:
        for (auto& line : lines) {
          if (skew_line(line)) ++applied;
        }
        break;
      default:
        break;
    }
    if (applied > 0) note(act.fault, name, applied);
    auto st = write_file(dst_path, join_lines(lines, final_newline));
    if (!st.ok()) return st.error();
  }

  for (const auto& stray : strays) {
    auto text = common::read_file(stray.string());
    if (!text.ok()) {
      return common::Error::make("chaos: " + text.error().message);
    }
    auto st = write_file(dst / "syslog" / stray.filename(), text.value());
    if (!st.ok()) return st.error();
  }

  // Manifest: copied verbatim (manifest corruption is covered by the parser's
  // own negative tests; the corrupter's matrix targets the bulk data).
  if (auto manifest = common::read_file((src / "manifest.txt").string());
      manifest.ok()) {
    auto st = write_file(dst / "manifest.txt", manifest.value());
    if (!st.ok()) return st.error();
  }

  // Accounting: dropped entirely, malformed row by row, or copied verbatim.
  if (accounting_missing) {
    ledger.expect_accounting_missing = true;
    note(Fault::kMissingAccounting, "slurm_accounting.txt", 1);
  } else {
    auto acc = common::read_file((src / "slurm_accounting.txt").string());
    if (acc.ok() && bad_accounting_rows == 0) {
      auto st = write_file(dst / "slurm_accounting.txt", acc.value());
      if (!st.ok()) return st.error();
    } else if (acc.ok()) {
      auto lines = split_lines(acc.value());
      if (lines.size() > 1) {
        // Candidate rows are everything after the header; malform a
        // deterministic random subset by prepending a stray field, which
        // bumps the field count past what the parser accepts.
        std::vector<std::size_t> rows;
        for (std::size_t i = 1; i < lines.size(); ++i) {
          if (!lines[i].empty()) rows.push_back(i);
        }
        auto acc_rng = rng.fork("bad-accounting");
        acc_rng.shuffle(rows);
        const std::uint64_t n =
            std::min<std::uint64_t>(bad_accounting_rows, rows.size());
        for (std::uint64_t k = 0; k < n; ++k) {
          auto& row = lines[rows[k]];
          row.insert(0, "x|");
          ledger.expect_accounting_rejected_rows += 1;
          ledger.expect_accounting_rejected_bytes += row.size();
        }
        if (n > 0) note(Fault::kBadAccounting, "slurm_accounting.txt", n);
      }
      auto st = write_file(dst / "slurm_accounting.txt",
                           join_lines(lines, /*final_newline=*/true));
      if (!st.ok()) return st.error();
    }
  }

  auto st = ledger.write(dst / "corruption_ledger.json");
  if (!st.ok()) return st.error();
  return ledger;
}

}  // namespace gpures::chaos
