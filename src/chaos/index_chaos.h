// Structure-aware corrupter for gpures.idx artifacts.
//
// Sibling of the dataset corrupter (chaos.h), specialized to the binary
// index: instead of corrupting at random it targets specific structures —
// header, section table, column payloads, the version field, a single
// section checksum — so tests can assert not just that IndexReader::open
// fails, but that it fails on the *intended* check.  For the version-bump
// and bad-section-hash faults the corrupter recomputes every checksum
// upstream of the target, proving the reader's failure is version
// negotiation (or the section hash) and not an incidental header-hash
// mismatch.
//
// Deterministic: (seed, fault) over the same input bytes always produces
// the same corrupted bytes.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>

#include "common/error.h"

namespace gpures::chaos {

enum class IndexFault : std::uint8_t {
  kHeaderBitFlip,   ///< flip one bit in the 48-byte header
  kTableBitFlip,    ///< flip one bit in the section table
  kPayloadBitFlip,  ///< flip one bit in a section payload
  kAnyBitFlip,      ///< flip one bit anywhere in the file
  kTruncate,        ///< cut the file short
  kVersionBump,     ///< future format version, all checksums consistent
  kBadSectionHash,  ///< corrupt one stored section hash, table/header fixed up
};

std::string_view to_string(IndexFault fault);

/// What was done, for test diagnostics and ledger-style reporting.
struct IndexCorruption {
  IndexFault fault = IndexFault::kAnyBitFlip;
  std::uint64_t original_size = 0;
  std::uint64_t corrupted_size = 0;
  std::uint64_t byte_offset = 0;  ///< flipped byte / first truncated byte
  std::uint32_t bit = 0;          ///< flipped bit index for bit-flip faults
  std::string detail;             ///< human-readable description
};

/// Corrupt the serialized index `bytes` in place.  Fails (without touching
/// `bytes`) when the input is too small to host the fault — e.g. a payload
/// bit-flip on an index whose sections are all empty of entropy is still
/// possible (padding is hashed), but a sub-header-size input is not.
common::Result<IndexCorruption> corrupt_index_bytes(std::string& bytes,
                                                    std::uint64_t seed,
                                                    IndexFault fault);

/// Read `src`, corrupt, write `dst` (never modifies `src`).
common::Result<IndexCorruption> corrupt_index_file(
    const std::filesystem::path& src, const std::filesystem::path& dst,
    std::uint64_t seed, IndexFault fault);

}  // namespace gpures::chaos
