#include "cluster/memory_model.h"

#include <stdexcept>

namespace gpures::cluster {

GpuMemory::GpuMemory(const MemoryModelConfig& cfg)
    : cfg_(cfg),
      bank_spares_(static_cast<std::size_t>(cfg.banks_per_gpu),
                   cfg.spare_rows_per_bank) {
  if (cfg.banks_per_gpu <= 0 || cfg.spare_rows_per_bank < 0) {
    throw std::invalid_argument("GpuMemory: bad bank configuration");
  }
}

MemoryFaultOutcome GpuMemory::on_uncorrectable_fault(
    common::Rng& rng, const MemoryModelConfig& probs) {
  const auto bank =
      static_cast<std::int32_t>(rng.uniform_u64(bank_spares_.size()));
  return on_uncorrectable_fault_in_bank(rng, probs, bank);
}

MemoryFaultOutcome GpuMemory::on_uncorrectable_fault_in_bank(
    common::Rng& rng, const MemoryModelConfig& probs, std::int32_t bank) {
  if (bank < 0 || bank >= static_cast<std::int32_t>(bank_spares_.size())) {
    throw std::out_of_range("GpuMemory: bad bank index");
  }
  MemoryFaultOutcome out;
  out.bank = bank;
  out.row = static_cast<std::uint32_t>(rng.uniform_u64(1u << 14));
  out.dbe_logged = rng.bernoulli(probs.dbe_log_probability);

  auto& spares = bank_spares_[static_cast<std::size_t>(bank)];
  if (spares > 0) {
    --spares;
    ++remapped_;
    out.remap_succeeded = true;
  } else {
    ++remap_failures_;
    out.remap_succeeded = false;
  }

  // Dynamic page offlining happens regardless of remap outcome: the page is
  // marked unallocatable so the node can stay in service.
  ++offlined_;

  out.containment_attempted = rng.bernoulli(probs.touch_probability);
  if (out.containment_attempted) {
    out.contained = rng.bernoulli(probs.containment_success);
  }
  return out;
}

std::int32_t GpuMemory::spares_remaining() const {
  std::int32_t total = 0;
  for (auto s : bank_spares_) total += s;
  return total;
}

void GpuMemory::replace(const MemoryModelConfig& cfg) {
  cfg_ = cfg;
  bank_spares_.assign(static_cast<std::size_t>(cfg.banks_per_gpu),
                      cfg.spare_rows_per_bank);
  remapped_ = 0;
  offlined_ = 0;
  remap_failures_ = 0;
}

void GpuMemory::set_bank_spares(std::int32_t bank, std::int32_t spares) {
  if (bank < 0 || bank >= static_cast<std::int32_t>(bank_spares_.size()) ||
      spares < 0) {
    throw std::out_of_range("GpuMemory::set_bank_spares: bad arguments");
  }
  bank_spares_[static_cast<std::size_t>(bank)] = spares;
}

}  // namespace gpures::cluster
