#include "cluster/fault_config.h"

#include <cmath>
#include <stdexcept>

namespace gpures::cluster {

double FaultConfig::expected_gpus_per_incident(std::int32_t peer_count) const {
  if (peer_count <= 0) return 1.0;
  // Given propagation, the first peer always joins and each further peer
  // joins with geometric continuation probability, truncated at peer_count.
  double expected_extra = 0.0;
  double p_reach = 1.0;
  for (std::int32_t k = 1; k <= peer_count; ++k) {
    expected_extra += p_reach;
    p_reach *= nvlink.extra_peer_probability;
  }
  return 1.0 + nvlink.multi_gpu_probability * expected_extra;
}

FaultConfig FaultConfig::delta_a100() {
  using common::make_date;
  FaultConfig c;
  // Measurement window: 2022-01-01 .. 2025-03-16 (1170 days);
  // operational period starts 2022-10-01 (paper Section III-A).
  c.study_begin = make_date(2022, 1, 1);
  c.op_begin = make_date(2022, 10, 1);
  c.study_end = make_date(2025, 3, 16);

  // ---- background process calibration (paper Table I counts) ----
  // MMU (XID 31): table counts are 1,078 pre / 8,863 op.  A slice of those
  // is produced by the PMU->MMU coupling below (expected extra per period =
  // pmu_count * trigger_p * burst_mean), so the background spec is the table
  // count minus the induced expectation.
  // Idle-affinity calibration solves (1 - a) * utilization = busy-hit rate
  // implied by Table II's "#jobs encountering" column at ~72% GPU utilization.
  c.pmu = {8.0, 77.0, /*dup*/ 1.0, 4.0, /*idle_affinity=*/0.26};
  c.pmu_coupling = PmuCouplingConfig{};  // 0.8 * 3.0 => x2.4 per PMU error
  const double induced_pre =
      c.pmu.pre_count * c.pmu_coupling.trigger_probability * c.pmu_coupling.burst_mean;
  const double induced_op =
      c.pmu.op_count * c.pmu_coupling.trigger_probability * c.pmu_coupling.burst_mean;
  c.mmu = {1078.0 - induced_pre, 8863.0 - induced_op, /*dup*/ 2.0, 4.0,
           /*idle_affinity=*/0.47};

  // Uncorrectable memory fault chain (XIDs 48/63/64/94/95): the table's
  // "Uncorrectable ECC memory errors" row is 46 pre / 34 op; pre-op splits
  // into 15 background faults plus the degraded-GPU episode (expected 31
  // faults concentrated on a 16-spare bank => 16 RREs + 15 RRFs, matching
  // the table's 31 RRE / 15 RRF).
  c.mem_fault = {15.0, 34.0, /*dup*/ 1.2, 3.0, /*idle_affinity=*/0.46};

  // NVLink (XID 74): the table counts per-GPU errors (2,092 pre / 1,922 op);
  // 42% of incidents propagate to >=2 GPUs, so divide by the expected GPUs
  // per incident on the dominant 4-way nodes (3 peers).
  c.nvlink = NvlinkModelConfig{};
  const double gpus_per_incident = c.expected_gpus_per_incident(3);
  c.nvlink_incident = {2092.0 / gpus_per_incident, 1922.0 / gpus_per_incident,
                       /*dup*/ 1.5, 3.0, /*idle_affinity=*/0.94};

  c.off_bus = {4.0, 10.0, /*dup*/ 0.5, 2.0, /*idle_affinity=*/0.5};
  c.gsp = {209.0, 3857.0, /*dup*/ 1.5, 4.0, /*idle_affinity=*/0.99};

  // ---- memory-management behaviour per period ----
  // Pre-op: 22 of 46 faults were touched by a process and all containments
  // succeeded (no background XID 95 beyond the faulty-GPU episode).
  c.memory_pre = MemoryModelConfig{};
  c.memory_pre.touch_probability = 22.0 / 46.0;
  c.memory_pre.containment_success = 1.0;
  c.memory_pre.dbe_log_probability = 0.0;  // no XID 48 logged pre-op
  // Op: 24 of 34 faults attempted containment; 13 contained, 11 uncontained.
  c.memory_op = MemoryModelConfig{};
  c.memory_op.touch_probability = 24.0 / 34.0;
  c.memory_op.containment_success = 13.0 / 24.0;
  c.memory_op.dbe_log_probability = 1.0 / 34.0;  // the single op-period DBE

  // ---- episodes ----
  UncontainedEpisode unc;
  unc.gpu = {52, 1};
  unc.begin = make_date(2022, 5, 5);
  unc.end = make_date(2022, 5, 22);  // "persisted for 17 days (May 5th-21st)"
  unc.gap_s = 37.8;                  // ~38,900 coalesced errors over 17 days
  unc.gap_jitter_s = 3.0;
  unc.dup_extra_mean = 25.0;         // >1M raw log lines in total
  c.uncontained_episodes.push_back(unc);

  DegradedMemoryEpisode deg;
  deg.gpu = {17, 2};
  deg.begin = make_date(2022, 2, 10);
  deg.end = make_date(2022, 8, 20);
  deg.expected_faults = 31.0;
  deg.bank = 0;
  deg.bank_spares = 16;
  c.degraded_memory_episodes.push_back(deg);

  c.recovery = RecoveryConfig{};
  c.validate();
  return c;
}

FaultConfig FaultConfig::test_config() {
  using common::make_date;
  FaultConfig c = delta_a100();
  // 90-day window: 30 days pre-op + 60 days op.
  c.study_begin = make_date(2023, 1, 1);
  c.op_begin = make_date(2023, 1, 31);
  c.study_end = make_date(2023, 4, 1);
  // Keep per-hour rates comparable to the full campaign by scaling counts to
  // the shorter periods (full campaign: 6,552 pre-op hours, 21,528 op hours).
  const double pre_f = c.pre_hours() / 6552.0;
  const double op_f = c.op_hours() / 21528.0;
  for (ProcessSpec* p : {&c.mmu, &c.mem_fault, &c.nvlink_incident, &c.off_bus,
                         &c.gsp, &c.pmu}) {
    p->pre_count *= pre_f;
    p->op_count *= op_f;
  }
  // Boost the rare families so a short test window still exercises every
  // code path (memory chain, off-bus, PMU coupling).
  c.mem_fault.pre_count = 10.0;
  c.mem_fault.op_count = 18.0;
  c.off_bus.pre_count = 2.0;
  c.off_bus.op_count = 4.0;
  c.pmu.pre_count = 4.0;
  c.pmu.op_count = 12.0;
  // Short windows make big storms statistically violent (a couple of extra
  // storms flips the pre-op MTBE); use many small storms instead so tests
  // see stable per-period counts.
  c.nvlink_storms.storms_pre = 60.0;
  c.nvlink_storms.storms_op = 30.0;
  // Re-anchor the episodes inside the shortened window.
  c.uncontained_episodes.clear();
  UncontainedEpisode unc;
  unc.gpu = {3, 0};
  unc.begin = make_date(2023, 1, 10);
  unc.end = make_date(2023, 1, 13);  // 3-day burst instead of 17
  c.uncontained_episodes.push_back(unc);
  c.degraded_memory_episodes.clear();
  DegradedMemoryEpisode deg;
  deg.gpu = {1, 1};
  deg.begin = make_date(2023, 1, 5);
  deg.end = make_date(2023, 1, 25);
  deg.expected_faults = 31.0;
  deg.bank_spares = 16;
  c.degraded_memory_episodes.push_back(deg);
  c.validate();
  return c;
}

void FaultConfig::validate() const {
  if (!(study_begin < op_begin && op_begin < study_end)) {
    throw std::invalid_argument("FaultConfig: need study_begin < op_begin < study_end");
  }
  if (scale <= 0.0) {
    throw std::invalid_argument("FaultConfig: scale must be positive");
  }
  if (dup_max_span_s < 0.0) {
    throw std::invalid_argument("FaultConfig: negative dup_max_span_s");
  }
  for (const ProcessSpec* p : {&mmu, &mem_fault, &nvlink_incident, &off_bus,
                               &gsp, &pmu}) {
    if (p->pre_count < 0.0 || p->op_count < 0.0 || p->dup_extra_mean < 0.0 ||
        p->dup_spread_s < 0.0 || p->idle_affinity < 0.0 ||
        p->idle_affinity > 1.0) {
      throw std::invalid_argument("FaultConfig: bad process parameter");
    }
  }
  if (gsp_119_fraction < 0.0 || gsp_119_fraction > 1.0 ||
      pmu_122_fraction < 0.0 || pmu_122_fraction > 1.0) {
    throw std::invalid_argument("FaultConfig: bad family split fraction");
  }
  for (const auto& e : uncontained_episodes) {
    if (!(e.begin >= study_begin && e.end <= study_end && e.begin < e.end)) {
      throw std::invalid_argument("FaultConfig: uncontained episode outside window");
    }
    if (e.gap_s <= e.gap_jitter_s) {
      throw std::invalid_argument("FaultConfig: episode gap must exceed jitter");
    }
  }
  for (const auto& e : degraded_memory_episodes) {
    if (!(e.begin >= study_begin && e.end <= study_end && e.begin < e.end)) {
      throw std::invalid_argument("FaultConfig: degraded episode outside window");
    }
    if (e.bank_spares < 0 || e.expected_faults < 0.0) {
      throw std::invalid_argument("FaultConfig: bad degraded episode");
    }
  }
}

}  // namespace gpures::cluster
