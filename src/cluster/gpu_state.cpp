#include "cluster/gpu_state.h"

#include <stdexcept>

namespace gpures::cluster {

std::string_view to_string(NodeState s) {
  switch (s) {
    case NodeState::kUp: return "UP";
    case NodeState::kDraining: return "DRAINING";
    case NodeState::kRebooting: return "REBOOTING";
    case NodeState::kAwaitingReplacement: return "AWAITING_REPLACEMENT";
  }
  return "UNKNOWN";
}

bool NodeHealth::any_error_pending() const {
  for (const auto& g : gpus_) {
    if (g.error_pending) return true;
  }
  return false;
}

void NodeHealth::begin_drain(common::TimePoint t) {
  if (state_ != NodeState::kUp) {
    throw std::logic_error("NodeHealth::begin_drain: node not up");
  }
  state_ = NodeState::kDraining;
  state_since_ = t;
}

void NodeHealth::begin_reboot(common::TimePoint t) {
  if (state_ != NodeState::kDraining && state_ != NodeState::kUp) {
    throw std::logic_error("NodeHealth::begin_reboot: node not draining/up");
  }
  state_ = NodeState::kRebooting;
  state_since_ = t;
}

void NodeHealth::begin_replacement(common::TimePoint t) {
  if (state_ != NodeState::kRebooting) {
    throw std::logic_error("NodeHealth::begin_replacement: node not rebooting");
  }
  state_ = NodeState::kAwaitingReplacement;
  state_since_ = t;
}

void NodeHealth::return_to_service(common::TimePoint t, bool was_replacement) {
  if (state_ != NodeState::kRebooting &&
      state_ != NodeState::kAwaitingReplacement) {
    throw std::logic_error("NodeHealth::return_to_service: node not down");
  }
  for (auto& g : gpus_) {
    if (g.error_pending) {
      g.error_pending = false;
      ++g.resets;
      if (was_replacement) ++g.replacements;
    }
  }
  state_ = NodeState::kUp;
  state_since_ = t;
}

}  // namespace gpures::cluster
