// Cluster topology: the Delta A100 partition layout.
//
// The study's system is 106 A100 GPU nodes: 100 nodes with 4-way A100s and 6
// nodes with 8-way A100s (448 GPUs total), each GPU with 40 GB HBM2e.  The
// topology module owns node naming, PCI addressing (used to attribute syslog
// XID lines to GPUs), and NVLink connectivity within a node.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "des/shard.h"
#include "xid/event.h"

namespace gpures::cluster {

/// Contiguous [begin, end) node slice — the unit of simulation sharding.
/// {0, node_count} (the default everywhere it appears) means "the whole
/// cluster" and reproduces unsharded behaviour exactly.
using NodeRange = des::IndexRange;

/// Static description of one node.
struct NodeSpec {
  std::string name;        ///< e.g. "gpua042"
  std::int32_t gpu_count = 4;
};

/// Static description of the cluster.
struct ClusterSpec {
  std::vector<NodeSpec> nodes;

  /// The Delta A100 partition: 100x 4-way ("gpuaNNN") + 6x 8-way ("gpubNNN").
  static ClusterSpec delta_a100();

  /// A small synthetic cluster for tests/examples.
  static ClusterSpec small(std::int32_t nodes4 = 4, std::int32_t nodes8 = 1);

  /// A Delta-shaped fleet of arbitrary size: `nodes4` 4-way nodes
  /// ("gpuaN...") followed by `nodes8` 8-way nodes ("gpubN...").  With
  /// (100, 6) this reproduces delta_a100() exactly; multi-thousand-node
  /// campaigns pick proportionally larger counts (gpures-simulate --nodes).
  static ClusterSpec scaled(std::int32_t nodes4, std::int32_t nodes8);

  std::int32_t node_count() const { return static_cast<std::int32_t>(nodes.size()); }
  std::int32_t total_gpus() const;
};

/// Runtime topology with index/name/PCI lookups.
class Topology {
 public:
  explicit Topology(ClusterSpec spec);

  const ClusterSpec& spec() const { return spec_; }
  std::int32_t node_count() const { return spec_.node_count(); }
  std::int32_t total_gpus() const { return total_gpus_; }

  const NodeSpec& node(std::int32_t idx) const { return spec_.nodes.at(static_cast<std::size_t>(idx)); }
  std::int32_t gpus_on_node(std::int32_t idx) const { return node(idx).gpu_count; }

  /// Node index by hostname; nullopt if unknown.
  std::optional<std::int32_t> node_index(std::string_view hostname) const;

  /// PCI bus id string for a GPU slot, e.g. "0000:27:00".  Slot -> bus
  /// mapping is fixed per node type (mirrors typical HGX board layouts).
  std::string pci_bus(xid::GpuId gpu) const;

  /// Inverse of pci_bus: slot for a PCI bus string on the given node.
  std::optional<std::int32_t> slot_for_pci(std::int32_t node_idx,
                                           std::string_view pci) const;

  /// Global flat GPU index in [0, total_gpus()): useful for per-GPU arrays.
  std::int32_t flat_index(xid::GpuId gpu) const;
  xid::GpuId from_flat(std::int32_t flat) const;

  /// First flat GPU index of `node` (flat indices of a contiguous node range
  /// are themselves contiguous — the property simulation sharding relies on).
  std::int32_t flat_base(std::int32_t node) const {
    return flat_base_.at(static_cast<std::size_t>(node));
  }

  /// Total GPUs on nodes [begin, end).
  std::int32_t gpus_in_nodes(std::int32_t begin, std::int32_t end) const;

  /// Enumerate NVLink peer slots of `slot` on a node with `gpu_count` GPUs.
  /// A100 HGX boards are all-to-all through NVSwitch, so peers are simply the
  /// other slots on the node.
  std::vector<std::int32_t> nvlink_peers(std::int32_t node_idx,
                                         std::int32_t slot) const;

 private:
  ClusterSpec spec_;
  std::int32_t total_gpus_ = 0;
  std::vector<std::int32_t> flat_base_;  ///< per node: first flat index
};

}  // namespace gpures::cluster
