#include "cluster/fault_injector.h"

#include <cmath>
#include <stdexcept>

namespace gpures::cluster {

namespace {
constexpr double kSecondsPerHour = 3600.0;
}

std::string_view to_string(Fault::Kind k) {
  switch (k) {
    case Fault::Kind::kMmu: return "mmu";
    case Fault::Kind::kMemFault: return "mem_fault";
    case Fault::Kind::kMemFaultDegraded: return "mem_fault_degraded";
    case Fault::Kind::kNvlink: return "nvlink";
    case Fault::Kind::kNvlinkStorm: return "nvlink_storm";
    case Fault::Kind::kOffBus: return "off_bus";
    case Fault::Kind::kGsp: return "gsp";
    case Fault::Kind::kPmu: return "pmu";
    case Fault::Kind::kUncontainedEpisode: return "uncontained_episode";
  }
  return "unknown";
}

FaultInjector::FaultInjector(des::Engine& engine, const Topology& topo,
                             const FaultConfig& cfg, common::Rng rng,
                             Sink sink, NodeRange range)
    : engine_(engine), topo_(topo), cfg_(cfg), rng_(std::move(rng)),
      sink_(std::move(sink)), range_(range) {
  cfg_.validate();
  if (!sink_) throw std::invalid_argument("FaultInjector: null sink");
  if (range_.end <= range_.begin) range_ = {0, topo_.node_count()};
  if (range_.begin < 0 || range_.end > topo_.node_count()) {
    throw std::invalid_argument("FaultInjector: node range out of bounds");
  }
  range_flat_base_ = topo_.flat_base(range_.begin);
  range_gpus_ = topo_.gpus_in_nodes(range_.begin, range_.end);
  // Exactly 1.0 for the full range, so unsharded rate arithmetic is
  // bit-identical to the pre-sharding injector.
  gpu_share_ = static_cast<double>(range_gpus_) /
               static_cast<double>(topo_.total_gpus());
}

void FaultInjector::set_metrics(obs::MetricsRegistry* m) {
  if (m == nullptr) {
    kind_metrics_.fill(nullptr);
    return;
  }
  for (std::size_t k = 0; k < kKinds; ++k) {
    kind_metrics_[k] = &m->counter(
        "sim.faults." + std::string(to_string(static_cast<Fault::Kind>(k))));
  }
}

void FaultInjector::deliver(const Fault& f) {
  ++delivered_;
  if (auto* c = kind_metrics_[static_cast<std::size_t>(f.kind)]) c->inc();
  sink_(f);
}

double FaultInjector::rate_at(const ProcessSpec& spec,
                              common::TimePoint t) const {
  if (t < cfg_.study_begin || t >= cfg_.study_end) return 0.0;
  if (t < cfg_.op_begin) {
    return gpu_share_ * cfg_.scale * spec.pre_count / cfg_.pre_hours();
  }
  return gpu_share_ * cfg_.scale * spec.op_count / cfg_.op_hours();
}

void FaultInjector::start() {
  // NVLink incidents are delivered through storm episodes, not directly; the
  // storm process spec lives in the injector so its rate bookkeeping works
  // like any other family's.
  storm_spec_.pre_count = cfg_.nvlink_storms.storms_pre;
  storm_spec_.op_count = cfg_.nvlink_storms.storms_op;
  const Process processes[] = {
      {Fault::Kind::kMmu, &cfg_.mmu},
      {Fault::Kind::kMemFault, &cfg_.mem_fault},
      {Fault::Kind::kNvlinkStorm, &storm_spec_},
      {Fault::Kind::kOffBus, &cfg_.off_bus},
      {Fault::Kind::kGsp, &cfg_.gsp},
      {Fault::Kind::kPmu, &cfg_.pmu},
  };
  for (const auto& p : processes) {
    schedule_next(p, std::max(engine_.now(), cfg_.study_begin));
  }
  // Episodes are pinned to a GPU; only the injector whose slice owns that
  // node runs them (under sharding exactly one shard does).
  for (std::size_t i = 0; i < cfg_.uncontained_episodes.size(); ++i) {
    if (!range_.contains(cfg_.uncontained_episodes[i].gpu.node)) continue;
    schedule_uncontained(static_cast<std::int32_t>(i),
                         cfg_.uncontained_episodes[i].begin);
  }
  for (std::size_t i = 0; i < cfg_.degraded_memory_episodes.size(); ++i) {
    if (!range_.contains(cfg_.degraded_memory_episodes[i].gpu.node)) continue;
    schedule_degraded(static_cast<std::int32_t>(i),
                      cfg_.degraded_memory_episodes[i].begin);
  }
}

void FaultInjector::schedule_next(const Process& proc, common::TimePoint from) {
  // Exact sampling of a piecewise-constant-rate Poisson process: draw an
  // exponential gap at the current period's rate; if the arrival would cross
  // the next rate boundary, restart the draw at the boundary (memorylessness
  // makes this exact, not an approximation).
  common::TimePoint t = from;
  while (t < cfg_.study_end) {
    const double rate_per_hour = rate_at(*proc.spec, t);
    const common::TimePoint boundary =
        t < cfg_.op_begin ? cfg_.op_begin : cfg_.study_end;
    if (rate_per_hour <= 0.0) {
      t = boundary;
      continue;
    }
    const double gap_s =
        rng_.exponential(rate_per_hour / kSecondsPerHour);
    // Guard against overflow/huge draws by clamping to the boundary check.
    const double max_gap = static_cast<double>(cfg_.study_end - t) + 1.0;
    const auto gap = static_cast<common::TimePoint>(std::min(gap_s, max_gap));
    if (t + gap >= boundary && boundary != cfg_.study_end) {
      t = boundary;  // re-draw in the next period
      continue;
    }
    t += std::max<common::TimePoint>(gap, 1);
    if (t >= cfg_.study_end) return;
    const Process proc_copy = proc;
    engine_.schedule_at(t, [this, proc_copy] {
      Fault f;
      f.kind = proc_copy.kind;
      f.gpu = random_gpu();
      deliver(f);
      schedule_next(proc_copy, engine_.now());
    });
    return;
  }
}

void FaultInjector::schedule_uncontained(std::int32_t idx,
                                         common::TimePoint from) {
  const auto& ep = cfg_.uncontained_episodes[static_cast<std::size_t>(idx)];
  common::TimePoint t = std::max(from, ep.begin);
  const double jitter = rng_.uniform(-ep.gap_jitter_s, ep.gap_jitter_s);
  t += std::max<common::TimePoint>(
      1, static_cast<common::TimePoint>(std::llround(ep.gap_s + jitter)));
  if (t >= ep.end || t >= cfg_.study_end) return;
  engine_.schedule_at(t, [this, idx] {
    const auto& e = cfg_.uncontained_episodes[static_cast<std::size_t>(idx)];
    Fault f;
    f.kind = Fault::Kind::kUncontainedEpisode;
    f.gpu = e.gpu;
    f.episode_index = idx;
    deliver(f);
    schedule_uncontained(idx, engine_.now());
  });
}

void FaultInjector::schedule_degraded(std::int32_t idx,
                                      common::TimePoint from) {
  const auto& ep = cfg_.degraded_memory_episodes[static_cast<std::size_t>(idx)];
  const double hours = common::to_hours(ep.end - ep.begin);
  if (hours <= 0.0 || ep.expected_faults <= 0.0) return;
  const double rate_per_s = ep.expected_faults / (hours * kSecondsPerHour);
  common::TimePoint t = std::max(from, ep.begin);
  const double gap_s = rng_.exponential(rate_per_s);
  if (gap_s > static_cast<double>(ep.end - t)) return;
  t += std::max<common::TimePoint>(
      1, static_cast<common::TimePoint>(std::llround(gap_s)));
  if (t >= ep.end || t >= cfg_.study_end) return;
  engine_.schedule_at(t, [this, idx] {
    const auto& e = cfg_.degraded_memory_episodes[static_cast<std::size_t>(idx)];
    Fault f;
    f.kind = Fault::Kind::kMemFaultDegraded;
    f.gpu = e.gpu;
    f.episode_index = idx;
    deliver(f);
    schedule_degraded(idx, engine_.now());
  });
}

xid::GpuId FaultInjector::random_gpu() {
  // Uniform over the slice's GPUs.  For the full range this draws
  // uniform_u64(total_gpus) with base 0 — bit-identical to the unsharded
  // injector's draw.
  const auto flat =
      range_flat_base_ +
      static_cast<std::int32_t>(
          rng_.uniform_u64(static_cast<std::uint64_t>(range_gpus_)));
  return topo_.from_flat(flat);
}

}  // namespace gpures::cluster
