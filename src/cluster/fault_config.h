// Fault-process configuration for the cluster simulator, calibrated to the
// reproduced study's published statistics (Table I of the paper).
//
// Each tracked XID family is driven by a Poisson process whose system-wide
// expected count is specified per period (pre-operational vs operational);
// the injector converts counts to rates using the period lengths.  On top of
// the stationary background processes sit the paper's named episodes:
//
//  * the faulty GPU that emitted uncontained memory errors (XID 95)
//    continuously for 17 days of the pre-op period (May 5-21, 2022),
//    producing ~38.9k coalesced errors and over a million raw log lines;
//  * a degraded-memory GPU whose hammered bank exhausts its spare rows,
//    which is what produces the pre-op period's row-remapping failures.
//
// Raw-log duplication (the reason the paper's pipeline needs a coalescing
// stage) is modeled per family as a geometric number of extra duplicate
// lines spread over a few seconds after each error.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.h"
#include "cluster/memory_model.h"
#include "cluster/nvlink_model.h"
#include "xid/event.h"

namespace gpures::cluster {

/// Expected system-wide coalesced-error counts for one fault family.
struct ProcessSpec {
  double pre_count = 0.0;  ///< expected errors in the pre-operational period
  double op_count = 0.0;   ///< expected errors in the operational period
  /// Mean number of *extra* duplicated raw lines per error (geometric).
  double dup_extra_mean = 1.5;
  /// Duplicates are spread over this mean horizon after the error (seconds);
  /// must stay well inside the coalescing window to be merged back.
  double dup_spread_s = 4.0;
  /// Probability a fault landing on a busy GPU is redirected to an idle one.
  /// Field data shows hardware errors (GSP, NVLink especially) overwhelmingly
  /// strike GPUs that are not running user work — the paper records only 31
  /// jobs ever encountering a GSP error against 3,857 GSP errors logged.
  double idle_affinity = 0.0;
};

/// The continuously-logging faulty GPU (paper finding vi): emits one error
/// every `gap_s` +- `gap_jitter_s`, each with heavy duplication.
struct UncontainedEpisode {
  xid::GpuId gpu{52, 1};
  common::TimePoint begin = 0;
  common::TimePoint end = 0;
  double gap_s = 37.8;          ///< mean spacing between coalesced errors
  double gap_jitter_s = 3.0;    ///< uniform jitter; keep gaps > coalesce dt
  double dup_extra_mean = 25.0; ///< ~26 raw lines per error -> >1M lines total
};

/// A GPU whose uncorrectable faults concentrate in one bank until the spare
/// rows run out, yielding row-remapping failures.
struct DegradedMemoryEpisode {
  xid::GpuId gpu{17, 2};
  common::TimePoint begin = 0;
  common::TimePoint end = 0;
  double expected_faults = 31.0;  ///< all hitting `bank`
  std::int32_t bank = 0;
  std::int32_t bank_spares = 16;  ///< spares available in that bank
};

/// Recovery / downtime behaviour (drives Fig. 2 and the availability figure).
struct RecoveryConfig {
  /// Health checks run periodically; detection latency of a reset-requiring
  /// error is uniform in [0, health_check_period_s].
  double health_check_period_s = 300.0;
  /// Drain: node stops accepting jobs; surviving jobs get at most this long
  /// to finish before the reboot proceeds anyway.
  double drain_cap_s = 1200.0;
  /// Reboot + post-reboot health-check duration: lognormal(mu, sigma) hours.
  double reboot_lognormal_mu = -0.92;     ///< median ~0.40 h
  double reboot_lognormal_sigma = 0.82;   ///< mean ~0.56 h, long tail
  /// Probability the reset fails and the GPU must be physically replaced.
  double reset_failure_probability = 0.002;
  /// Replacement turnaround: uniform [lo, hi] hours.
  double replacement_lo_h = 8.0;
  double replacement_hi_h = 48.0;
};

/// NVLink errors arrive as *storms*: a defective link, connector, or bridge
/// flaps and logs errors repeatedly on one node until cleared, so thousands
/// of NVLink errors concentrate into a few dozen episodes.  This temporal
/// clustering is what lets the paper see 1,922 operational NVLink errors yet
/// only 80 jobs ever encountering one.
struct NvlinkStormConfig {
  double storms_pre = 55.0;     ///< expected storm episodes, pre-op
  double storms_op = 50.0;      ///< expected storm episodes, op
  double incident_gap_s = 240.0;///< mean spacing of incidents inside a storm
  /// Probability a storm starting on a node with running jobs relocates to
  /// an idle node (defective links are often caught by health checks/burn-in
  /// rather than by user jobs).
  double idle_affinity = 0.85;
};

/// PMU -> MMU error-propagation coupling (paper finding iii: PMU SPI
/// communication errors correlate with MMU errors).
struct PmuCouplingConfig {
  double trigger_probability = 0.8;  ///< PMU error spawns an MMU burst
  double burst_mean = 3.0;           ///< geometric mean MMU errors per burst
  double delay_mean_s = 120.0;       ///< exp. delay from PMU error to burst
  double intra_burst_gap_s = 90.0;   ///< spacing inside the burst (> coalesce dt)
};

/// Full fault configuration.
struct FaultConfig {
  // --- measurement window (defaults: the paper's 1170-day window) ---
  common::TimePoint study_begin = 0;  ///< pre-op starts
  common::TimePoint op_begin = 0;     ///< operational period starts
  common::TimePoint study_end = 0;

  // --- background processes (system-wide expected coalesced counts) ---
  ProcessSpec mmu;               ///< XID 31 (background, non-PMU-induced)
  ProcessSpec mem_fault;         ///< uncorrectable-memory-fault chain
  /// NVLink *incidents* (already divided by the expected GPUs per incident;
  /// see delta_a100()).  Incidents arrive clustered into storms per
  /// `nvlink_storms`, not as an independent Poisson stream.
  ProcessSpec nvlink_incident;
  ProcessSpec off_bus;           ///< XID 79
  ProcessSpec gsp;               ///< XID 119/120 family
  ProcessSpec pmu;               ///< XID 122/123 family

  NvlinkStormConfig nvlink_storms;

  /// Fraction of GSP family errors logged as XID 119 (rest are 120).
  double gsp_119_fraction = 0.8;
  /// Fraction of PMU family errors logged as XID 122 (rest are 123).
  double pmu_122_fraction = 0.85;

  PmuCouplingConfig pmu_coupling;

  // --- component models, per period (containment behaviour differed) ---
  MemoryModelConfig memory_pre;
  MemoryModelConfig memory_op;
  NvlinkModelConfig nvlink;

  // --- episodes ---
  std::vector<UncontainedEpisode> uncontained_episodes;
  std::vector<DegradedMemoryEpisode> degraded_memory_episodes;

  RecoveryConfig recovery;

  /// Hard cap on how far a duplicated raw line may trail its error's first
  /// line (seconds).  Must stay below the pipeline's coalescing window or
  /// Stage II will split one error into several.
  double dup_max_span_s = 25.0;

  /// Uniform scale factor on all background counts and episode lengths; lets
  /// tests/examples run proportionally smaller campaigns quickly.
  double scale = 1.0;

  // --- derived helpers ---
  double pre_hours() const { return common::to_hours(op_begin - study_begin); }
  double op_hours() const { return common::to_hours(study_end - op_begin); }

  /// Expected GPUs logging XID 74 per NVLink incident under `nvlink` and a
  /// node with `peer_count` NVLink peers.
  double expected_gpus_per_incident(std::int32_t peer_count) const;

  /// The calibrated Delta A100 configuration (matches paper Table I).
  static FaultConfig delta_a100();

  /// A lighter configuration for tests: same structure, ~90-day window,
  /// higher rates so small simulations still see every error family.
  static FaultConfig test_config();

  /// Throws std::invalid_argument if the configuration is inconsistent
  /// (non-positive periods, episodes outside the window, bad fractions).
  void validate() const;
};

}  // namespace gpures::cluster
