// The cluster simulator: interprets raw faults through the component models,
// emits ground-truth error events and raw (duplicated) syslog-style records,
// and runs the SRE recovery workflow that produces node downtime.
//
// Layering: FaultInjector -> ClusterSim -> {RawLineSink, SimListener}.
// The simulator knows nothing about log text formats (the logsys layer
// renders lines) or about jobs (the campaign wires a listener that applies
// the job-failure propagation model).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cluster/fault_config.h"
#include "cluster/fault_injector.h"
#include "cluster/gpu_state.h"
#include "cluster/health_check.h"
#include "cluster/memory_model.h"
#include "cluster/nvlink_model.h"
#include "cluster/topology.h"
#include "common/rng.h"
#include "des/event_queue.h"
#include "xid/event.h"

namespace gpures::cluster {

/// Receives every raw log record the cluster would write to syslog.
/// One coalesced error produces 1 + dup raw records.
class RawLineSink {
 public:
  virtual ~RawLineSink() = default;
  /// `slot` is the GPU slot; `detail` is the code-specific payload suffix.
  virtual void on_xid_record(common::TimePoint t, std::int32_t node,
                             std::int32_t slot, xid::Code code,
                             const std::string& detail) = 0;
};

/// Context the simulator attaches to each ground-truth error notification.
struct ErrorNotification {
  xid::GpuErrorEvent event;
  bool reset_required = false;       ///< triggers the recovery workflow
  bool recovered_by_retry = false;   ///< NVLink CRC retry masked the fault
  bool kills_processes = false;      ///< containment terminated processes
};

/// Observes simulator state changes (campaign wires this to the job layer).
class SimListener {
 public:
  virtual ~SimListener() = default;
  virtual void on_error(const ErrorNotification&) {}
  /// Node stops accepting new jobs (drain begins) — downtime clock starts.
  virtual void on_drain_begin(std::int32_t /*node*/, common::TimePoint) {}
  /// Node reboots: any still-running job on it dies now.
  virtual void on_node_down(std::int32_t /*node*/, common::TimePoint) {}
  /// Node back in service.
  virtual void on_node_up(std::int32_t /*node*/, common::TimePoint) {}
};

/// Asked how long draining a node will take (the job layer answers with the
/// remaining runtime of the node's jobs, capped).  Absent a scheduler, the
/// simulator uses RecoverySampler::default_drain.
using DrainQuery = std::function<common::Duration(
    std::int32_t node, common::TimePoint now, common::Duration cap)>;

/// Asked whether a GPU currently hosts user work; drives each family's
/// idle-affinity retargeting.  Absent a scheduler, faults are never
/// retargeted.
using GpuBusyQuery = std::function<bool(xid::GpuId)>;

class ClusterSim {
 public:
  /// `range` restricts the simulator to a contiguous node slice (the unit of
  /// fleet sharding): faults are injected, retargeted, and recovered only
  /// within the slice, and per-node/per-GPU state is allocated for the slice
  /// alone.  The default covers the whole cluster and reproduces unsharded
  /// behaviour bit-for-bit.
  ClusterSim(des::Engine& engine, const Topology& topo, FaultConfig cfg,
             common::Rng rng, NodeRange range = {});

  /// Optional listeners (may be set before start()).
  void set_raw_sink(RawLineSink* sink) { raw_sink_ = sink; }
  void set_listener(SimListener* l) { listener_ = l; }

  /// Attach observability counters: sim.errors_emitted, sim.raw_xid_lines,
  /// sim.dup_xid_lines, per-code sim.xid_lines.<code>, sim.recoveries, and
  /// the fault injector's per-kind counters.  Counts only — the simulation
  /// itself (RNG draws, event order) is unaffected.
  void set_metrics(obs::MetricsRegistry* m);
  void set_drain_query(DrainQuery q) { drain_query_ = std::move(q); }
  void set_busy_query(GpuBusyQuery q) { busy_query_ = std::move(q); }

  /// Install fault arrivals on the engine.  Call once before running.
  void start();

  /// Run the engine to the end of the study window.
  void run_to_end();

  const Topology& topology() const { return topo_; }
  const FaultConfig& config() const { return cfg_; }
  const NodeRange& node_range() const { return range_; }
  const xid::GroundTruth& ground_truth() const { return truth_; }
  xid::GroundTruth& mutable_ground_truth() { return truth_; }
  /// `node` / `gpu` must lie within node_range().
  NodeState node_state(std::int32_t node) const;
  const GpuMemory& gpu_memory(xid::GpuId gpu) const;

  /// Total raw records emitted (diagnostics).
  std::uint64_t raw_records() const { return raw_records_; }

 private:
  void handle_fault(const Fault& raw_fault);
  void handle_mem_fault(const Fault& f, bool degraded);
  void handle_nvlink(const Fault& f);
  void handle_nvlink_storm(std::int32_t node);
  void schedule_storm_incident(std::int32_t node, std::int32_t remaining);
  void handle_pmu(const Fault& f);
  void emit_induced_mmu(xid::GpuId gpu, std::int32_t remaining);

  /// Record one coalesced error: ground truth + raw duplicated records +
  /// listener notification + (if reset_required) the recovery workflow.
  void emit_error(common::TimePoint t, xid::GpuId gpu, xid::Code code,
                  std::string detail, const ProcessSpec* dup_spec,
                  bool reset_required, bool recovered_by_retry,
                  bool kills_processes, double dup_extra_mean_override = -1.0);

  void begin_recovery(std::int32_t node);
  const MemoryModelConfig& memory_probs_now() const;
  bool node_accepts_faults(std::int32_t node) const;

  /// Apply a family's idle affinity: when the chosen GPU is busy, retarget
  /// to a random idle GPU with probability `idle_affinity`.  When
  /// `require_idle_node` is set the whole node must be idle — NVLink
  /// incidents propagate to peer GPUs, so idle-affine NVLink faults must
  /// land on fully idle nodes to actually avoid user work.
  xid::GpuId maybe_retarget(xid::GpuId gpu, double idle_affinity,
                            bool require_idle_node = false);

  des::Engine& engine_;
  const Topology& topo_;
  FaultConfig cfg_;
  common::Rng rng_;
  NodeRange range_;                   ///< node slice this simulator owns
  std::int32_t range_flat_base_ = 0;  ///< first flat GPU index in range
  std::int32_t range_gpus_ = 0;       ///< GPUs in range
  RecoverySampler recovery_;
  NvlinkModel nvlink_;
  std::unique_ptr<FaultInjector> injector_;

  std::vector<NodeHealth> nodes_;    ///< by node - range_.begin
  std::vector<GpuMemory> memories_;  ///< by flat GPU index - range_flat_base_

  NodeHealth& node_health(std::int32_t node) {
    return nodes_[static_cast<std::size_t>(node - range_.begin)];
  }
  const NodeHealth& node_health(std::int32_t node) const {
    return nodes_[static_cast<std::size_t>(node - range_.begin)];
  }
  GpuMemory& memory_at(xid::GpuId gpu) {
    return memories_[static_cast<std::size_t>(topo_.flat_index(gpu) -
                                              range_flat_base_)];
  }

  RawLineSink* raw_sink_ = nullptr;
  SimListener* listener_ = nullptr;
  DrainQuery drain_query_;
  GpuBusyQuery busy_query_;

  xid::GroundTruth truth_;
  std::uint64_t raw_records_ = 0;

  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* errors_metric_ = nullptr;
  obs::Counter* raw_lines_metric_ = nullptr;
  obs::Counter* dup_lines_metric_ = nullptr;
  obs::Counter* recoveries_metric_ = nullptr;
  std::unordered_map<std::uint16_t, obs::Counter*> code_metrics_;

  /// Lazily-resolved per-XID-code raw-line counter.
  obs::Counter* code_metric(xid::Code code);
};

}  // namespace gpures::cluster
