// A100 HBM2e ECC error-management model.
//
// Models the Ampere uncorrectable-memory-error handling chain the paper
// describes (NVIDIA memory error management, r555):
//
//   uncorrectable fault (1 DBE, or 2 SBEs at one address)
//     -> row remapping: use a spare row for the faulty row
//          success -> Row Remapping Event (XID 63)
//          spares exhausted -> Row Remapping Failure (XID 64)
//     -> dynamic page offlining: faulty page marked unallocatable
//     -> if a process was touching the region: error containment
//          success -> Contained Memory Error (XID 94), process killed
//          failure -> Uncontained Memory Error (XID 95), GPU reset needed
//
// The model tracks spare-row inventory per memory bank (A100 supports up to
// 512 remaps per GPU, previous generations had only 64 page retirements and
// no remapping), so RRFs emerge mechanistically once a defective GPU burns
// through its bank's spares.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "xid/xid.h"

namespace gpures::cluster {

/// Tunable parameters of the memory management chain.
struct MemoryModelConfig {
  /// Memory banks per GPU (HBM2e stacks x banks); remap spares are per bank.
  std::int32_t banks_per_gpu = 32;
  /// Spare rows per bank.  32 banks x 16 = 512 total remaps per GPU (A100).
  std::int32_t spare_rows_per_bank = 16;
  /// Probability the uncorrectable fault manifests as an explicit DBE log
  /// (XID 48) rather than the two-SBE path (SBEs are silently corrected and
  /// not logged, so only the remap/containment chain is visible for them).
  double dbe_log_probability = 0.03;
  /// Probability an active process was touching the faulty region, which
  /// triggers the containment path at all.
  double touch_probability = 0.6;
  /// Probability containment succeeds given it is attempted.
  double containment_success = 0.9;
};

/// Outcome of one uncorrectable memory fault.
struct MemoryFaultOutcome {
  bool dbe_logged = false;        ///< XID 48 emitted
  bool remap_succeeded = false;   ///< XID 63 (RRE) vs XID 64 (RRF)
  bool containment_attempted = false;
  bool contained = false;         ///< XID 94 vs XID 95 when attempted
  std::int32_t bank = 0;
  /// Faulty-row address within the bank (for log payload realism).
  std::uint32_t row = 0;
};

/// Per-GPU memory error-management state.
class GpuMemory {
 public:
  explicit GpuMemory(const MemoryModelConfig& cfg);

  /// Process one uncorrectable fault at a random bank.  `probs` supplies the
  /// probabilistic behaviour (DBE logging, touch, containment success), which
  /// the campaign varies per period; the spare-row inventory is persistent
  /// state owned by this object.
  MemoryFaultOutcome on_uncorrectable_fault(common::Rng& rng,
                                            const MemoryModelConfig& probs);

  /// Process a fault pinned to a specific bank (defective-GPU episodes hammer
  /// one bank, which is what exhausts spares in the field).
  MemoryFaultOutcome on_uncorrectable_fault_in_bank(
      common::Rng& rng, const MemoryModelConfig& probs, std::int32_t bank);

  /// Remaining spare rows across all banks.
  std::int32_t spares_remaining() const;
  std::int32_t remapped_rows() const { return remapped_; }
  std::int32_t offlined_pages() const { return offlined_; }
  std::int32_t remap_failures() const { return remap_failures_; }

  /// Physical replacement: fresh spares, counters reset.
  void replace(const MemoryModelConfig& cfg);

  /// Override spares in one bank (used to model GPUs received with partially
  /// consumed spare inventory).
  void set_bank_spares(std::int32_t bank, std::int32_t spares);

 private:
  MemoryModelConfig cfg_;
  std::vector<std::int32_t> bank_spares_;
  std::int32_t remapped_ = 0;
  std::int32_t offlined_ = 0;
  std::int32_t remap_failures_ = 0;
};

}  // namespace gpures::cluster
