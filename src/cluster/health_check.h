// SRE recovery workflow model: health-check detection, drain, reboot,
// replacement.  The paper's site reliability engineers run automatic node
// health checks that alert on GPU errors; recovery drains the node, reboots
// it, and returns it to service if post-reboot checks pass — otherwise the
// node stays down until the GPU is physically swapped.
#pragma once

#include "cluster/fault_config.h"
#include "common/rng.h"
#include "common/time.h"

namespace gpures::cluster {

/// Samples the stochastic pieces of one recovery episode.
class RecoverySampler {
 public:
  explicit RecoverySampler(RecoveryConfig cfg) : cfg_(cfg) {}

  const RecoveryConfig& config() const { return cfg_; }

  /// Delay from error occurrence to health-check alert (seconds).
  common::Duration detection_latency(common::Rng& rng) const;

  /// Reboot + post-reboot health-check duration (seconds).
  common::Duration reboot_duration(common::Rng& rng) const;

  /// Whether the reset fails and hardware replacement is needed.
  bool reset_fails(common::Rng& rng) const;

  /// Replacement turnaround (seconds).
  common::Duration replacement_duration(common::Rng& rng) const;

  /// Default drain-time model used when no job scheduler is attached: with
  /// probability `busy_fraction` the node has work that takes a uniform slice
  /// of the drain cap to finish; otherwise drain completes immediately.
  common::Duration default_drain(common::Rng& rng,
                                 double busy_fraction = 0.5) const;

 private:
  RecoveryConfig cfg_;
};

}  // namespace gpures::cluster
