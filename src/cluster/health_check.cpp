#include "cluster/health_check.h"

#include <algorithm>
#include <cmath>

namespace gpures::cluster {

common::Duration RecoverySampler::detection_latency(common::Rng& rng) const {
  return static_cast<common::Duration>(
      rng.uniform(0.0, std::max(cfg_.health_check_period_s, 1.0)));
}

common::Duration RecoverySampler::reboot_duration(common::Rng& rng) const {
  const double hours =
      rng.lognormal(cfg_.reboot_lognormal_mu, cfg_.reboot_lognormal_sigma);
  return std::max<common::Duration>(
      60, static_cast<common::Duration>(hours * 3600.0));
}

bool RecoverySampler::reset_fails(common::Rng& rng) const {
  return rng.bernoulli(cfg_.reset_failure_probability);
}

common::Duration RecoverySampler::replacement_duration(common::Rng& rng) const {
  const double hours = rng.uniform(cfg_.replacement_lo_h, cfg_.replacement_hi_h);
  return static_cast<common::Duration>(hours * 3600.0);
}

common::Duration RecoverySampler::default_drain(common::Rng& rng,
                                                double busy_fraction) const {
  if (!rng.bernoulli(busy_fraction)) return 0;
  return static_cast<common::Duration>(rng.uniform(0.0, cfg_.drain_cap_s));
}

}  // namespace gpures::cluster
