#include "cluster/nvlink_model.h"

#include <algorithm>

namespace gpures::cluster {

NvlinkIncident NvlinkModel::on_link_fault(common::Rng& rng,
                                          const Topology& topo,
                                          xid::GpuId origin) const {
  NvlinkIncident inc;
  inc.affected.push_back(origin);
  inc.offsets_s.push_back(0.0);
  inc.recovered_by_retry = rng.bernoulli(cfg_.retry_recovers);

  auto peers = topo.nvlink_peers(origin.node, origin.slot);
  if (!peers.empty() && rng.bernoulli(cfg_.multi_gpu_probability)) {
    rng.shuffle(peers);
    // At least one peer joins; each further peer joins with geometric odds.
    std::size_t extra = 1;
    while (extra < peers.size() && rng.bernoulli(cfg_.extra_peer_probability)) {
      ++extra;
    }
    for (std::size_t i = 0; i < extra; ++i) {
      inc.affected.push_back({origin.node, peers[i]});
      inc.offsets_s.push_back(rng.exponential(1.0 / std::max(
          cfg_.intra_incident_spread_s, 1e-9)));
    }
  }
  return inc;
}

}  // namespace gpures::cluster
