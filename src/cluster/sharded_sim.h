// Fleet-scale sharded cluster simulation.
//
// The cluster's node index space is split into contiguous shards
// (des::partition_range); each shard owns a private des::Engine, a
// node-range-restricted ClusterSim, and a forked RNG stream, and simulates
// its slice's fault/recovery dynamics independently.  Shard outputs — raw
// syslog records, error notifications, drain/down/up transitions — are
// collected as per-shard ordered event logs and deterministically merged on
// (time, node, seq) into the single global stream the campaign replays into
// the scheduler and analysis layers.
//
// Determinism contract: the shard structure (count, boundaries, per-shard
// seeds) depends only on the cluster and the configured shard count — never
// on how many worker threads run the shards.  --threads 0 runs the same
// shards sequentially, so output is byte-identical at any thread count (see
// DESIGN.md "Sharded simulation determinism").
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster_sim.h"
#include "cluster/fault_config.h"
#include "cluster/topology.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "des/shard.h"
#include "obs/metrics.h"
#include "xid/event.h"

namespace gpures::cluster {

/// One entry of a shard's event log: everything a ClusterSim tells its
/// RawLineSink / SimListener, tagged with the global merge key.
struct SimEvent {
  enum class Kind : std::uint8_t {
    kRawXid,      ///< one raw syslog XID record (slot/code/detail valid)
    kError,       ///< coalesced ground-truth error (note valid)
    kDrainBegin,  ///< node stops accepting jobs
    kNodeDown,    ///< node reboots; running jobs die
    kNodeUp,      ///< node back in service
  };

  common::TimePoint time = 0;  ///< the event's own timestamp (raw records may
                               ///< be future-dated relative to emission)
  std::int32_t node = 0;
  std::uint64_t seq = 0;       ///< shard-local emission counter
  Kind kind = Kind::kRawXid;
  std::int32_t slot = 0;       ///< kRawXid
  xid::Code code{};            ///< kRawXid
  std::string detail;          ///< kRawXid
  ErrorNotification note;      ///< kError
};

/// The global merge order: (time, node, seq).  Node ranges are disjoint
/// across shards, so cross-shard (time, node) ties are impossible and `seq`
/// only orders events within one shard — the merged stream is a strict total
/// order, independent of which thread ran which shard.
struct SimEventBefore {
  bool operator()(const SimEvent& a, const SimEvent& b) const {
    if (a.time != b.time) return a.time < b.time;
    if (a.node != b.node) return a.node < b.node;
    return a.seq < b.seq;
  }
};

/// Per-shard sink: records every simulator callback as a SimEvent.  The seq
/// counter is monotone over the shard's lifetime, so per-day batches stay
/// internally ordered across epoch boundaries.
class ShardLog final : public RawLineSink, public SimListener {
 public:
  void on_xid_record(common::TimePoint t, std::int32_t node, std::int32_t slot,
                     xid::Code code, const std::string& detail) override;
  void on_error(const ErrorNotification& n) override;
  void on_drain_begin(std::int32_t node, common::TimePoint t) override;
  void on_node_down(std::int32_t node, common::TimePoint t) override;
  void on_node_up(std::int32_t node, common::TimePoint t) override;

  /// Sort the buffered events into merge order and hand them over, leaving
  /// the log empty for the next epoch.
  std::vector<SimEvent> take_sorted();

 private:
  std::vector<SimEvent> events_;
  std::uint64_t seq_ = 0;
};

/// Runs N node-range shards of the cluster simulation, each on a private
/// engine, and merges their event logs into one deterministic stream.
///
/// Usage (one day-epoch at a time — the campaign's loop):
///   begin_day();                      // freeze the scheduler busy snapshot
///   auto events = advance_to(day_end) // run shards (parallel), merge
///   ... replay events into the consumer engine ...
class ShardedClusterSim {
 public:
  /// Default shard sizing: ~one shard per 16 nodes, at most 256 shards
  /// (106 nodes -> 7 shards, 2000 nodes -> 125).
  static constexpr std::int32_t kNodesPerShard = 16;
  static constexpr std::int32_t kMaxShards = 256;

  struct Options {
    /// Shard count; 0 picks auto_shard_count(nodes, 16, 256).  This is a
    /// simulation parameter (it changes RNG stream assignment), NOT a
    /// performance knob — results are identical at any thread count for a
    /// fixed shard count.
    std::int32_t shards = 0;
    /// Worker pool for running shards concurrently; null runs them
    /// sequentially on the caller's thread.  Never affects results.
    common::ThreadPool* pool = nullptr;
  };

  /// `rng` is the campaign's "sim" stream; shard k simulates with
  /// rng.fork("shard", k), so per-shard streams are stable under any shard
  /// execution order.
  ShardedClusterSim(const Topology& topo, const FaultConfig& cfg,
                    common::Rng rng, Options opts);
  /// Default options: auto shard count, sequential execution.
  ShardedClusterSim(const Topology& topo, const FaultConfig& cfg,
                    common::Rng rng);
  ~ShardedClusterSim();

  /// Attach observability: the shared sim.* counters on every shard (their
  /// cells are thread-safe and order-independent) plus per-shard labeled
  /// des.* series (des.events_dispatched{shard="k"}, ...) on each shard
  /// engine.  Counts only; never changes results.
  void set_metrics(obs::MetricsRegistry* m);

  /// Fills out[flat GPU index] with each GPU's busy-until time (0 = idle).
  using BusySnapshotProvider =
      std::function<void(std::vector<common::TimePoint>&)>;

  /// Install the scheduler snapshot source and wire every shard's busy/drain
  /// queries to the day-epoch frozen snapshot.  Without a provider, shards
  /// see an idle cluster (matches ClusterSim without queries).
  void set_busy_snapshot_provider(BusySnapshotProvider p);

  /// Install fault arrivals on every shard engine.  Call once.
  void start();

  /// Refresh the frozen busy snapshot from the provider.  Call at each
  /// epoch boundary, before advance_to.
  void begin_day();

  /// Run every shard to `until` (concurrently when a pool is set) and return
  /// the merged, (time, node, seq)-ordered event stream for the epoch.
  /// Raw-record events may carry timestamps slightly past `until`
  /// (duplicate-line and NVLink offsets); they sort at the tail.
  std::vector<SimEvent> advance_to(common::TimePoint until);

  std::int32_t shard_count() const {
    return static_cast<std::int32_t>(shards_.size());
  }
  const Topology& topology() const { return topo_; }
  const FaultConfig& config() const { return cfg_; }
  const NodeRange& shard_range(std::int32_t k) const;

  /// Merged ground truth: per-shard truths sorted and k-way merged — errors
  /// on (time, node, slot), downtime on (begin, node).  Computed lazily on
  /// first call; call only after the simulation has fully run.
  const xid::GroundTruth& ground_truth() const;

  /// Total raw records across shards (diagnostics).
  std::uint64_t raw_records() const;

 private:
  struct Shard;

  const Topology& topo_;
  FaultConfig cfg_;
  common::ThreadPool* pool_ = nullptr;
  std::vector<std::unique_ptr<Shard>> shards_;
  BusySnapshotProvider snapshot_provider_;
  /// Day-epoch frozen busy-until per flat GPU.  Written only by begin_day()
  /// (between epochs); read-only while shards run, so concurrent shard
  /// queries are race-free.
  std::vector<common::TimePoint> busy_until_;
  mutable xid::GroundTruth merged_truth_;
  mutable bool truth_merged_ = false;
};

}  // namespace gpures::cluster
