#include "cluster/sharded_sim.h"

#include <algorithm>
#include <stdexcept>

namespace gpures::cluster {

void ShardLog::on_xid_record(common::TimePoint t, std::int32_t node,
                             std::int32_t slot, xid::Code code,
                             const std::string& detail) {
  SimEvent e;
  e.time = t;
  e.node = node;
  e.seq = seq_++;
  e.kind = SimEvent::Kind::kRawXid;
  e.slot = slot;
  e.code = code;
  e.detail = detail;
  events_.push_back(std::move(e));
}

void ShardLog::on_error(const ErrorNotification& n) {
  SimEvent e;
  e.time = n.event.time;
  e.node = n.event.gpu.node;
  e.seq = seq_++;
  e.kind = SimEvent::Kind::kError;
  e.note = n;
  events_.push_back(std::move(e));
}

void ShardLog::on_drain_begin(std::int32_t node, common::TimePoint t) {
  SimEvent e;
  e.time = t;
  e.node = node;
  e.seq = seq_++;
  e.kind = SimEvent::Kind::kDrainBegin;
  events_.push_back(std::move(e));
}

void ShardLog::on_node_down(std::int32_t node, common::TimePoint t) {
  SimEvent e;
  e.time = t;
  e.node = node;
  e.seq = seq_++;
  e.kind = SimEvent::Kind::kNodeDown;
  events_.push_back(std::move(e));
}

void ShardLog::on_node_up(std::int32_t node, common::TimePoint t) {
  SimEvent e;
  e.time = t;
  e.node = node;
  e.seq = seq_++;
  e.kind = SimEvent::Kind::kNodeUp;
  events_.push_back(std::move(e));
}

std::vector<SimEvent> ShardLog::take_sorted() {
  // Raw records can be future-dated relative to emission order, so the
  // buffer is not time-sorted as appended; sort into merge order here.
  // (time, node, seq) is a strict total order within one shard because seq
  // is unique, so std::sort is deterministic.
  std::sort(events_.begin(), events_.end(), SimEventBefore{});
  std::vector<SimEvent> out = std::move(events_);
  events_.clear();
  return out;
}

struct ShardedClusterSim::Shard {
  des::Engine engine;
  ShardLog log;
  ClusterSim sim;

  Shard(const Topology& topo, const FaultConfig& cfg, common::Rng rng,
        NodeRange range)
      : engine(cfg.study_begin), sim(engine, topo, cfg, std::move(rng), range) {
    sim.set_raw_sink(&log);
    sim.set_listener(&log);
  }
};

ShardedClusterSim::ShardedClusterSim(const Topology& topo,
                                     const FaultConfig& cfg, common::Rng rng,
                                     Options opts)
    : topo_(topo), cfg_(cfg), pool_(opts.pool) {
  const std::int32_t shards =
      opts.shards > 0
          ? opts.shards
          : des::auto_shard_count(topo_.node_count(), kNodesPerShard,
                                  kMaxShards);
  const auto ranges = des::partition_range(topo_.node_count(), shards);
  shards_.reserve(ranges.size());
  for (std::size_t k = 0; k < ranges.size(); ++k) {
    shards_.push_back(std::make_unique<Shard>(
        topo_, cfg_, rng.fork("shard", static_cast<std::uint64_t>(k)),
        ranges[k]));
  }
}

ShardedClusterSim::ShardedClusterSim(const Topology& topo,
                                     const FaultConfig& cfg, common::Rng rng)
    : ShardedClusterSim(topo, cfg, std::move(rng), Options{}) {}

ShardedClusterSim::~ShardedClusterSim() = default;

void ShardedClusterSim::set_metrics(obs::MetricsRegistry* m) {
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    shards_[k]->sim.set_metrics(m);
    if (m == nullptr) {
      shards_[k]->engine.set_metrics(nullptr);
    } else {
      const obs::Label label{"shard", std::to_string(k)};
      shards_[k]->engine.set_metrics(m, std::span<const obs::Label>(&label, 1));
    }
  }
}

void ShardedClusterSim::set_busy_snapshot_provider(BusySnapshotProvider p) {
  snapshot_provider_ = std::move(p);
  if (!snapshot_provider_) {
    busy_until_.clear();
    return;
  }
  busy_until_.assign(static_cast<std::size_t>(topo_.total_gpus()), 0);
  for (auto& sp : shards_) {
    Shard* s = sp.get();
    // Both queries read the epoch-frozen snapshot against the *shard's* own
    // clock; busy_until_ is only mutated between epochs (begin_day), so
    // concurrent shard execution reads immutable data.
    s->sim.set_busy_query([this, s](xid::GpuId gpu) {
      return busy_until_[static_cast<std::size_t>(topo_.flat_index(gpu))] >
             s->engine.now();
    });
    s->sim.set_drain_query([this, s](std::int32_t node, common::TimePoint now,
                                     common::Duration cap) {
      common::Duration longest = 0;
      const auto base = static_cast<std::size_t>(topo_.flat_base(node));
      const auto count = static_cast<std::size_t>(topo_.gpus_on_node(node));
      for (std::size_t g = 0; g < count; ++g) {
        const auto end = busy_until_[base + g];
        if (end > now) longest = std::max(longest, end - now);
      }
      return std::clamp<common::Duration>(longest, 0, cap);
    });
  }
}

void ShardedClusterSim::start() {
  for (auto& sp : shards_) sp->sim.start();
}

void ShardedClusterSim::begin_day() {
  if (snapshot_provider_) snapshot_provider_(busy_until_);
}

std::vector<SimEvent> ShardedClusterSim::advance_to(common::TimePoint until) {
  if (pool_ != nullptr && shards_.size() > 1) {
    // One index per shard; the pool's static chunking decides which worker
    // runs which shard — irrelevant to results, since each shard is fully
    // self-contained and the merge below fixes the global order.
    pool_->parallel_for(shards_.size(),
                        [&](std::size_t k, std::size_t /*worker*/) {
                          shards_[k]->engine.run_until(until);
                        });
  } else {
    for (auto& sp : shards_) sp->engine.run_until(until);
  }
  std::vector<std::vector<SimEvent>> logs;
  logs.reserve(shards_.size());
  for (auto& sp : shards_) logs.push_back(sp->log.take_sorted());
  return des::merge_sorted_shards(std::move(logs), SimEventBefore{});
}

const NodeRange& ShardedClusterSim::shard_range(std::int32_t k) const {
  return shards_.at(static_cast<std::size_t>(k))->sim.node_range();
}

const xid::GroundTruth& ShardedClusterSim::ground_truth() const {
  if (!truth_merged_) {
    const auto error_before = [](const xid::GpuErrorEvent& a,
                                 const xid::GpuErrorEvent& b) {
      if (a.time != b.time) return a.time < b.time;
      if (a.gpu.node != b.gpu.node) return a.gpu.node < b.gpu.node;
      return a.gpu.slot < b.gpu.slot;
    };
    const auto down_before = [](const xid::DowntimeInterval& a,
                                const xid::DowntimeInterval& b) {
      if (a.begin != b.begin) return a.begin < b.begin;
      return a.node < b.node;
    };
    std::vector<std::vector<xid::GpuErrorEvent>> errs;
    std::vector<std::vector<xid::DowntimeInterval>> downs;
    errs.reserve(shards_.size());
    downs.reserve(shards_.size());
    for (const auto& sp : shards_) {
      // Stable sort keeps each shard's emission order for full key ties
      // (same instant, same GPU), so the merged truth is deterministic.
      auto e = sp->sim.ground_truth().errors;
      std::stable_sort(e.begin(), e.end(), error_before);
      errs.push_back(std::move(e));
      auto d = sp->sim.ground_truth().downtime;
      std::stable_sort(d.begin(), d.end(), down_before);
      downs.push_back(std::move(d));
    }
    merged_truth_.errors = des::merge_sorted_shards(std::move(errs),
                                                    error_before);
    merged_truth_.downtime = des::merge_sorted_shards(std::move(downs),
                                                      down_before);
    truth_merged_ = true;
  }
  return merged_truth_;
}

std::uint64_t ShardedClusterSim::raw_records() const {
  std::uint64_t total = 0;
  for (const auto& sp : shards_) total += sp->sim.raw_records();
  return total;
}

}  // namespace gpures::cluster
