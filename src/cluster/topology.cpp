#include "cluster/topology.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <stdexcept>

namespace gpures::cluster {

namespace {

// Slot -> PCI bus number mapping resembling HGX A100 4-GPU / 8-GPU baseboard
// layouts.  The exact values are cosmetic; what matters is that the mapping
// is injective per node so logs can be attributed back to slots.
constexpr std::array<int, 8> kPciBusBySlot = {0x07, 0x27, 0x47, 0x67,
                                              0x87, 0xA7, 0xC7, 0xE7};

std::string node_name(const char* prefix, int i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%03d", prefix, i);
  return buf;
}

}  // namespace

ClusterSpec ClusterSpec::delta_a100() {
  ClusterSpec spec;
  spec.nodes.reserve(106);
  for (int i = 1; i <= 100; ++i) {
    spec.nodes.push_back({node_name("gpua", i), 4});
  }
  for (int i = 1; i <= 6; ++i) {
    spec.nodes.push_back({node_name("gpub", i), 8});
  }
  return spec;
}

ClusterSpec ClusterSpec::small(std::int32_t nodes4, std::int32_t nodes8) {
  return scaled(nodes4, nodes8);
}

ClusterSpec ClusterSpec::scaled(std::int32_t nodes4, std::int32_t nodes8) {
  ClusterSpec spec;
  spec.nodes.reserve(static_cast<std::size_t>(std::max(nodes4, 0)) +
                     static_cast<std::size_t>(std::max(nodes8, 0)));
  for (int i = 1; i <= nodes4; ++i) {
    spec.nodes.push_back({node_name("gpua", i), 4});
  }
  for (int i = 1; i <= nodes8; ++i) {
    spec.nodes.push_back({node_name("gpub", i), 8});
  }
  return spec;
}

std::int32_t ClusterSpec::total_gpus() const {
  std::int32_t total = 0;
  for (const auto& n : nodes) total += n.gpu_count;
  return total;
}

Topology::Topology(ClusterSpec spec) : spec_(std::move(spec)) {
  flat_base_.reserve(spec_.nodes.size());
  for (const auto& n : spec_.nodes) {
    if (n.gpu_count < 1 || n.gpu_count > 8) {
      throw std::invalid_argument("Topology: node GPU count must be 1..8");
    }
    flat_base_.push_back(total_gpus_);
    total_gpus_ += n.gpu_count;
  }
}

std::optional<std::int32_t> Topology::node_index(std::string_view hostname) const {
  for (std::size_t i = 0; i < spec_.nodes.size(); ++i) {
    if (spec_.nodes[i].name == hostname) return static_cast<std::int32_t>(i);
  }
  return std::nullopt;
}

std::string Topology::pci_bus(xid::GpuId gpu) const {
  if (gpu.node < 0 || gpu.node >= node_count() || gpu.slot < 0 ||
      gpu.slot >= gpus_on_node(gpu.node)) {
    throw std::out_of_range("Topology::pci_bus: bad GpuId");
  }
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0000:%02X:00",
                kPciBusBySlot[static_cast<std::size_t>(gpu.slot)]);
  return buf;
}

std::optional<std::int32_t> Topology::slot_for_pci(std::int32_t node_idx,
                                                   std::string_view pci) const {
  if (node_idx < 0 || node_idx >= node_count()) return std::nullopt;
  for (std::int32_t s = 0; s < gpus_on_node(node_idx); ++s) {
    if (pci_bus({node_idx, s}) == pci) return s;
  }
  return std::nullopt;
}

std::int32_t Topology::flat_index(xid::GpuId gpu) const {
  if (gpu.node < 0 || gpu.node >= node_count() || gpu.slot < 0 ||
      gpu.slot >= gpus_on_node(gpu.node)) {
    throw std::out_of_range("Topology::flat_index: bad GpuId");
  }
  return flat_base_[static_cast<std::size_t>(gpu.node)] + gpu.slot;
}

std::int32_t Topology::gpus_in_nodes(std::int32_t begin, std::int32_t end) const {
  if (begin < 0 || end > node_count() || begin > end) {
    throw std::out_of_range("Topology::gpus_in_nodes: bad range");
  }
  if (begin == end) return 0;
  const std::int32_t first = flat_base_[static_cast<std::size_t>(begin)];
  const std::int32_t last = end == node_count()
                                ? total_gpus_
                                : flat_base_[static_cast<std::size_t>(end)];
  return last - first;
}

xid::GpuId Topology::from_flat(std::int32_t flat) const {
  if (flat < 0 || flat >= total_gpus_) {
    throw std::out_of_range("Topology::from_flat: bad index");
  }
  const auto it = std::upper_bound(flat_base_.begin(), flat_base_.end(), flat);
  const auto node = static_cast<std::int32_t>(it - flat_base_.begin()) - 1;
  return {node, flat - flat_base_[static_cast<std::size_t>(node)]};
}

std::vector<std::int32_t> Topology::nvlink_peers(std::int32_t node_idx,
                                                 std::int32_t slot) const {
  std::vector<std::int32_t> peers;
  const std::int32_t n = gpus_on_node(node_idx);
  peers.reserve(static_cast<std::size_t>(n) - 1);
  for (std::int32_t s = 0; s < n; ++s) {
    if (s != slot) peers.push_back(s);
  }
  return peers;
}

}  // namespace gpures::cluster
