// Stochastic fault arrival generation.
//
// The injector owns one piecewise-constant-rate Poisson process per fault
// family (rates switch at the pre-op -> op boundary) plus the configured
// episodes, and delivers `Fault` occurrences to a sink through the shared
// DES engine.  It deliberately knows nothing about logging, recovery, or
// jobs — the ClusterSim interprets each fault.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string_view>

#include "cluster/fault_config.h"
#include "cluster/topology.h"
#include "common/rng.h"
#include "des/event_queue.h"
#include "obs/metrics.h"
#include "xid/event.h"

namespace gpures::cluster {

/// A raw fault occurrence, before component models expand it into XID events.
struct Fault {
  enum class Kind : std::uint8_t {
    kMmu,                 ///< background MMU fault
    kMemFault,            ///< uncorrectable memory fault (random bank)
    kMemFaultDegraded,    ///< uncorrectable fault on an episode GPU's bad bank
    kNvlink,              ///< one NVLink incident origin
    kNvlinkStorm,         ///< start of an NVLink storm episode (gpu = seed node)
    kOffBus,              ///< GPU fell off the bus
    kGsp,                 ///< GSP family fault
    kPmu,                 ///< PMU family fault
    kUncontainedEpisode,  ///< one error of the persistent faulty-GPU episode
  };

  Kind kind = Kind::kMmu;
  xid::GpuId gpu;
  std::int32_t episode_index = -1;  ///< for episode faults
};

std::string_view to_string(Fault::Kind k);

class FaultInjector {
 public:
  using Sink = std::function<void(const Fault&)>;

  /// The engine's clock must start at or before cfg.study_begin.
  ///
  /// `range` restricts the injector to a contiguous node slice: background
  /// process rates are thinned by the slice's GPU share (Poisson
  /// superposition makes the union over disjoint slices distribution-
  /// identical to one whole-cluster process), targets are drawn within the
  /// slice, and episodes pinned outside it are skipped.  The default range
  /// covers the whole cluster and leaves behaviour bit-identical to the
  /// unsharded injector.
  FaultInjector(des::Engine& engine, const Topology& topo,
                const FaultConfig& cfg, common::Rng rng, Sink sink,
                NodeRange range = {});

  /// Schedule the first arrival of every process and episode.  Call once.
  void start();

  /// Attach observability counters (sim.faults.<kind>); counts only, so
  /// arrivals are unaffected.  Pass nullptr to detach.
  void set_metrics(obs::MetricsRegistry* m);

  /// Faults delivered so far (diagnostics).
  std::uint64_t faults_delivered() const { return delivered_; }

 private:
  static constexpr std::size_t kKinds =
      static_cast<std::size_t>(Fault::Kind::kUncontainedEpisode) + 1;

  /// Count + hand one fault to the sink.
  void deliver(const Fault& f);
  struct Process {
    Fault::Kind kind;
    const ProcessSpec* spec;
  };

  /// Per-hour system-wide rate of `spec` at time `t`.
  double rate_at(const ProcessSpec& spec, common::TimePoint t) const;

  /// Schedule the next arrival of a background process starting from `from`.
  void schedule_next(const Process& proc, common::TimePoint from);

  void schedule_uncontained(std::int32_t idx, common::TimePoint from);
  void schedule_degraded(std::int32_t idx, common::TimePoint from);

  xid::GpuId random_gpu();

  des::Engine& engine_;
  const Topology& topo_;
  FaultConfig cfg_;
  common::Rng rng_;
  Sink sink_;
  NodeRange range_;                   ///< node slice this injector covers
  std::int32_t range_flat_base_ = 0;  ///< first flat GPU index in range
  std::int32_t range_gpus_ = 0;       ///< GPUs in range
  double gpu_share_ = 1.0;            ///< range GPUs / total GPUs (1.0 = full)
  ProcessSpec storm_spec_;  ///< NVLink storm arrival rates (from config)
  std::uint64_t delivered_ = 0;
  std::array<obs::Counter*, kKinds> kind_metrics_{};
};

}  // namespace gpures::cluster
