// GPU and node health state machines.
//
// Nodes cycle Up -> Draining -> Rebooting -> Up (or -> AwaitingReplacement ->
// Up when the reset fails and the GPU must be physically swapped).  GPUs carry
// an error-pending flag that forces the owning node through the recovery
// cycle, mirroring the SRE workflow the paper describes (health checks alert,
// node is drained, rebooted, and health-checked back into service).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/time.h"
#include "xid/event.h"

namespace gpures::cluster {

enum class NodeState : std::uint8_t {
  kUp,                  ///< scheduling new jobs
  kDraining,            ///< no new jobs; waiting for running jobs to finish
  kRebooting,           ///< down for reboot + health check
  kAwaitingReplacement  ///< reset failed; waiting for hardware swap
};

std::string_view to_string(NodeState s);

/// Health bookkeeping for one GPU.
struct GpuHealth {
  bool error_pending = false;     ///< an error requiring reset is outstanding
  std::uint32_t resets = 0;       ///< lifetime reset count
  std::uint32_t replacements = 0; ///< physical swaps
  common::TimePoint last_error = 0;
};

/// Health bookkeeping for one node plus its GPUs.
class NodeHealth {
 public:
  explicit NodeHealth(std::int32_t gpu_count)
      : gpus_(static_cast<std::size_t>(gpu_count)) {}

  NodeState state() const { return state_; }
  bool available() const { return state_ == NodeState::kUp; }

  GpuHealth& gpu(std::int32_t slot) { return gpus_.at(static_cast<std::size_t>(slot)); }
  const GpuHealth& gpu(std::int32_t slot) const { return gpus_.at(static_cast<std::size_t>(slot)); }
  std::int32_t gpu_count() const { return static_cast<std::int32_t>(gpus_.size()); }

  /// Any GPU on this node has an outstanding reset-requiring error.
  bool any_error_pending() const;

  // -- state transitions (validated; throw std::logic_error on misuse) --
  void begin_drain(common::TimePoint t);
  void begin_reboot(common::TimePoint t);
  void begin_replacement(common::TimePoint t);
  /// Return to service: clears all pending GPU errors, bumps reset counters.
  void return_to_service(common::TimePoint t, bool was_replacement);

  common::TimePoint state_since() const { return state_since_; }

 private:
  NodeState state_ = NodeState::kUp;
  common::TimePoint state_since_ = 0;
  std::vector<GpuHealth> gpus_;
};

}  // namespace gpures::cluster
