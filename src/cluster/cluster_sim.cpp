#include "cluster/cluster_sim.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace gpures::cluster {

namespace {

std::string hex_detail(const char* fmt, std::uint64_t v) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), fmt, static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

ClusterSim::ClusterSim(des::Engine& engine, const Topology& topo,
                       FaultConfig cfg, common::Rng rng, NodeRange range)
    : engine_(engine), topo_(topo), cfg_(std::move(cfg)),
      rng_(rng.fork("cluster_sim")), range_(range), recovery_(cfg_.recovery),
      nvlink_(cfg_.nvlink) {
  cfg_.validate();
  if (range_.end <= range_.begin) range_ = {0, topo_.node_count()};
  if (range_.begin < 0 || range_.end > topo_.node_count()) {
    throw std::invalid_argument("ClusterSim: node range out of bounds");
  }
  range_flat_base_ = topo_.flat_base(range_.begin);
  range_gpus_ = topo_.gpus_in_nodes(range_.begin, range_.end);
  nodes_.reserve(static_cast<std::size_t>(range_.size()));
  for (std::int32_t n = range_.begin; n < range_.end; ++n) {
    nodes_.emplace_back(topo_.gpus_on_node(n));
  }
  memories_.reserve(static_cast<std::size_t>(range_gpus_));
  for (std::int32_t g = 0; g < range_gpus_; ++g) {
    memories_.emplace_back(cfg_.memory_op);  // bank layout is period-invariant
  }
  // Pre-consume the spare rows of degraded-GPU episode banks (only episodes
  // whose GPU this slice owns; the others belong to sibling shards).
  for (const auto& ep : cfg_.degraded_memory_episodes) {
    if (!range_.contains(ep.gpu.node)) continue;
    memory_at(ep.gpu).set_bank_spares(ep.bank, ep.bank_spares);
  }
  injector_ = std::make_unique<FaultInjector>(
      engine_, topo_, cfg_, rng.fork("fault_injector"),
      [this](const Fault& f) { handle_fault(f); }, range_);
}

void ClusterSim::set_metrics(obs::MetricsRegistry* m) {
  metrics_ = m;
  code_metrics_.clear();
  if (m == nullptr) {
    errors_metric_ = nullptr;
    raw_lines_metric_ = nullptr;
    dup_lines_metric_ = nullptr;
    recoveries_metric_ = nullptr;
  } else {
    errors_metric_ = &m->counter("sim.errors_emitted");
    raw_lines_metric_ = &m->counter("sim.raw_xid_lines");
    dup_lines_metric_ = &m->counter("sim.dup_xid_lines");
    recoveries_metric_ = &m->counter("sim.recoveries");
  }
  injector_->set_metrics(m);
}

obs::Counter* ClusterSim::code_metric(xid::Code code) {
  if (metrics_ == nullptr) return nullptr;
  const auto num = xid::to_number(code);
  auto it = code_metrics_.find(num);
  if (it == code_metrics_.end()) {
    it = code_metrics_
             .emplace(num, &metrics_->counter("sim.xid_lines." +
                                              std::to_string(num)))
             .first;
  }
  return it->second;
}

void ClusterSim::start() { injector_->start(); }

void ClusterSim::run_to_end() { engine_.run_until(cfg_.study_end); }

NodeState ClusterSim::node_state(std::int32_t node) const {
  return nodes_.at(static_cast<std::size_t>(node - range_.begin)).state();
}

const GpuMemory& ClusterSim::gpu_memory(xid::GpuId gpu) const {
  return memories_.at(
      static_cast<std::size_t>(topo_.flat_index(gpu) - range_flat_base_));
}

const MemoryModelConfig& ClusterSim::memory_probs_now() const {
  return engine_.now() < cfg_.op_begin ? cfg_.memory_pre : cfg_.memory_op;
}

bool ClusterSim::node_accepts_faults(std::int32_t node) const {
  // A node that is powered off (rebooting / awaiting hardware) produces no
  // logs; a draining node is still running and can keep logging errors.
  const NodeState s = node_health(node).state();
  return s == NodeState::kUp || s == NodeState::kDraining;
}

xid::GpuId ClusterSim::maybe_retarget(xid::GpuId gpu, double idle_affinity,
                                      bool require_idle_node) {
  if (!busy_query_ || idle_affinity <= 0.0) return gpu;
  const auto node_busy = [this](std::int32_t node) {
    for (std::int32_t s = 0; s < topo_.gpus_on_node(node); ++s) {
      if (busy_query_({node, s})) return true;
    }
    return false;
  };
  const bool conflict =
      require_idle_node ? node_busy(gpu.node) : busy_query_(gpu);
  if (!conflict) return gpu;  // already idle
  if (!rng_.bernoulli(idle_affinity)) return gpu;
  // Rejection-sample a random idle target within this slice; if it is
  // saturated, give up after a bounded number of tries and keep the
  // original target.  (Full-range draws are bit-identical to the unsharded
  // whole-cluster sampling.)
  for (int attempt = 0; attempt < 48; ++attempt) {
    const auto flat =
        range_flat_base_ +
        static_cast<std::int32_t>(
            rng_.uniform_u64(static_cast<std::uint64_t>(range_gpus_)));
    const xid::GpuId candidate = topo_.from_flat(flat);
    if (!node_accepts_faults(candidate.node)) continue;
    if (require_idle_node ? !node_busy(candidate.node)
                          : !busy_query_(candidate)) {
      return candidate;
    }
  }
  return gpu;
}

void ClusterSim::handle_fault(const Fault& raw_fault) {
  Fault f = raw_fault;
  switch (f.kind) {
    case Fault::Kind::kMmu: f.gpu = maybe_retarget(f.gpu, cfg_.mmu.idle_affinity); break;
    case Fault::Kind::kMemFault: f.gpu = maybe_retarget(f.gpu, cfg_.mem_fault.idle_affinity); break;
    case Fault::Kind::kNvlink:
      break;  // incident GPUs are pinned by the storm that spawned them
    case Fault::Kind::kNvlinkStorm:
      f.gpu = maybe_retarget(f.gpu, cfg_.nvlink_storms.idle_affinity,
                             /*require_idle_node=*/true);
      break;
    case Fault::Kind::kOffBus: f.gpu = maybe_retarget(f.gpu, cfg_.off_bus.idle_affinity); break;
    case Fault::Kind::kGsp: f.gpu = maybe_retarget(f.gpu, cfg_.gsp.idle_affinity); break;
    case Fault::Kind::kPmu: f.gpu = maybe_retarget(f.gpu, cfg_.pmu.idle_affinity); break;
    default: break;  // episodes stay pinned to their GPU
  }
  if (!node_accepts_faults(f.gpu.node)) return;
  switch (f.kind) {
    case Fault::Kind::kMmu:
      emit_error(engine_.now(), f.gpu, xid::Code::kMmuError,
                 hex_detail("Ch 00000010, intr 10000000. MMU Fault: ENGINE "
                            "GRAPHICS GPCCLIENT_T1_0 faulted @ 0x%llx",
                            rng_.next_u64() & 0x7fffffffffffull),
                 &cfg_.mmu, /*reset=*/false, /*retry=*/false, /*kills=*/false);
      break;
    case Fault::Kind::kMemFault:
      handle_mem_fault(f, /*degraded=*/false);
      break;
    case Fault::Kind::kMemFaultDegraded:
      handle_mem_fault(f, /*degraded=*/true);
      break;
    case Fault::Kind::kNvlink:
      handle_nvlink(f);
      break;
    case Fault::Kind::kNvlinkStorm:
      handle_nvlink_storm(f.gpu.node);
      break;
    case Fault::Kind::kOffBus:
      emit_error(engine_.now(), f.gpu, xid::Code::kFallenOffBus,
                 "GPU has fallen off the bus.", &cfg_.off_bus,
                 /*reset=*/true, /*retry=*/false, /*kills=*/true);
      break;
    case Fault::Kind::kGsp: {
      const bool is_119 = rng_.bernoulli(cfg_.gsp_119_fraction);
      emit_error(engine_.now(), f.gpu,
                 is_119 ? xid::Code::kGspRpcTimeout : xid::Code::kGspError,
                 is_119 ? "Timeout waiting for RPC from GSP! Expected function"
                          " 76 (GSP_RM_CONTROL)."
                        : "GSP task failure.",
                 &cfg_.gsp, /*reset=*/true, /*retry=*/false, /*kills=*/true);
      break;
    }
    case Fault::Kind::kPmu:
      handle_pmu(f);
      break;
    case Fault::Kind::kUncontainedEpisode: {
      const auto& ep =
          cfg_.uncontained_episodes[static_cast<std::size_t>(f.episode_index)];
      // The paper's persistent episode ran for 17 days *without recovery* —
      // containment and recovery had failed, so these do not re-trigger the
      // recovery workflow (reset_required=false models the failed detection).
      emit_error(engine_.now(), f.gpu, xid::Code::kUncontainedEccError,
                 hex_detail("Uncontained ECC error. physical address: 0x%llx",
                            rng_.next_u64() & 0xffffffffull),
                 nullptr, /*reset=*/false, /*retry=*/false, /*kills=*/true,
                 /*dup_override=*/ep.dup_extra_mean);
      break;
    }
  }
}

void ClusterSim::handle_mem_fault(const Fault& f, bool degraded) {
  auto& mem = memory_at(f.gpu);
  const auto& probs = memory_probs_now();
  MemoryFaultOutcome out;
  if (degraded) {
    const auto& ep =
        cfg_.degraded_memory_episodes[static_cast<std::size_t>(f.episode_index)];
    out = mem.on_uncorrectable_fault_in_bank(rng_, probs, ep.bank);
  } else {
    out = mem.on_uncorrectable_fault(rng_, probs);
  }
  const common::TimePoint t = engine_.now();

  if (out.dbe_logged) {
    emit_error(t, f.gpu, xid::Code::kDoubleBitEcc,
               hex_detail("DBE (DED) Error on CBU, row 0x%llx", out.row),
               &cfg_.mem_fault, /*reset=*/false, /*retry=*/false,
               /*kills=*/false);
  }
  if (out.remap_succeeded) {
    char detail[96];
    std::snprintf(detail, sizeof(detail),
                  "Row remapping event: bank %d row 0x%x remapped to spare.",
                  out.bank, out.row);
    emit_error(t, f.gpu, xid::Code::kRowRemapEvent, detail, &cfg_.mem_fault,
               /*reset=*/false, /*retry=*/false, /*kills=*/false);
  } else {
    char detail[96];
    std::snprintf(detail, sizeof(detail),
                  "Row remapping failure: bank %d out of spare rows.",
                  out.bank);
    emit_error(t, f.gpu, xid::Code::kRowRemapFailure, detail, &cfg_.mem_fault,
               /*reset=*/true, /*retry=*/false, /*kills=*/false);
  }
  if (out.containment_attempted) {
    if (out.contained) {
      emit_error(t, f.gpu, xid::Code::kContainedEccError,
                 "Contained ECC error; affected processes terminated.",
                 &cfg_.mem_fault, /*reset=*/false, /*retry=*/false,
                 /*kills=*/true);
    } else {
      emit_error(t, f.gpu, xid::Code::kUncontainedEccError,
                 "Uncontained ECC error; error propagation not contained.",
                 &cfg_.mem_fault, /*reset=*/true, /*retry=*/false,
                 /*kills=*/true);
    }
  }
}

void ClusterSim::handle_nvlink_storm(std::int32_t node) {
  // Size the storm so that expected total per-GPU NVLink errors match the
  // configured incident counts for the current period.
  const bool pre = engine_.now() < cfg_.op_begin;
  const double storms = pre ? cfg_.nvlink_storms.storms_pre
                            : cfg_.nvlink_storms.storms_op;
  const double incidents_total = pre ? cfg_.nvlink_incident.pre_count
                                     : cfg_.nvlink_incident.op_count;
  const double mean_incidents = storms > 0.0 ? incidents_total / storms : 0.0;
  const auto n = static_cast<std::int32_t>(rng_.poisson(mean_incidents));
  if (n <= 0) return;
  schedule_storm_incident(node, n);
}

void ClusterSim::schedule_storm_incident(std::int32_t node,
                                         std::int32_t remaining) {
  const auto gap = std::max<common::Duration>(
      31,  // stay beyond the coalescing window so incidents stay distinct
      static_cast<common::Duration>(
          rng_.exponential(1.0 / cfg_.nvlink_storms.incident_gap_s)));
  engine_.schedule_after(gap, [this, node, remaining] {
    if (engine_.now() >= cfg_.study_end) return;
    if (!node_accepts_faults(node)) {
      // Node is down for reboot/replacement; the flapping link is still
      // flapping, it just cannot log.  Pause the storm rather than consume
      // it, so configured error counts survive the recovery interruptions.
      schedule_storm_incident(node, remaining);
      return;
    }
    Fault f;
    f.kind = Fault::Kind::kNvlink;
    f.gpu = {node, static_cast<std::int32_t>(rng_.uniform_u64(
                       static_cast<std::uint64_t>(topo_.gpus_on_node(node))))};
    handle_fault(f);
    if (remaining > 1) schedule_storm_incident(node, remaining - 1);
  });
}

void ClusterSim::handle_nvlink(const Fault& f) {
  const NvlinkIncident inc = nvlink_.on_link_fault(rng_, topo_, f.gpu);
  for (std::size_t i = 0; i < inc.affected.size(); ++i) {
    const auto t = engine_.now() +
                   static_cast<common::Duration>(std::llround(inc.offsets_s[i]));
    char detail[96];
    std::snprintf(detail, sizeof(detail),
                  "NVLink: fatal error detected on link %d (CRC error).",
                  static_cast<int>(rng_.uniform_u64(12)));
    // NVLink errors require a GPU reset to clear, but a CRC-retry-recovered
    // transfer does not corrupt the running job (the job-failure model uses
    // `recovered_by_retry`).
    emit_error(t, inc.affected[i], xid::Code::kNvlinkError, detail,
               &cfg_.nvlink_incident, /*reset=*/true,
               /*retry=*/inc.recovered_by_retry, /*kills=*/false);
  }
}

void ClusterSim::handle_pmu(const Fault& f) {
  const bool is_122 = rng_.bernoulli(cfg_.pmu_122_fraction);
  emit_error(engine_.now(), f.gpu,
             is_122 ? xid::Code::kPmuSpiFailure
                    : xid::Code::kPmuCommunicationError,
             "PMU SPI RPC read failure: communication with PMU failed.",
             &cfg_.pmu, /*reset=*/false, /*retry=*/false, /*kills=*/false);
  // Finding (iii): PMU communication errors propagate to MMU errors (e.g.
  // the driver cannot reprogram clocks and memory I/O faults follow).
  const auto& cpl = cfg_.pmu_coupling;
  if (rng_.bernoulli(cpl.trigger_probability)) {
    const auto burst =
        static_cast<std::int32_t>(1 + rng_.geometric(1.0 / cpl.burst_mean));
    const auto delay = std::max<common::Duration>(
        1, static_cast<common::Duration>(rng_.exponential(1.0 / cpl.delay_mean_s)));
    const xid::GpuId gpu = f.gpu;
    engine_.schedule_after(delay, [this, gpu, burst] {
      emit_induced_mmu(gpu, burst);
    });
  }
}

void ClusterSim::emit_induced_mmu(xid::GpuId gpu, std::int32_t remaining) {
  if (remaining <= 0 || !node_accepts_faults(gpu.node)) return;
  if (engine_.now() >= cfg_.study_end) return;
  emit_error(engine_.now(), gpu, xid::Code::kMmuError,
             hex_detail("Ch 00000018, intr 10000000. MMU Fault: ENGINE HOST0 "
                        "faulted @ 0x%llx (PMU-correlated)",
                        rng_.next_u64() & 0x7fffffffffffull),
             &cfg_.mmu, /*reset=*/false, /*retry=*/false, /*kills=*/false);
  if (remaining > 1) {
    const auto gap = std::max<common::Duration>(
        1, static_cast<common::Duration>(
               rng_.exponential(1.0 / cfg_.pmu_coupling.intra_burst_gap_s)));
    engine_.schedule_after(gap, [this, gpu, remaining] {
      emit_induced_mmu(gpu, remaining - 1);
    });
  }
}

void ClusterSim::emit_error(common::TimePoint t, xid::GpuId gpu,
                            xid::Code code, std::string detail,
                            const ProcessSpec* dup_spec, bool reset_required,
                            bool recovered_by_retry, bool kills_processes,
                            double dup_extra_mean_override) {
  if (t >= cfg_.study_end) return;
  // Duplication: the driver logs the same condition repeatedly in close
  // succession; Stage II coalescing is what removes these again.
  double dup_mean = dup_spec ? dup_spec->dup_extra_mean : 1.0;
  double dup_spread = dup_spec ? dup_spec->dup_spread_s : 4.0;
  if (dup_extra_mean_override >= 0.0) {
    dup_mean = dup_extra_mean_override;
    dup_spread = 6.0;
  }
  std::uint32_t extra = 0;
  if (dup_mean > 0.0) {
    extra = static_cast<std::uint32_t>(
        rng_.geometric(1.0 / (1.0 + dup_mean)));
  }

  xid::GpuErrorEvent ev;
  ev.time = t;
  ev.gpu = gpu;
  ev.code = code;
  ev.raw_line_count = 1 + extra;
  ev.detail = detail;
  truth_.errors.push_back(ev);
  if (errors_metric_ != nullptr) errors_metric_->inc();
  obs::Counter* per_code = code_metric(code);

  if (raw_sink_ != nullptr) {
    raw_sink_->on_xid_record(t, gpu.node, gpu.slot, code, detail);
    ++raw_records_;
    if (raw_lines_metric_ != nullptr) raw_lines_metric_->inc();
    if (per_code != nullptr) per_code->inc();
    for (std::uint32_t i = 0; i < extra; ++i) {
      // Offsets are drawn independently from the leader line and capped to
      // dup_max_span_s, which keeps every duplicate inside the pipeline's
      // coalescing window (the log store re-sorts lines per day anyway).
      const double off = std::min(
          rng_.exponential(1.0 / std::max(dup_spread, 0.5)),
          cfg_.dup_max_span_s);
      const common::TimePoint dup_t =
          t + std::max<common::Duration>(
                  1, static_cast<common::Duration>(std::llround(off)));
      if (dup_t >= cfg_.study_end) continue;
      raw_sink_->on_xid_record(dup_t, gpu.node, gpu.slot, code, detail);
      ++raw_records_;
      if (raw_lines_metric_ != nullptr) {
        raw_lines_metric_->inc();
        dup_lines_metric_->inc();
      }
      if (per_code != nullptr) per_code->inc();
    }
  }

  auto& gh = node_health(gpu.node).gpu(gpu.slot);
  gh.last_error = t;
  if (reset_required) gh.error_pending = true;

  if (listener_ != nullptr) {
    ErrorNotification note;
    note.event = ev;
    note.reset_required = reset_required;
    note.recovered_by_retry = recovered_by_retry;
    note.kills_processes = kills_processes;
    listener_->on_error(note);
  }

  if (reset_required) begin_recovery(gpu.node);
}

void ClusterSim::begin_recovery(std::int32_t node) {
  auto& nh = node_health(node);
  if (nh.state() != NodeState::kUp) return;  // recovery already in progress
  if (recoveries_metric_ != nullptr) recoveries_metric_->inc();

  const common::Duration detect = recovery_.detection_latency(rng_);
  engine_.schedule_after(detect, [this, node] {
    auto& n = node_health(node);
    if (n.state() != NodeState::kUp) return;
    const common::TimePoint drain_begin = engine_.now();
    n.begin_drain(drain_begin);
    if (listener_ != nullptr) listener_->on_drain_begin(node, drain_begin);

    const auto cap = static_cast<common::Duration>(cfg_.recovery.drain_cap_s);
    const common::Duration drain =
        drain_query_ ? std::clamp<common::Duration>(
                           drain_query_(node, drain_begin, cap), 0, cap)
                     : recovery_.default_drain(rng_);

    engine_.schedule_after(drain, [this, node, drain_begin] {
      auto& n2 = node_health(node);
      n2.begin_reboot(engine_.now());
      if (listener_ != nullptr) listener_->on_node_down(node, engine_.now());

      const common::Duration reboot = recovery_.reboot_duration(rng_);
      const bool fails = recovery_.reset_fails(rng_);

      engine_.schedule_after(reboot, [this, node, drain_begin, fails] {
        auto& n3 = node_health(node);
        if (fails) {
          n3.begin_replacement(engine_.now());
          const common::Duration repl = recovery_.replacement_duration(rng_);
          engine_.schedule_after(repl, [this, node, drain_begin] {
            auto& n4 = node_health(node);
            // Fresh silicon: reset the memory spare inventory of the node's
            // GPUs that had pending errors before clearing them.
            for (std::int32_t s = 0; s < n4.gpu_count(); ++s) {
              if (n4.gpu(s).error_pending) {
                memory_at({node, s}).replace(cfg_.memory_op);
              }
            }
            n4.return_to_service(engine_.now(), /*was_replacement=*/true);
            truth_.downtime.push_back(
                {node, drain_begin, engine_.now(), /*replacement=*/true});
            if (listener_ != nullptr) listener_->on_node_up(node, engine_.now());
          });
          return;
        }
        n3.return_to_service(engine_.now(), /*was_replacement=*/false);
        truth_.downtime.push_back(
            {node, drain_begin, engine_.now(), /*replacement=*/false});
        if (listener_ != nullptr) listener_->on_node_up(node, engine_.now());
      });
    });
  });
}

}  // namespace gpures::cluster
