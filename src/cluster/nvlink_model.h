// NVLink interconnect error model.
//
// NVLink carries GPU-to-GPU traffic inside a node; control and data packets
// are CRC-protected, and a failed checksum triggers retransmission from the
// last known-good packet.  The paper observes that (a) 42% of NVLink error
// incidents propagate to two or more GPUs of the node, and (b) only ~54% of
// jobs that encounter an NVLink error fail — the link often is not in use, or
// CRC+retry masks the fault.  This model turns one underlying link fault into
// the set of per-GPU XID 74 errors the driver would log, plus a verdict on
// whether transmission was recovered by retry.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "cluster/topology.h"
#include "xid/event.h"

namespace gpures::cluster {

struct NvlinkModelConfig {
  /// Probability an incident is visible on >= 2 GPUs (paper: 42% in op).
  double multi_gpu_probability = 0.42;
  /// Given multi-GPU propagation, probability of each additional peer beyond
  /// the second joining the incident (geometric tail over peers).
  double extra_peer_probability = 0.3;
  /// Probability CRC detection + retransmission fully recovers the transfer
  /// (no data loss; job can continue if the runtime tolerates the stall).
  double retry_recovers = 0.85;
  /// Mean spacing between the per-GPU log records of one incident (seconds);
  /// propagated records appear nearly simultaneously in real logs.
  double intra_incident_spread_s = 2.0;
};

/// One NVLink incident expanded to per-GPU observations.
struct NvlinkIncident {
  /// GPUs on which XID 74 is logged; first element is the originating GPU.
  std::vector<xid::GpuId> affected;
  /// Per-GPU log time offsets (seconds after the incident instant).
  std::vector<double> offsets_s;
  /// Whether CRC retry recovered the transfer (affects job-failure odds).
  bool recovered_by_retry = false;
};

class NvlinkModel {
 public:
  explicit NvlinkModel(NvlinkModelConfig cfg) : cfg_(cfg) {}

  const NvlinkModelConfig& config() const { return cfg_; }

  /// Expand a fault on `origin` into an incident.  Single-GPU nodes never
  /// propagate (no NVLink peers).
  NvlinkIncident on_link_fault(common::Rng& rng, const Topology& topo,
                               xid::GpuId origin) const;

 private:
  NvlinkModelConfig cfg_;
};

}  // namespace gpures::cluster
