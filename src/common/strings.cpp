#include "common/strings.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>

namespace gpures::common {

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool contains(std::string_view s, std::string_view needle) {
  return s.find(needle) != std::string_view::npos;
}

bool icontains(std::string_view s, std::string_view needle) {
  if (needle.empty()) return true;
  if (s.size() < needle.size()) return false;
  const auto lower = [](char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  };
  for (std::size_t i = 0; i + needle.size() <= s.size(); ++i) {
    bool match = true;
    for (std::size_t j = 0; j < needle.size(); ++j) {
      if (lower(s[i + j]) != lower(needle[j])) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

long long parse_ll(std::string_view s) {
  s = trim(s);
  long long v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size() || v < 0) return -1;
  return v;
}

double parse_double(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nan("");
  // std::from_chars for double is not universally available; strtod needs a
  // NUL-terminated buffer.
  std::string buf(s);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return std::nan("");
  return v;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace gpures::common
