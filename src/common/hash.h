// Non-cryptographic hashing for on-disk artifact integrity.
//
// The binary index (src/index/) checksums every header, section table, and
// column payload so a memory-mapped reader can refuse corrupt files instead
// of serving garbage.  XXH64 is the standard choice for this job: it is
// byte-order-defined (the digest of a byte sequence is the same on every
// host), fast enough to hash multi-hundred-megabyte artifacts at memory
// bandwidth, and strong enough that a single flipped bit is detected with
// probability 1 - 2^-64.  obs::fnv1a64 stays the right tool for short config
// fingerprints; this is the bulk-payload sibling.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace gpures::common {

/// XXH64 one-shot digest of `len` bytes at `data` (seeded; the index format
/// uses seed 0).  Matches the reference xxHash XXH64 algorithm bit for bit.
std::uint64_t xxhash64(const void* data, std::size_t len,
                       std::uint64_t seed = 0);

inline std::uint64_t xxhash64(std::string_view s, std::uint64_t seed = 0) {
  return xxhash64(s.data(), s.size(), seed);
}

}  // namespace gpures::common
