// Descriptive statistics used by the analysis pipeline (Stage II/III):
// running moments, exact quantiles, ECDFs, and MTBE helpers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace gpures::common {

/// Single-pass mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact quantile of a sample using linear interpolation between order
/// statistics (type-7 / numpy default). `q` in [0,1]. Copies + sorts.
double quantile(std::span<const double> xs, double q);

/// Quantile of an already-sorted sample (no copy).
double quantile_sorted(std::span<const double> sorted, double q);

/// Convenience percentiles.
double median(std::span<const double> xs);

/// Empirical CDF evaluated at x: fraction of samples <= x.
double ecdf(std::span<const double> sorted, double x);

/// Summary of a sample: n, mean, stddev, min, p50, p90, p99, max.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

Summary summarize(std::span<const double> xs);

/// Mean time between events given an observation window and an event count:
/// window / count.  Returns +inf for zero events (rendered as "-" upstream,
/// matching the paper's table convention).
double mtbe(double window_hours, std::uint64_t events);

/// Wilson score interval for a binomial proportion (95% by default);
/// used to put uncertainty bars on job-failure probabilities.
struct Proportion {
  double p = 0.0;
  double lo = 0.0;
  double hi = 0.0;
};
Proportion wilson_interval(std::uint64_t successes, std::uint64_t trials,
                           double z = 1.959964);

}  // namespace gpures::common
