#include "common/time.h"

#include "common/fmt.h"
#include "common/parse.h"

#include <array>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace gpures::common {

namespace {

constexpr std::array<const char*, 12> kMonthNames = {
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

// Days from 1970-01-01 to the given civil date.  Algorithm from Howard
// Hinnant's `days_from_civil` (public domain), which is exact for the
// proleptic Gregorian calendar.
std::int64_t days_from_civil(int y, int m, int d) {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);             // [0, 399]
  const unsigned doy = (153u * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2u) / 5u +
                       static_cast<unsigned>(d) - 1u;                    // [0, 365]
  const unsigned doe = yoe * 365u + yoe / 4u - yoe / 100u + doy;         // [0, 146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

// Inverse of days_from_civil (Hinnant's `civil_from_days`).
void civil_from_days(std::int64_t z, int& y, int& m, int& d) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);          // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t yy = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);          // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                               // [0, 11]
  d = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  m = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  y = static_cast<int>(yy + (m <= 2));
}

// Strict fixed-width digit field: no padding, no signs.
bool parse_digits(std::string_view s, int& out) {
  if (s.empty()) return false;
  int v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + (c - '0');
  }
  out = v;
  return true;
}

}  // namespace

bool is_leap_year(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int days_in_month(int year, int month) {
  static constexpr std::array<int, 12> kDays = {31, 28, 31, 30, 31, 30,
                                                31, 31, 30, 31, 30, 31};
  if (month < 1 || month > 12) return 0;
  if (month == 2 && is_leap_year(year)) return 29;
  return kDays[static_cast<std::size_t>(month - 1)];
}

TimePoint to_timepoint(const CalendarTime& ct) {
  return days_from_civil(ct.year, ct.month, ct.day) * kDay +
         ct.hour * kHour + ct.minute * kMinute + ct.second;
}

TimePoint make_date(int year, int month, int day) {
  return to_timepoint(CalendarTime{year, month, day, 0, 0, 0});
}

CalendarTime to_calendar(TimePoint tp) {
  std::int64_t days = day_index(tp);
  std::int64_t rem = tp - days * kDay;
  CalendarTime ct;
  civil_from_days(days, ct.year, ct.month, ct.day);
  ct.hour = static_cast<int>(rem / kHour);
  rem -= static_cast<std::int64_t>(ct.hour) * kHour;
  ct.minute = static_cast<int>(rem / kMinute);
  ct.second = static_cast<int>(rem - static_cast<std::int64_t>(ct.minute) * kMinute);
  return ct;
}

std::string format_iso(TimePoint tp) {
  const CalendarTime ct = to_calendar(tp);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d", ct.year,
                ct.month, ct.day, ct.hour, ct.minute, ct.second);
  return buf;
}

std::string format_date(TimePoint tp) {
  const CalendarTime ct = to_calendar(tp);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", ct.year, ct.month, ct.day);
  return buf;
}

std::string format_syslog(TimePoint tp) {
  // Delegates to the arena appender so the string and append paths cannot
  // drift apart byte-wise.
  std::string out;
  out.reserve(15);
  append_syslog_time(out, tp);
  return out;
}

std::string_view month_abbrev(int month) {
  if (month < 1 || month > 12) return "???";
  return kMonthNames[static_cast<std::size_t>(month - 1)];
}

std::optional<TimePoint> parse_iso(std::string_view s) {
  // "YYYY-MM-DD" (10 chars) or "YYYY-MM-DD[ T]HH:MM:SS" (19 chars).
  if (s.size() != 10 && s.size() != 19) return std::nullopt;
  CalendarTime ct;
  if (s[4] != '-' || s[7] != '-') return std::nullopt;
  if (!parse_digits(s.substr(0, 4), ct.year) ||
      !parse_digits(s.substr(5, 2), ct.month) ||
      !parse_digits(s.substr(8, 2), ct.day)) {
    return std::nullopt;
  }
  if (s.size() == 19) {
    if ((s[10] != ' ' && s[10] != 'T') || s[13] != ':' || s[16] != ':') {
      return std::nullopt;
    }
    if (!parse_digits(s.substr(11, 2), ct.hour) ||
        !parse_digits(s.substr(14, 2), ct.minute) ||
        !parse_digits(s.substr(17, 2), ct.second)) {
      return std::nullopt;
    }
  }
  if (ct.month < 1 || ct.month > 12 || ct.day < 1 ||
      ct.day > days_in_month(ct.year, ct.month) || ct.hour > 23 ||
      ct.minute > 59 || ct.second > 59 || ct.hour < 0 || ct.minute < 0 ||
      ct.second < 0) {
    return std::nullopt;
  }
  return to_timepoint(ct);
}

std::optional<TimePoint> parse_syslog(std::string_view s, int year) {
  // "Mon DD HH:MM:SS" where DD may be space-padded: "May  5 07:23:01".
  // Fixed layout, so every field parses branchlessly (common/parse.h): a
  // perfect-hash month probe and arithmetic digit validation replace the
  // month compare chain and the per-character from_chars loops.  Only the
  // day-of-month may be space-padded; the time fields are strictly two
  // digits with ':' separators, validated inside parse_hhmmss.
  if (s.size() != 15) return std::nullopt;
  CalendarTime ct;
  ct.year = year;
  ct.month = month_number(s.data());
  if (ct.month == 0 || s[3] != ' ' || s[6] != ' ') return std::nullopt;
  ct.day = parse_day_of_month(s.data() + 4);
  const int secs = parse_hhmmss(s.data() + 7);
  if (ct.day < 1 || ct.day > days_in_month(ct.year, ct.month) || secs < 0) {
    return std::nullopt;
  }
  ct.hour = secs / 3600;
  ct.minute = (secs / 60) % 60;
  ct.second = secs % 60;
  return to_timepoint(ct);
}

std::int64_t day_index(TimePoint tp) {
  // Floor division so pre-1970 timestamps land on the correct day.
  std::int64_t d = tp / kDay;
  if (tp % kDay < 0) --d;
  return d;
}

TimePoint start_of_day(TimePoint tp) { return day_index(tp) * kDay; }

double to_hours(Duration d) { return static_cast<double>(d) / kHour; }

double to_days(Duration d) { return static_cast<double>(d) / kDay; }

std::string format_duration(Duration d) {
  const bool neg = d < 0;
  if (neg) d = -d;
  const std::int64_t days = d / kDay;
  const int h = static_cast<int>((d % kDay) / kHour);
  const int m = static_cast<int>((d % kHour) / kMinute);
  const int s = static_cast<int>(d % kMinute);
  char buf[48];
  if (days > 0) {
    std::snprintf(buf, sizeof(buf), "%s%lldd %02d:%02d:%02d", neg ? "-" : "",
                  static_cast<long long>(days), h, m, s);
  } else {
    std::snprintf(buf, sizeof(buf), "%s%02d:%02d:%02d", neg ? "-" : "", h, m, s);
  }
  return buf;
}

}  // namespace gpures::common
