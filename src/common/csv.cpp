#include "common/csv.h"

#include <ostream>

namespace gpures::common {

std::string csv_escape(std::string_view cell) {
  const bool needs_quote = cell.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string(cell);
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) os_ << ',';
    os_ << csv_escape(cells[i]);
  }
  os_ << '\n';
}

std::vector<std::string> parse_csv_line(std::string_view line) {
  std::vector<std::string> out;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      out.push_back(std::move(cur));
      cur.clear();
    } else if (c == '\r') {
      // ignore CR in CRLF files
    } else {
      cur += c;
    }
  }
  out.push_back(std::move(cur));
  return out;
}

}  // namespace gpures::common
