#include "common/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace gpures::common {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::kRight) {
  if (headers_.empty()) {
    throw std::invalid_argument("AsciiTable: need at least one column");
  }
  aligns_[0] = Align::kLeft;  // first column is usually a label
}

void AsciiTable::set_align(std::size_t col, Align a) { aligns_.at(col) = a; }

void AsciiTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(Row{std::move(cells), pending_separator_});
  pending_separator_ = false;
}

void AsciiTable::add_separator() { pending_separator_ = true; }

std::string AsciiTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto hline = [&] {
    std::string s = "+";
    for (auto w : widths) {
      s += std::string(w + 2, '-');
      s += '+';
    }
    s += '\n';
    return s;
  };
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      const std::size_t pad = widths[c] - cell.size();
      s += ' ';
      if (aligns_[c] == Align::kRight) s += std::string(pad, ' ');
      s += cell;
      if (aligns_[c] == Align::kLeft) s += std::string(pad, ' ');
      s += " |";
    }
    s += '\n';
    return s;
  };

  std::string out = hline();
  out += render_row(headers_);
  out += hline();
  for (const auto& row : rows_) {
    if (row.separator_before) out += hline();
    out += render_row(row.cells);
  }
  out += hline();
  return out;
}

std::string fmt_int(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out += ',';
    out += digits[i];
  }
  return out;
}

std::string fmt_fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string fmt_sig(double v, int sig) {
  if (!std::isfinite(v)) return "-";
  if (v == 0.0) return "0";
  const double mag = std::floor(std::log10(std::fabs(v)));
  const int decimals = std::max(0, sig - 1 - static_cast<int>(mag));
  return fmt_fixed(v, decimals);
}

std::string fmt_pct(double fraction, int digits) {
  return fmt_fixed(fraction * 100.0, digits);
}

std::string fmt_mtbe(double hours) {
  if (!std::isfinite(hours)) return "-";
  if (hours >= 100.0) return fmt_int(static_cast<std::uint64_t>(std::llround(hours)));
  if (hours >= 10.0) return fmt_fixed(hours, 0);
  if (hours >= 1.0) return fmt_fixed(hours, 1);
  return fmt_fixed(hours, 2);
}

}  // namespace gpures::common
