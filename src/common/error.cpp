#include "common/error.h"

// Header-only today; this TU anchors the target and keeps the door open for
// richer error context without touching the build.
