// Small string utilities shared by parsers and writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace gpures::common {

/// Split on a single character; keeps empty fields.
std::vector<std::string_view> split(std::string_view s, char sep);

/// Trim ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool contains(std::string_view s, std::string_view needle);

/// Case-insensitive substring search (ASCII only).
bool icontains(std::string_view s, std::string_view needle);

/// Lower-case copy (ASCII only).
std::string to_lower(std::string_view s);

/// Parse a non-negative integer; returns -1 on failure.
long long parse_ll(std::string_view s);

/// Parse a double; returns NaN on failure.
double parse_double(std::string_view s);

/// Join strings with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace gpures::common
