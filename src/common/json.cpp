#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace gpures::common {

void JsonWriter::comma_if_needed() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows "key":
  }
  if (!need_comma_.empty() && need_comma_.back()) out_ += ',';
  if (!need_comma_.empty()) need_comma_.back() = true;
}

void JsonWriter::begin_object() {
  comma_if_needed();
  out_ += '{';
  need_comma_.push_back(false);
  ++depth_;
}

void JsonWriter::end_object() {
  if (depth_ <= 0) throw std::logic_error("JsonWriter: unbalanced end_object");
  out_ += '}';
  need_comma_.pop_back();
  --depth_;
}

void JsonWriter::begin_array() {
  comma_if_needed();
  out_ += '[';
  need_comma_.push_back(false);
  ++depth_;
}

void JsonWriter::end_array() {
  if (depth_ <= 0) throw std::logic_error("JsonWriter: unbalanced end_array");
  out_ += ']';
  need_comma_.pop_back();
  --depth_;
}

void JsonWriter::key(std::string_view k) {
  if (pending_key_) throw std::logic_error("JsonWriter: key after key");
  comma_if_needed();
  out_ += '"';
  out_ += escape(k);
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::value(std::string_view s) {
  comma_if_needed();
  out_ += '"';
  out_ += escape(s);
  out_ += '"';
}

void JsonWriter::value(double d) {
  comma_if_needed();
  if (!std::isfinite(d)) {
    out_ += "null";  // JSON has no Inf/NaN
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", d);
  out_ += buf;
}

void JsonWriter::value(std::int64_t i) {
  comma_if_needed();
  out_ += std::to_string(i);
}

void JsonWriter::value(std::uint64_t u) {
  comma_if_needed();
  out_ += std::to_string(u);
}

void JsonWriter::value(bool b) {
  comma_if_needed();
  out_ += b ? "true" : "false";
}

void JsonWriter::null() {
  comma_if_needed();
  out_ += "null";
}

std::string JsonWriter::str() && {
  if (depth_ != 0 || pending_key_) {
    throw std::logic_error("JsonWriter: unbalanced output");
  }
  return std::move(out_);
}

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace gpures::common
