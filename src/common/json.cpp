#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace gpures::common {

void JsonWriter::comma_if_needed() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows "key":
  }
  if (!need_comma_.empty() && need_comma_.back()) out_ += ',';
  if (!need_comma_.empty()) need_comma_.back() = true;
}

void JsonWriter::begin_object() {
  comma_if_needed();
  out_ += '{';
  need_comma_.push_back(false);
  ++depth_;
}

void JsonWriter::end_object() {
  if (depth_ <= 0) throw std::logic_error("JsonWriter: unbalanced end_object");
  out_ += '}';
  need_comma_.pop_back();
  --depth_;
}

void JsonWriter::begin_array() {
  comma_if_needed();
  out_ += '[';
  need_comma_.push_back(false);
  ++depth_;
}

void JsonWriter::end_array() {
  if (depth_ <= 0) throw std::logic_error("JsonWriter: unbalanced end_array");
  out_ += ']';
  need_comma_.pop_back();
  --depth_;
}

void JsonWriter::key(std::string_view k) {
  if (pending_key_) throw std::logic_error("JsonWriter: key after key");
  comma_if_needed();
  out_ += '"';
  out_ += escape(k);
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::value(std::string_view s) {
  comma_if_needed();
  out_ += '"';
  out_ += escape(s);
  out_ += '"';
}

void JsonWriter::value(double d) {
  comma_if_needed();
  if (!std::isfinite(d)) {
    out_ += "null";  // JSON has no Inf/NaN
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", d);
  out_ += buf;
}

void JsonWriter::value(std::int64_t i) {
  comma_if_needed();
  out_ += std::to_string(i);
}

void JsonWriter::value(std::uint64_t u) {
  comma_if_needed();
  out_ += std::to_string(u);
}

void JsonWriter::value(bool b) {
  comma_if_needed();
  out_ += b ? "true" : "false";
}

void JsonWriter::null() {
  comma_if_needed();
  out_ += "null";
}

std::string JsonWriter::str() && {
  if (depth_ != 0 || pending_key_) {
    throw std::logic_error("JsonWriter: unbalanced output");
  }
  return std::move(out_);
}

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---- JsonValue ----

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.num_ = d;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.str_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.arr_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(std::vector<Member> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.obj_ = std::move(members);
  return v;
}

bool JsonValue::as_bool() const {
  if (!is_bool()) throw std::logic_error("JsonValue: not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (!is_number()) throw std::logic_error("JsonValue: not a number");
  return num_;
}

const std::string& JsonValue::as_string() const {
  if (!is_string()) throw std::logic_error("JsonValue: not a string");
  return str_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (!is_array()) throw std::logic_error("JsonValue: not an array");
  return arr_;
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
  if (!is_object()) throw std::logic_error("JsonValue: not an object");
  return obj_;
}

std::size_t JsonValue::size() const {
  if (is_array()) return arr_.size();
  if (is_object()) return obj_.size();
  return 0;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const auto* v = find(key);
  if (v == nullptr) {
    throw std::out_of_range("JsonValue: missing key '" + std::string(key) +
                            "'");
  }
  return *v;
}

const JsonValue& JsonValue::at(std::size_t index) const {
  const auto& a = items();
  if (index >= a.size()) throw std::out_of_range("JsonValue: index");
  return a[index];
}

// ---- parser ----

namespace {

constexpr int kMaxDepth = 256;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> run() {
    skip_ws();
    JsonValue v;
    if (!parse_value(v, 0)) return fail();
    skip_ws();
    if (pos_ != text_.size()) {
      return error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Result<JsonValue> fail() const { return Error::make(err_); }
  bool error_at(std::string msg) {
    if (err_.empty()) {
      err_ = "json parse error at offset " + std::to_string(pos_) + ": " +
             std::move(msg);
    }
    return false;
  }
  Result<JsonValue> error(std::string msg) {
    error_at(std::move(msg));
    return fail();
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      return error_at("invalid literal");
    }
    pos_ += lit.size();
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return error_at("nesting too deep");
    if (eof()) return error_at("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = JsonValue::make_string(std::move(s));
        return true;
      }
      case 't':
        if (!consume_literal("true")) return false;
        out = JsonValue::make_bool(true);
        return true;
      case 'f':
        if (!consume_literal("false")) return false;
        out = JsonValue::make_bool(false);
        return true;
      case 'n':
        if (!consume_literal("null")) return false;
        out = JsonValue::make_null();
        return true;
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    ++pos_;  // '{'
    std::vector<JsonValue::Member> members;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      out = JsonValue::make_object(std::move(members));
      return true;
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') return error_at("expected object key");
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (eof() || peek() != ':') return error_at("expected ':'");
      ++pos_;
      skip_ws();
      JsonValue v;
      if (!parse_value(v, depth + 1)) return false;
      members.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (eof()) return error_at("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        out = JsonValue::make_object(std::move(members));
        return true;
      }
      return error_at("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      out = JsonValue::make_array(std::move(items));
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue v;
      if (!parse_value(v, depth + 1)) return false;
      items.push_back(std::move(v));
      skip_ws();
      if (eof()) return error_at("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        out = JsonValue::make_array(std::move(items));
        return true;
      }
      return error_at("expected ',' or ']'");
    }
  }

  static void append_utf8(std::string& s, std::uint32_t cp) {
    if (cp < 0x80) {
      s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      s += static_cast<char>(0xC0 | (cp >> 6));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      s += static_cast<char>(0xE0 | (cp >> 12));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      s += static_cast<char>(0xF0 | (cp >> 18));
      s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_hex4(std::uint32_t& out) {
    if (pos_ + 4 > text_.size()) return error_at("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return error_at("invalid \\u escape");
      }
    }
    pos_ += 4;
    return true;
  }

  bool parse_string(std::string& out) {
    ++pos_;  // '"'
    out.clear();
    while (true) {
      if (eof()) return error_at("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return error_at("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) return error_at("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!parse_hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: require an immediately following low one.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return error_at("lone high surrogate");
            }
            pos_ += 2;
            std::uint32_t lo = 0;
            if (!parse_hex4(lo)) return false;
            if (lo < 0xDC00 || lo > 0xDFFF) {
              return error_at("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return error_at("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: return error_at("invalid escape character");
      }
    }
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || peek() < '0' || peek() > '9') {
      pos_ = start;
      return error_at("invalid value");
    }
    if (peek() == '0') {
      ++pos_;
    } else {
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || peek() < '0' || peek() > '9') {
        return error_at("digit expected after decimal point");
      }
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || peek() < '0' || peek() > '9') {
        return error_at("digit expected in exponent");
      }
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    out = JsonValue::make_number(std::strtod(token.c_str(), nullptr));
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string err_;
};

}  // namespace

Result<JsonValue> parse_json(std::string_view text) {
  return Parser(text).run();
}

}  // namespace gpures::common
