// Histograms and ECDF series for figure reproduction (the paper's Fig. 2 is a
// distribution of node-unavailability durations).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace gpures::common {

/// Fixed-bin histogram over [lo, hi); samples outside the range land in
/// saturating under/overflow bins that are reported separately.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_n(double x, std::uint64_t n);

  std::size_t bins() const { return counts_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }

  /// Lower edge of bin i.
  double bin_lo(std::size_t i) const;
  /// Upper edge of bin i.
  double bin_hi(std::size_t i) const;

  /// Fraction of all samples (including under/overflow) in bin i.
  double fraction(std::size_t bin) const;

  /// Render an ASCII bar chart (one row per bin), e.g. for bench output.
  std::string render(std::size_t width = 50, bool skip_empty = true) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Log-spaced histogram for heavy-tailed durations (job runtimes span
/// seconds to days).
class LogHistogram {
 public:
  /// Bins span [lo, hi) with `bins_per_decade` logarithmic bins per 10x.
  LogHistogram(double lo, double hi, std::size_t bins_per_decade = 5);

  void add(double x);
  std::size_t bins() const { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  std::uint64_t total() const { return total_; }
  std::string render(std::size_t width = 50, bool skip_empty = true) const;

 private:
  double log_lo_;
  double log_step_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Point on an empirical CDF curve.
struct EcdfPoint {
  double x = 0.0;
  double p = 0.0;
};

/// Downsampled ECDF: at most `max_points` points covering the full range.
/// Sorts a copy of the input.
std::vector<EcdfPoint> make_ecdf(std::span<const double> xs,
                                 std::size_t max_points = 100);

}  // namespace gpures::common
