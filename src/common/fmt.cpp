#include "common/fmt.h"

namespace gpures::common {

void append_uint(std::string& out, std::uint64_t v) {
  char buf[20];  // max uint64 is 20 digits
  char* end = buf + sizeof(buf);
  char* p = end;
  do {
    *--p = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  out.append(p, static_cast<std::size_t>(end - p));
}

void append_int(std::string& out, std::int64_t v) {
  if (v < 0) {
    out.push_back('-');
    // Negate via uint64 so INT64_MIN doesn't overflow.
    append_uint(out, ~static_cast<std::uint64_t>(v) + 1);
    return;
  }
  append_uint(out, static_cast<std::uint64_t>(v));
}

void append_2d(std::string& out, int v) {
  const char d[2] = {static_cast<char>('0' + (v / 10) % 10),
                     static_cast<char>('0' + v % 10)};
  out.append(d, 2);
}

void append_syslog_time(std::string& out, TimePoint tp) {
  const CalendarTime ct = to_calendar(tp);
  out.append(month_abbrev(ct.month));
  out.push_back(' ');
  if (ct.day < 10) {
    out.push_back(' ');
    out.push_back(static_cast<char>('0' + ct.day));
  } else {
    append_2d(out, ct.day);
  }
  out.push_back(' ');
  append_2d(out, ct.hour);
  out.push_back(':');
  append_2d(out, ct.minute);
  out.push_back(':');
  append_2d(out, ct.second);
}

}  // namespace gpures::common
