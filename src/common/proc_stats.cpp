#include "common/proc_stats.h"

#ifdef __linux__
#include <dirent.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#endif

namespace gpures::common {

#ifdef __linux__

namespace {

/// VmRSS line from /proc/self/status, in kB; 0 when absent.
std::uint64_t read_rss_kb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t rss = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      unsigned long long kb = 0;
      if (std::sscanf(line + 6, "%llu", &kb) == 1) rss = kb;
      break;
    }
  }
  std::fclose(f);
  return rss;
}

/// utime/stime (fields 14/15) from /proc/self/stat, in clock ticks.
/// The comm field (2) may contain spaces and parens, so scan from the last
/// ')' rather than splitting on whitespace from the start.
bool read_cpu_times(double& utime_s, double& stime_s) {
  std::FILE* f = std::fopen("/proc/self/stat", "r");
  if (f == nullptr) return false;
  char buf[1024];
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  if (n == 0) return false;
  buf[n] = '\0';
  const char* p = std::strrchr(buf, ')');
  if (p == nullptr) return false;
  ++p;  // now at " S ppid pgrp ... utime stime ..." (fields 3 onward)
  unsigned long long utime = 0;
  unsigned long long stime = 0;
  // 11 fields between ')' and utime: state + 10 numeric fields (4-13).
  if (std::sscanf(p, " %*c %*s %*s %*s %*s %*s %*s %*s %*s %*s %*s %llu %llu",
                  &utime, &stime) != 2) {
    return false;
  }
  const long ticks = sysconf(_SC_CLK_TCK);
  const double hz = ticks > 0 ? static_cast<double>(ticks) : 100.0;
  utime_s = static_cast<double>(utime) / hz;
  stime_s = static_cast<double>(stime) / hz;
  return true;
}

std::uint64_t count_open_fds() {
  DIR* d = opendir("/proc/self/fd");
  if (d == nullptr) return 0;
  std::uint64_t count = 0;
  while (const dirent* e = readdir(d)) {
    if (e->d_name[0] == '.') continue;  // "." and ".."
    ++count;
  }
  closedir(d);
  // Exclude the directory stream's own fd from the report.
  if (count > 0) --count;
  return count;
}

}  // namespace

ProcStats sample_proc_stats() {
  ProcStats s;
  s.rss_kb = read_rss_kb();
  s.valid = read_cpu_times(s.utime_s, s.stime_s);
  s.open_fds = count_open_fds();
  s.valid = s.valid || s.rss_kb > 0;
  return s;
}

#else  // !__linux__

ProcStats sample_proc_stats() { return ProcStats{}; }

#endif

}  // namespace gpures::common
