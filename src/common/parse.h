// Branchless fixed-field parsing for the Stage-I hot path.
//
// The companion to common/fmt.h: where fmt.h renders fixed-width syslog
// fields without snprintf, these helpers parse them back without
// per-character branches.  A syslog header is pure fixed layout
// ("Mon DD HH:MM:SS"), so validity can be computed as arithmetic over all
// the bytes at once and resolved with a single final select — no
// mispredicted digit-by-digit loop, no 12-iteration month-name compare
// chain.  The formatters' tests round-trip through these parsers, so the
// two directions cannot drift apart.
//
// All helpers are backend-independent scalar code (SWAR-style, no
// intrinsics): the SIMD dispatch in src/simd never changes their results,
// which keeps timestamp parsing trivially byte-identical across backends.
#pragma once

#include <cstdint>

namespace gpures::common {

/// Parse exactly two ASCII digits ("07" -> 7).  Returns -1 if either byte
/// is not a digit.  Branchless: both bytes are range-checked arithmetically
/// and the result selected once.
int parse_2digit(const char* p);

/// Parse the two-byte syslog day-of-month field, space- or zero-padded
/// (" 5" -> 5, "05" -> 5, "31" -> 31).  Returns -1 on any other shape;
/// range validity against the month is the caller's job.
int parse_day_of_month(const char* p);

/// Parse "HH:MM:SS" (exactly 8 bytes) to seconds since midnight, validating
/// digits, separators, and field ranges (H <= 23, M/S <= 59) in one
/// branchless pass.  Returns -1 on any violation.
int parse_hhmmss(const char* p);

/// Month number (1..12) for a 3-byte English abbreviation ("Jan".."Dec",
/// exact case), 0 otherwise.  Perfect hash: the three bytes are packed into
/// one word and multiplied into a 16-slot table with no collisions among
/// the twelve months — one multiply and one table probe replace the
/// month-name string-compare chain.
int month_number(const char* p);

}  // namespace gpures::common
