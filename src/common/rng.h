// Deterministic random number generation for simulation.
//
// Every stochastic component in the simulator draws from an Rng derived from a
// single campaign seed via named sub-streams (`Rng::fork`).  This guarantees
// (a) bit-reproducible campaigns for a given seed, and (b) that adding draws
// to one component does not perturb the streams of the others.
#pragma once

#include <cstdint>
#include <cmath>
#include <span>
#include <string_view>
#include <vector>

namespace gpures::common {

/// xoshiro256** by Blackman & Vigna (public domain reference implementation),
/// seeded through SplitMix64.  Fast, high quality, and stable across
/// platforms (unlike std::mt19937_64 + std::distributions, whose outputs are
/// not specified identically across standard libraries).
class Rng {
 public:
  /// Seed from a 64-bit value.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Derive an independent, deterministic sub-stream keyed by `name`.
  /// Forking the same name twice yields identical streams by design; give
  /// each consumer a unique name (e.g. "fault.xid79", "workload.arrivals").
  Rng fork(std::string_view name) const;

  /// Indexed sub-stream: fork(name, i) derives one independent stream per
  /// index from a single named family (e.g. fork("shard", 3) for simulation
  /// shard 3).  Equivalent in spirit to the chained name forks the chaos
  /// layer uses, but without formatting the index into a string.
  Rng fork(std::string_view name, std::uint64_t index) const;

  /// Next raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_u64(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponential with given rate (events per unit time). Requires rate > 0.
  double exponential(double rate);

  /// Standard normal via Box–Muller (no cached spare: deterministic draw count).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Log-normal: exp(N(mu, sigma)). Parameters are of the underlying normal.
  double lognormal(double mu, double sigma);

  /// Weibull with shape k and scale lambda.
  double weibull(double shape, double scale);

  /// Poisson-distributed count with the given mean (exact inversion for small
  /// means, normal approximation with continuity correction for large ones).
  std::uint64_t poisson(double mean);

  /// Geometric: number of Bernoulli(p) failures before the first success
  /// (support {0,1,2,...}).  Requires p in (0, 1].
  std::uint64_t geometric(double p);

  /// Sample an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight.
  std::size_t categorical(std::span<const double> weights);

  /// Pareto (Lomax-style, shifted): xm * U^{-1/alpha}, support [xm, inf).
  double pareto(double xm, double alpha);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_u64(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

/// Precomputed alias-free sampler for a fixed categorical distribution:
/// O(log n) per draw via a cumulative table.  Used on hot paths (workload
/// generation draws millions of categories).
class CategoricalSampler {
 public:
  CategoricalSampler() = default;
  explicit CategoricalSampler(std::span<const double> weights);

  std::size_t sample(Rng& rng) const;
  bool empty() const { return cumulative_.empty(); }
  std::size_t size() const { return cumulative_.size(); }

 private:
  std::vector<double> cumulative_;  // normalized, last element == 1.0
};

}  // namespace gpures::common
