#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace gpures::common {

namespace {

std::string bar(double frac, std::size_t width) {
  const auto n = static_cast<std::size_t>(std::lround(frac * static_cast<double>(width)));
  return std::string(std::min(n, width), '#');
}

}  // namespace

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram: need hi > lo and bins > 0");
  }
}

void Histogram::add(double x) { add_n(x, 1); }

void Histogram::add_n(double x, std::uint64_t n) {
  total_ += n;
  if (x < lo_) {
    underflow_ += n;
    return;
  }
  if (x >= hi_) {
    overflow_ += n;
    return;
  }
  auto bin = static_cast<std::size_t>((x - lo_) / bin_width_);
  bin = std::min(bin, counts_.size() - 1);
  counts_[bin] += n;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + static_cast<double>(i) * bin_width_;
}

double Histogram::bin_hi(std::size_t i) const {
  return lo_ + static_cast<double>(i + 1) * bin_width_;
}

double Histogram::fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(bin)) / static_cast<double>(total_);
}

std::string Histogram::render(std::size_t width, bool skip_empty) const {
  std::string out;
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  char buf[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (skip_empty && counts_[i] == 0) continue;
    const double rel = static_cast<double>(counts_[i]) / static_cast<double>(peak);
    std::snprintf(buf, sizeof(buf), "[%10.3f, %10.3f) %8llu %5.1f%% |%s\n",
                  bin_lo(i), bin_hi(i),
                  static_cast<unsigned long long>(counts_[i]),
                  fraction(i) * 100.0, bar(rel, width).c_str());
    out += buf;
  }
  if (underflow_ > 0) {
    std::snprintf(buf, sizeof(buf), "underflow: %llu\n",
                  static_cast<unsigned long long>(underflow_));
    out += buf;
  }
  if (overflow_ > 0) {
    std::snprintf(buf, sizeof(buf), "overflow:  %llu\n",
                  static_cast<unsigned long long>(overflow_));
    out += buf;
  }
  return out;
}

LogHistogram::LogHistogram(double lo, double hi, std::size_t bins_per_decade) {
  if (!(lo > 0.0) || !(hi > lo) || bins_per_decade == 0) {
    throw std::invalid_argument("LogHistogram: need 0 < lo < hi, bins > 0");
  }
  log_lo_ = std::log10(lo);
  log_step_ = 1.0 / static_cast<double>(bins_per_decade);
  const double decades = std::log10(hi) - log_lo_;
  const auto nbins = static_cast<std::size_t>(std::ceil(decades / log_step_));
  counts_.assign(std::max<std::size_t>(nbins, 1), 0);
}

void LogHistogram::add(double x) {
  ++total_;
  if (x <= 0.0) return;  // not representable on a log axis; drop silently
  const double pos = (std::log10(x) - log_lo_) / log_step_;
  if (pos < 0.0) return;
  const auto bin = static_cast<std::size_t>(pos);
  if (bin >= counts_.size()) return;
  ++counts_[bin];
}

double LogHistogram::bin_lo(std::size_t i) const {
  return std::pow(10.0, log_lo_ + static_cast<double>(i) * log_step_);
}

double LogHistogram::bin_hi(std::size_t i) const {
  return std::pow(10.0, log_lo_ + static_cast<double>(i + 1) * log_step_);
}

std::string LogHistogram::render(std::size_t width, bool skip_empty) const {
  std::string out;
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  char buf[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (skip_empty && counts_[i] == 0) continue;
    const double rel = static_cast<double>(counts_[i]) / static_cast<double>(peak);
    std::snprintf(buf, sizeof(buf), "[%10.3g, %10.3g) %8llu |%s\n", bin_lo(i),
                  bin_hi(i), static_cast<unsigned long long>(counts_[i]),
                  bar(rel, width).c_str());
    out += buf;
  }
  return out;
}

std::vector<EcdfPoint> make_ecdf(std::span<const double> xs,
                                 std::size_t max_points) {
  std::vector<EcdfPoint> pts;
  if (xs.empty() || max_points == 0) return pts;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  const std::size_t step = std::max<std::size_t>(1, n / max_points);
  for (std::size_t i = 0; i < n; i += step) {
    pts.push_back({sorted[i], static_cast<double>(i + 1) / static_cast<double>(n)});
  }
  if (pts.back().x != sorted.back() || pts.back().p != 1.0) {
    pts.push_back({sorted.back(), 1.0});
  }
  return pts;
}

}  // namespace gpures::common
