// Lightweight error type for recoverable failures (parse errors, bad config).
// We use exceptions only for programming errors / violated invariants; data
// errors (malformed log line, bad CSV row) travel as values.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace gpures::common {

/// Error with a human-readable message and optional input-location context.
/// `message` is always self-contained (printers that only know about the
/// message lose nothing); the structured fields let callers and tests
/// dispatch on *where* in an input the failure happened.
struct Error {
  std::string message;
  std::string file;  ///< offending input file, when known
  /// 1-based line in `file`; nullopt when the failure has no line context.
  std::optional<std::uint64_t> line;
  /// Byte offset in `file`; nullopt when unknown.  Optional rather than a 0
  /// sentinel: an offense on the very first byte of a file is offset 0.
  std::optional<std::uint64_t> offset;

  static Error make(std::string msg) {
    Error e;
    e.message = std::move(msg);
    return e;
  }

  /// Error pinned to a spot in an input file.  The location is embedded in
  /// the message ("msg [file:line, byte offset]") and kept as fields.
  static Error at(std::string msg, std::string in_file,
                  std::optional<std::uint64_t> in_line,
                  std::optional<std::uint64_t> in_offset = std::nullopt) {
    Error e;
    e.message = std::move(msg);
    e.message += " [";
    e.message += in_file;
    if (in_line.has_value()) {
      e.message += ':';
      e.message += std::to_string(*in_line);
    }
    if (in_offset.has_value()) {
      e.message += ", byte ";
      e.message += std::to_string(*in_offset);
    }
    e.message += ']';
    e.file = std::move(in_file);
    e.line = in_line;
    e.offset = in_offset;
    return e;
  }
};

/// Poor man's std::expected (C++23) for C++20: either a value or an Error.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Error e) : v_(std::move(e)) {}              // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    if (!ok()) throw std::runtime_error("Result::value on error: " + error().message);
    return std::get<T>(v_);
  }
  T& value() & {
    if (!ok()) throw std::runtime_error("Result::value on error: " + error().message);
    return std::get<T>(v_);
  }
  T&& take() && {
    if (!ok()) throw std::runtime_error("Result::take on error: " + error().message);
    return std::get<T>(std::move(v_));
  }
  const Error& error() const {
    return std::get<Error>(v_);
  }

 private:
  std::variant<T, Error> v_;
};

/// Result<void>: success, or an Error.  For operations with no value to
/// return — finalizing a writer, corrupting a dataset in place — where the
/// seed code mixed bools, exceptions, and silent drops.
class Status {
 public:
  Status() = default;                                  // success
  Status(Error e) : err_(std::move(e)) {}              // NOLINT(google-explicit-constructor)

  static Status ok_status() { return Status{}; }

  bool ok() const { return !err_.has_value(); }
  explicit operator bool() const { return ok(); }

  /// Only valid when !ok().
  const Error& error() const {
    if (ok()) throw std::logic_error("Status::error on success");
    return *err_;
  }

  /// Throw the error as std::runtime_error (bridge to exception callers).
  void throw_if_error() const {
    if (!ok()) throw std::runtime_error(err_->message);
  }

 private:
  std::optional<Error> err_;
};

/// Throwing check used for invariants ("this cannot happen unless the code is
/// wrong"); prefer Result for data-dependent failures.
inline void check(bool cond, const char* what) {
  if (!cond) throw std::logic_error(what);
}

}  // namespace gpures::common
