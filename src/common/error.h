// Lightweight error type for recoverable failures (parse errors, bad config).
// We use exceptions only for programming errors / violated invariants; data
// errors (malformed log line, bad CSV row) travel as values.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace gpures::common {

/// Error with a human-readable message and optional source location context.
struct Error {
  std::string message;

  static Error make(std::string msg) { return Error{std::move(msg)}; }
};

/// Poor man's std::expected (C++23) for C++20: either a value or an Error.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Error e) : v_(std::move(e)) {}              // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    if (!ok()) throw std::runtime_error("Result::value on error: " + error().message);
    return std::get<T>(v_);
  }
  T& value() & {
    if (!ok()) throw std::runtime_error("Result::value on error: " + error().message);
    return std::get<T>(v_);
  }
  T&& take() && {
    if (!ok()) throw std::runtime_error("Result::take on error: " + error().message);
    return std::get<T>(std::move(v_));
  }
  const Error& error() const {
    return std::get<Error>(v_);
  }

 private:
  std::variant<T, Error> v_;
};

/// Throwing check used for invariants ("this cannot happen unless the code is
/// wrong"); prefer Result for data-dependent failures.
inline void check(bool cond, const char* what) {
  if (!cond) throw std::logic_error(what);
}

}  // namespace gpures::common
