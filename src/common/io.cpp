#include "common/io.h"

#include <cstdio>

namespace gpures::common {

Result<std::string> read_file(const std::string& path) {
  // stdio instead of ifstream: no locale/sentry machinery, and fread on a
  // FILE* compiles down to large memcpy-from-buffer block reads.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Error::make("cannot open file: " + path);
  }
  std::string out;
  if (std::fseek(f, 0, SEEK_END) == 0) {
    const long size = std::ftell(f);
    if (size > 0) out.reserve(static_cast<std::size_t>(size));
    std::rewind(f);
  }
  // Read by blocks rather than trusting the stat size: the file may grow or
  // shrink between the seek and the read, and pipes/procfs report size 0.
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) {
    return Error::make("read error on file: " + path);
  }
  return out;
}

}  // namespace gpures::common
