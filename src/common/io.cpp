#include "common/io.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <vector>

#include "common/strings.h"

namespace gpures::common {

namespace {

// Installed fault plan; read on every read call.  Acquire/release so a plan
// installed before a parallel load is fully visible to pool threads.
std::atomic<const IoFaultPlan*> g_io_fault{nullptr};
// Reads affected by the installed plan so far.  For transient kinds a read
// claims a hit slot with fetch_add and is only affected while slots remain,
// so exactly `times` reads misbehave even under concurrency.
std::atomic<std::uint32_t> g_io_fault_hits{0};

/// The installed plan if it matches `path`, else nullptr.
const IoFaultPlan* match_fault(const std::string& path) {
  const IoFaultPlan* fault = g_io_fault.load(std::memory_order_acquire);
  if (fault != nullptr && path.find(fault->path_substring) == std::string::npos) {
    return nullptr;
  }
  return fault;
}

/// For transient kinds: claim one of the plan's `times` slots.  Returns
/// true when this read should misbehave.
bool claim_transient_hit(const IoFaultPlan& fault) {
  if (fault.times == 0) {
    g_io_fault_hits.fetch_add(1, std::memory_order_relaxed);
    return true;  // unbounded: every matching read is affected
  }
  const std::uint32_t slot =
      g_io_fault_hits.fetch_add(1, std::memory_order_relaxed);
  if (slot < fault.times) return true;
  // Overshot: give the slot back so io_fault_hits() reports affected reads.
  g_io_fault_hits.fetch_sub(1, std::memory_order_relaxed);
  return false;
}

}  // namespace

std::string_view to_string(IoFaultKind kind) {
  switch (kind) {
    case IoFaultKind::kFail:
      return "fail";
    case IoFaultKind::kTransient:
      return "transient";
    case IoFaultKind::kEintr:
      return "eintr";
    case IoFaultKind::kShortRead:
      return "short";
  }
  return "unknown";
}

void set_io_fault_plan(const IoFaultPlan* plan) {
  g_io_fault_hits.store(0, std::memory_order_relaxed);
  g_io_fault.store(plan, std::memory_order_release);
}

std::uint32_t io_fault_hits() {
  return g_io_fault_hits.load(std::memory_order_relaxed);
}

Result<IoFaultPlan> parse_io_fault_spec(std::string_view spec) {
  // SUBSTRING may not contain ':' (day-file names never do); split the rest
  // of the fields left to right.
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t colon = spec.find(':', start);
    if (colon == std::string_view::npos) {
      fields.push_back(spec.substr(start));
      break;
    }
    fields.push_back(spec.substr(start, colon - start));
    start = colon + 1;
  }
  if (fields.size() < 2 || fields.size() > 4 || fields[0].empty()) {
    return Error::make(
        "io fault spec wants SUBSTRING:BYTES[:KIND[:TIMES]], got '" +
        std::string(spec) + "'");
  }
  IoFaultPlan plan;
  plan.path_substring = std::string(fields[0]);
  const long long bytes = parse_ll(fields[1]);
  if (bytes < 0) {
    return Error::make("io fault spec: BYTES wants a non-negative integer, "
                       "got '" + std::string(fields[1]) + "'");
  }
  plan.fail_after_bytes = static_cast<std::uint64_t>(bytes);
  if (fields.size() >= 3) {
    const std::string_view kind = fields[2];
    if (kind == "fail") {
      plan.kind = IoFaultKind::kFail;
    } else if (kind == "transient") {
      plan.kind = IoFaultKind::kTransient;
    } else if (kind == "eintr") {
      plan.kind = IoFaultKind::kEintr;
    } else if (kind == "short") {
      plan.kind = IoFaultKind::kShortRead;
    } else {
      return Error::make("io fault spec: KIND wants fail|transient|eintr|"
                         "short, got '" + std::string(kind) + "'");
    }
  }
  if (plan.kind != IoFaultKind::kFail) plan.times = 1;
  if (fields.size() == 4) {
    const long long times = parse_ll(fields[3]);
    if (times < 0) {
      return Error::make("io fault spec: TIMES wants a non-negative integer, "
                         "got '" + std::string(fields[3]) + "'");
    }
    plan.times = static_cast<std::uint32_t>(times);
  }
  return plan;
}

Result<std::string> read_file(const std::string& path) {
  const IoFaultPlan* fault = match_fault(path);
  bool hit = false;
  if (fault != nullptr) {
    if (fault->kind == IoFaultKind::kFail) {
      hit = true;
    } else {
      hit = claim_transient_hit(*fault);
    }
  }
  if (hit && fault->kind != IoFaultKind::kShortRead &&
      (fault->fail_after_bytes == 0 || fault->kind == IoFaultKind::kTransient)) {
    // kFail/kEintr with fail_after_bytes == 0 fail before any byte is read;
    // kTransient models a whole-open bounce regardless of the byte field.
    return Error::make("injected I/O fault opening file: " + path);
  }
  // stdio instead of ifstream: no locale/sentry machinery, and fread on a
  // FILE* compiles down to large memcpy-from-buffer block reads.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Error::make("cannot open file: " + path);
  }
  std::string out;
  if (std::fseek(f, 0, SEEK_END) == 0) {
    const long size = std::ftell(f);
    if (size > 0) out.reserve(static_cast<std::size_t>(size));
    std::rewind(f);
  }
  // Read by blocks rather than trusting the stat size: the file may grow or
  // shrink between the seek and the read, and pipes/procfs report size 0.
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
    if (hit && fault->kind == IoFaultKind::kShortRead &&
        out.size() >= fault->fail_after_bytes) {
      std::fclose(f);
      out.resize(static_cast<std::size_t>(fault->fail_after_bytes));
      return out;
    }
    if (hit && fault->kind != IoFaultKind::kShortRead &&
        out.size() >= fault->fail_after_bytes) {
      std::fclose(f);
      if (fault->kind == IoFaultKind::kEintr) {
        return Error::make("injected transient I/O interrupt after " +
                           std::to_string(out.size()) + " bytes: " + path);
      }
      return Error::make("injected I/O fault after " +
                         std::to_string(out.size()) + " bytes: " + path);
    }
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) {
    return Error::make("read error on file: " + path);
  }
  return out;
}

Result<std::string> read_file_range(const std::string& path,
                                    std::uint64_t offset,
                                    std::uint64_t max_bytes) {
  const IoFaultPlan* fault = match_fault(path);
  bool hit = false;
  if (fault != nullptr) {
    if (fault->kind == IoFaultKind::kFail) {
      hit = true;
    } else {
      hit = claim_transient_hit(*fault);
    }
  }
  if (hit && (fault->kind == IoFaultKind::kTransient ||
              (fault->kind != IoFaultKind::kShortRead &&
               fault->fail_after_bytes == 0))) {
    return Error::make("injected I/O fault opening file: " + path);
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Error::make("cannot open file: " + path);
  }
  if (offset > 0 &&
      std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0) {
    std::fclose(f);
    return Error::make("cannot seek to offset " + std::to_string(offset) +
                       " in file: " + path);
  }
  // A short-read fault truncates the delivered bytes (success); the byte
  // budget below already stops the loop at the right size.
  std::uint64_t budget = max_bytes == 0 ? UINT64_MAX : max_bytes;
  if (hit && fault->kind == IoFaultKind::kShortRead &&
      fault->fail_after_bytes < budget) {
    budget = fault->fail_after_bytes;
  }
  std::string out;
  if (budget != UINT64_MAX) out.reserve(static_cast<std::size_t>(budget));
  char buf[1 << 16];
  while (out.size() < budget) {
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(sizeof(buf), budget - out.size()));
    const std::size_t n = std::fread(buf, 1, want, f);
    if (n == 0) break;
    out.append(buf, n);
    if (hit && fault->kind != IoFaultKind::kShortRead &&
        out.size() >= fault->fail_after_bytes) {
      std::fclose(f);
      if (fault->kind == IoFaultKind::kEintr) {
        return Error::make("injected transient I/O interrupt after " +
                           std::to_string(out.size()) + " bytes: " + path);
      }
      return Error::make("injected I/O fault after " +
                         std::to_string(out.size()) + " bytes: " + path);
    }
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) {
    return Error::make("read error on file: " + path);
  }
  return out;
}

Status write_text_file(const std::string& path, std::string_view text) {
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    if (ec) {
      return Error::make("cannot create directory " + parent.string() +
                         " for file: " + path);
    }
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Error::make("cannot open file for writing: " + path);
  }
  const std::size_t written =
      text.empty() ? 0 : std::fwrite(text.data(), 1, text.size(), f);
  const bool write_ok = written == text.size() && std::ferror(f) == 0;
  const bool close_ok = std::fclose(f) == 0;
  if (!write_ok || !close_ok) {
    return Error::make("write error on file: " + path);
  }
  return Status{};
}

Status write_file_atomic(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  auto st = write_text_file(tmp, bytes);
  if (!st.ok()) return st;
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return Error::make("cannot rename " + tmp + " into place: " + path);
  }
  return Status{};
}

}  // namespace gpures::common
