#include "common/io.h"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <system_error>

namespace gpures::common {

namespace {

// Installed fault plan; read on every read_file call.  Acquire/release so a
// plan installed before a parallel load is fully visible to pool threads.
std::atomic<const IoFaultPlan*> g_io_fault{nullptr};

}  // namespace

void set_io_fault_plan(const IoFaultPlan* plan) {
  g_io_fault.store(plan, std::memory_order_release);
}

Result<std::string> read_file(const std::string& path) {
  const IoFaultPlan* fault = g_io_fault.load(std::memory_order_acquire);
  if (fault != nullptr && path.find(fault->path_substring) == std::string::npos) {
    fault = nullptr;
  }
  if (fault != nullptr && fault->fail_after_bytes == 0) {
    return Error::make("injected I/O fault opening file: " + path);
  }
  // stdio instead of ifstream: no locale/sentry machinery, and fread on a
  // FILE* compiles down to large memcpy-from-buffer block reads.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Error::make("cannot open file: " + path);
  }
  std::string out;
  if (std::fseek(f, 0, SEEK_END) == 0) {
    const long size = std::ftell(f);
    if (size > 0) out.reserve(static_cast<std::size_t>(size));
    std::rewind(f);
  }
  // Read by blocks rather than trusting the stat size: the file may grow or
  // shrink between the seek and the read, and pipes/procfs report size 0.
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
    if (fault != nullptr && out.size() >= fault->fail_after_bytes) {
      std::fclose(f);
      return Error::make("injected I/O fault after " +
                         std::to_string(out.size()) + " bytes: " + path);
    }
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) {
    return Error::make("read error on file: " + path);
  }
  return out;
}

Status write_text_file(const std::string& path, std::string_view text) {
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    if (ec) {
      return Error::make("cannot create directory " + parent.string() +
                         " for file: " + path);
    }
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Error::make("cannot open file for writing: " + path);
  }
  const std::size_t written =
      text.empty() ? 0 : std::fwrite(text.data(), 1, text.size(), f);
  const bool write_ok = written == text.size() && std::ferror(f) == 0;
  const bool close_ok = std::fclose(f) == 0;
  if (!write_ok || !close_ok) {
    return Error::make("write error on file: " + path);
  }
  return Status{};
}

}  // namespace gpures::common
