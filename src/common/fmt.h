// Fast fixed-width formatters for the log emission hot path.
//
// The simulator renders hundreds of millions of syslog lines; going through
// snprintf (format-string parsing, locale machinery) or std::to_string
// (a temporary heap string per call) per line dominates emission time.
// These helpers append digits straight into a caller-owned buffer, so a
// pre-reserved arena sees zero per-line allocations.  Every formatter is
// byte-compatible with the snprintf patterns it replaces — common/time.cpp
// builds its own string renderers on top of them, so the two paths cannot
// diverge.
#pragma once

#include <cstdint>
#include <string>

#include "common/time.h"

namespace gpures::common {

/// Append a decimal unsigned integer (no padding), like std::to_string but
/// without the temporary string.
void append_uint(std::string& out, std::uint64_t v);

/// Append a decimal signed integer (no padding).
void append_int(std::string& out, std::int64_t v);

/// Append exactly two digits, zero-padded ("%02d" for values in [0, 99]).
void append_2d(std::string& out, int v);

/// Append a classic syslog header timestamp, e.g. "May  5 07:23:01"
/// ("%s %2d %02d:%02d:%02d": day-of-month is space-padded).
void append_syslog_time(std::string& out, TimePoint tp);

}  // namespace gpures::common
