// Minimal CSV reader/writer for exporting analysis artifacts (table rows,
// figure series) in a form external plotting tools can consume.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace gpures::common {

/// CSV writer with RFC-4180-style quoting.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  void write_row(const std::vector<std::string>& cells);

 private:
  std::ostream& os_;
};

/// Parse one CSV line into fields (handles quoted fields with embedded
/// commas/quotes; does not handle embedded newlines).
std::vector<std::string> parse_csv_line(std::string_view line);

/// Quote a cell if needed.
std::string csv_escape(std::string_view cell);

}  // namespace gpures::common
