#include "common/rng.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace gpures::common {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// FNV-1a, used to hash fork names into seed material.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

Rng Rng::fork(std::string_view name) const {
  // Combine current state with the name hash; the fork does not consume
  // randomness from the parent stream.
  const std::uint64_t h = fnv1a(name);
  std::uint64_t seed = s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 29) ^ s_[3];
  seed = seed * 0x2545f4914f6cdd1dull ^ h;
  return Rng{seed};
}

Rng Rng::fork(std::string_view name, std::uint64_t index) const {
  // Continue the FNV-1a hash of `name` over the index bytes, so (name, i)
  // and (name, j) yield unrelated seed material for i != j while staying a
  // pure function of (parent state, name, index).
  std::uint64_t h = fnv1a(name);
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (index >> (8 * byte)) & 0xffu;
    h *= 0x100000001b3ull;
  }
  std::uint64_t seed = s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 29) ^ s_[3];
  seed = seed * 0x2545f4914f6cdd1dull ^ h;
  return Rng{seed};
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53-bit mantissa; result in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_u64(std::uint64_t n) {
  assert(n > 0);
  // Lemire's debiased multiply-shift rejection method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t t = (0 - n) % n;
    while (l < t) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_u64(span));
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double rate) {
  assert(rate > 0.0);
  // -log(1-U) avoids log(0) since uniform() < 1.
  return -std::log1p(-uniform()) / rate;
}

double Rng::normal(double mean, double stddev) {
  // Box–Muller; we intentionally discard the second variate so that one call
  // always consumes exactly two uniforms (keeps stream alignment predictable).
  double u1 = uniform();
  const double u2 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * M_PI * u2);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::weibull(double shape, double scale) {
  assert(shape > 0.0 && scale > 0.0);
  return scale * std::pow(-std::log1p(-uniform()), 1.0 / shape);
}

std::uint64_t Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 64.0) {
    // Knuth inversion in the log domain to avoid underflow.
    const double limit = -mean;
    double sum = 0.0;
    std::uint64_t k = 0;
    for (;;) {
      sum += std::log(uniform());
      if (sum < limit) return k;
      ++k;
    }
  }
  // Normal approximation with continuity correction; fine for campaign-scale
  // means where relative error of the approximation is < 1%.
  const double x = normal(mean, std::sqrt(mean));
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

std::uint64_t Rng::geometric(double p) {
  assert(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  const double u = uniform();
  return static_cast<std::uint64_t>(std::floor(std::log1p(-u) / std::log1p(-p)));
}

std::size_t Rng::categorical(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("categorical: no positive weight");
  }
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0.0) continue;
    r -= weights[i];
    if (r < 0.0) return i;
  }
  // Floating point slack: return last positive-weight index.
  for (std::size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return 0;
}

double Rng::pareto(double xm, double alpha) {
  assert(xm > 0.0 && alpha > 0.0);
  return xm * std::pow(1.0 - uniform(), -1.0 / alpha);
}

CategoricalSampler::CategoricalSampler(std::span<const double> weights) {
  cumulative_.reserve(weights.size());
  double total = 0.0;
  for (double w : weights) total += std::max(w, 0.0);
  if (total <= 0.0) {
    throw std::invalid_argument("CategoricalSampler: no positive weight");
  }
  double acc = 0.0;
  for (double w : weights) {
    acc += std::max(w, 0.0) / total;
    cumulative_.push_back(acc);
  }
  cumulative_.back() = 1.0;
}

std::size_t CategoricalSampler::sample(Rng& rng) const {
  assert(!cumulative_.empty());
  const double u = rng.uniform();
  const auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
  return static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - cumulative_.begin(),
                               static_cast<std::ptrdiff_t>(cumulative_.size()) - 1));
}

}  // namespace gpures::common
