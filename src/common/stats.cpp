#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace gpures::common {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double quantile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  return quantile_sorted(copy, q);
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double ecdf(std::span<const double> sorted, double x) {
  if (sorted.empty()) return 0.0;
  const auto it = std::upper_bound(sorted.begin(), sorted.end(), x);
  return static_cast<double>(it - sorted.begin()) /
         static_cast<double>(sorted.size());
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  RunningStats rs;
  for (double x : copy) rs.add(x);
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = copy.front();
  s.max = copy.back();
  s.p50 = quantile_sorted(copy, 0.50);
  s.p90 = quantile_sorted(copy, 0.90);
  s.p99 = quantile_sorted(copy, 0.99);
  return s;
}

double mtbe(double window_hours, std::uint64_t events) {
  if (events == 0) return std::numeric_limits<double>::infinity();
  return window_hours / static_cast<double>(events);
}

Proportion wilson_interval(std::uint64_t successes, std::uint64_t trials,
                           double z) {
  Proportion r;
  if (trials == 0) return r;
  const double n = static_cast<double>(trials);
  const double phat = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = phat + z2 / (2.0 * n);
  const double spread =
      z * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n));
  r.p = phat;
  r.lo = std::max(0.0, (center - spread) / denom);
  r.hi = std::min(1.0, (center + spread) / denom);
  return r;
}

}  // namespace gpures::common
