#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace gpures::common {

ThreadPool::ThreadPool(std::size_t workers) {
  const std::size_t n = std::max<std::size_t>(1, workers);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t chunks = std::min(size(), n);
  std::vector<std::future<void>> pending;
  pending.reserve(chunks);
  // Static contiguous partition: chunk w owns [w*n/chunks, (w+1)*n/chunks).
  for (std::size_t w = 0; w < chunks; ++w) {
    const std::size_t begin = w * n / chunks;
    const std::size_t end = (w + 1) * n / chunks;
    pending.push_back(submit([&fn, begin, end, w] {
      for (std::size_t i = begin; i < end; ++i) fn(i, w);
    }));
  }
  // Every chunk must be joined before returning (they capture fn by
  // reference); the first failure is rethrown after all have finished.
  std::exception_ptr first_error;
  for (auto& f : pending) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // exceptions land in the task's future
  }
}

}  // namespace gpures::common
