// Process self-observation: RSS, CPU time, and open-fd count for the
// telemetry sampler and gpures-health.
//
// Linux-only in substance (reads /proc/self/status, /proc/self/stat, and
// /proc/self/fd); on other platforms — and on any read failure — sample()
// returns a ProcStats with `valid == false` and zeroed fields, so consumers
// degrade to "no proc data" instead of failing.  Values are observational
// sidecar data only and never flow into golden-compared artifacts.
#pragma once

#include <cstdint>

namespace gpures::common {

struct ProcStats {
  bool valid = false;
  std::uint64_t rss_kb = 0;    ///< resident set size (VmRSS)
  double utime_s = 0.0;        ///< user CPU time consumed so far
  double stime_s = 0.0;        ///< system CPU time consumed so far
  std::uint64_t open_fds = 0;  ///< entries in /proc/self/fd
};

/// Sample the current process (cheap: three procfs reads).
ProcStats sample_proc_stats();

}  // namespace gpures::common
