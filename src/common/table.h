// ASCII table rendering: the bench harnesses print the paper's tables with
// the same row/column structure, and this keeps that output tidy.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gpures::common {

/// Column alignment.
enum class Align { kLeft, kRight };

/// Simple monospace table builder.
///
///   AsciiTable t({"Event", "Count", "MTBE (h)"});
///   t.add_row({"MMU Error", "8863", "2.4"});
///   std::cout << t.render();
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers);

  void set_align(std::size_t col, Align a);
  void add_row(std::vector<std::string> cells);
  /// Insert a horizontal separator line before the next row.
  void add_separator();

  std::size_t rows() const { return rows_.size(); }
  std::string render() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator_before = false;
  };
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
  bool pending_separator_ = false;
};

/// Numeric formatting helpers shared by report renderers.
std::string fmt_int(std::uint64_t v);           ///< thousands separators: 38,900
std::string fmt_fixed(double v, int digits);    ///< fixed decimals
std::string fmt_sig(double v, int sig = 3);     ///< significant digits, adaptive
std::string fmt_pct(double fraction, int digits = 2);  ///< 0.9048 -> "90.48"
/// MTBE cell: "-" for infinity/NaN (no events), else adaptive precision.
std::string fmt_mtbe(double hours);

}  // namespace gpures::common
