// A small fixed-size thread pool with a deterministic parallel_for.
//
// Built for the parallel analysis pipeline: work is partitioned into
// *statically assigned* contiguous chunks (no work stealing, no dynamic
// scheduling), so a given (n, workers) pair always produces the same
// index -> worker assignment.  Combined with per-worker private state and an
// ordered merge of per-chunk outputs, this makes parallel execution
// reproducible bit-for-bit regardless of thread timing.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace gpures::common {

class ThreadPool {
 public:
  /// Spawns exactly `workers` threads (at least 1).
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue one task; the future reports completion (and rethrows any
  /// exception the task threw).
  std::future<void> submit(std::function<void()> task);

  /// Run fn(index, worker) for every index in [0, n).  Indices are split
  /// into size() contiguous chunks; chunk w runs sequentially on one thread
  /// and is passed worker id w, so per-worker state (parsers, coalescer
  /// shards) is never shared.  Blocks until all chunks finish; the first
  /// exception thrown by any chunk is rethrown on the caller.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t index,
                                             std::size_t worker)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace gpures::common
