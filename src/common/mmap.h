// Read-only memory-mapped files.
//
// The binary index reader serves queries straight out of the page cache: the
// kernel maps the artifact once and every reader thread shares the same
// physical pages, so a cold open costs one mmap call instead of a full-file
// read, and "deserialization" is a pointer cast.  On platforms without mmap
// the class falls back to a single pre-sized heap read (same interface,
// same bytes, no zero-copy).
//
// The mapping is strictly read-only (PROT_READ / MAP_PRIVATE): corrupt or
// hostile files can never be modified through it, and concurrent readers
// need no synchronization.
#pragma once

#include <cstddef>
#include <string>

#include "common/error.h"

namespace gpures::common {

class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Map `path` read-only.  Empty files map to a valid zero-length view.
  /// Errors (missing file, permission, mmap failure) name the path.
  static Result<MappedFile> open(const std::string& path);

  const std::byte* data() const { return static_cast<const std::byte*>(addr_); }
  std::size_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  void reset();

  void* addr_ = nullptr;
  std::size_t size_ = 0;
  bool heap_ = false;  ///< fallback allocation instead of a kernel mapping
  std::string path_;
};

}  // namespace gpures::common
