#include "common/parse.h"

#include <array>

namespace gpures::common {

namespace {

/// Byte -> digit value, or a huge value for non-digits.  Unsigned wraparound
/// makes every non-digit compare > 9, so a chain of these folds into one
/// range check with OR.
inline unsigned digit(char c) {
  return static_cast<unsigned>(static_cast<unsigned char>(c)) - '0';
}

/// Perfect hash for month abbreviations: slot = (packed * kMonthMul) >> 28
/// over the low 32 bits.  The multiplier was searched offline so that the
/// twelve real months land in twelve distinct slots of a 16-entry table;
/// the static_assert below re-proves it at compile time against the same
/// packing, so the constant cannot silently rot.
constexpr std::uint32_t kMonthMul = 0x2284B7A5u;

constexpr std::uint32_t pack3(char a, char b, char c) {
  return (static_cast<std::uint32_t>(static_cast<unsigned char>(a)) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(b)) << 8) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(c));
}

constexpr std::uint32_t month_slot(std::uint32_t packed) {
  return (packed * kMonthMul) >> 28;
}

struct MonthEntry {
  std::uint32_t key = 0;
  std::int8_t month = 0;
};

constexpr std::array<const char*, 12> kMonthNames = {
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

constexpr std::array<MonthEntry, 16> build_month_table() {
  std::array<MonthEntry, 16> table{};
  for (int m = 0; m < 12; ++m) {
    const char* name = kMonthNames[static_cast<std::size_t>(m)];
    const std::uint32_t key = pack3(name[0], name[1], name[2]);
    table[month_slot(key)] = MonthEntry{key, static_cast<std::int8_t>(m + 1)};
  }
  return table;
}

constexpr std::array<MonthEntry, 16> kMonthTable = build_month_table();

constexpr bool month_table_is_perfect() {
  int filled = 0;
  for (const auto& e : kMonthTable) filled += (e.month != 0);
  return filled == 12;
}

static_assert(month_table_is_perfect(),
              "month perfect-hash multiplier collides; re-search kMonthMul");

}  // namespace

int parse_2digit(const char* p) {
  const unsigned hi = digit(p[0]);
  const unsigned lo = digit(p[1]);
  // Per-digit range checks OR-folded as booleans — OR-ing the *values*
  // first would reject valid pairs (5 | 9 == 13 > 9).
  const bool bad = (hi > 9) | (lo > 9);
  return bad ? -1 : static_cast<int>(hi * 10 + lo);
}

int parse_day_of_month(const char* p) {
  // " 5" (space-padded single digit) or "DD".  A space-padded form must not
  // accept " 0"-style zero days here — the caller range-checks day >= 1,
  // and plain parse handles the rest.
  const unsigned lo = digit(p[1]);
  const unsigned hi = digit(p[0]);
  const bool padded = p[0] == ' ';
  const bool bad = lo > 9 || (!padded && hi > 9);
  const int value = static_cast<int>((padded ? 0 : hi * 10) + lo);
  return bad ? -1 : value;
}

int parse_hhmmss(const char* p) {
  const unsigned h1 = digit(p[0]), h2 = digit(p[1]);
  const unsigned m1 = digit(p[3]), m2 = digit(p[4]);
  const unsigned s1 = digit(p[6]), s2 = digit(p[7]);
  bool bad = (h1 > 9) | (h2 > 9) | (m1 > 9) | (m2 > 9) | (s1 > 9) | (s2 > 9);
  bad = bad | (p[2] != ':') | (p[5] != ':');
  const unsigned h = h1 * 10 + h2;
  const unsigned m = m1 * 10 + m2;
  const unsigned s = s1 * 10 + s2;
  bad = bad | (h > 23) | (m > 59) | (s > 59);
  return bad ? -1 : static_cast<int>(h * 3600 + m * 60 + s);
}

int month_number(const char* p) {
  const std::uint32_t key = pack3(p[0], p[1], p[2]);
  const MonthEntry& e = kMonthTable[month_slot(key)];
  return e.key == key ? e.month : 0;
}

}  // namespace gpures::common
