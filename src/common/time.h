// Simulation time: seconds since the Unix epoch, with calendar helpers.
//
// The whole library uses calendar-real timestamps because the reproduced study
// splits its 1170-day measurement window at real dates (pre-operational period
// ends 2022-09-30, operational period ends 2025-03-16).  Keeping sim time as
// UTC seconds means period arithmetic, syslog rendering, and Slurm accounting
// all share one clock with no conversions.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <optional>

namespace gpures::common {

/// Seconds since the Unix epoch (UTC).  Signed so durations subtract safely.
using TimePoint = std::int64_t;
/// Seconds.
using Duration = std::int64_t;

inline constexpr Duration kSecond = 1;
inline constexpr Duration kMinute = 60;
inline constexpr Duration kHour = 3600;
inline constexpr Duration kDay = 86400;

/// Broken-down UTC calendar date-time.
struct CalendarTime {
  int year = 1970;
  int month = 1;   ///< 1..12
  int day = 1;     ///< 1..31
  int hour = 0;    ///< 0..23
  int minute = 0;  ///< 0..59
  int second = 0;  ///< 0..59

  friend bool operator==(const CalendarTime&, const CalendarTime&) = default;
};

/// True iff `year` is a Gregorian leap year.
bool is_leap_year(int year);

/// Number of days in `month` (1..12) of `year`.
int days_in_month(int year, int month);

/// Convert a calendar date-time (UTC) to seconds since the epoch.
/// Uses the proleptic Gregorian calendar; no leap seconds.
TimePoint to_timepoint(const CalendarTime& ct);

/// Convenience: midnight UTC of a calendar date.
TimePoint make_date(int year, int month, int day);

/// Inverse of to_timepoint.
CalendarTime to_calendar(TimePoint tp);

/// Render "YYYY-MM-DD HH:MM:SS" (UTC).
std::string format_iso(TimePoint tp);

/// Render "YYYY-MM-DD".
std::string format_date(TimePoint tp);

/// Render a classic syslog header timestamp, e.g. "May  5 07:23:01".
std::string format_syslog(TimePoint tp);

/// Three-letter English month abbreviation ("Jan".."Dec") for month 1..12.
/// Out-of-range months return "???" (callers validate months upstream).
std::string_view month_abbrev(int month);

/// Parse "YYYY-MM-DD" or "YYYY-MM-DD HH:MM:SS" (also accepts 'T' separator).
std::optional<TimePoint> parse_iso(std::string_view s);

/// Parse a syslog header timestamp ("May  5 07:23:01") given the year it
/// belongs to (syslog timestamps omit the year).
std::optional<TimePoint> parse_syslog(std::string_view s, int year);

/// Day index since epoch (floor division; valid for negative times too).
std::int64_t day_index(TimePoint tp);

/// Midnight UTC of the day containing `tp`.
TimePoint start_of_day(TimePoint tp);

/// Duration in fractional hours.
double to_hours(Duration d);

/// Duration in fractional days.
double to_days(Duration d);

/// Render a duration compactly, e.g. "2d 03:15:07" or "00:04:30".
std::string format_duration(Duration d);

}  // namespace gpures::common
