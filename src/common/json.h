// Minimal JSON writer (no DOM, no parsing): enough to export analysis
// artifacts for external plotting/tooling.  Values are written eagerly to a
// growing string; objects/arrays nest via RAII-free begin/end calls with
// validation in debug builds.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gpures::common {

/// Streaming JSON writer producing compact output.
///
///   JsonWriter w;
///   w.begin_object();
///   w.key("name"); w.value("gpures");
///   w.key("counts"); w.begin_array();
///   w.value(1); w.value(2);
///   w.end_array();
///   w.end_object();
///   std::string s = std::move(w).str();
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Write an object key (must be inside an object, before a value).
  void key(std::string_view k);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(double d);
  void value(std::int64_t i);
  void value(std::uint64_t u);
  void value(int i) { value(static_cast<std::int64_t>(i)); }
  void value(bool b);
  void null();

  /// Shorthand: key + value.
  template <typename T>
  void kv(std::string_view k, T&& v) {
    key(k);
    value(std::forward<T>(v));
  }

  /// Final output; writer must be balanced (all containers closed).
  std::string str() &&;

  /// Escape a string per RFC 8259.
  static std::string escape(std::string_view s);

 private:
  void comma_if_needed();

  std::string out_;
  /// Per nesting level: whether a comma is needed before the next element.
  std::vector<bool> need_comma_{false};
  bool pending_key_ = false;
  std::int32_t depth_ = 0;
};

}  // namespace gpures::common
