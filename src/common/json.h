// Minimal JSON support: a streaming writer for exporting analysis artifacts
// and a small DOM + recursive-descent parser for reading them back
// (round-trip validation of metrics/trace/manifest artifacts, config-ish
// inputs).  The writer emits values eagerly to a growing string;
// objects/arrays nest via RAII-free begin/end calls.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/error.h"

namespace gpures::common {

/// Streaming JSON writer producing compact output.
///
///   JsonWriter w;
///   w.begin_object();
///   w.key("name"); w.value("gpures");
///   w.key("counts"); w.begin_array();
///   w.value(1); w.value(2);
///   w.end_array();
///   w.end_object();
///   std::string s = std::move(w).str();
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Write an object key (must be inside an object, before a value).
  void key(std::string_view k);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(double d);
  void value(std::int64_t i);
  void value(std::uint64_t u);
  void value(int i) { value(static_cast<std::int64_t>(i)); }
  void value(bool b);
  void null();

  /// Shorthand: key + value.
  template <typename T>
  void kv(std::string_view k, T&& v) {
    key(k);
    value(std::forward<T>(v));
  }

  /// Final output; writer must be balanced (all containers closed).
  std::string str() &&;

  /// Escape a string per RFC 8259.
  static std::string escape(std::string_view s);

 private:
  void comma_if_needed();

  std::string out_;
  /// Per nesting level: whether a comma is needed before the next element.
  std::vector<bool> need_comma_{false};
  bool pending_key_ = false;
  std::int32_t depth_ = 0;
};

/// Parsed JSON document node.  Numbers are kept as double (adequate for the
/// artifacts we round-trip; 2^53 covers every counter this library emits).
/// Object members preserve input order; lookup is linear — documents here
/// are small.
class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;

  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double d);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(std::vector<Member> members);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw std::logic_error on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;   ///< array elements
  const std::vector<Member>& members() const;    ///< object members

  /// Array or object element count (0 for scalars).
  std::size_t size() const;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
  /// Like find(), but throws std::out_of_range when the key is absent.
  const JsonValue& at(std::string_view key) const;
  /// Array indexing; throws std::out_of_range when out of bounds.
  const JsonValue& at(std::size_t index) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::vector<Member> obj_;
};

/// Parse a complete JSON document (RFC 8259; rejects trailing garbage).
/// Errors carry a byte offset.  Nesting is capped at 256 levels.
Result<JsonValue> parse_json(std::string_view text);

}  // namespace gpures::common
