#include "common/mmap.h"

#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define GPURES_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define GPURES_HAVE_MMAP 0
#include <cstdlib>
#include <cstring>
#include <fstream>
#endif

namespace gpures::common {

MappedFile::~MappedFile() { reset(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : addr_(other.addr_),
      size_(other.size_),
      heap_(other.heap_),
      path_(std::move(other.path_)) {
  other.addr_ = nullptr;
  other.size_ = 0;
  other.heap_ = false;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    reset();
    addr_ = other.addr_;
    size_ = other.size_;
    heap_ = other.heap_;
    path_ = std::move(other.path_);
    other.addr_ = nullptr;
    other.size_ = 0;
    other.heap_ = false;
  }
  return *this;
}

void MappedFile::reset() {
  if (addr_ != nullptr) {
#if GPURES_HAVE_MMAP
    if (heap_) {
      ::operator delete(addr_);
    } else {
      ::munmap(addr_, size_);
    }
#else
    ::operator delete(addr_);
#endif
  }
  addr_ = nullptr;
  size_ = 0;
  heap_ = false;
}

Result<MappedFile> MappedFile::open(const std::string& path) {
  MappedFile m;
  m.path_ = path;
#if GPURES_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);  // NOLINT(android-cloexec-open)
  if (fd < 0) {
    return Error::at("cannot open for mapping", path, std::nullopt);
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Error::at("cannot stat", path, std::nullopt);
  }
  m.size_ = static_cast<std::size_t>(st.st_size);
  if (m.size_ == 0) {
    // mmap of length 0 is unspecified; a zero-length view needs no mapping.
    ::close(fd);
    return m;
  }
  void* addr = ::mmap(nullptr, m.size_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (addr == MAP_FAILED) {
    m.size_ = 0;
    return Error::at("mmap failed", path, std::nullopt);
  }
  m.addr_ = addr;
#else
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  if (!is) {
    return Error::at("cannot open for reading", path, std::nullopt);
  }
  const auto end = is.tellg();
  if (end < 0) return Error::at("cannot stat", path, std::nullopt);
  m.size_ = static_cast<std::size_t>(end);
  if (m.size_ == 0) return m;
  m.addr_ = ::operator new(m.size_);
  m.heap_ = true;
  is.seekg(0);
  if (!is.read(static_cast<char*>(m.addr_),
               static_cast<std::streamsize>(m.size_))) {
    return Error::at("short read", path, std::nullopt);
  }
#endif
  return m;
}

}  // namespace gpures::common
