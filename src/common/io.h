// Whole-file I/O helpers.
//
// `std::istreambuf_iterator<char>` pulls one character per iteration through
// the streambuf virtual interface; on multi-megabyte day files that is the
// dominant load cost.  read_file stats the file once, reserves the exact
// size, and issues large block reads instead.
//
// For chaos testing, a process-wide fault injection point lets tests and the
// chaos harness make read_file fail mid-read deterministically — the only
// way to exercise the loader's torn-read handling without flaky tmpfs
// tricks.  Production code never installs a fault.
#pragma once

#include <cstdint>
#include <string>

#include "common/error.h"

namespace gpures::common {

/// Chaos hook: a planned mid-read failure.  While installed, any read_file
/// of a path containing `path_substring` fails with an injected Error once
/// `fail_after_bytes` bytes have been read (0 = fail on open).
struct IoFaultPlan {
  std::string path_substring;
  std::uint64_t fail_after_bytes = 0;
};

/// Install a fault plan (nullptr clears).  The plan must outlive its
/// installation and must be installed/cleared only while no read_file call
/// is in flight (reads themselves may run concurrently on worker threads).
void set_io_fault_plan(const IoFaultPlan* plan);

/// Read an entire file into a string with a single pre-sized pass.
/// Returns the file contents, or an Error naming the path on open/read
/// failure.  Binary-safe: bytes are returned exactly as stored.
Result<std::string> read_file(const std::string& path);

/// Write `text` to `path` (truncating), creating parent directories as
/// needed.  Every tool-facing artifact write goes through here so open,
/// short-write, and close failures all surface as a checked Error naming
/// the path — instead of the silent bad() streams the CLIs used to mix.
Status write_text_file(const std::string& path, std::string_view text);

}  // namespace gpures::common
