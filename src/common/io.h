// Whole-file I/O helpers.
//
// `std::istreambuf_iterator<char>` pulls one character per iteration through
// the streambuf virtual interface; on multi-megabyte day files that is the
// dominant load cost.  read_file stats the file once, reserves the exact
// size, and issues large block reads instead.
#pragma once

#include <string>

#include "common/error.h"

namespace gpures::common {

/// Read an entire file into a string with a single pre-sized pass.
/// Returns the file contents, or an Error naming the path on open/read
/// failure.  Binary-safe: bytes are returned exactly as stored.
Result<std::string> read_file(const std::string& path);

}  // namespace gpures::common
