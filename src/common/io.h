// Whole-file and ranged I/O helpers.
//
// `std::istreambuf_iterator<char>` pulls one character per iteration through
// the streambuf virtual interface; on multi-megabyte day files that is the
// dominant load cost.  read_file stats the file once, reserves the exact
// size, and issues large block reads instead.  read_file_range is the
// follow-mode variant: it resumes a growing file from a byte offset, so the
// serve daemon can tail a day file in bounded chunks.
//
// For chaos testing, a process-wide fault injection point lets tests and the
// chaos harness make reads fail deterministically — the only way to exercise
// the loader's torn-read handling and the serve daemon's retry/backoff path
// without flaky tmpfs tricks.  Production code never installs a fault.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/error.h"

namespace gpures::common {

/// How an installed IoFaultPlan misbehaves.  kFail reproduces the original
/// hard-failure semantics; the transient kinds model the faults a retry
/// policy must absorb: NFS servers that bounce, reads interrupted by
/// signals, and reads that return fewer bytes than requested.
enum class IoFaultKind : std::uint8_t {
  kFail = 0,       ///< permanent: open fails (fail_after_bytes == 0) or the
                   ///< read fails once that many bytes have been delivered
  kTransient = 1,  ///< the first `times` matching reads fail on open, then
                   ///< every later read succeeds (fail-N-then-succeed)
  kEintr = 2,      ///< the first `times` matching reads fail mid-read after
                   ///< fail_after_bytes bytes ("interrupted"), then succeed
  kShortRead = 3,  ///< the first `times` matching reads return successfully
                   ///< but truncated to fail_after_bytes bytes
};

std::string_view to_string(IoFaultKind kind);

/// Chaos hook: a planned I/O failure.  While installed, any read of a path
/// containing `path_substring` misbehaves according to `kind`; for the
/// transient kinds only the first `times` matching reads are affected (a
/// process-wide hit counter, reset by set_io_fault_plan, tracks that).
struct IoFaultPlan {
  std::string path_substring;
  std::uint64_t fail_after_bytes = 0;
  IoFaultKind kind = IoFaultKind::kFail;
  std::uint32_t times = 0;  ///< affected reads for transient kinds; 0 = all
};

/// Install a fault plan (nullptr clears) and reset the transient hit
/// counter.  The plan must outlive its installation and must be
/// installed/cleared only while no read call is in flight (reads themselves
/// may run concurrently on worker threads).
void set_io_fault_plan(const IoFaultPlan* plan);

/// Reads affected by the installed plan so far (transient kinds).  Exposed
/// so tests can assert a fault actually fired.
std::uint32_t io_fault_hits();

/// Parse a --chaos-io-fault spec: `SUBSTRING:BYTES[:KIND[:TIMES]]` where
/// KIND is fail|transient|eintr|short (default fail) and TIMES bounds how
/// many reads a transient kind affects (default 1 for transient kinds).
/// The two-field form is exactly the pre-existing syntax.  Errors name the
/// offending field.
Result<IoFaultPlan> parse_io_fault_spec(std::string_view spec);

/// Read an entire file into a string with a single pre-sized pass.
/// Returns the file contents, or an Error naming the path on open/read
/// failure.  Binary-safe: bytes are returned exactly as stored.
Result<std::string> read_file(const std::string& path);

/// Read up to `max_bytes` bytes starting at byte `offset` (0 = no limit:
/// read to EOF).  Reading at or past EOF returns an empty string, not an
/// error — the follow-mode caller polls for growth.  Honors the installed
/// fault plan with byte counts relative to this call.
Result<std::string> read_file_range(const std::string& path,
                                    std::uint64_t offset,
                                    std::uint64_t max_bytes);

/// Write `text` to `path` (truncating), creating parent directories as
/// needed.  Every tool-facing artifact write goes through here so open,
/// short-write, and close failures all surface as a checked Error naming
/// the path — instead of the silent bad() streams the CLIs used to mix.
Status write_text_file(const std::string& path, std::string_view text);

/// Atomically replace `path` with `bytes`: write to `path + ".tmp"`, flush,
/// then rename over the target, so a crash at any point leaves either the
/// old file or the new one — never a torn mix.  Creates parent directories
/// as needed; the leftover .tmp is removed on failure.  Checkpoints, the
/// index, and report artifacts all go through here.
Status write_file_atomic(const std::string& path, std::string_view bytes);

}  // namespace gpures::common
