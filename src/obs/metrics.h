// Metrics registry: named counters, gauges, and fixed-bucket histograms.
//
// Built to be cheap enough for the pipeline's hot loops while staying
// deterministic-safe: counters accumulate into cache-line-padded per-thread
// cells (one relaxed atomic add, no shared-line contention under the
// no-work-stealing thread pool) and are merged by summation on read.
// Integer sums are commutative and associative, so a metric's value is
// independent of thread scheduling — instrumentation can be left on without
// weakening the pipeline's byte-identical-output guarantee (timing-valued
// metrics live only in obs artifacts, never in golden-compared tables).
//
// Handles returned by the registry are stable for the registry's lifetime;
// hot paths resolve a Counter*/Gauge*/Histogram* once and update through it.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace gpures::common {
class JsonWriter;
}

namespace gpures::obs {

/// Small dense id for the calling thread (assigned on first use, never
/// reused).  Shared by the metric cell sharding and the tracer's tid labels.
std::size_t thread_slot();

/// Monotonically increasing counter.
class Counter {
 public:
  static constexpr std::size_t kCells = 16;

  void add(std::uint64_t n) {
    cells_[thread_slot() % kCells].v.fetch_add(n, std::memory_order_relaxed);
  }
  void inc() { add(1); }

  /// Merged value: the sum over all thread cells.
  std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (const auto& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, kCells> cells_{};
};

/// Last-set value plus the maximum ever set (e.g. peak queue depth).
class Gauge {
 public:
  void set(std::int64_t v) {
    v_.store(v, std::memory_order_relaxed);
    std::int64_t prev = max_.load(std::memory_order_relaxed);
    while (v > prev &&
           !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
  }
  void add(std::int64_t d) { set(v_.load(std::memory_order_relaxed) + d); }

  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  std::int64_t max() const { return max_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Fixed-bucket histogram: counts per upper bound plus an implicit +inf
/// bucket, with total count and sum.  Bounds are fixed at registration.
class Histogram {
 public:
  explicit Histogram(std::span<const double> upper_bounds);

  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket i (i == bounds().size() is the overflow bucket).
  std::uint64_t bucket_count(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> bounds_;  ///< sorted, strictly increasing
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_storage_;
  std::span<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default latency bucket bounds in microseconds (roughly log-spaced from
/// 10 us to 100 s) for parse/stage timing histograms.
std::span<const double> latency_buckets_us();

/// Owns every metric; lookups are mutex-protected (resolve handles once),
/// updates through handles are lock-free.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create by name.  Returned references stay valid for the
  /// registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `upper_bounds` is used only on first registration of `name`.
  Histogram& histogram(std::string_view name,
                       std::span<const double> upper_bounds);

  /// Snapshot value of a counter, or 0 when never registered.
  std::uint64_t counter_value(std::string_view name) const;

  /// Serialize every metric, sorted by name (deterministic output):
  /// {"counters":{..},"gauges":{..:{"value":..,"max":..}},"histograms":{..}}.
  void write_json(common::JsonWriter& w) const;
  std::string to_json() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace gpures::obs
