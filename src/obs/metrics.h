// Metrics registry: named counters, gauges, and fixed-bucket histograms,
// with per-family metadata (help text, unit) and label support.
//
// Built to be cheap enough for the pipeline's hot loops while staying
// deterministic-safe: counters accumulate into cache-line-padded per-thread
// cells (one relaxed atomic add, no shared-line contention under the
// no-work-stealing thread pool) and are merged by summation on read.
// Integer sums are commutative and associative, so a metric's value is
// independent of thread scheduling — instrumentation can be left on without
// weakening the pipeline's byte-identical-output guarantee (timing-valued
// metrics live only in obs artifacts, never in golden-compared tables).
//
// Labeled metrics are families: `counter("ingest.lines_dropped",
// {{"reason", "torn"}})` registers one child per label set, stored under the
// rendered name `ingest.lines_dropped{reason="torn"}` (labels sorted by key,
// values escaped), so snapshots stay deterministically ordered.
//
// Handles returned by the registry are stable for the registry's lifetime;
// hot paths resolve a Counter*/Gauge*/Histogram* once and update through it.
//
// Relaxed-read contract: every cell is read with memory_order_relaxed and no
// snapshot is taken under a lock that update paths honor, so a snapshot
// taken while writers are live is a *torn* view — a Histogram's `count` may
// disagree with the sum of its buckets, and `sum` may lag both.  Readers
// that need internal consistency (quantile estimation, Prometheus
// exposition, gpures-health) must normalize by treating the per-bucket
// counts as authoritative: effective count = Σ buckets (see
// HistogramSnapshot::bucket_total).  Once writers are quiescent — the only
// state in which the CLIs serialize — all views agree exactly.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace gpures::common {
class JsonWriter;
}

namespace gpures::obs {

/// Small dense id for the calling thread (assigned on first use, never
/// reused).  Shared by the metric cell sharding and the tracer's tid labels.
std::size_t thread_slot();

/// One label dimension of a metric family instance.
struct Label {
  std::string key;
  std::string value;
};

/// Optional per-family metadata, declared at registration (first wins).
struct MetricMeta {
  std::string help;  ///< one-line description for exposition output
  std::string unit;  ///< e.g. "lines", "bytes", "us"; empty = dimensionless
};

/// Render `family{k="v",...}` with labels sorted by key and values escaped
/// (backslash, double quote, newline) — the registry's storage key and the
/// exposition format's series name.  No labels renders the bare family name.
std::string labeled_name(std::string_view family, std::span<const Label> labels);

/// Split a rendered metric name back into family + labels (inverse of
/// labeled_name for names it produced).  Names without '{' come back as the
/// bare family with no labels.
struct ParsedName {
  std::string family;
  std::vector<Label> labels;
};
ParsedName parse_labeled_name(std::string_view name);

/// Monotonically increasing counter.
class Counter {
 public:
  static constexpr std::size_t kCells = 16;

  void add(std::uint64_t n) {
    cells_[thread_slot() % kCells].v.fetch_add(n, std::memory_order_relaxed);
  }
  void inc() { add(1); }

  /// Merged value: the sum over all thread cells.
  std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (const auto& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, kCells> cells_{};
};

/// Last-set value plus the maximum ever recorded (e.g. peak queue depth).
class Gauge {
 public:
  void set(std::int64_t v) {
    v_.store(v, std::memory_order_relaxed);
    update_max(v);
  }
  /// Atomic increment: concurrent add()s never lose updates (a relaxed
  /// load+set pair would drop increments that race between the two).
  void add(std::int64_t d) {
    update_max(v_.fetch_add(d, std::memory_order_relaxed) + d);
  }

  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  std::int64_t max() const { return max_.load(std::memory_order_relaxed); }

 private:
  void update_max(std::int64_t v) {
    std::int64_t prev = max_.load(std::memory_order_relaxed);
    while (v > prev &&
           !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::int64_t> v_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Fixed-bucket histogram: counts per upper bound plus an implicit +inf
/// bucket, with total count and sum.  Bounds are fixed at registration.
///
/// All cells are independent relaxed atomics; see the relaxed-read contract
/// at the top of this header for what a mid-observe snapshot may look like.
class Histogram {
 public:
  explicit Histogram(std::span<const double> upper_bounds);

  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket i (i == bounds().size() is the overflow bucket).
  std::uint64_t bucket_count(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> bounds_;  ///< sorted, strictly increasing
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_storage_;
  std::span<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default latency bucket bounds in microseconds (roughly log-spaced from
/// 10 us to 100 s) for parse/stage timing histograms.
std::span<const double> latency_buckets_us();

// ---- snapshot view -------------------------------------------------------

struct CounterSnapshot {
  std::string name;    ///< full rendered name (family + labels)
  std::string family;  ///< bare family name
  std::vector<Label> labels;
  std::uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  std::string family;
  std::vector<Label> labels;
  std::int64_t value = 0;
  std::int64_t max = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::string family;
  std::vector<Label> labels;
  std::vector<double> bounds;
  std::vector<std::uint64_t> bucket_counts;  ///< bounds.size() + 1 cells
  std::uint64_t count = 0;  ///< raw counter; may disagree with Σ buckets
  double sum = 0.0;

  /// Normalized observation count: the per-bucket sum, which readers treat
  /// as authoritative under the relaxed-read contract.
  std::uint64_t bucket_total() const;
};

/// A point-in-time view of every metric, sorted by rendered name, plus the
/// declared per-family metadata.  This is what the JSON writer, Prometheus
/// exposition, telemetry sampler, and gpures-health consume.
struct RegistrySnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;
  std::map<std::string, MetricMeta> meta;  ///< by family name
};

/// Owns every metric; lookups are mutex-protected (resolve handles once),
/// updates through handles are lock-free.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create by name.  Returned references stay valid for the
  /// registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `upper_bounds` is used only on first registration of `name`.
  Histogram& histogram(std::string_view name,
                       std::span<const double> upper_bounds);

  /// Labeled family children: find-or-create the instance of `family` with
  /// exactly these labels (order-insensitive; keys are sorted internally).
  Counter& counter(std::string_view family, std::span<const Label> labels);
  Counter& counter(std::string_view family,
                   std::initializer_list<Label> labels) {
    return counter(family, std::span<const Label>(labels.begin(), labels.size()));
  }
  Gauge& gauge(std::string_view family, std::span<const Label> labels);
  Gauge& gauge(std::string_view family, std::initializer_list<Label> labels) {
    return gauge(family, std::span<const Label>(labels.begin(), labels.size()));
  }
  Histogram& histogram(std::string_view family, std::span<const Label> labels,
                       std::span<const double> upper_bounds);
  Histogram& histogram(std::string_view family,
                       std::initializer_list<Label> labels,
                       std::span<const double> upper_bounds) {
    return histogram(family, std::span<const Label>(labels.begin(), labels.size()),
                     upper_bounds);
  }

  /// Declare help text / unit for a metric family (first declaration wins;
  /// applies to every labeled child).  Safe to call before or after the
  /// family's first instance is registered.
  void describe(std::string_view family, std::string_view help,
                std::string_view unit = {});

  /// Snapshot value of a counter, or 0 when never registered.  `name` is the
  /// full rendered name (use labeled_name for family children).
  std::uint64_t counter_value(std::string_view name) const;

  /// Point-in-time copy of every metric (see the relaxed-read contract).
  RegistrySnapshot snapshot() const;

  /// Serialize every metric, sorted by name (deterministic output):
  /// {"counters":{..},"gauges":{..:{"value":..,"max":..}},"histograms":{..}}.
  /// Labeled children appear under their rendered `family{k="v"}` names.
  void write_json(common::JsonWriter& w) const;
  std::string to_json() const;

 private:
  template <typename T>
  struct Entry {
    std::unique_ptr<T> metric;
    std::string family;
    std::vector<Label> labels;
  };

  template <typename T, typename... Args>
  Entry<T>& find_or_create(std::map<std::string, Entry<T>, std::less<>>& m,
                           std::string_view family,
                           std::span<const Label> labels, Args&&... args);

  mutable std::mutex mu_;
  std::map<std::string, Entry<Counter>, std::less<>> counters_;
  std::map<std::string, Entry<Gauge>, std::less<>> gauges_;
  std::map<std::string, Entry<Histogram>, std::less<>> histograms_;
  std::map<std::string, MetricMeta, std::less<>> meta_;
};

}  // namespace gpures::obs
