#include "obs/manifest.h"

#include <chrono>
#include <cstdio>

#include "common/json.h"
#include "common/time.h"
#include "obs/metrics.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace gpures::obs {

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string version_string() {
#ifdef GPURES_GIT_DESCRIBE
  return GPURES_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

std::string hostname_string() {
#if defined(__unix__) || defined(__APPLE__)
  char buf[256] = {0};
  if (::gethostname(buf, sizeof(buf) - 1) == 0 && buf[0] != '\0') return buf;
#endif
  return "unknown";
}

std::string wall_clock_iso() {
  const auto now = std::chrono::system_clock::now();
  const auto secs = std::chrono::duration_cast<std::chrono::seconds>(
                        now.time_since_epoch())
                        .count();
  return common::format_iso(static_cast<common::TimePoint>(secs));
}

std::string RunManifest::to_json(const MetricsRegistry* metrics) const {
  common::JsonWriter w;
  w.begin_object();
  w.kv("tool", tool);
  w.kv("dataset", dataset);
  w.kv("seed", seed);
  w.kv("config_hash", config_hash);
  w.kv("version", version);
  w.kv("host", host);
  w.kv("threads", static_cast<std::uint64_t>(threads));
  w.kv("started_at", started_at);
  w.kv("finished_at", finished_at);
  if (!extra.empty()) {
    w.key("extra");
    w.begin_object();
    for (const auto& [k, v] : extra) w.kv(k, v);
    w.end_object();
  }
  if (metrics != nullptr) {
    w.key("metrics");
    metrics->write_json(w);
  }
  w.end_object();
  return std::move(w).str();
}

}  // namespace gpures::obs
