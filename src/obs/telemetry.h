// Live telemetry sampler: a background thread that appends periodic JSONL
// samples of the metrics registry plus process stats (RSS, CPU time, open
// fds) while a run is in flight.
//
// Opt-in via `--telemetry FILE --telemetry-interval-ms N` on the CLIs.
// Telemetry is a pure observer: it reads metric cells with relaxed loads
// (the relaxed-read contract in obs/metrics.h — histogram counts are
// normalized to Σ buckets) and writes only to its own sidecar file, so a
// sampler running at any interval cannot perturb golden-compared artifacts.
//
// Every run produces at least two samples regardless of duration: one
// `"reason":"start"` sample written synchronously in start() and one
// `"reason":"final"` sample written in stop(), with `"reason":"interval"`
// samples in between as the interval elapses.  Records carry a
// monotonically increasing `seq` and `elapsed_ms` since start().
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>

#include "common/error.h"
#include "obs/metrics.h"

namespace gpures::obs {

class TelemetrySampler {
 public:
  struct Options {
    std::string path;  ///< JSONL output file (one sample per line)
    std::chrono::milliseconds interval{1000};
    /// Registry to sample; must outlive the sampler.
    const MetricsRegistry* registry = nullptr;
  };

  explicit TelemetrySampler(Options opts);
  ~TelemetrySampler();

  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  /// Open the output file, write the "start" sample, launch the sampling
  /// thread.  Error when the file cannot be opened (nothing is launched).
  common::Status start();

  /// Stop the sampling thread, write the "final" sample, close the file.
  /// Idempotent; also called by the destructor.
  void stop();

  /// Samples written so far (>= 2 after a completed start()/stop() pair).
  std::uint64_t sample_count() const;

 private:
  void run();
  void write_sample(const char* reason);

  Options opts_;
  std::FILE* out_ = nullptr;
  std::chrono::steady_clock::time_point epoch_;
  std::uint64_t seq_ = 0;  ///< guarded by mu_

  std::thread thread_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool started_ = false;
};

}  // namespace gpures::obs
