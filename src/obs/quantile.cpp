#include "obs/quantile.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace gpures::obs {

double estimate_quantile(std::span<const double> bounds,
                         std::span<const std::uint64_t> bucket_counts,
                         double q) {
  if (bounds.empty() || bucket_counts.size() != bounds.size() + 1) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (std::isnan(q)) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);

  std::uint64_t total = 0;
  for (const std::uint64_t c : bucket_counts) total += c;
  if (total == 0) return std::numeric_limits<double>::quiet_NaN();

  const double rank = q * static_cast<double>(total);
  double cum = 0.0;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    const double in_bucket = static_cast<double>(bucket_counts[i]);
    if (cum + in_bucket >= rank && in_bucket > 0.0) {
      const double lower = i == 0 ? std::min(0.0, bounds[0]) : bounds[i - 1];
      const double upper = bounds[i];
      return lower + (upper - lower) * ((rank - cum) / in_bucket);
    }
    cum += in_bucket;
  }
  // Rank lands past the last finite bound: saturate rather than extrapolate
  // into the unbounded overflow bucket.
  return bounds.back();
}

double estimate_quantile(const HistogramSnapshot& h, double q) {
  return estimate_quantile(h.bounds, h.bucket_counts, q);
}

}  // namespace gpures::obs
