// Prometheus/OpenMetrics text exposition of a metrics registry snapshot.
//
// Renders the same data the JSON snapshot carries, in the text format
// scrapers understand: one `# HELP`/`# TYPE` (and `# UNIT` when declared)
// block per family, then one sample line per child, with label values
// escaped per the exposition spec.  Dots in metric names become
// underscores (Prometheus names are [a-zA-Z_:][a-zA-Z0-9_:]*), so
// `pipe.log_lines` is exposed as `pipe_log_lines`.
//
// Output is fully deterministic: families sorted by name, children sorted
// by rendered label set, histogram buckets in bound order.  Histogram
// `_count` is normalized to the Σ-buckets total (matching the mandatory
// `+Inf` cumulative bucket) per the relaxed-read contract in obs/metrics.h.
//
// Gauges expose two series: the last-set value under the family name and
// the peak under `<name>_max`.
#pragma once

#include <string>

#include "obs/metrics.h"

namespace gpures::obs {

/// Sanitize a metric family name for exposition: every character outside
/// [a-zA-Z0-9_:] becomes '_'; a leading digit gets a '_' prefix.
std::string prometheus_name(std::string_view family);

/// Render a full snapshot in Prometheus text exposition format (0.0.4).
std::string to_prometheus(const RegistrySnapshot& snap);

/// Convenience: snapshot + render.
std::string to_prometheus(const MetricsRegistry& registry);

/// Serialize the registry per the output filename convention shared by the
/// CLIs' --metrics flag: a ".prom" suffix selects Prometheus text
/// exposition, anything else the JSON snapshot.
std::string render_metrics_file(const MetricsRegistry& registry,
                                std::string_view path);

}  // namespace gpures::obs
