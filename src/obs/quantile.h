// Bucket-interpolated quantile estimation over fixed-bucket histograms.
//
// The registry's histograms store only per-bucket counts (inclusive upper
// bounds + an overflow bucket), so exact order statistics are gone; what
// remains is the classic Prometheus `histogram_quantile` estimate: find the
// bucket holding the q-th ranked observation and interpolate linearly inside
// it.  The estimate is exact when observations are uniform within buckets
// and never off by more than one bucket width otherwise — good enough for
// operator-facing p50/p95/p99 readouts.
//
// Inputs follow the relaxed-read contract (obs/metrics.h): the per-bucket
// counts are authoritative and any separately-read total is ignored, so a
// snapshot taken mid-observe still yields a well-defined estimate.
#pragma once

#include <cstdint>
#include <span>

#include "obs/metrics.h"

namespace gpures::obs {

/// Estimate the q-th quantile (q in [0, 1], clamped) from bucket counts.
/// `bucket_counts` has `bounds.size() + 1` cells, the last being the
/// overflow bucket.  Semantics:
///  * rank = q * Σcounts; the result lies in the first bucket whose
///    cumulative count reaches rank, linearly interpolated between the
///    bucket's lower and upper bound;
///  * the first bucket's lower bound is 0 (or bounds[0] when negative);
///  * a rank landing in the overflow bucket returns bounds.back() — the
///    estimate saturates at the largest finite bound;
///  * Σcounts == 0 returns NaN (no observations, no quantile).
double estimate_quantile(std::span<const double> bounds,
                         std::span<const std::uint64_t> bucket_counts,
                         double q);

/// Convenience over a registry snapshot histogram (normalized counts).
double estimate_quantile(const HistogramSnapshot& h, double q);

}  // namespace gpures::obs
