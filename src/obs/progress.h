// Progress/heartbeat reporting for long campaigns and dataset loads.
//
// Replaces the ad-hoc progress lambdas in the CLIs: a reporter draws a
// single self-overwriting "\rlabel done/total" line on stderr, throttled by
// wall time so callers can report every unit of work without flooding the
// terminal.  Progress always goes to stderr (never stdout), keeping stdout
// clean for machine-readable output; --quiet maps to enabled == false,
// which turns every call into a no-op.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>

namespace gpures::obs {

class ProgressReporter {
 public:
  explicit ProgressReporter(std::string label, bool enabled = true,
                            std::FILE* out = stderr)
      : label_(std::move(label)), out_(out), enabled_(enabled) {}
  ~ProgressReporter() { finish(); }

  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  bool enabled() const { return enabled_; }

  /// Report `done` of `total` units; redraws at most every ~100 ms (and
  /// always on completion).
  void update(std::uint64_t done, std::uint64_t total);

  /// One-off heartbeat message on its own line (e.g. a stage transition).
  void note(const std::string& message);

  /// Terminate the progress line with a newline.  Idempotent; also called
  /// by the destructor.
  void finish();

 private:
  std::string label_;
  std::FILE* out_;
  bool enabled_;
  bool dirty_ = false;  ///< an unterminated \r line is on screen
  bool drew_ = false;
  std::chrono::steady_clock::time_point last_draw_{};
};

}  // namespace gpures::obs
