#include "obs/progress.h"

#include <cinttypes>

#include "obs/log.h"

namespace gpures::obs {

void ProgressReporter::update(std::uint64_t done, std::uint64_t total) {
  if (!enabled_) return;
  const auto now = std::chrono::steady_clock::now();
  const bool final = total != 0 && done >= total;
  if (drew_ && !final &&
      now - last_draw_ < std::chrono::milliseconds(100)) {
    return;
  }
  std::fprintf(out_, "\r%s %" PRIu64 "/%" PRIu64, label_.c_str(), done, total);
  std::fflush(out_);
  drew_ = true;
  dirty_ = true;
  last_draw_ = now;
  if (final) finish();
}

void ProgressReporter::note(const std::string& message) {
  if (!enabled_) return;
  // Terminate any unfinished \r line first so the structured record gets a
  // clean line, then route through the installed logger: notes pick up the
  // level/component framing, JSONL sink, and rate limiting for free.
  if (dirty_) {
    std::fputc('\n', out_);
    std::fflush(out_);
    dirty_ = false;
  }
  Logger::current().info(label_, message);
}

void ProgressReporter::finish() {
  if (!enabled_ || !dirty_) return;
  std::fputc('\n', out_);
  std::fflush(out_);
  dirty_ = false;
}

}  // namespace gpures::obs
