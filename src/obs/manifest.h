// Run-provenance manifest: who produced an artifact set, from what inputs,
// with what code.
//
// The reproduced paper's pipeline is trustworthy because every stage's
// inputs and drops are accounted for; the manifest applies the same
// discipline to our own runs.  Emitted as run_manifest.json alongside every
// artifact set (dataset directories, CSV export directories), it records the
// seed, a hash of the effective configuration, the library version
// (git describe when available), host, thread count, wall-clock start/end,
// and — via an attached MetricsRegistry snapshot — per-stage totals.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gpures::obs {

class MetricsRegistry;

/// FNV-1a 64-bit hash (used for config fingerprints).
std::uint64_t fnv1a64(std::string_view s);

/// Lower-case hex rendering of a 64-bit value, zero-padded to 16 chars.
std::string hex64(std::uint64_t v);

/// Library version: `git describe --always --dirty` captured at configure
/// time, falling back to the project version when git is unavailable.
std::string version_string();

/// Best-effort hostname ("unknown" when unavailable).
std::string hostname_string();

/// Current wall-clock time as "YYYY-MM-DD HH:MM:SS" UTC.
std::string wall_clock_iso();

struct RunManifest {
  std::string tool;         ///< e.g. "gpures-simulate"
  std::string dataset;      ///< dataset directory or name
  std::uint64_t seed = 0;
  std::string config_hash;  ///< hex64(fnv1a64(serialized effective config))
  std::string version = version_string();
  std::string host = hostname_string();
  std::uint32_t threads = 0;
  std::string started_at;
  std::string finished_at;
  /// Free-form extra provenance (argv summary, artifact counts, ...).
  std::vector<std::pair<std::string, std::string>> extra;

  /// Serialize; when `metrics` is non-null its full snapshot is embedded
  /// under "metrics" (this is where per-stage totals live).
  std::string to_json(const MetricsRegistry* metrics = nullptr) const;
};

}  // namespace gpures::obs
