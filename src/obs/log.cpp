#include "obs/log.h"

#include <atomic>
#include <cmath>
#include <cstdlib>

#include "common/json.h"

namespace gpures::obs {

namespace {

std::atomic<Logger*> g_logger{nullptr};

/// Trim a %.17g rendering the way the JSON writer does not: logs favor
/// readability, so 12.5 stays "12.5" and 3 stays "3".
std::string fmt_field_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Quote a text-sink field value only when it contains whitespace or '='
/// (logfmt convention); JSON escaping is the JSONL sink's job.
bool needs_quoting(std::string_view v) {
  if (v.empty()) return true;
  for (const char c : v) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '=' || c == '"') return true;
  }
  return false;
}

}  // namespace

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "info";
}

std::optional<LogLevel> parse_log_level(std::string_view name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  return std::nullopt;
}

LogField::LogField(std::string_view k, double v)
    : key(k), value(fmt_field_double(v)), numeric(true) {}

Logger::Logger(Options opts)
    : opts_(std::move(opts)), epoch_(std::chrono::steady_clock::now()) {
  if (!opts_.jsonl_path.empty()) {
    jsonl_ = std::fopen(opts_.jsonl_path.c_str(), "wb");
    if (jsonl_ == nullptr) {
      sink_status_ = common::Error::make("cannot open log sink for writing: " +
                                         opts_.jsonl_path);
    }
  }
}

Logger::~Logger() {
  flush();
  if (jsonl_ != nullptr) std::fclose(jsonl_);
  if (g_logger.load(std::memory_order_acquire) == this) install(nullptr);
}

void Logger::install(Logger* logger) {
  g_logger.store(logger, std::memory_order_release);
}

Logger& Logger::current() {
  Logger* installed = g_logger.load(std::memory_order_acquire);
  if (installed != nullptr) return *installed;
  static Logger fallback{Options{}};
  return fallback;
}

void Logger::log(LogLevel level, std::string_view component,
                 std::string_view message, std::span<const LogField> fields) {
  if (level < opts_.min_level) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (opts_.max_per_key > 0) {
    std::string key;
    key.reserve(component.size() + 1 + message.size());
    key.append(component);
    key += '\x1f';
    key.append(message);
    auto& state = keys_[std::move(key)];
    if (state.emitted >= opts_.max_per_key) {
      ++state.suppressed;
      ++suppressed_;
      return;
    }
    ++state.emitted;
  }
  ++emitted_;
  write_record(level, component, message, fields);
}

void Logger::write_record(LogLevel level, std::string_view component,
                          std::string_view message,
                          std::span<const LogField> fields) {
  if (opts_.text_out != nullptr && level >= opts_.text_min_level) {
    std::string line;
    if (opts_.elapsed_ms_prefix) {
      const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - epoch_)
                          .count();
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%6lld ms ",
                    static_cast<long long>(ms));
      line += buf;
    }
    line += '[';
    line += log_level_name(level);
    line.append(5 - log_level_name(level).size(), ' ');
    line += "] ";
    line += component;
    line += ": ";
    line += message;
    for (const auto& f : fields) {
      line += ' ';
      line += f.key;
      line += '=';
      if (!f.numeric && needs_quoting(f.value)) {
        line += '"';
        for (const char c : f.value) {
          if (c == '"' || c == '\\') line += '\\';
          line += c == '\n' ? ' ' : c;
        }
        line += '"';
      } else {
        line += f.value;
      }
    }
    line += '\n';
    std::fwrite(line.data(), 1, line.size(), opts_.text_out);
    std::fflush(opts_.text_out);
  }
  if (jsonl_ != nullptr) {
    common::JsonWriter w;
    w.begin_object();
    w.kv("level", log_level_name(level));
    w.kv("component", component);
    w.kv("message", message);
    if (!fields.empty()) {
      w.key("fields");
      w.begin_object();
      for (const auto& f : fields) {
        if (!f.numeric) {
          w.kv(f.key, f.value);
        } else if (f.value == "true" || f.value == "false") {
          w.kv(f.key, f.value == "true");
        } else if (f.value.find_first_not_of("0123456789-") ==
                   std::string::npos) {
          w.kv(f.key, static_cast<std::int64_t>(std::strtoll(
                          f.value.c_str(), nullptr, 10)));
        } else {
          const double d = std::strtod(f.value.c_str(), nullptr);
          // "nan"/"inf" are not JSON tokens; keep those quoted.
          if (std::isfinite(d)) w.kv(f.key, d);
          else w.kv(f.key, f.value);
        }
      }
      w.end_object();
    }
    w.end_object();
    std::string rec = std::move(w).str();
    rec += '\n';
    std::fwrite(rec.data(), 1, rec.size(), jsonl_);
    std::fflush(jsonl_);
  }
}

void Logger::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, state] : keys_) {
    if (state.suppressed == 0) continue;
    const auto sep = key.find('\x1f');
    const std::string_view component =
        std::string_view(key).substr(0, sep);
    const std::string_view message = std::string_view(key).substr(sep + 1);
    const LogField fields[] = {
        LogField{"suppressed", state.suppressed},
        LogField{"message", message},
    };
    write_record(LogLevel::kInfo, component, "rate limit: similar records suppressed",
                 fields);
    state.suppressed = 0;
  }
  if (opts_.text_out != nullptr) std::fflush(opts_.text_out);
  if (jsonl_ != nullptr) std::fflush(jsonl_);
}

std::uint64_t Logger::emitted_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return emitted_;
}

std::uint64_t Logger::suppressed_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return suppressed_;
}

}  // namespace gpures::obs
