// Structured, leveled logging for the CLIs and library internals.
//
// Replaces ad-hoc fprintf(stderr, ...) at the tool layer with one sink that
// understands levels, components, and key/value fields:
//
//   obs::Logger::current().warn("ingest", "quarantined torn line",
//                               {{"file", path}, {"bytes", dropped}});
//
// renders on stderr as
//
//   [warn ] ingest: quarantined torn line file=day_03.log bytes=118
//
// and, when a JSONL sink is attached (`--log-json FILE`), additionally as
// one machine-parseable record per line.  Logs are observability sidecars:
// they go to stderr / a sidecar file only, never stdout, so logging on or
// off cannot perturb any golden-compared artifact.
//
// Rate limiting is deterministic by design: each distinct (component,
// message) key may emit at most `max_per_key` records (0 = unlimited);
// everything past the cap is counted and reported once as a summary line at
// flush().  No wall-clock windows — given the same sequence of log calls
// the same summaries come out, which makes the limiter testable.
//
// A process-wide logger is installed like the Tracer (install/current);
// current() falls back to a default stderr logger so call sites never need
// a null check.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "common/error.h"

namespace gpures::obs {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Lower-case level name ("debug", "info", "warn", "error").
std::string_view log_level_name(LogLevel level);

/// Parse a level name (as printed by log_level_name); empty optional on
/// unknown input.  Used by the CLIs' --log-level flag.
std::optional<LogLevel> parse_log_level(std::string_view name);

/// One key/value field on a log record.  Numeric and boolean values are
/// remembered as such so the JSONL sink can emit them unquoted.
struct LogField {
  std::string key;
  std::string value;
  bool numeric = false;

  LogField(std::string_view k, std::string_view v)
      : key(k), value(v) {}
  LogField(std::string_view k, const char* v)
      : key(k), value(v) {}
  LogField(std::string_view k, std::int64_t v)
      : key(k), value(std::to_string(v)), numeric(true) {}
  LogField(std::string_view k, std::uint64_t v)
      : key(k), value(std::to_string(v)), numeric(true) {}
  LogField(std::string_view k, int v)
      : LogField(k, static_cast<std::int64_t>(v)) {}
  LogField(std::string_view k, unsigned v)
      : LogField(k, static_cast<std::uint64_t>(v)) {}
  LogField(std::string_view k, double v);
  LogField(std::string_view k, bool v)
      : key(k), value(v ? "true" : "false"), numeric(true) {}
};

/// Thread-safe leveled logger with a text sink (stderr by default) and an
/// optional JSONL sidecar sink.
class Logger {
 public:
  struct Options {
    LogLevel min_level = LogLevel::kInfo;
    /// Extra bar for the text sink only (--quiet raises it to errors while
    /// the JSONL sink keeps recording at min_level).  The effective text
    /// threshold is max(min_level, text_min_level).
    LogLevel text_min_level = LogLevel::kDebug;
    /// Text sink; nullptr disables text output entirely.
    std::FILE* text_out = stderr;
    /// Non-empty attaches a JSONL sink appending one record per line.
    std::string jsonl_path;
    /// Prefix text lines with elapsed milliseconds since construction.
    /// Off by default: elapsed time is wall-clock noise in test stderr.
    bool elapsed_ms_prefix = false;
    /// Max records emitted per distinct (component, message) key;
    /// 0 = unlimited.  Suppressed counts surface once at flush().
    std::uint64_t max_per_key = 0;
  };

  explicit Logger(Options opts);
  ~Logger();

  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  /// Process-wide current logger.  Pass nullptr to uninstall; the logger
  /// must outlive its installation.  current() returns the installed logger
  /// or a shared default (stderr, info level) so call sites are
  /// unconditional.
  static void install(Logger* logger);
  static Logger& current();

  void log(LogLevel level, std::string_view component,
           std::string_view message, std::span<const LogField> fields = {});
  void log(LogLevel level, std::string_view component,
           std::string_view message, std::initializer_list<LogField> fields) {
    log(level, component, message,
        std::span<const LogField>(fields.begin(), fields.size()));
  }

  void debug(std::string_view component, std::string_view message,
             std::initializer_list<LogField> fields = {}) {
    log(LogLevel::kDebug, component, message, fields);
  }
  void info(std::string_view component, std::string_view message,
            std::initializer_list<LogField> fields = {}) {
    log(LogLevel::kInfo, component, message, fields);
  }
  void warn(std::string_view component, std::string_view message,
            std::initializer_list<LogField> fields = {}) {
    log(LogLevel::kWarn, component, message, fields);
  }
  void error(std::string_view component, std::string_view message,
             std::initializer_list<LogField> fields = {}) {
    log(LogLevel::kError, component, message, fields);
  }

  /// Emit one "suppressed N similar records" summary per rate-limited key
  /// (resetting the suppression counts, not the caps) and flush both sinks.
  /// Also called by the destructor.
  void flush();

  /// Error opening the JSONL sink, if any (the logger stays usable; the
  /// JSONL sink is simply absent).
  const common::Status& sink_status() const { return sink_status_; }

  /// Counters for tests: records written to a sink vs. rate-limit-dropped.
  std::uint64_t emitted_count() const;
  std::uint64_t suppressed_count() const;

 private:
  struct KeyState {
    std::uint64_t emitted = 0;
    std::uint64_t suppressed = 0;
  };

  void write_record(LogLevel level, std::string_view component,
                    std::string_view message,
                    std::span<const LogField> fields);

  Options opts_;
  common::Status sink_status_;
  std::FILE* jsonl_ = nullptr;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  std::map<std::string, KeyState, std::less<>> keys_;
  std::uint64_t emitted_ = 0;
  std::uint64_t suppressed_ = 0;
};

}  // namespace gpures::obs
