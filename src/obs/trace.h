// Scoped wall-time tracing spans, exported as Chrome Trace Event JSON
// (loadable in chrome://tracing and Perfetto).
//
// Usage: install a Tracer for the run, drop OBS_SPAN("stage1.parse_day")
// at the top of the scope to time, write to_chrome_json() at the end.
// When no tracer is installed a span is a single relaxed atomic load —
// instrumentation can stay in release builds.
//
// Spans record begin/end pairs per thread (events carry the obs thread
// slot as their tid).  Wall time never flows into analysis results: a
// trace is an obs artifact only, so tracing on vs. off cannot perturb the
// pipeline's byte-identical-output guarantee.
#pragma once

#include <chrono>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace gpures::obs {

class Tracer {
 public:
  struct Event {
    std::string name;
    std::uint64_t ts_us = 0;   ///< begin, relative to tracer construction
    std::uint64_t dur_us = 0;  ///< wall duration
    std::uint64_t tid = 0;     ///< obs::thread_slot() of the recording thread
  };

  Tracer() : epoch_(std::chrono::steady_clock::now()) {}

  /// Process-wide current tracer used by OBS_SPAN.  Pass nullptr to
  /// uninstall; the tracer must outlive its installation.
  static void install(Tracer* t);
  static Tracer* current();

  /// Microseconds since this tracer was constructed.
  std::uint64_t now_us() const;

  /// Append one completed span (thread-safe).
  void record(std::string name, std::uint64_t ts_us, std::uint64_t dur_us);

  std::size_t event_count() const;

  /// Chrome Trace Event JSON: {"traceEvents":[{"name","cat","ph":"X","ts",
  /// "dur","pid","tid"},...],"displayTimeUnit":"ms"}.  Events are sorted by
  /// (ts, tid, name) so repeated exports of the same run are stable.
  std::string to_chrome_json() const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
};

/// RAII span: times its enclosing scope on the installed tracer (or an
/// explicit one); inert when none is installed.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : ScopedSpan(name, Tracer::current()) {}
  ScopedSpan(const char* name, Tracer* tracer) : tracer_(tracer) {
    if (tracer_ != nullptr) {
      name_ = name;
      start_us_ = tracer_->now_us();
    }
  }
  ~ScopedSpan() {
    if (tracer_ != nullptr) {
      tracer_->record(name_, start_us_, tracer_->now_us() - start_us_);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_;
  const char* name_ = "";
  std::uint64_t start_us_ = 0;
};

}  // namespace gpures::obs

#define GPURES_OBS_CONCAT_(a, b) a##b
#define GPURES_OBS_CONCAT(a, b) GPURES_OBS_CONCAT_(a, b)
/// Time the enclosing scope under `name` on the installed tracer.
#define OBS_SPAN(name) \
  ::gpures::obs::ScopedSpan GPURES_OBS_CONCAT(obs_span_, __LINE__){name}
