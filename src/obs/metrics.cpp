#include "obs/metrics.h"

#include <algorithm>
#include <stdexcept>

#include "common/json.h"

namespace gpures::obs {

std::size_t thread_slot() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

Histogram::Histogram(std::span<const double> upper_bounds)
    : bounds_(upper_bounds.begin(), upper_bounds.end()) {
  if (bounds_.empty() || !std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument(
        "Histogram: bounds must be non-empty and strictly increasing");
  }
  counts_storage_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  counts_ = {counts_storage_.get(), bounds_.size() + 1};
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
}

void Histogram::observe(double v) {
  // Inclusive upper bounds ("le" convention): v lands in the first bucket
  // whose bound is >= v, or the overflow bucket past the last bound.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  counts_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::span<const double> latency_buckets_us() {
  static const double kBounds[] = {10.0,    100.0,    1e3,  1e4,
                                   1e5,     1e6,      1e7,  1e8};
  return kBounds;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(upper_bounds))
             .first;
  }
  return *it->second;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

void MetricsRegistry::write_json(common::JsonWriter& w) const {
  std::lock_guard<std::mutex> lock(mu_);
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, c] : counters_) w.kv(name, c->value());
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, g] : gauges_) {
    w.key(name);
    w.begin_object();
    w.kv("value", g->value());
    w.kv("max", g->max());
    w.end_object();
  }
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name);
    w.begin_object();
    w.key("bounds");
    w.begin_array();
    for (const double b : h->bounds()) w.value(b);
    w.end_array();
    w.key("counts");
    w.begin_array();
    for (std::size_t i = 0; i <= h->bounds().size(); ++i) {
      w.value(h->bucket_count(i));
    }
    w.end_array();
    w.kv("count", h->count());
    w.kv("sum", h->sum());
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

std::string MetricsRegistry::to_json() const {
  common::JsonWriter w;
  write_json(w);
  return std::move(w).str();
}

}  // namespace gpures::obs
