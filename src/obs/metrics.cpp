#include "obs/metrics.h"

#include <algorithm>
#include <stdexcept>

#include "common/json.h"

namespace gpures::obs {

std::size_t thread_slot() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

namespace {

/// Escape a label value for the rendered name / exposition output:
/// backslash, double quote, and newline get backslash escapes.
void append_escaped_label_value(std::string& out, std::string_view v) {
  for (const char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

std::vector<Label> sorted_labels(std::span<const Label> labels) {
  std::vector<Label> out(labels.begin(), labels.end());
  std::sort(out.begin(), out.end(),
            [](const Label& a, const Label& b) { return a.key < b.key; });
  return out;
}

}  // namespace

std::string labeled_name(std::string_view family,
                         std::span<const Label> labels) {
  std::string out(family);
  if (labels.empty()) return out;
  const auto sorted = sorted_labels(labels);
  out += '{';
  bool first = true;
  for (const auto& l : sorted) {
    if (!first) out += ',';
    first = false;
    out += l.key;
    out += "=\"";
    append_escaped_label_value(out, l.value);
    out += '"';
  }
  out += '}';
  return out;
}

ParsedName parse_labeled_name(std::string_view name) {
  ParsedName out;
  const auto brace = name.find('{');
  if (brace == std::string_view::npos || name.back() != '}') {
    out.family = std::string(name);
    return out;
  }
  out.family = std::string(name.substr(0, brace));
  std::string_view body = name.substr(brace + 1, name.size() - brace - 2);
  std::size_t i = 0;
  while (i < body.size()) {
    const auto eq = body.find("=\"", i);
    if (eq == std::string_view::npos) break;
    Label l;
    l.key = std::string(body.substr(i, eq - i));
    std::size_t j = eq + 2;
    while (j < body.size()) {
      const char c = body[j];
      if (c == '\\' && j + 1 < body.size()) {
        const char n = body[j + 1];
        l.value += n == 'n' ? '\n' : n;
        j += 2;
        continue;
      }
      if (c == '"') break;
      l.value += c;
      ++j;
    }
    out.labels.push_back(std::move(l));
    i = j + 1;
    if (i < body.size() && body[i] == ',') ++i;
  }
  return out;
}

Histogram::Histogram(std::span<const double> upper_bounds)
    : bounds_(upper_bounds.begin(), upper_bounds.end()) {
  if (bounds_.empty() || !std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument(
        "Histogram: bounds must be non-empty and strictly increasing");
  }
  counts_storage_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  counts_ = {counts_storage_.get(), bounds_.size() + 1};
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
}

void Histogram::observe(double v) {
  // Inclusive upper bounds ("le" convention): v lands in the first bucket
  // whose bound is >= v, or the overflow bucket past the last bound.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  counts_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::uint64_t HistogramSnapshot::bucket_total() const {
  std::uint64_t total = 0;
  for (const std::uint64_t c : bucket_counts) total += c;
  return total;
}

std::span<const double> latency_buckets_us() {
  static const double kBounds[] = {10.0,    100.0,    1e3,  1e4,
                                   1e5,     1e6,      1e7,  1e8};
  return kBounds;
}

template <typename T, typename... Args>
MetricsRegistry::Entry<T>& MetricsRegistry::find_or_create(
    std::map<std::string, Entry<T>, std::less<>>& m, std::string_view family,
    std::span<const Label> labels, Args&&... args) {
  const std::string name =
      labels.empty() ? std::string(family) : labeled_name(family, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = m.find(name);
  if (it == m.end()) {
    Entry<T> e;
    e.metric = std::make_unique<T>(std::forward<Args>(args)...);
    e.family = std::string(family);
    e.labels = sorted_labels(labels);
    it = m.emplace(name, std::move(e)).first;
  }
  return it->second;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  return counter(name, std::span<const Label>{});
}

Counter& MetricsRegistry::counter(std::string_view family,
                                  std::span<const Label> labels) {
  return *find_or_create(counters_, family, labels).metric;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return gauge(name, std::span<const Label>{});
}

Gauge& MetricsRegistry::gauge(std::string_view family,
                              std::span<const Label> labels) {
  return *find_or_create(gauges_, family, labels).metric;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> upper_bounds) {
  return histogram(name, std::span<const Label>{}, upper_bounds);
}

Histogram& MetricsRegistry::histogram(std::string_view family,
                                      std::span<const Label> labels,
                                      std::span<const double> upper_bounds) {
  return *find_or_create(histograms_, family, labels, upper_bounds).metric;
}

void MetricsRegistry::describe(std::string_view family, std::string_view help,
                               std::string_view unit) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = meta_.find(family);
  if (it == meta_.end()) {
    meta_.emplace(std::string(family),
                  MetricMeta{std::string(help), std::string(unit)});
  }
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.metric->value();
}

RegistrySnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, e] : counters_) {
    snap.counters.push_back(
        CounterSnapshot{name, e.family, e.labels, e.metric->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, e] : gauges_) {
    snap.gauges.push_back(GaugeSnapshot{name, e.family, e.labels,
                                        e.metric->value(), e.metric->max()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, e] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.family = e.family;
    h.labels = e.labels;
    h.bounds = e.metric->bounds();
    h.bucket_counts.reserve(h.bounds.size() + 1);
    // Buckets first, then count/sum: under the relaxed-read contract any of
    // these may be mid-update; consumers normalize via bucket_total().
    for (std::size_t i = 0; i <= h.bounds.size(); ++i) {
      h.bucket_counts.push_back(e.metric->bucket_count(i));
    }
    h.count = e.metric->count();
    h.sum = e.metric->sum();
    snap.histograms.push_back(std::move(h));
  }
  for (const auto& [family, meta] : meta_) snap.meta.emplace(family, meta);
  return snap;
}

void MetricsRegistry::write_json(common::JsonWriter& w) const {
  std::lock_guard<std::mutex> lock(mu_);
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, e] : counters_) w.kv(name, e.metric->value());
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, e] : gauges_) {
    w.key(name);
    w.begin_object();
    w.kv("value", e.metric->value());
    w.kv("max", e.metric->max());
    w.end_object();
  }
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, e] : histograms_) {
    const auto& h = *e.metric;
    w.key(name);
    w.begin_object();
    w.key("bounds");
    w.begin_array();
    for (const double b : h.bounds()) w.value(b);
    w.end_array();
    w.key("counts");
    w.begin_array();
    for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
      w.value(h.bucket_count(i));
    }
    w.end_array();
    w.kv("count", h.count());
    w.kv("sum", h.sum());
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

std::string MetricsRegistry::to_json() const {
  common::JsonWriter w;
  write_json(w);
  return std::move(w).str();
}

}  // namespace gpures::obs
