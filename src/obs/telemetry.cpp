#include "obs/telemetry.h"

#include "common/json.h"
#include "common/proc_stats.h"

namespace gpures::obs {

TelemetrySampler::TelemetrySampler(Options opts) : opts_(std::move(opts)) {
  if (opts_.interval < std::chrono::milliseconds(1)) {
    opts_.interval = std::chrono::milliseconds(1);
  }
}

TelemetrySampler::~TelemetrySampler() { stop(); }

common::Status TelemetrySampler::start() {
  std::unique_lock<std::mutex> lock(mu_);
  if (started_) return common::Status{};
  out_ = std::fopen(opts_.path.c_str(), "wb");
  if (out_ == nullptr) {
    return common::Error::make("cannot open telemetry file for writing: " +
                               opts_.path);
  }
  epoch_ = std::chrono::steady_clock::now();
  started_ = true;
  stopping_ = false;
  lock.unlock();

  write_sample("start");
  thread_ = std::thread([this] { run(); });
  return common::Status{};
}

void TelemetrySampler::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  write_sample("final");
  std::lock_guard<std::mutex> lock(mu_);
  std::fclose(out_);
  out_ = nullptr;
  started_ = false;
}

std::uint64_t TelemetrySampler::sample_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

void TelemetrySampler::run() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    if (cv_.wait_for(lock, opts_.interval, [this] { return stopping_; })) {
      break;
    }
    lock.unlock();
    write_sample("interval");
    lock.lock();
  }
}

void TelemetrySampler::write_sample(const char* reason) {
  // Sample outside the lock: registry snapshots take the registry's own
  // mutex and procfs reads do I/O.
  const common::ProcStats proc = common::sample_proc_stats();
  RegistrySnapshot snap;
  if (opts_.registry != nullptr) snap = opts_.registry->snapshot();

  std::lock_guard<std::mutex> lock(mu_);
  if (out_ == nullptr) return;
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - epoch_)
                           .count();
  common::JsonWriter w;
  w.begin_object();
  w.kv("seq", seq_);
  w.kv("elapsed_ms", static_cast<std::int64_t>(elapsed));
  w.kv("reason", reason);
  w.key("proc");
  w.begin_object();
  w.kv("valid", proc.valid);
  w.kv("rss_kb", proc.rss_kb);
  w.kv("utime_s", proc.utime_s);
  w.kv("stime_s", proc.stime_s);
  w.kv("open_fds", proc.open_fds);
  w.end_object();
  w.key("counters");
  w.begin_object();
  for (const auto& c : snap.counters) w.kv(c.name, c.value);
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& g : snap.gauges) {
    w.key(g.name);
    w.begin_object();
    w.kv("value", g.value);
    w.kv("max", g.max);
    w.end_object();
  }
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& h : snap.histograms) {
    w.key(h.name);
    w.begin_object();
    // Σ buckets, not the raw count cell: the relaxed-read contract makes
    // the per-bucket counts the authoritative total mid-run.
    w.kv("count", h.bucket_total());
    w.kv("sum", h.sum);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  std::string rec = std::move(w).str();
  rec += '\n';
  std::fwrite(rec.data(), 1, rec.size(), out_);
  std::fflush(out_);
  ++seq_;
}

}  // namespace gpures::obs
