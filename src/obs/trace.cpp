#include "obs/trace.h"

#include <algorithm>

#include "common/json.h"
#include "obs/metrics.h"

namespace gpures::obs {

namespace {
std::atomic<Tracer*> g_current{nullptr};
}  // namespace

void Tracer::install(Tracer* t) { g_current.store(t, std::memory_order_release); }

Tracer* Tracer::current() { return g_current.load(std::memory_order_acquire); }

std::uint64_t Tracer::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Tracer::record(std::string name, std::uint64_t ts_us,
                    std::uint64_t dur_us) {
  Event e;
  e.name = std::move(name);
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.tid = static_cast<std::uint64_t>(thread_slot());
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string Tracer::to_chrome_json() const {
  std::vector<Event> sorted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sorted = events_;
  }
  std::sort(sorted.begin(), sorted.end(), [](const Event& a, const Event& b) {
    if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
    if (a.tid != b.tid) return a.tid < b.tid;
    return a.name < b.name;
  });
  common::JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  for (const auto& e : sorted) {
    w.begin_object();
    w.kv("name", e.name);
    w.kv("cat", "gpures");
    w.kv("ph", "X");
    w.kv("ts", e.ts_us);
    w.kv("dur", e.dur_us);
    w.kv("pid", 1);
    w.kv("tid", e.tid);
    w.end_object();
  }
  w.end_array();
  w.kv("displayTimeUnit", "ms");
  w.end_object();
  return std::move(w).str();
}

}  // namespace gpures::obs
