#include "obs/expfmt.h"

#include <cinttypes>
#include <cstdio>

namespace gpures::obs {

namespace {

bool valid_name_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

/// Shortest round-trip rendering of a double ("10" not "10.000000").
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string fmt_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string fmt_i64(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  return buf;
}

/// Escape a HELP text: backslash and newline (the spec's requirements).
std::string escape_help(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') out += "\\\\";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

/// Escape a label value: backslash, double quote, newline.
std::string escape_label(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

/// Render `{k="v",...}` from the (already sorted) labels, with an optional
/// extra label appended (histogram `le`).  Empty set with no extra renders
/// nothing.
std::string render_labels(const std::vector<Label>& labels,
                          std::string_view extra_key = {},
                          std::string_view extra_value = {}) {
  if (labels.empty() && extra_key.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& l : labels) {
    if (!first) out += ',';
    first = false;
    out += prometheus_name(l.key);
    out += "=\"";
    out += escape_label(l.value);
    out += '"';
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += escape_label(extra_value);
    out += '"';
  }
  out += '}';
  return out;
}

/// Emit the HELP/TYPE/UNIT header for `family` once per exposition block.
void emit_header(std::string& out, const RegistrySnapshot& snap,
                 const std::string& family, std::string_view type,
                 std::string_view name_override = {}) {
  const std::string name = name_override.empty()
                               ? prometheus_name(family)
                               : std::string(name_override);
  const auto it = snap.meta.find(family);
  if (it != snap.meta.end() && !it->second.help.empty()) {
    out += "# HELP " + name + " " + escape_help(it->second.help) + "\n";
  }
  if (it != snap.meta.end() && !it->second.unit.empty()) {
    out += "# UNIT " + name + " " + std::string(it->second.unit) + "\n";
  }
  out += "# TYPE " + name + " " + std::string(type) + "\n";
}

}  // namespace

std::string prometheus_name(std::string_view family) {
  std::string out;
  out.reserve(family.size() + 1);
  if (!family.empty() && family[0] >= '0' && family[0] <= '9') out += '_';
  for (const char c : family) out += valid_name_char(c) ? c : '_';
  return out;
}

std::string to_prometheus(const RegistrySnapshot& snap) {
  std::string out;
  // Snapshot vectors are sorted by rendered name, which groups every
  // family's children contiguously; emit one header per family.
  const std::string* current_family = nullptr;
  for (const auto& c : snap.counters) {
    if (current_family == nullptr || *current_family != c.family) {
      emit_header(out, snap, c.family, "counter");
      current_family = &c.family;
    }
    out += prometheus_name(c.family) + render_labels(c.labels) + " " +
           fmt_u64(c.value) + "\n";
  }
  current_family = nullptr;
  for (const auto& g : snap.gauges) {
    const std::string name = prometheus_name(g.family);
    if (current_family == nullptr || *current_family != g.family) {
      emit_header(out, snap, g.family, "gauge");
      emit_header(out, snap, g.family, "gauge", name + "_max");
      current_family = &g.family;
    }
    const std::string labels = render_labels(g.labels);
    out += name + labels + " " + fmt_i64(g.value) + "\n";
    out += name + "_max" + labels + " " + fmt_i64(g.max) + "\n";
  }
  current_family = nullptr;
  for (const auto& h : snap.histograms) {
    const std::string name = prometheus_name(h.family);
    if (current_family == nullptr || *current_family != h.family) {
      emit_header(out, snap, h.family, "histogram");
      current_family = &h.family;
    }
    // Cumulative buckets; `_count` equals the +Inf bucket by construction
    // (the per-bucket counts are authoritative — relaxed-read contract).
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cum += h.bucket_counts[i];
      out += name + "_bucket" +
             render_labels(h.labels, "le", fmt_double(h.bounds[i])) + " " +
             fmt_u64(cum) + "\n";
    }
    cum += h.bucket_counts.back();
    out += name + "_bucket" + render_labels(h.labels, "le", "+Inf") + " " +
           fmt_u64(cum) + "\n";
    out += name + "_sum" + render_labels(h.labels) + " " + fmt_double(h.sum) +
           "\n";
    out += name + "_count" + render_labels(h.labels) + " " + fmt_u64(cum) +
           "\n";
  }
  return out;
}

std::string to_prometheus(const MetricsRegistry& registry) {
  return to_prometheus(registry.snapshot());
}

std::string render_metrics_file(const MetricsRegistry& registry,
                                std::string_view path) {
  constexpr std::string_view kProm = ".prom";
  if (path.size() >= kProm.size() &&
      path.substr(path.size() - kProm.size()) == kProm) {
    return to_prometheus(registry);
  }
  return registry.to_json();
}

}  // namespace gpures::obs
