// Slurm job records.
//
// `JobRecord` mirrors the fields the paper extracts from the Slurm scheduler
// database: submission/start/end times, requested resources, scheduled
// node(s), exit status, and the job name used to approximate ML vs non-ML
// classification.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.h"
#include "xid/event.h"

namespace gpures::slurm {

/// Final job states (subset of Slurm's state machine relevant to the study).
enum class JobState : std::uint8_t {
  kCompleted,
  kFailed,     ///< non-zero exit (user bug or GPU-error-induced crash)
  kCancelled,  ///< scancel / user abort
  kTimeout,    ///< hit requested walltime
  kNodeFail,   ///< node went down underneath the job
};

std::string_view to_string(JobState s);

/// Parse a state name as rendered by to_string / sacct; returns false on
/// unknown input.
bool parse_state(std::string_view s, JobState& out);

/// True if the state is any unsuccessful terminal state.
bool is_failure(JobState s);

using JobId = std::uint64_t;

struct JobRecord {
  JobId id = 0;
  std::string name;
  common::TimePoint submit = 0;
  common::TimePoint start = 0;
  common::TimePoint end = 0;
  std::int32_t gpus = 1;
  std::int32_t nodes = 1;
  JobState state = JobState::kCompleted;
  std::int32_t exit_code = 0;
  bool is_ml = false;  ///< ground-truth label (pipeline re-derives from name)
  /// Indices of the nodes the job ran on (topology node indices).
  std::vector<std::int32_t> node_list;
  /// The exact GPUs allocated (Slurm GRES-level detail; what makes the
  /// paper's per-XID job correlation possible).
  std::vector<xid::GpuId> gpu_list;

  common::Duration elapsed() const { return end - start; }
  double elapsed_minutes() const { return static_cast<double>(end - start) / 60.0; }
  double gpu_hours() const {
    return common::to_hours(elapsed()) * static_cast<double>(gpus);
  }
};

}  // namespace gpures::slurm
