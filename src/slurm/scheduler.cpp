#include "slurm/scheduler.h"

#include <algorithm>
#include <cmath>

namespace gpures::slurm {

Scheduler::Scheduler(des::Engine& engine, const cluster::Topology& topo,
                     SchedulerConfig cfg, common::Rng rng)
    : engine_(engine), topo_(topo), cfg_(cfg), rng_(rng.fork("scheduler")) {
  nodes_.resize(static_cast<std::size_t>(topo_.node_count()));
  for (std::int32_t n = 0; n < topo_.node_count(); ++n) {
    auto& res = nodes_[static_cast<std::size_t>(n)];
    res.free = static_cast<std::uint8_t>(topo_.gpus_on_node(n));
    res.slot.assign(static_cast<std::size_t>(topo_.gpus_on_node(n)), 0);
    total_free_ += topo_.gpus_on_node(n);
  }
}

void Scheduler::set_metrics(obs::MetricsRegistry* m) {
  if (m == nullptr) {
    submitted_metric_ = nullptr;
    started_metric_ = nullptr;
    failed_metric_ = nullptr;
    completed_metric_ = nullptr;
    queue_metric_ = nullptr;
    running_metric_ = nullptr;
    return;
  }
  submitted_metric_ = &m->counter("slurm.jobs_submitted");
  started_metric_ = &m->counter("slurm.jobs_started");
  failed_metric_ = &m->counter("slurm.jobs_failed");
  completed_metric_ = &m->counter("slurm.jobs_completed");
  queue_metric_ = &m->gauge("slurm.queue_depth");
  running_metric_ = &m->gauge("slurm.running_jobs");
}

void Scheduler::update_gauges() {
  if (queue_metric_ == nullptr) return;
  queue_metric_->set(static_cast<std::int64_t>(queue_.size()));
  running_metric_->set(static_cast<std::int64_t>(running_.size()));
}

JobId Scheduler::submit(const JobRequest& req) {
  const JobId id = next_id_++;
  queue_.push_back({id, req});
  if (submitted_metric_ != nullptr) submitted_metric_->inc();
  try_dispatch();
  update_gauges();
  return id;
}

void Scheduler::drain_node(std::int32_t node) {
  nodes_.at(static_cast<std::size_t>(node)).schedulable = false;
}

void Scheduler::node_down(std::int32_t node) {
  auto& res = nodes_.at(static_cast<std::size_t>(node));
  res.schedulable = false;
  // Kill every job still holding a GPU here; multi-node jobs die entirely.
  for (const JobId id : jobs_on_node(node)) {
    fail_job(id, JobState::kNodeFail, engine_.now());
  }
}

void Scheduler::node_up(std::int32_t node) {
  nodes_.at(static_cast<std::size_t>(node)).schedulable = true;
  try_dispatch();
}

bool Scheduler::node_schedulable(std::int32_t node) const {
  return nodes_.at(static_cast<std::size_t>(node)).schedulable;
}

std::optional<JobId> Scheduler::job_on_gpu(xid::GpuId gpu) const {
  const auto& res = nodes_.at(static_cast<std::size_t>(gpu.node));
  const JobId id = res.slot.at(static_cast<std::size_t>(gpu.slot));
  if (id == 0) return std::nullopt;
  return id;
}

std::vector<JobId> Scheduler::jobs_on_node(std::int32_t node) const {
  const auto& res = nodes_.at(static_cast<std::size_t>(node));
  std::vector<JobId> out;
  for (const JobId id : res.slot) {
    if (id != 0 && std::find(out.begin(), out.end(), id) == out.end()) {
      out.push_back(id);
    }
  }
  return out;
}

void Scheduler::fail_job(JobId id, JobState state, common::TimePoint end) {
  auto it = running_.find(id);
  if (it == running_.end()) return;
  engine_.cancel(it->second.end_event);
  Running r = std::move(it->second);
  running_.erase(it);
  const common::TimePoint end_at = std::max(end, r.rec.start);
  finish(std::move(r), end_at, state);
}

common::Duration Scheduler::drain_time_estimate(std::int32_t node,
                                                common::TimePoint now,
                                                common::Duration cap) const {
  common::Duration longest = 0;
  for (const JobId id : jobs_on_node(node)) {
    const auto it = running_.find(id);
    if (it == running_.end()) continue;
    const auto natural_end =
        it->second.rec.start +
        static_cast<common::Duration>(it->second.duration_s);
    longest = std::max(longest, natural_end - now);
  }
  return std::clamp<common::Duration>(longest, 0, cap);
}

void Scheduler::snapshot_busy_until(std::vector<common::TimePoint>& out) const {
  out.assign(static_cast<std::size_t>(topo_.total_gpus()), 0);
  for (const auto& [id, r] : running_) {
    const auto natural_end =
        r.rec.start + static_cast<common::Duration>(r.duration_s);
    for (const auto& g : r.gpus) {
      out[static_cast<std::size_t>(topo_.flat_index(g))] = natural_end;
    }
  }
}

void Scheduler::try_dispatch() {
  // Anti-starvation: when the head has waited too long, suspend backfill so
  // the freed pool can grow to meet it.
  std::int32_t depth = cfg_.backfill_depth;
  if (!queue_.empty() &&
      engine_.now() - queue_.front().req.submit > cfg_.head_starvation_s) {
    depth = 0;
  }
  std::int32_t examined = 0;
  auto it = queue_.begin();
  while (it != queue_.end() && examined <= depth) {
    ++examined;
    if (it->req.gpus > total_free_) {
      // Head-of-line job cannot run; backfill may still find smaller jobs,
      // but nothing fits if even the smallest exceeds the free pool.
      ++it;
      continue;
    }
    if (try_start(*it)) {
      it = queue_.erase(it);
      // A successful start consumes resources; restart the scan from the
      // (possibly new) head so FCFS order is respected for what remains.
      examined = 0;
      it = queue_.begin();
      continue;
    }
    ++it;
  }
}

std::vector<xid::GpuId> Scheduler::allocate(std::int32_t gpus_needed) {
  std::vector<xid::GpuId> picked;
  picked.reserve(static_cast<std::size_t>(gpus_needed));
  const std::int32_t n_nodes = topo_.node_count();

  // Prefer a single node when the request can fit on one (rotating
  // first-fit); fall through to multi-node placement otherwise.
  if (gpus_needed <= 8) {
    for (std::int32_t k = 0; k < n_nodes; ++k) {
      const std::int32_t n = (alloc_cursor_ + k) % n_nodes;
      auto& res = nodes_[static_cast<std::size_t>(n)];
      if (!res.schedulable || res.free < gpus_needed) continue;
      if (gpus_needed > topo_.gpus_on_node(n)) continue;
      for (std::int32_t s = 0;
           s < topo_.gpus_on_node(n) &&
           static_cast<std::int32_t>(picked.size()) < gpus_needed;
           ++s) {
        if (res.slot[static_cast<std::size_t>(s)] == 0) picked.push_back({n, s});
      }
      alloc_cursor_ = (n + 1) % n_nodes;
      return picked;
    }
    // No single node can host it right now (either too large for any node
    // type or fragmentation); spread it across nodes below.
  }

  // Multi-node request: greedily take the freest schedulable nodes.
  std::vector<std::pair<std::int32_t, std::int32_t>> by_free;  // (-free, node)
  for (std::int32_t n = 0; n < n_nodes; ++n) {
    const auto& res = nodes_[static_cast<std::size_t>(n)];
    if (res.schedulable && res.free > 0) {
      by_free.emplace_back(-static_cast<std::int32_t>(res.free), n);
    }
  }
  std::sort(by_free.begin(), by_free.end());
  std::int32_t remaining = gpus_needed;
  for (const auto& [neg_free, n] : by_free) {
    if (remaining <= 0) break;
    const auto& res = nodes_[static_cast<std::size_t>(n)];
    for (std::int32_t s = 0; s < topo_.gpus_on_node(n) && remaining > 0; ++s) {
      if (res.slot[static_cast<std::size_t>(s)] == 0) {
        picked.push_back({n, s});
        --remaining;
      }
    }
  }
  if (remaining > 0) return {};  // cannot satisfy now
  return picked;
}

bool Scheduler::try_start(const Pending& p) {
  auto gpus = allocate(p.req.gpus);
  if (gpus.empty()) return false;

  Running r;
  r.rec.id = p.id;
  r.rec.name = p.req.name;
  r.rec.submit = p.req.submit;
  r.rec.start = engine_.now();
  r.rec.gpus = p.req.gpus;
  r.rec.is_ml = p.req.is_ml;
  r.duration_s = p.req.duration_s;
  r.hit_walltime = p.req.duration_s >= p.req.walltime_s - 0.5;
  r.gpus = std::move(gpus);

  // Mark ownership.
  for (const auto& g : r.gpus) {
    auto& res = nodes_[static_cast<std::size_t>(g.node)];
    res.slot[static_cast<std::size_t>(g.slot)] = p.id;
    --res.free;
    --total_free_;
  }
  std::vector<std::int32_t> node_list;
  for (const auto& g : r.gpus) {
    if (node_list.empty() || node_list.back() != g.node) {
      if (std::find(node_list.begin(), node_list.end(), g.node) ==
          node_list.end()) {
        node_list.push_back(g.node);
      }
    }
  }
  std::sort(node_list.begin(), node_list.end());
  r.rec.node_list = std::move(node_list);
  r.rec.nodes = static_cast<std::int32_t>(r.rec.node_list.size());
  r.rec.gpu_list = r.gpus;

  const auto end_at =
      engine_.now() + std::max<common::Duration>(
                          1, static_cast<common::Duration>(r.duration_s));
  const JobId id = p.id;
  r.end_event = engine_.schedule_at(end_at, [this, id] { complete_natural(id); });
  running_.emplace(id, std::move(r));
  ++started_;
  if (started_metric_ != nullptr) started_metric_->inc();
  return true;
}

void Scheduler::release(const Running& r) {
  for (const auto& g : r.gpus) {
    auto& res = nodes_[static_cast<std::size_t>(g.node)];
    if (res.slot[static_cast<std::size_t>(g.slot)] == r.rec.id) {
      res.slot[static_cast<std::size_t>(g.slot)] = 0;
      ++res.free;
      ++total_free_;
    }
  }
}

JobState Scheduler::natural_state(const Running& r) {
  if (r.hit_walltime) return JobState::kTimeout;
  const double u = rng_.uniform();
  if (u < cfg_.p_user_failed) return JobState::kFailed;
  if (u < cfg_.p_user_failed + cfg_.p_cancelled) return JobState::kCancelled;
  return JobState::kCompleted;
}

void Scheduler::complete_natural(JobId id) {
  auto it = running_.find(id);
  if (it == running_.end()) return;
  Running r = std::move(it->second);
  running_.erase(it);
  const JobState state = natural_state(r);
  finish(std::move(r), engine_.now(), state);
}

void Scheduler::finish(Running r, common::TimePoint end, JobState state) {
  release(r);
  r.rec.end = end;
  r.rec.state = state;
  r.rec.exit_code = state == JobState::kCompleted ? 0 : 1;
  records_.push_back(std::move(r.rec));
  if (failed_metric_ != nullptr) {
    if (is_failure(state)) {
      failed_metric_->inc();
    } else if (state == JobState::kCompleted) {
      completed_metric_->inc();
    }
  }
  try_dispatch();
  update_gauges();
}

void Scheduler::finalize(common::TimePoint study_end) {
  // Jobs still running at the snapshot boundary: truncate as CANCELLED.
  std::vector<JobId> ids;
  ids.reserve(running_.size());
  for (const auto& [id, r] : running_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (const JobId id : ids) {
    auto it = running_.find(id);
    engine_.cancel(it->second.end_event);
    Running r = std::move(it->second);
    running_.erase(it);
    release(r);
    r.rec.end = study_end;
    r.rec.state = JobState::kCancelled;
    r.rec.exit_code = 1;
    records_.push_back(std::move(r.rec));
  }
  queue_.clear();
}

}  // namespace gpures::slurm
