#include "slurm/job.h"

namespace gpures::slurm {

std::string_view to_string(JobState s) {
  switch (s) {
    case JobState::kCompleted: return "COMPLETED";
    case JobState::kFailed: return "FAILED";
    case JobState::kCancelled: return "CANCELLED";
    case JobState::kTimeout: return "TIMEOUT";
    case JobState::kNodeFail: return "NODE_FAIL";
  }
  return "UNKNOWN";
}

bool parse_state(std::string_view s, JobState& out) {
  if (s == "COMPLETED") { out = JobState::kCompleted; return true; }
  if (s == "FAILED") { out = JobState::kFailed; return true; }
  if (s == "CANCELLED") { out = JobState::kCancelled; return true; }
  if (s == "TIMEOUT") { out = JobState::kTimeout; return true; }
  if (s == "NODE_FAIL") { out = JobState::kNodeFail; return true; }
  return false;
}

bool is_failure(JobState s) { return s != JobState::kCompleted; }

}  // namespace gpures::slurm
