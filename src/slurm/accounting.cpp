#include "slurm/accounting.h"

#include <ostream>

#include "common/strings.h"
#include "common/time.h"

namespace gpures::slurm {

namespace {

std::string iso_t(common::TimePoint tp) {
  std::string s = common::format_iso(tp);
  s[10] = 'T';
  return s;
}

}  // namespace

std::string accounting_header() {
  return "JobID|JobName|Submit|Start|End|State|ExitCode|NNodes|NGPUs|NodeList"
         "|AllocGPUS";
}

std::string to_accounting_line(const JobRecord& rec,
                               const cluster::Topology& topo) {
  std::string line;
  line.reserve(128);
  line += std::to_string(rec.id);
  line += '|';
  line += rec.name;
  line += '|';
  line += iso_t(rec.submit);
  line += '|';
  line += iso_t(rec.start);
  line += '|';
  line += iso_t(rec.end);
  line += '|';
  line += to_string(rec.state);
  line += '|';
  line += std::to_string(rec.exit_code);
  line += ":0";
  line += '|';
  line += std::to_string(rec.nodes);
  line += '|';
  line += std::to_string(rec.gpus);
  line += '|';
  for (std::size_t i = 0; i < rec.node_list.size(); ++i) {
    if (i) line += ',';
    line += topo.node(rec.node_list[i]).name;
  }
  line += '|';
  for (std::size_t i = 0; i < rec.gpu_list.size(); ++i) {
    if (i) line += ';';
    line += topo.node(rec.gpu_list[i].node).name;
    line += ':';
    line += std::to_string(rec.gpu_list[i].slot);
  }
  return line;
}

common::Result<JobRecord> parse_accounting_line(
    std::string_view line, const cluster::Topology& topo) {
  const auto fields = common::split(line, '|');
  if (fields.size() != 11) {
    return common::Error::make("accounting: expected 11 fields, got " +
                               std::to_string(fields.size()));
  }
  JobRecord rec;
  const long long id = common::parse_ll(fields[0]);
  if (id < 0) return common::Error::make("accounting: bad JobID");
  rec.id = static_cast<JobId>(id);
  rec.name = std::string(fields[1]);

  const auto submit = common::parse_iso(fields[2]);
  const auto start = common::parse_iso(fields[3]);
  const auto end = common::parse_iso(fields[4]);
  if (!submit || !start || !end) {
    return common::Error::make("accounting: bad timestamp");
  }
  rec.submit = *submit;
  rec.start = *start;
  rec.end = *end;
  // A job cannot end before it starts (or start before submission); such
  // records would poison elapsed-time statistics (Table III) with negative
  // durations, so they are malformed, not data.
  if (rec.end < rec.start || rec.start < rec.submit) {
    return common::Error::make("accounting: non-monotonic Submit/Start/End");
  }

  if (!parse_state(fields[5], rec.state)) {
    return common::Error::make("accounting: unknown state '" +
                               std::string(fields[5]) + "'");
  }
  const auto exit_fields = common::split(fields[6], ':');
  const long long code = common::parse_ll(exit_fields[0]);
  if (code < 0) return common::Error::make("accounting: bad ExitCode");
  rec.exit_code = static_cast<std::int32_t>(code);

  const long long nnodes = common::parse_ll(fields[7]);
  const long long ngpus = common::parse_ll(fields[8]);
  if (nnodes <= 0 || ngpus <= 0) {
    return common::Error::make("accounting: bad NNodes/NGPUs");
  }
  rec.nodes = static_cast<std::int32_t>(nnodes);
  rec.gpus = static_cast<std::int32_t>(ngpus);

  if (!fields[9].empty()) {
    for (const auto host : common::split(fields[9], ',')) {
      const auto idx = topo.node_index(host);
      if (!idx) {
        return common::Error::make("accounting: unknown host '" +
                                   std::string(host) + "'");
      }
      rec.node_list.push_back(*idx);
    }
  }
  if (static_cast<std::int32_t>(rec.node_list.size()) != rec.nodes) {
    return common::Error::make("accounting: NodeList length mismatch");
  }
  if (!fields[10].empty()) {
    for (const auto entry : common::split(fields[10], ';')) {
      const auto colon = entry.rfind(':');
      if (colon == std::string_view::npos) {
        return common::Error::make("accounting: bad AllocGPUS entry");
      }
      const auto idx = topo.node_index(entry.substr(0, colon));
      const long long slot = common::parse_ll(entry.substr(colon + 1));
      if (!idx || slot < 0 || slot >= topo.gpus_on_node(*idx)) {
        return common::Error::make("accounting: bad AllocGPUS device");
      }
      rec.gpu_list.push_back({*idx, static_cast<std::int32_t>(slot)});
    }
  }
  if (static_cast<std::int32_t>(rec.gpu_list.size()) != rec.gpus) {
    return common::Error::make("accounting: AllocGPUS length mismatch");
  }
  return rec;
}

void write_accounting(std::ostream& os, const std::vector<JobRecord>& records,
                      const cluster::Topology& topo) {
  os << accounting_header() << '\n';
  for (const auto& rec : records) {
    os << to_accounting_line(rec, topo) << '\n';
  }
}

}  // namespace gpures::slurm
