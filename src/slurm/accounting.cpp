#include "slurm/accounting.h"

#include <ostream>

#include "common/fmt.h"
#include "common/strings.h"
#include "common/time.h"

namespace gpures::slurm {

namespace {

// "YYYY-MM-DDTHH:MM:SS" rendered straight into `out` ("%04d" year:
// zero-padded, matching format_iso byte-for-byte).
void append_iso_t(std::string& out, common::TimePoint tp) {
  const common::CalendarTime ct = common::to_calendar(tp);
  common::append_2d(out, ct.year / 100);
  common::append_2d(out, ct.year % 100);
  out += '-';
  common::append_2d(out, ct.month);
  out += '-';
  common::append_2d(out, ct.day);
  out += 'T';
  common::append_2d(out, ct.hour);
  out += ':';
  common::append_2d(out, ct.minute);
  out += ':';
  common::append_2d(out, ct.second);
}

}  // namespace

std::string accounting_header() {
  return "JobID|JobName|Submit|Start|End|State|ExitCode|NNodes|NGPUs|NodeList"
         "|AllocGPUS";
}

void append_accounting_line(std::string& out, const JobRecord& rec,
                            const cluster::Topology& topo) {
  common::append_uint(out, rec.id);
  out += '|';
  out += rec.name;
  out += '|';
  append_iso_t(out, rec.submit);
  out += '|';
  append_iso_t(out, rec.start);
  out += '|';
  append_iso_t(out, rec.end);
  out += '|';
  out += to_string(rec.state);
  out += '|';
  common::append_int(out, rec.exit_code);
  out += ":0";
  out += '|';
  common::append_int(out, rec.nodes);
  out += '|';
  common::append_int(out, rec.gpus);
  out += '|';
  for (std::size_t i = 0; i < rec.node_list.size(); ++i) {
    if (i) out += ',';
    out += topo.node(rec.node_list[i]).name;
  }
  out += '|';
  for (std::size_t i = 0; i < rec.gpu_list.size(); ++i) {
    if (i) out += ';';
    out += topo.node(rec.gpu_list[i].node).name;
    out += ':';
    common::append_int(out, rec.gpu_list[i].slot);
  }
}

std::string to_accounting_line(const JobRecord& rec,
                               const cluster::Topology& topo) {
  std::string line;
  line.reserve(128);
  append_accounting_line(line, rec, topo);
  return line;
}

common::Result<JobRecord> parse_accounting_line(
    std::string_view line, const cluster::Topology& topo) {
  const auto fields = common::split(line, '|');
  if (fields.size() != 11) {
    return common::Error::make("accounting: expected 11 fields, got " +
                               std::to_string(fields.size()));
  }
  JobRecord rec;
  const long long id = common::parse_ll(fields[0]);
  if (id < 0) return common::Error::make("accounting: bad JobID");
  rec.id = static_cast<JobId>(id);
  rec.name = std::string(fields[1]);

  const auto submit = common::parse_iso(fields[2]);
  const auto start = common::parse_iso(fields[3]);
  const auto end = common::parse_iso(fields[4]);
  if (!submit || !start || !end) {
    return common::Error::make("accounting: bad timestamp");
  }
  rec.submit = *submit;
  rec.start = *start;
  rec.end = *end;
  // A job cannot end before it starts (or start before submission); such
  // records would poison elapsed-time statistics (Table III) with negative
  // durations, so they are malformed, not data.
  if (rec.end < rec.start || rec.start < rec.submit) {
    return common::Error::make("accounting: non-monotonic Submit/Start/End");
  }

  if (!parse_state(fields[5], rec.state)) {
    return common::Error::make("accounting: unknown state '" +
                               std::string(fields[5]) + "'");
  }
  const auto exit_fields = common::split(fields[6], ':');
  const long long code = common::parse_ll(exit_fields[0]);
  if (code < 0) return common::Error::make("accounting: bad ExitCode");
  rec.exit_code = static_cast<std::int32_t>(code);

  const long long nnodes = common::parse_ll(fields[7]);
  const long long ngpus = common::parse_ll(fields[8]);
  if (nnodes <= 0 || ngpus <= 0) {
    return common::Error::make("accounting: bad NNodes/NGPUs");
  }
  rec.nodes = static_cast<std::int32_t>(nnodes);
  rec.gpus = static_cast<std::int32_t>(ngpus);

  if (!fields[9].empty()) {
    for (const auto host : common::split(fields[9], ',')) {
      const auto idx = topo.node_index(host);
      if (!idx) {
        return common::Error::make("accounting: unknown host '" +
                                   std::string(host) + "'");
      }
      rec.node_list.push_back(*idx);
    }
  }
  if (static_cast<std::int32_t>(rec.node_list.size()) != rec.nodes) {
    return common::Error::make("accounting: NodeList length mismatch");
  }
  if (!fields[10].empty()) {
    for (const auto entry : common::split(fields[10], ';')) {
      const auto colon = entry.rfind(':');
      if (colon == std::string_view::npos) {
        return common::Error::make("accounting: bad AllocGPUS entry");
      }
      const auto idx = topo.node_index(entry.substr(0, colon));
      const long long slot = common::parse_ll(entry.substr(colon + 1));
      if (!idx || slot < 0 || slot >= topo.gpus_on_node(*idx)) {
        return common::Error::make("accounting: bad AllocGPUS device");
      }
      rec.gpu_list.push_back({*idx, static_cast<std::int32_t>(slot)});
    }
  }
  if (static_cast<std::int32_t>(rec.gpu_list.size()) != rec.gpus) {
    return common::Error::make("accounting: AllocGPUS length mismatch");
  }
  return rec;
}

void write_accounting(std::ostream& os, const std::vector<JobRecord>& records,
                      const cluster::Topology& topo) {
  os << accounting_header() << '\n';
  for (const auto& rec : records) {
    os << to_accounting_line(rec, topo) << '\n';
  }
}

}  // namespace gpures::slurm
