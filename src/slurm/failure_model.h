// GPU-error -> job-failure propagation model.
//
// Encodes the per-XID job-failure conditional probabilities the paper
// measures in Table II: GSP errors always kill the job; PMU and contained-ECC
// errors almost always do; MMU errors are sometimes masked by application- or
// library-level exception handling (ML frameworks can skip a faulty training
// iteration); NVLink errors only kill the job when CRC retransmission did not
// recover the transfer or the corrupted link was actively in use.
//
// The model is the ground-truth generator; the analysis pipeline must
// *recover* these probabilities from accounting + syslog data alone.
#pragma once

#include <cstdint>

#include "cluster/cluster_sim.h"
#include "common/rng.h"
#include "slurm/scheduler.h"
#include "xid/xid.h"

namespace gpures::slurm {

struct FailureModelConfig {
  /// P(job fails | error of this kind on a GPU the job holds).
  double p_mmu = 0.9048;
  double p_pmu = 0.9756;
  double p_gsp = 1.0;
  double p_contained = 1.0;
  double p_uncontained = 1.0;
  double p_dbe = 0.9;
  double p_rre = 0.05;   ///< remap is transparent; rare crash from the reset
  double p_rrf = 1.0;
  double p_offbus = 1.0;
  /// NVLink errors arrive in storms, so a job on a flapping node sees many
  /// of them; the *per-error* kill probability must be small for the
  /// *per-job* failure probability to land near the paper's 54%.  CRC-retry-
  /// recovered errors are mostly harmless; unrecovered ones kill the job if
  /// the link carried live traffic.
  double p_nvlink_recovered = 0.15;
  double p_nvlink_unrecovered = 0.95;
  /// Crash lag: the job's recorded end lands this close after the error
  /// (uniform seconds); must stay inside the pipeline's 20 s window.
  double max_crash_lag_s = 15.0;
};

/// Wires ClusterSim error notifications and node lifecycle into a Scheduler.
class FailurePropagator final : public cluster::SimListener {
 public:
  FailurePropagator(Scheduler& sched, FailureModelConfig cfg, common::Rng rng);

  /// P(kill) for a notification; exposed for tests.
  double kill_probability(const cluster::ErrorNotification& n) const;

  // SimListener:
  void on_error(const cluster::ErrorNotification& n) override;
  void on_drain_begin(std::int32_t node, common::TimePoint t) override;
  void on_node_down(std::int32_t node, common::TimePoint t) override;
  void on_node_up(std::int32_t node, common::TimePoint t) override;

  std::uint64_t jobs_killed() const { return killed_; }

 private:
  Scheduler& sched_;
  FailureModelConfig cfg_;
  common::Rng rng_;
  std::uint64_t killed_ = 0;
};

}  // namespace gpures::slurm
