#include "slurm/workload_model.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace gpures::slurm {

namespace {

constexpr std::array<const char*, 12> kMlStems = {
    "train_resnet50",   "bert_finetune",  "llm_train",      "gpt_pretrain",
    "model_eval",       "torch_ddp_train", "vit_train",     "diffusion_model",
    "gnn_training",     "rl_train",       "tensorflow_fit", "train_unet"};

constexpr std::array<const char*, 14> kHpcStems = {
    "namd_md",     "vasp_relax",   "lammps_eq",   "gromacs_npt",
    "cfd_sweep",   "wrf_forecast", "qe_scf",      "amber_prod",
    "cp2k_aimd",   "openfoam_run", "hoomd_sim",   "quantum_espresso",
    "galaxy_nbody", "mcnp_transport"};

}  // namespace

WorkloadConfig WorkloadConfig::delta_a100() {
  WorkloadConfig c;
  // Bucket parameters fitted to Table III: share, GPU mix, duration mixture
  // (lognormal body + walltime-cap mass) hitting the published mean/P50/P99,
  // and the ML share of GPU-hours.
  c.buckets = {
      {"1", 0.6986, {1}, {1.0}, 10.15, 2.0, 0.0392, 2400, 2880, 0.081},
      {"2-4", 0.2731, {2, 3, 4}, {0.55, 0.1, 0.35}, 4.75, 2.0, 0.0422, 2400,
       2880, 0.100},
      {"4-8", 0.0155, {5, 6, 7, 8}, {0.15, 0.15, 0.1, 0.6}, 2.70, 2.0, 0.0435,
       2400, 2880, 0.146},
      {"8-32", 0.0107, {12, 16, 24, 32}, {0.25, 0.4, 0.15, 0.2}, 73.73, 1.4,
       0.0303, 2300, 2880, 0.074},
      {"32-64", 0.0014, {48, 64}, {0.4, 0.6}, 10.25, 2.0, 0.0502, 2300, 2880,
       0.417},
      {"64-128", 0.00063, {96, 128}, {0.4, 0.6}, 0.32, 2.5, 0.0900, 2000,
       2880, 0.072},
      {"128-256", 0.00006, {160, 192, 256}, {0.4, 0.3, 0.3}, 9.19, 2.2,
       0.0485, 2300, 2880, 0.0},
      {"256+", 0.00002, {288, 320, 384}, {0.5, 0.3, 0.2}, 20.40, 0.85, 0.0,
       2400, 2880, 0.0},
  };
  // The cap-mass component sits entirely above the median, which shifts the
  // mixture's P50 above the lognormal body's median.  Deflate each body
  // median so the *mixture* P50 lands on the published value:
  // P(X <= p50) = (1-c) * F_body(p50) = 0.5 => F_body(p50) = 0.5/(1-c), and
  // for small c, Phi^-1(0.5/(1-c)) ~= sqrt(2*pi)/2 * c.
  for (auto& b : c.buckets) {
    const double z = 1.2533 * b.cap_mass / (1.0 - b.cap_mass);
    b.median_min *= std::exp(-b.sigma * z);
  }
  c.validate();
  return c;
}

void WorkloadConfig::validate() const {
  if (buckets.empty()) throw std::invalid_argument("WorkloadConfig: no buckets");
  double share = 0.0;
  for (const auto& b : buckets) {
    share += b.share;
    if (b.gpu_choices.empty() || b.gpu_choices.size() != b.gpu_weights.size()) {
      throw std::invalid_argument("WorkloadConfig: bad GPU choices in bucket " + b.label);
    }
    if (b.median_min <= 0.0 || b.sigma <= 0.0 || b.cap_mass < 0.0 ||
        b.cap_mass > 1.0 || b.cap_lo_min > b.cap_hi_min ||
        b.ml_fraction < 0.0 || b.ml_fraction > 1.0) {
      throw std::invalid_argument("WorkloadConfig: bad duration model in bucket " + b.label);
    }
  }
  if (share < 0.95 || share > 1.05) {
    throw std::invalid_argument("WorkloadConfig: bucket shares must sum to ~1");
  }
  if (op_jobs <= 0.0 || preop_intensity < 0.0 || walltime_cap_min <= 0.0) {
    throw std::invalid_argument("WorkloadConfig: bad global parameters");
  }
  if (diurnal_amplitude < 0.0 || diurnal_amplitude >= 1.0 ||
      diurnal_peak_hour < 0 || diurnal_peak_hour > 23 ||
      weekend_intensity <= 0.0) {
    throw std::invalid_argument("WorkloadConfig: bad modulation parameters");
  }
  if (p_user_failed + p_cancelled + p_timeout_extra >= 1.0) {
    throw std::invalid_argument("WorkloadConfig: failure mix exceeds 1");
  }
}

WorkloadModel::WorkloadModel(WorkloadConfig cfg, common::Rng rng)
    : cfg_(std::move(cfg)), rng_(rng.fork("workload")) {
  cfg_.validate();
  std::vector<double> shares;
  shares.reserve(cfg_.buckets.size());
  for (const auto& b : cfg_.buckets) shares.push_back(b.share);
  bucket_sampler_ = common::CategoricalSampler(shares);
  gpu_samplers_.reserve(cfg_.buckets.size());
  for (const auto& b : cfg_.buckets) {
    gpu_samplers_.emplace_back(b.gpu_weights);
  }
}

namespace {

// 1970-01-01 was a Thursday; Saturday and Sunday are offsets 2 and 3.
bool is_weekend(common::TimePoint t) {
  const auto dow = ((common::day_index(t) % 7) + 7) % 7;
  return dow == 2 || dow == 3;
}

}  // namespace

double WorkloadModel::arrival_rate(common::TimePoint t,
                                   common::TimePoint study_begin,
                                   common::TimePoint op_begin,
                                   common::TimePoint study_end) const {
  if (t < study_begin || t >= study_end) return 0.0;
  const double op_seconds = static_cast<double>(study_end - op_begin);
  double rate = cfg_.op_jobs / op_seconds;  // jobs per second in op
  if (t < op_begin) rate *= cfg_.preop_intensity;

  // Weekly pattern, normalized so the weekly average factor is 1.
  const double week_avg = (5.0 + 2.0 * cfg_.weekend_intensity) / 7.0;
  rate *= (is_weekend(t) ? cfg_.weekend_intensity : 1.0) / week_avg;

  // Diurnal pattern (zero-mean cosine, so daily totals are preserved).
  const double hour =
      static_cast<double>(t - common::start_of_day(t)) / 3600.0;
  rate *= 1.0 + cfg_.diurnal_amplitude *
                    std::cos(2.0 * M_PI * (hour - cfg_.diurnal_peak_hour) / 24.0);
  return std::max(rate, 0.0);
}

double WorkloadModel::peak_rate(common::TimePoint study_begin,
                                common::TimePoint op_begin,
                                common::TimePoint study_end) const {
  (void)study_begin;
  const double op_seconds = static_cast<double>(study_end - op_begin);
  const double base =
      cfg_.op_jobs / op_seconds * std::max(1.0, cfg_.preop_intensity);
  const double week_avg = (5.0 + 2.0 * cfg_.weekend_intensity) / 7.0;
  const double week_peak = std::max(1.0, cfg_.weekend_intensity) / week_avg;
  return base * week_peak * (1.0 + std::fabs(cfg_.diurnal_amplitude));
}

common::TimePoint WorkloadModel::next_arrival(common::TimePoint t,
                                              common::TimePoint study_begin,
                                              common::TimePoint op_begin,
                                              common::TimePoint study_end) {
  // Lewis–Shedler thinning: draw candidates at the peak rate, accept each
  // with probability rate(t)/peak — exact for any bounded rate function.
  common::TimePoint cur = std::max(t, study_begin);
  const double lambda_max = peak_rate(study_begin, op_begin, study_end);
  if (lambda_max <= 0.0) return study_end;
  while (cur < study_end) {
    const double gap = rng_.exponential(lambda_max);
    cur += std::max<common::TimePoint>(
        1, static_cast<common::TimePoint>(std::llround(gap)));
    if (cur >= study_end) return study_end;
    const double rate = arrival_rate(cur, study_begin, op_begin, study_end);
    if (rate > 0.0 && rng_.uniform() < rate / lambda_max) return cur;
  }
  return study_end;
}

JobRequest WorkloadModel::draw_job(common::TimePoint submit) {
  JobRequest req;
  req.submit = submit;
  req.bucket = static_cast<std::int32_t>(bucket_sampler_.sample(rng_));
  const auto& b = cfg_.buckets[static_cast<std::size_t>(req.bucket)];
  req.gpus = b.gpu_choices[gpu_samplers_[static_cast<std::size_t>(req.bucket)]
                               .sample(rng_)];
  req.duration_s = draw_duration_s(b);
  req.walltime_s = cfg_.walltime_cap_min * 60.0;
  req.is_ml = rng_.bernoulli(b.ml_fraction);
  req.name = draw_name(req.is_ml, req.bucket);
  return req;
}

double WorkloadModel::draw_duration_s(const BucketSpec& b) {
  double minutes;
  if (rng_.bernoulli(b.cap_mass)) {
    // Half the walltime-bound jobs run into the kill deadline exactly and
    // are reported TIMEOUT; the rest finish just under it.  This pile-up is
    // what the published P99 ~= 2880 min reflects.
    minutes = rng_.bernoulli(0.5) ? cfg_.walltime_cap_min
                                  : rng_.uniform(b.cap_lo_min, b.cap_hi_min);
  } else {
    minutes = rng_.lognormal(std::log(b.median_min), b.sigma);
    minutes = std::min(minutes, b.cap_hi_min);
  }
  return std::max(1.0, minutes * 60.0);
}

std::string WorkloadModel::draw_name(bool is_ml, std::int32_t bucket) {
  const char* stem =
      is_ml ? kMlStems[rng_.uniform_u64(kMlStems.size())]
            : kHpcStems[rng_.uniform_u64(kHpcStems.size())];
  // Suffix with a small run index so names repeat realistically.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s_b%d_%03d", stem, bucket,
                static_cast<int>(rng_.uniform_u64(500)));
  return buf;
}

}  // namespace gpures::slurm
