// GPU-granular FCFS + backfill scheduler over the cluster topology.
//
// Models the slice of Slurm behaviour the study depends on: jobs queue FCFS,
// a bounded backfill scan lets small jobs skip over a blocked head, nodes can
// be drained (no new work) and downed (running jobs die with NODE_FAIL), and
// every terminal job yields an accounting record.  The error-propagation
// layer can look up which job holds a GPU and fail it with a chosen state
// and end time — that 'error at t, job ends within seconds' coupling is what
// the pipeline's 20-second attribution window later recovers.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cluster/topology.h"
#include "common/rng.h"
#include "des/event_queue.h"
#include "obs/metrics.h"
#include "slurm/job.h"
#include "slurm/workload_model.h"
#include "xid/event.h"

namespace gpures::slurm {

struct SchedulerConfig {
  /// How many queued jobs past the head each dispatch pass may examine.
  std::int32_t backfill_depth = 32;
  /// Anti-starvation: once the head of the queue has waited this long,
  /// backfill stops so freed GPUs accumulate for it (poor man's EASY
  /// reservation — without it, system-scale jobs never start at ~75%
  /// utilization).
  common::Duration head_starvation_s = 2 * common::kHour;
  /// Baseline terminal-state mix for jobs that end naturally (GPU-error and
  /// node-failure deaths are decided by the failure layer instead).
  double p_user_failed = 0.17;
  double p_cancelled = 0.06;
};

class Scheduler {
 public:
  Scheduler(des::Engine& engine, const cluster::Topology& topo,
            SchedulerConfig cfg, common::Rng rng);

  /// Attach observability counters (slurm.jobs_submitted/started/failed/
  /// completed) and gauges (slurm.queue_depth, slurm.running_jobs).  Counts
  /// only — scheduling decisions and RNG draws are unaffected.
  void set_metrics(obs::MetricsRegistry* m);

  // ---- job intake ----
  /// Enqueue a job drawn from the workload model. Returns its JobId.
  JobId submit(const JobRequest& req);

  // ---- node availability (wired from the cluster simulator) ----
  void drain_node(std::int32_t node);
  /// Node reboots: running jobs on it die *now* with NODE_FAIL.
  void node_down(std::int32_t node);
  void node_up(std::int32_t node);
  bool node_schedulable(std::int32_t node) const;

  // ---- error propagation hooks ----
  /// Job currently holding the given GPU, if any.
  std::optional<JobId> job_on_gpu(xid::GpuId gpu) const;
  /// Jobs with at least one GPU on the node.
  std::vector<JobId> jobs_on_node(std::int32_t node) const;
  /// Terminate a running job at time `end` (>= now) with the given state.
  /// No-op if the job already ended. `end` may be a few seconds in the
  /// future (error-induced crashes take moments to unwind).
  void fail_job(JobId id, JobState state, common::TimePoint end);

  /// Longest remaining natural runtime among jobs on `node`, capped; this is
  /// the cluster simulator's drain-time estimate.
  common::Duration drain_time_estimate(std::int32_t node,
                                       common::TimePoint now,
                                       common::Duration cap) const;

  /// Fill `out[flat GPU index]` with the natural end time of the job holding
  /// each GPU (0 = idle), using the same start + natural-runtime arithmetic
  /// as drain_time_estimate.  The sharded fleet simulator freezes one such
  /// snapshot per day epoch so shards can answer busy/drain queries without
  /// reading live scheduler state mid-day.
  void snapshot_busy_until(std::vector<common::TimePoint>& out) const;

  // ---- introspection / results ----
  std::size_t queued() const { return queue_.size(); }
  std::size_t running() const { return running_.size(); }
  std::int32_t free_gpus() const { return total_free_; }
  const std::vector<JobRecord>& records() const { return records_; }

  /// Jobs started so far whose start time fell at or after `t0`.
  std::uint64_t started_jobs() const { return started_; }

  /// Truncate any still-running/queued jobs at the end of the study: running
  /// jobs are recorded as CANCELLED at `study_end`; queued jobs are dropped.
  void finalize(common::TimePoint study_end);

 private:
  struct Pending {
    JobId id;
    JobRequest req;
  };
  struct Running {
    JobRecord rec;
    double duration_s;                  ///< natural runtime
    bool hit_walltime = false;
    des::EventId end_event = 0;
    /// (node, slot) pairs held.
    std::vector<xid::GpuId> gpus;
  };

  void try_dispatch();
  bool try_start(const Pending& p);
  /// Pick GPUs for a job; empty result if it cannot start now.
  std::vector<xid::GpuId> allocate(std::int32_t gpus_needed);
  void release(const Running& r);
  void complete_natural(JobId id);
  void finish(Running r, common::TimePoint end, JobState state);
  JobState natural_state(const Running& r);

  des::Engine& engine_;
  const cluster::Topology& topo_;
  SchedulerConfig cfg_;
  common::Rng rng_;

  struct NodeRes {
    std::uint8_t free = 0;      ///< count of free GPU slots
    bool schedulable = true;
    std::vector<JobId> slot;    ///< per-slot owner (0 = free)
  };
  std::vector<NodeRes> nodes_;
  std::int32_t total_free_ = 0;
  std::int32_t alloc_cursor_ = 0;  ///< rotating first-fit start

  std::deque<Pending> queue_;
  std::unordered_map<JobId, Running> running_;
  std::vector<JobRecord> records_;
  JobId next_id_ = 1;
  std::uint64_t started_ = 0;

  obs::Counter* submitted_metric_ = nullptr;
  obs::Counter* started_metric_ = nullptr;
  obs::Counter* failed_metric_ = nullptr;
  obs::Counter* completed_metric_ = nullptr;
  obs::Gauge* queue_metric_ = nullptr;
  obs::Gauge* running_metric_ = nullptr;

  /// Refresh the queue/running gauges after a state change.
  void update_gauges();
};

}  // namespace gpures::slurm
