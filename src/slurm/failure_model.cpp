#include "slurm/failure_model.h"

#include <algorithm>

namespace gpures::slurm {

FailurePropagator::FailurePropagator(Scheduler& sched, FailureModelConfig cfg,
                                     common::Rng rng)
    : sched_(sched), cfg_(cfg), rng_(rng.fork("failure_model")) {}

double FailurePropagator::kill_probability(
    const cluster::ErrorNotification& n) const {
  using xid::Code;
  switch (n.event.code) {
    case Code::kMmuError: return cfg_.p_mmu;
    case Code::kPmuSpiFailure:
    case Code::kPmuCommunicationError: return cfg_.p_pmu;
    case Code::kGspRpcTimeout:
    case Code::kGspError: return cfg_.p_gsp;
    case Code::kContainedEccError: return cfg_.p_contained;
    case Code::kUncontainedEccError: return cfg_.p_uncontained;
    case Code::kDoubleBitEcc: return cfg_.p_dbe;
    case Code::kRowRemapEvent: return cfg_.p_rre;
    case Code::kRowRemapFailure: return cfg_.p_rrf;
    case Code::kFallenOffBus: return cfg_.p_offbus;
    case Code::kNvlinkError:
      return n.recovered_by_retry ? cfg_.p_nvlink_recovered
                                  : cfg_.p_nvlink_unrecovered;
    default: return 0.0;
  }
}

void FailurePropagator::on_error(const cluster::ErrorNotification& n) {
  const auto job = sched_.job_on_gpu(n.event.gpu);
  if (!job) return;  // GPU idle: the error hit nobody (key NVLink finding)
  if (!rng_.bernoulli(kill_probability(n))) return;
  const auto lag = static_cast<common::Duration>(
      rng_.uniform(1.0, std::max(cfg_.max_crash_lag_s, 2.0)));
  sched_.fail_job(*job, JobState::kFailed, n.event.time + lag);
  ++killed_;
}

void FailurePropagator::on_drain_begin(std::int32_t node, common::TimePoint) {
  sched_.drain_node(node);
}

void FailurePropagator::on_node_down(std::int32_t node, common::TimePoint) {
  sched_.node_down(node);
}

void FailurePropagator::on_node_up(std::int32_t node, common::TimePoint) {
  sched_.node_up(node);
}

}  // namespace gpures::slurm
