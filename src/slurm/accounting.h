// Slurm accounting database serialization.
//
// The paper's pipeline reads per-job records out of the Slurm database; our
// equivalent raw artifact is a pipe-separated `sacct --parsable2` style dump:
//
//   JobID|JobName|Submit|Start|End|State|ExitCode|NNodes|NGPUs|NodeList|AllocGPUS
//
// Times are "YYYY-MM-DDTHH:MM:SS"; NodeList is a comma-joined hostname list;
// AllocGPUS lists the exact devices held as semicolon-joined "host:slot"
// pairs (the GRES-level allocation detail used by the job-impact analysis).
// The writer and parser round-trip exactly; the analysis pipeline consumes
// only the parsed form, never the in-memory simulator records.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "cluster/topology.h"
#include "common/error.h"
#include "slurm/job.h"

namespace gpures::slurm {

/// The dump header line.
std::string accounting_header();

/// Append one record to `out` (no trailing newline); `topo` translates node
/// indices to hostnames.  The campaign renders ~1.5M records through one
/// reused scratch buffer, so this path allocates nothing per record.
void append_accounting_line(std::string& out, const JobRecord& rec,
                            const cluster::Topology& topo);

/// Render one record; `topo` translates node indices to hostnames.
std::string to_accounting_line(const JobRecord& rec,
                               const cluster::Topology& topo);

/// Parse one record line (not the header). Node names are translated back to
/// indices via `topo`; unknown hostnames fail the parse.
common::Result<JobRecord> parse_accounting_line(std::string_view line,
                                                const cluster::Topology& topo);

/// Stream a full dump (header + records).
void write_accounting(std::ostream& os, const std::vector<JobRecord>& records,
                      const cluster::Topology& topo);

}  // namespace gpures::slurm
