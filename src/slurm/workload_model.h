// Synthetic GPU-job workload calibrated to the reproduced study's Table III.
//
// Each generated job draws (a) a GPU-count bucket from the published bucket
// shares, (b) a concrete GPU count inside the bucket, (c) a duration from a
// capped-lognormal mixture fitted to the bucket's published mean/P50/P99
// (the 48-hour walltime limit produces the pile-up at ~2880 minutes the
// paper's P99 column shows), and (d) an ML/non-ML identity that drives the
// job-name vocabulary (the pipeline later re-derives the ML share from names
// alone, mirroring the paper's keyword methodology).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "slurm/job.h"

namespace gpures::slurm {

/// One GPU-count bucket of Table III.
struct BucketSpec {
  std::string label;           ///< e.g. "2-4"
  double share = 0.0;          ///< fraction of jobs
  std::vector<std::int32_t> gpu_choices;
  std::vector<double> gpu_weights;
  // Duration model: with prob cap_mass, uniform in [cap_lo, cap_hi] minutes
  // (walltime-bound jobs); otherwise lognormal(median, sigma) minutes,
  // truncated at cap_hi.
  double median_min = 10.0;
  double sigma = 2.0;
  double cap_mass = 0.04;
  double cap_lo_min = 2400.0;
  double cap_hi_min = 2880.0;
  double ml_fraction = 0.1;    ///< probability the job is ML
};

struct WorkloadConfig {
  std::vector<BucketSpec> buckets;
  /// Expected job submissions in the operational period (system-wide).
  double op_jobs = 1'445'119.0;
  /// Pre-op submission intensity relative to op (bring-up traffic).
  double preop_intensity = 0.3;
  /// Diurnal modulation: submissions peak in working hours.  The rate is
  /// multiplied by 1 + diurnal_amplitude * cos(2*pi*(hour-peak)/24); 0
  /// disables the pattern.  Totals are preserved (the modulation averages
  /// to 1 over a day).
  double diurnal_amplitude = 0.45;
  int diurnal_peak_hour = 15;  ///< mid-afternoon UTC-ish peak
  /// Weekend submission intensity relative to weekdays (1 disables).
  double weekend_intensity = 0.55;
  /// Walltime request = max(duration, this) rounded up; jobs that hit their
  /// duration cap are reported TIMEOUT.
  double walltime_cap_min = 2880.0;
  /// Baseline unconditional failure mix for jobs not killed by GPU errors
  /// (paper: 74.68% success on GPU nodes).
  double p_user_failed = 0.17;
  double p_cancelled = 0.06;
  double p_timeout_extra = 0.003;  ///< timeouts beyond natural cap-hitters

  /// Calibrated to the paper's Table III.
  static WorkloadConfig delta_a100();
  void validate() const;
};

/// A job as drawn from the model, before scheduling.
struct JobRequest {
  common::TimePoint submit = 0;
  std::string name;
  std::int32_t gpus = 1;
  double duration_s = 60.0;   ///< natural runtime if uninterrupted
  double walltime_s = 172800; ///< kill deadline after start
  bool is_ml = false;
  std::int32_t bucket = 0;
};

class WorkloadModel {
 public:
  WorkloadModel(WorkloadConfig cfg, common::Rng rng);

  const WorkloadConfig& config() const { return cfg_; }

  /// Submission rate (jobs/second) at time t given the study periods,
  /// including the diurnal/weekly modulation.
  double arrival_rate(common::TimePoint t, common::TimePoint study_begin,
                      common::TimePoint op_begin,
                      common::TimePoint study_end) const;

  /// Upper bound of arrival_rate over any time (for thinning).
  double peak_rate(common::TimePoint study_begin, common::TimePoint op_begin,
                   common::TimePoint study_end) const;

  /// Draw the next submission time strictly after `t` (Lewis-Shedler
  /// thinning against the peak rate, exact across period boundaries);
  /// returns study_end if none.
  common::TimePoint next_arrival(common::TimePoint t,
                                 common::TimePoint study_begin,
                                 common::TimePoint op_begin,
                                 common::TimePoint study_end);

  /// Draw one job submitted at `submit`.
  JobRequest draw_job(common::TimePoint submit);

  /// Draw a duration (seconds) for the given bucket.
  double draw_duration_s(const BucketSpec& b);

  /// Generate a plausible job name for an ML / non-ML job.
  std::string draw_name(bool is_ml, std::int32_t bucket);

 private:
  WorkloadConfig cfg_;
  common::Rng rng_;
  common::CategoricalSampler bucket_sampler_;
  std::vector<common::CategoricalSampler> gpu_samplers_;
};

}  // namespace gpures::slurm
