// Published values from the reproduced study, used by the bench harnesses to
// print paper-vs-measured columns.  Sources: Table I, Table II, Table III,
// Fig. 2 and Section V-C of the paper.
#pragma once

#include <array>
#include <cstdint>

#include "xid/xid.h"

// NOTE: this header is the single source of the published reference values;
// the bench harnesses and the reproduction scorecard both consume it.

namespace gpures::paper {

struct Table1Row {
  xid::Code code;
  std::uint64_t pre_count;
  std::uint64_t op_count;
  double pre_node_mtbe_h;  ///< -1 when the paper prints "-"
  double op_node_mtbe_h;
};

// Rows in report order (31, 48, 63, 64, 74, 79, 94, 95, 119/120, 122/123).
inline constexpr std::array<Table1Row, 10> kTable1 = {{
    {xid::Code::kMmuError, 1078, 8863, 649, 257},
    {xid::Code::kDoubleBitEcc, 0, 1, -1, -1},
    {xid::Code::kRowRemapEvent, 31, 34, 22568, 66967},
    {xid::Code::kRowRemapFailure, 15, 0, 46640, -1},
    {xid::Code::kNvlinkError, 2092, 1922, 334, 1185},
    {xid::Code::kFallenOffBus, 4, 10, 174900, 227688},
    {xid::Code::kContainedEccError, 22, 13, 31800, 175145},
    {xid::Code::kUncontainedEccError, 38900, 11, 18, 206989},
    {xid::Code::kGspRpcTimeout, 209, 3857, 3347, 590},
    {xid::Code::kPmuSpiFailure, 8, 77, 87450, 29569},
}};

// Derived "uncorrectable ECC" row: 46 pre / 34 op.
inline constexpr Table1Row kTable1Uncorrectable = {
    xid::Code::kRowRemapEvent, 46, 34, 15208, 66967};

// Aggregate findings (Section IV).
inline constexpr double kPreNodeMtbeH = 199.0;   // outlier-excluded
inline constexpr double kOpNodeMtbeH = 154.0;
inline constexpr double kMtbeDegradation = 0.23;
inline constexpr double kMemoryVsHardwareRatio = 160.0;
inline constexpr double kGspDegradationRatio = 5.6;
inline constexpr std::uint64_t kUncontainedEpisodeErrors = 38900;

struct Table2Row {
  xid::Code code;
  std::uint64_t failed_jobs;
  std::uint64_t encountering_jobs;
  double failure_probability;  ///< percent
};

inline constexpr std::array<Table2Row, 5> kTable2 = {{
    {xid::Code::kMmuError, 3206, 3543, 90.48},
    {xid::Code::kPmuSpiFailure, 40, 41, 97.56},
    {xid::Code::kGspRpcTimeout, 31, 31, 100.00},
    {xid::Code::kNvlinkError, 43, 80, 53.75},
    {xid::Code::kContainedEccError, 5, 5, 100.00},
}};
inline constexpr std::uint64_t kGpuFailedJobs = 3285;

struct Table3Row {
  const char* label;
  std::uint64_t count;
  double share_pct;
  double mean_min;
  double p50_min;
  double p99_min;
  double ml_gpu_hours_k;
  double non_ml_gpu_hours_k;
};

inline constexpr std::array<Table3Row, 8> kTable3 = {{
    {"1", 1013170, 69.86, 175.62, 10.15, 2483.12, 241.6, 2724.0},
    {"2-4", 396133, 27.31, 145.04, 4.75, 2880.03, 344.6, 3108.7},
    {"4-8", 22474, 1.55, 133.89, 2.70, 2880.20, 57.9, 338.6},
    {"8-32", 15440, 1.07, 270.40, 73.73, 2880.17, 107.1, 1332.7},
    {"32-64", 2054, 0.14, 204.52, 10.25, 2817.08, 161.9, 226.4},
    {"64-128", 913, 0.063, 226.28, 0.32, 2211.94, 25.1, 322.3},
    {"128-256", 82, 0.006, 226.53, 9.19, 2785.29, 0.0, 52.4},
    {"256+", 25, 0.002, 32.12, 20.40, 120.14, 0.0, 4.5},
}};
inline constexpr std::uint64_t kGpuJobs = 1445119;
inline constexpr double kGpuJobSuccessPct = 74.68;

// Section V-C / Fig. 2.
inline constexpr double kMttrH = 0.88;
inline constexpr double kMttfH = 162.0;
inline constexpr double kAvailabilityPct = 99.5;
inline constexpr double kNodeHoursLost = 5700.0;
inline constexpr double kDowntimeMinPerDay = 7.0;

}  // namespace gpures::paper
