#include "analysis/markdown_report.h"

#include <cstdio>

#include "analysis/mitigation.h"
#include "analysis/reports.h"
#include "analysis/reproduction.h"
#include "analysis/survival.h"
#include "analysis/trends.h"

namespace gpures::analysis {

namespace {

/// Monospace block: the ASCII tables render cleanly inside fenced code.
void section(std::string& out, const std::string& heading,
             const std::string& body) {
  out += "## " + heading + "\n\n```\n" + body;
  if (!body.empty() && body.back() != '\n') out += '\n';
  out += "```\n\n";
}

}  // namespace

std::string render_markdown_report(const AnalysisPipeline& pipe,
                                   const cluster::Topology& topo,
                                   const MarkdownReportOptions& opts) {
  std::string out;
  out += "# " + opts.title + "\n\n";

  const auto& periods = pipe.config().periods;
  const auto& c = pipe.counters();
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "Window: %s .. %s (operational from %s). Cluster: %d nodes / %d GPUs.\n"
      "Ingested %llu log lines (%llu XID records, %llu lifecycle, %llu "
      "rejected) and %zu job records; %zu coalesced errors.\n\n",
      common::format_date(periods.pre.begin).c_str(),
      common::format_date(periods.op.end).c_str(),
      common::format_date(periods.op.begin).c_str(), topo.node_count(),
      topo.total_gpus(), static_cast<unsigned long long>(c.log_lines),
      static_cast<unsigned long long>(c.xid_records),
      static_cast<unsigned long long>(c.lifecycle_records),
      static_cast<unsigned long long>(c.rejected_lines),
      pipe.jobs().jobs.size(), pipe.errors().size());
  out += buf;

  const auto stats = pipe.error_stats();
  const bool have_jobs = !pipe.jobs().jobs.empty();

  if (opts.quality != nullptr) {
    out += opts.quality->to_markdown();
    out += '\n';
  }
  if (opts.include_table1) {
    section(out, "Error counts and MTBE (Table I)", render_table1(stats));
  }
  if (opts.include_findings) {
    section(out, "Headline findings", render_findings(stats));
  }
  if (opts.include_table2 && have_jobs) {
    section(out, "GPU error impact on jobs (Table II)",
            render_table2(pipe.job_impact()));
  }
  if (opts.include_table3 && have_jobs) {
    section(out, "Job population (Table III)", render_table3(pipe.job_stats()));
  }
  if (opts.include_fig2) {
    section(out, "Unavailability and availability (Fig. 2)",
            render_fig2(pipe.availability(), pipe.mttf_estimate_h()));
  }
  if (opts.include_trends) {
    section(out, "Trends, burstiness, concentration",
            render_trends(pipe.errors(), periods, pipe.pool()));
  }
  if (opts.include_survival) {
    section(out, "Survival analysis",
            render_survival(pipe.errors(), periods, topo.total_gpus(),
                            pipe.pool()));
  }
  if (opts.include_mitigation && have_jobs) {
    JobImpactConfig icfg;
    icfg.window = pipe.config().attribution_window;
    icfg.period = periods.op;
    icfg.attribution = pipe.config().attribution;
    section(out, "Mitigation what-ifs",
            render_mitigation(pipe.jobs(), pipe.errors(), icfg, pipe.pool()));
  }
  if (opts.include_scorecard) {
    const auto impact = have_jobs ? pipe.job_impact() : JobImpact{};
    const auto jobs = have_jobs ? pipe.job_stats() : JobStats{};
    const auto avail = pipe.availability();
    const auto card = score_reproduction(
        &stats, have_jobs ? &impact : nullptr, have_jobs ? &jobs : nullptr,
        &avail, pipe.mttf_estimate_h());
    section(out, "Reproduction scorecard", card.render());
  }
  return out;
}

}  // namespace gpures::analysis
