// Stage II statistics: error counts and mean time between errors (MTBE),
// per XID family and per period, with category rollups and automatic
// detection of single-GPU outliers (the paper excludes the one faulty GPU's
// 38.9k uncontained errors from the aggregate pre-op MTBE).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "analysis/coalesce.h"
#include "analysis/periods.h"
#include "xid/xid.h"

namespace gpures::analysis {

/// Count + MTBE pair for one period.
struct PeriodStats {
  std::uint64_t count = 0;
  double mtbe_system_h = 0.0;   ///< observation hours / count (inf if 0)
  double mtbe_per_node_h = 0.0; ///< system MTBE x node count
};

/// Table I row for one reported XID family.
struct CodeStats {
  xid::Code code;
  PeriodStats pre;
  PeriodStats op;
};

/// A (GPU, code, period) cell flagged as an outlier: one GPU producing an
/// overwhelming share of a family's errors in a period.
struct Outlier {
  xid::GpuId gpu;
  xid::Code code;
  PeriodId period;
  std::uint64_t count = 0;
  double share = 0.0;  ///< of the family's errors in that period
};

struct ErrorStatsConfig {
  std::int32_t node_count = 106;
  /// Flag a (GPU, code, period) as outlier when one GPU contributes at least
  /// this share of the family's period errors and at least `outlier_min`
  /// errors.
  double outlier_share = 0.5;
  std::uint64_t outlier_min = 1000;
  /// Exclude flagged outliers from the aggregate (all-error) MTBE, as the
  /// paper does for the pre-op faulty GPU.
  bool exclude_outliers_from_totals = true;
};

struct ErrorStats {
  StudyPeriods periods;
  ErrorStatsConfig cfg;

  /// Rows in the paper's Table I order; the derived "uncorrectable ECC"
  /// row (RRE + RRF) is reported separately below.
  std::vector<CodeStats> by_code;
  CodeStats uncorrectable_ecc;  ///< derived: RRE + RRF

  /// Category rollups (hardware / interconnect / memory).
  std::map<xid::Category, CodeStats> by_category;
  /// Non-memory rollup (hardware + interconnect) — the paper's "GPU
  /// hardware" side of the 160x memory-reliability comparison.
  CodeStats non_memory;

  /// Aggregate over all tracked errors (outliers excluded per config).
  CodeStats total;
  /// Aggregate including outliers (for transparency).
  CodeStats total_with_outliers;

  std::vector<Outlier> outliers;

  /// Raw log lines represented by the coalesced errors, per period
  /// (shows the de-duplication factor of Stage II).
  std::uint64_t raw_lines_pre = 0;
  std::uint64_t raw_lines_op = 0;

  // --- headline derived findings ---
  /// Per-node MTBE degradation op vs pre (paper: ~23% worse).
  double mtbe_degradation_fraction() const;
  /// Memory vs non-memory per-node MTBE ratio in op (paper: ~160x).
  double memory_reliability_ratio_op() const;
  /// GSP per-node MTBE ratio pre/op (paper: ~5.6x worse in op).
  double gsp_degradation_ratio() const;

  const CodeStats* find(xid::Code code) const;
};

/// Compute statistics from coalesced errors (any order).
ErrorStats compute_error_stats(const std::vector<CoalescedError>& errors,
                               const StudyPeriods& periods,
                               const ErrorStatsConfig& cfg);

}  // namespace gpures::analysis
