#include "analysis/periods.h"

#include <stdexcept>

namespace gpures::analysis {

StudyPeriods StudyPeriods::delta() {
  return make(common::make_date(2022, 1, 1), common::make_date(2022, 10, 1),
              common::make_date(2025, 3, 16));
}

StudyPeriods StudyPeriods::make(common::TimePoint begin,
                                common::TimePoint op_begin,
                                common::TimePoint end) {
  if (!(begin < op_begin && op_begin < end)) {
    throw std::invalid_argument("StudyPeriods: need begin < op_begin < end");
  }
  StudyPeriods p;
  p.pre = {begin, op_begin};
  p.op = {op_begin, end};
  return p;
}

std::optional<PeriodId> StudyPeriods::which(common::TimePoint t) const {
  if (pre.contains(t)) return PeriodId::kPreOp;
  if (op.contains(t)) return PeriodId::kOp;
  return std::nullopt;
}

std::string to_string(PeriodId p) {
  return p == PeriodId::kPreOp ? "pre-operational" : "operational";
}

}  // namespace gpures::analysis
