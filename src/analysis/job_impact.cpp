#include "analysis/job_impact.h"

#include <algorithm>

namespace gpures::analysis {

namespace {

/// Contiguous shard bounds: shard s of n covers [lo, hi) with the ranges
/// partitioning [0, total).  Purely a function of (total, n, s), so the
/// job -> shard assignment never depends on thread timing.
std::pair<std::size_t, std::size_t> shard_range(std::size_t total,
                                                std::size_t shards,
                                                std::size_t s) {
  return {total * s / shards, total * (s + 1) / shards};
}

/// Scan jobs [lo, hi) against the index, invoking emit(exposure) for each
/// job that encountered at least one error, in job-index order.  Returns the
/// number of jobs in the range that end inside the period.
template <typename Emit>
std::uint64_t scan_job_range(const JobTable& table, const ErrorIndex& index,
                             const JobImpactConfig& cfg, std::size_t lo,
                             std::size_t hi, Emit&& emit) {
  std::uint64_t scanned = 0;
  std::vector<std::int32_t> node_scratch;
  for (std::size_t idx = lo; idx < hi; ++idx) {
    const auto& j = table.jobs[idx];
    if (!cfg.period.contains(j.end)) continue;
    ++scanned;

    std::uint32_t run_mask = 0;
    std::uint32_t window_mask = 0;
    const auto scan_loc = [&](std::int64_t key) {
      const auto v = index.at(key);
      // Strictly after start: an error stamped at the exact second a job
      // started belongs to the GPU's previous tenant (the scheduler can hand
      // a freed GPU to a queued job within the same second the error killed
      // its former owner).
      auto it = std::lower_bound(
          v.begin(), v.end(), j.start + 1,
          [](const ErrorIndex::Entry& e, common::TimePoint t) {
            return e.time < t;
          });
      for (; it != v.end() && it->time <= j.end; ++it) {
        run_mask |= 1u << it->bit;
        if (it->time >= j.end - cfg.window) window_mask |= 1u << it->bit;
      }
    };
    if (index.gpu_level()) {
      for (const PackedGpu g : table.gpus_of(j)) scan_loc(g);
    } else {
      table.nodes_of(j, node_scratch);
      for (const std::int32_t node : node_scratch) scan_loc(node);
    }
    if (run_mask == 0) continue;

    JobExposure exp;
    exp.job_index = idx;
    exp.run_mask = run_mask;
    exp.window_mask = window_mask;
    exp.gpu_failed = slurm::is_failure(j.state) && window_mask != 0;
    emit(exp);
  }
  return scanned;
}

}  // namespace

const ImpactRow* JobImpact::find(xid::Code code) const {
  for (const auto& r : rows) {
    if (r.code == code) return &r;
  }
  return nullptr;
}

int exposure_bit(xid::Code code) {
  const auto order = xid::report_order();
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] == code) return static_cast<int>(i);
  }
  return -1;
}

std::uint64_t ExposureJoinStats::total_exposed() const {
  std::uint64_t sum = 0;
  for (const auto& s : shards) sum += s.jobs_exposed;
  return sum;
}

std::span<const ErrorIndex::Entry> ErrorIndex::at(std::int64_t key) const {
  const auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  if (it == keys_.end() || *it != key) return {};
  const auto i = static_cast<std::size_t>(it - keys_.begin());
  return {entries_.data() + offsets_[i], offsets_[i + 1] - offsets_[i]};
}

ErrorIndex build_error_index(const std::vector<CoalescedError>& errors,
                             const JobImpactConfig& cfg) {
  ErrorIndex index;
  index.gpu_level_ = cfg.attribution == Attribution::kGpuLevel;

  struct Keyed {
    std::int64_t key;
    ErrorIndex::Entry entry;
  };
  std::vector<Keyed> keyed;
  keyed.reserve(errors.size());
  for (const auto& e : errors) {
    if (!cfg.period.contains(e.time)) continue;
    const int bit = exposure_bit(e.code);
    if (bit < 0) continue;
    const std::int64_t key =
        index.gpu_level_ ? pack_gpu(e.gpu.node, e.gpu.slot) : e.gpu.node;
    keyed.push_back({key, {e.time, static_cast<std::uint32_t>(bit)}});
  }
  // Full (key, time, bit) order: the per-key groups come out time-sorted and
  // the build is deterministic for any input order.  Masks OR over a time
  // range, so tie order inside a group cannot change any downstream value.
  std::sort(keyed.begin(), keyed.end(), [](const Keyed& a, const Keyed& b) {
    if (a.key != b.key) return a.key < b.key;
    if (a.entry.time != b.entry.time) return a.entry.time < b.entry.time;
    return a.entry.bit < b.entry.bit;
  });

  index.entries_.reserve(keyed.size());
  for (const auto& k : keyed) {
    if (index.keys_.empty() || index.keys_.back() != k.key) {
      index.keys_.push_back(k.key);
      index.offsets_.push_back(index.entries_.size());
    }
    index.entries_.push_back(k.entry);
  }
  index.offsets_.push_back(index.entries_.size());
  return index;
}

std::vector<JobExposure> compute_exposures(
    const JobTable& table, const ErrorIndex& index, const JobImpactConfig& cfg,
    common::ThreadPool* pool, ExposureJoinStats* stats) {
  const std::size_t shards = pool != nullptr ? pool->size() : 1;
  std::vector<std::vector<JobExposure>> shard_out(shards);
  std::vector<ExposureJoinStats::Shard> shard_stats(shards);

  const auto run_shard = [&](std::size_t s) {
    const auto [lo, hi] = shard_range(table.jobs.size(), shards, s);
    auto& out = shard_out[s];
    shard_stats[s].jobs_scanned = scan_job_range(
        table, index, cfg, lo, hi,
        [&out](const JobExposure& exp) { out.push_back(exp); });
    shard_stats[s].jobs_exposed = out.size();
  };
  if (pool != nullptr) {
    pool->parallel_for(shards, [&](std::size_t s, std::size_t) {
      run_shard(s);
    });
  } else {
    run_shard(0);
  }

  // Shards cover contiguous job ranges, so concatenating them in shard order
  // reproduces the serial job-index order exactly.
  std::size_t total = 0;
  for (const auto& v : shard_out) total += v.size();
  std::vector<JobExposure> out;
  out.reserve(total);
  for (auto& v : shard_out) out.insert(out.end(), v.begin(), v.end());
  if (stats != nullptr) stats->shards = std::move(shard_stats);
  return out;
}

std::vector<JobExposure> compute_exposures(
    const JobTable& table, const std::vector<CoalescedError>& errors,
    const JobImpactConfig& cfg) {
  return compute_exposures(table, build_error_index(errors, cfg), cfg);
}

JobImpact compute_job_impact(const JobTable& table,
                             const std::vector<CoalescedError>& errors,
                             const JobImpactConfig& cfg,
                             common::ThreadPool* pool,
                             ExposureJoinStats* stats) {
  JobImpact out;
  out.cfg = cfg;

  const auto order = xid::report_order();
  const auto index = build_error_index(errors, cfg);

  /// Pure per-shard tallies; merged by summation in fixed shard order, so
  /// every count is exactly what the serial loop produces.
  struct ShardAccum {
    std::uint64_t jobs_analyzed = 0;
    std::uint64_t failed_jobs_total = 0;
    std::uint64_t gpu_failed = 0;
    std::vector<std::uint64_t> encountering;
    std::vector<std::uint64_t> failed;
    ExposureJoinStats::Shard join;
  };
  const std::size_t shards = pool != nullptr ? pool->size() : 1;
  std::vector<ShardAccum> accum(shards);

  const auto run_shard = [&](std::size_t s) {
    auto& a = accum[s];
    a.encountering.assign(order.size(), 0);
    a.failed.assign(order.size(), 0);
    const auto [lo, hi] = shard_range(table.jobs.size(), shards, s);
    for (std::size_t idx = lo; idx < hi; ++idx) {
      const auto& j = table.jobs[idx];
      if (!cfg.period.contains(j.end)) continue;
      if (slurm::is_failure(j.state)) ++a.failed_jobs_total;
    }
    a.join.jobs_scanned = scan_job_range(
        table, index, cfg, lo, hi, [&](const JobExposure& exp) {
          ++a.join.jobs_exposed;
          if (exp.gpu_failed) ++a.gpu_failed;
          for (std::size_t b = 0; b < order.size(); ++b) {
            if (exp.run_mask & (1u << b)) ++a.encountering[b];
            if (exp.gpu_failed && (exp.window_mask & (1u << b))) ++a.failed[b];
          }
        });
    a.jobs_analyzed = a.join.jobs_scanned;
  };
  if (pool != nullptr) {
    pool->parallel_for(shards, [&](std::size_t s, std::size_t) {
      run_shard(s);
    });
  } else {
    run_shard(0);
  }

  std::vector<std::uint64_t> encountering(order.size(), 0);
  std::vector<std::uint64_t> failed(order.size(), 0);
  for (const auto& a : accum) {
    out.jobs_analyzed += a.jobs_analyzed;
    out.failed_jobs_total += a.failed_jobs_total;
    out.gpu_failed_jobs += a.gpu_failed;
    for (std::size_t b = 0; b < order.size(); ++b) {
      encountering[b] += a.encountering[b];
      failed[b] += a.failed[b];
    }
  }
  if (stats != nullptr) {
    stats->shards.clear();
    for (const auto& a : accum) stats->shards.push_back(a.join);
  }

  for (std::size_t b = 0; b < order.size(); ++b) {
    ImpactRow row;
    row.code = order[b];
    row.failed_jobs = failed[b];
    row.encountering_jobs = encountering[b];
    if (encountering[b] > 0) {
      row.failure_probability = static_cast<double>(failed[b]) /
                                static_cast<double>(encountering[b]);
      row.ci = common::wilson_interval(failed[b], encountering[b]);
    }
    out.rows.push_back(row);
  }
  return out;
}

}  // namespace gpures::analysis
