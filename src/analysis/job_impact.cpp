#include "analysis/job_impact.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace gpures::analysis {

const ImpactRow* JobImpact::find(xid::Code code) const {
  for (const auto& r : rows) {
    if (r.code == code) return &r;
  }
  return nullptr;
}

int exposure_bit(xid::Code code) {
  const auto order = xid::report_order();
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] == code) return static_cast<int>(i);
  }
  return -1;
}

std::vector<JobExposure> compute_exposures(
    const JobTable& table, const std::vector<CoalescedError>& errors,
    const JobImpactConfig& cfg) {
  // Per-location, time-sorted error list.  Location key is a packed GPU for
  // device-level attribution or a node index for node-level attribution.
  struct LocError {
    common::TimePoint time;
    std::uint32_t bit;
  };
  const bool gpu_level = cfg.attribution == Attribution::kGpuLevel;
  std::unordered_map<std::int64_t, std::vector<LocError>> by_loc;
  for (const auto& e : errors) {
    if (!cfg.period.contains(e.time)) continue;
    const int bit = exposure_bit(e.code);
    if (bit < 0) continue;
    const std::int64_t key =
        gpu_level ? pack_gpu(e.gpu.node, e.gpu.slot) : e.gpu.node;
    by_loc[key].push_back({e.time, static_cast<std::uint32_t>(bit)});
  }
  for (auto& [loc, v] : by_loc) {
    std::sort(v.begin(), v.end(), [](const LocError& a, const LocError& b) {
      return a.time < b.time;
    });
  }

  std::vector<JobExposure> out;
  std::vector<std::int32_t> node_scratch;
  for (std::size_t idx = 0; idx < table.jobs.size(); ++idx) {
    const auto& j = table.jobs[idx];
    if (!cfg.period.contains(j.end)) continue;

    std::uint32_t run_mask = 0;
    std::uint32_t window_mask = 0;
    const auto scan_loc = [&](std::int64_t key) {
      const auto it = by_loc.find(key);
      if (it == by_loc.end()) return;
      const auto& v = it->second;
      // Strictly after start: an error stamped at the exact second a job
      // started belongs to the GPU's previous tenant (the scheduler can hand
      // a freed GPU to a queued job within the same second the error killed
      // its former owner).
      auto lo = std::lower_bound(
          v.begin(), v.end(), j.start + 1,
          [](const LocError& e, common::TimePoint t) { return e.time < t; });
      for (; lo != v.end() && lo->time <= j.end; ++lo) {
        run_mask |= 1u << lo->bit;
        if (lo->time >= j.end - cfg.window) window_mask |= 1u << lo->bit;
      }
    };
    if (gpu_level) {
      for (const PackedGpu g : table.gpus_of(j)) scan_loc(g);
    } else {
      table.nodes_of(j, node_scratch);
      for (const std::int32_t node : node_scratch) scan_loc(node);
    }
    if (run_mask == 0) continue;

    JobExposure exp;
    exp.job_index = idx;
    exp.run_mask = run_mask;
    exp.window_mask = window_mask;
    exp.gpu_failed = slurm::is_failure(j.state) && window_mask != 0;
    out.push_back(exp);
  }
  return out;
}

JobImpact compute_job_impact(const JobTable& table,
                             const std::vector<CoalescedError>& errors,
                             const JobImpactConfig& cfg) {
  JobImpact out;
  out.cfg = cfg;

  const auto order = xid::report_order();
  std::vector<std::uint64_t> encountering(order.size(), 0);
  std::vector<std::uint64_t> failed(order.size(), 0);

  for (const auto& j : table.jobs) {
    if (!cfg.period.contains(j.end)) continue;
    ++out.jobs_analyzed;
    if (slurm::is_failure(j.state)) ++out.failed_jobs_total;
  }

  for (const auto& exp : compute_exposures(table, errors, cfg)) {
    if (exp.gpu_failed) ++out.gpu_failed_jobs;
    for (std::size_t b = 0; b < order.size(); ++b) {
      if (exp.run_mask & (1u << b)) ++encountering[b];
      if (exp.gpu_failed && (exp.window_mask & (1u << b))) ++failed[b];
    }
  }

  for (std::size_t b = 0; b < order.size(); ++b) {
    ImpactRow row;
    row.code = order[b];
    row.failed_jobs = failed[b];
    row.encountering_jobs = encountering[b];
    if (encountering[b] > 0) {
      row.failure_probability = static_cast<double>(failed[b]) /
                                static_cast<double>(encountering[b]);
      row.ci = common::wilson_interval(failed[b], encountering[b]);
    }
    out.rows.push_back(row);
  }
  return out;
}

}  // namespace gpures::analysis
