// Report rendering: prints the paper's tables and figures from computed
// statistics, with the same row/column structure, for the bench harnesses
// and examples.
#pragma once

#include <string>

#include "analysis/availability.h"
#include "analysis/error_stats.h"
#include "analysis/job_impact.h"
#include "analysis/job_stats.h"

namespace gpures::analysis {

/// Table I: per-XID counts and MTBE, pre-op vs op, plus rollups.
std::string render_table1(const ErrorStats& stats);

/// The headline §IV findings derived from Table I (MTBE degradation, memory
/// vs hardware ratio, GSP degradation, outliers, de-duplication factor).
std::string render_findings(const ErrorStats& stats);

/// Table II: job-failure probability per XID family.
std::string render_table2(const JobImpact& impact);

/// Table III: job distribution / elapsed / GPU-hours by GPU-count bucket.
std::string render_table3(const JobStats& stats);

/// Fig. 2: unavailability duration distribution (histogram + ECDF) and the
/// §V-C availability computation.  `mttf_h` is the per-node MTBE estimate.
std::string render_fig2(const AvailabilityStats& stats, double mttf_h);

}  // namespace gpures::analysis
