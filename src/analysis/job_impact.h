// Stage III: propagation of GPU errors to user jobs (paper Table II, §V-B).
//
// A job "encounters" an XID family when a coalesced error of that family is
// logged on one of its allocated nodes while the job is running.  A job is
// classified "GPU-failed" when it ends in a failure state and a GPU error
// was detected on its nodes within the attribution window (the paper's 20
// seconds) preceding its end.  Per family, the job-failure probability is
// (#GPU-failed jobs encountering it in the window) / (#jobs encountering it).
//
// The exposure join is the Stage-III scaling bottleneck: it correlates every
// job against every error on the job's locations.  It runs against a
// read-only ErrorIndex (per-location sorted interval lists, built once) and
// can be sharded over contiguous job ranges on a thread pool; per-shard
// outputs are merged in fixed shard order, so the parallel result is
// byte-identical to the serial one (see DESIGN.md "Parallel pipeline
// determinism").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "analysis/coalesce.h"
#include "analysis/job_stats.h"
#include "analysis/periods.h"
#include "common/thread_pool.h"

namespace gpures::analysis {

/// Error-to-job attribution granularity.  The paper's Table II numbers imply
/// device-level correlation (a job "encounters" an error only if it holds
/// the logging GPU); node-level attribution — counting every job on the
/// node — is kept as a methodology ablation and systematically dilutes the
/// measured failure probabilities.
enum class Attribution { kGpuLevel, kNodeLevel };

struct JobImpactConfig {
  /// Attribution window: error within this many seconds before job end.
  common::Duration window = 20;
  /// Restrict to jobs that end inside this period (the paper analyzes the
  /// operational period only).
  Period period;
  Attribution attribution = Attribution::kGpuLevel;
};

/// One Table II row.
struct ImpactRow {
  xid::Code code;
  std::uint64_t failed_jobs = 0;       ///< GPU-failed jobs with this XID in window
  std::uint64_t encountering_jobs = 0; ///< jobs with this XID during their run
  double failure_probability = 0.0;    ///< failed / encountering (window-based)
  common::Proportion ci;               ///< Wilson interval on the probability
};

struct JobImpact {
  JobImpactConfig cfg;
  std::vector<ImpactRow> rows;              ///< paper report order
  std::uint64_t gpu_failed_jobs = 0;        ///< distinct GPU-failed jobs
  std::uint64_t jobs_analyzed = 0;          ///< jobs ending in the period
  std::uint64_t failed_jobs_total = 0;      ///< jobs in any failure state

  const ImpactRow* find(xid::Code code) const;
};

/// Per-job exposure record for jobs that encountered at least one error.
/// Bits index into xid::report_order().
struct JobExposure {
  std::size_t job_index = 0;       ///< into JobTable::jobs
  std::uint32_t run_mask = 0;      ///< families seen during the run
  std::uint32_t window_mask = 0;   ///< families seen in the final window
  bool gpu_failed = false;         ///< failure state + window error
};

/// Read-only per-location error index for the exposure join.  One flat
/// (time, family-bit) array grouped by location key — a packed GPU for
/// device-level attribution, a node index for node-level — with each group
/// sorted by time.  Built once per join (O(E log E)) and then shared by
/// every job shard; lookups are a binary search over the key directory plus
/// a lower_bound inside the group.  The exposure masks OR over a time range,
/// so the within-tie entry order cannot affect any result.
class ErrorIndex {
 public:
  struct Entry {
    common::TimePoint time = 0;
    std::uint32_t bit = 0;  ///< index into xid::report_order()
  };

  /// Time-sorted errors logged at `key`; empty when the location is clean.
  std::span<const Entry> at(std::int64_t key) const;

  bool gpu_level() const { return gpu_level_; }
  std::size_t locations() const { return keys_.size(); }
  std::size_t entries() const { return entries_.size(); }

 private:
  friend ErrorIndex build_error_index(const std::vector<CoalescedError>&,
                                      const JobImpactConfig&);
  bool gpu_level_ = true;
  std::vector<std::int64_t> keys_;      ///< sorted distinct location keys
  std::vector<std::size_t> offsets_;    ///< keys_.size() + 1 group bounds
  std::vector<Entry> entries_;          ///< grouped by key, time-sorted
};

/// Index the errors falling inside cfg.period at cfg.attribution granularity.
ErrorIndex build_error_index(const std::vector<CoalescedError>& errors,
                             const JobImpactConfig& cfg);

/// Per-shard tallies of one exposure join (shard 0 only in serial mode).
/// Reported through the obs registry as pipe.stage3.shard.N.* counters.
struct ExposureJoinStats {
  struct Shard {
    std::uint64_t jobs_scanned = 0;  ///< jobs in the shard's range and period
    std::uint64_t jobs_exposed = 0;  ///< of those, jobs with >= 1 error
  };
  std::vector<Shard> shards;

  std::uint64_t total_exposed() const;
};

/// Compute exposures for every job ending in cfg.period (jobs with no
/// errors are omitted).  Shared by the Table II computation and the
/// mitigation what-ifs.  With a pool, the job table is sharded into
/// pool->size() contiguous ranges joined concurrently against `index`;
/// per-shard outputs are concatenated in shard order, so the returned
/// vector is identical to a serial join for any worker count.
std::vector<JobExposure> compute_exposures(
    const JobTable& table, const ErrorIndex& index, const JobImpactConfig& cfg,
    common::ThreadPool* pool = nullptr, ExposureJoinStats* stats = nullptr);

/// Convenience overload: builds the index, then joins serially.
std::vector<JobExposure> compute_exposures(
    const JobTable& table, const std::vector<CoalescedError>& errors,
    const JobImpactConfig& cfg);

/// Bit index of a family in exposure masks; -1 if not a reported family.
int exposure_bit(xid::Code code);

/// Correlate coalesced errors with job records.  Errors may be in any order;
/// jobs may be in any order.  With a pool, the join is sharded as in
/// compute_exposures and per-shard counter vectors are merged in fixed
/// shard order — integer sums, so the result is exactly the serial one.
JobImpact compute_job_impact(const JobTable& table,
                             const std::vector<CoalescedError>& errors,
                             const JobImpactConfig& cfg,
                             common::ThreadPool* pool = nullptr,
                             ExposureJoinStats* stats = nullptr);

}  // namespace gpures::analysis
