// Stage III: propagation of GPU errors to user jobs (paper Table II, §V-B).
//
// A job "encounters" an XID family when a coalesced error of that family is
// logged on one of its allocated nodes while the job is running.  A job is
// classified "GPU-failed" when it ends in a failure state and a GPU error
// was detected on its nodes within the attribution window (the paper's 20
// seconds) preceding its end.  Per family, the job-failure probability is
// (#GPU-failed jobs encountering it in the window) / (#jobs encountering it).
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/coalesce.h"
#include "analysis/job_stats.h"
#include "analysis/periods.h"

namespace gpures::analysis {

/// Error-to-job attribution granularity.  The paper's Table II numbers imply
/// device-level correlation (a job "encounters" an error only if it holds
/// the logging GPU); node-level attribution — counting every job on the
/// node — is kept as a methodology ablation and systematically dilutes the
/// measured failure probabilities.
enum class Attribution { kGpuLevel, kNodeLevel };

struct JobImpactConfig {
  /// Attribution window: error within this many seconds before job end.
  common::Duration window = 20;
  /// Restrict to jobs that end inside this period (the paper analyzes the
  /// operational period only).
  Period period;
  Attribution attribution = Attribution::kGpuLevel;
};

/// One Table II row.
struct ImpactRow {
  xid::Code code;
  std::uint64_t failed_jobs = 0;       ///< GPU-failed jobs with this XID in window
  std::uint64_t encountering_jobs = 0; ///< jobs with this XID during their run
  double failure_probability = 0.0;    ///< failed / encountering (window-based)
  common::Proportion ci;               ///< Wilson interval on the probability
};

struct JobImpact {
  JobImpactConfig cfg;
  std::vector<ImpactRow> rows;              ///< paper report order
  std::uint64_t gpu_failed_jobs = 0;        ///< distinct GPU-failed jobs
  std::uint64_t jobs_analyzed = 0;          ///< jobs ending in the period
  std::uint64_t failed_jobs_total = 0;      ///< jobs in any failure state

  const ImpactRow* find(xid::Code code) const;
};

/// Per-job exposure record for jobs that encountered at least one error.
/// Bits index into xid::report_order().
struct JobExposure {
  std::size_t job_index = 0;       ///< into JobTable::jobs
  std::uint32_t run_mask = 0;      ///< families seen during the run
  std::uint32_t window_mask = 0;   ///< families seen in the final window
  bool gpu_failed = false;         ///< failure state + window error
};

/// Compute exposures for every job ending in cfg.period (jobs with no
/// errors are omitted).  Shared by the Table II computation and the
/// mitigation what-ifs.
std::vector<JobExposure> compute_exposures(
    const JobTable& table, const std::vector<CoalescedError>& errors,
    const JobImpactConfig& cfg);

/// Bit index of a family in exposure masks; -1 if not a reported family.
int exposure_bit(xid::Code code);

/// Correlate coalesced errors with job records.  Errors may be in any order;
/// jobs may be in any order.
JobImpact compute_job_impact(const JobTable& table,
                             const std::vector<CoalescedError>& errors,
                             const JobImpactConfig& cfg);

}  // namespace gpures::analysis
