// Campaign configuration files: a small "key = value" format so the CLI can
// run custom scenarios (rate what-ifs, different windows, recovery policies)
// without recompiling.
//
//   # comments and blank lines are ignored
//   seed = 7
//   faults.gsp.op_count = 1000
//   faults.recovery.reboot_lognormal_mu = -1.2
//   workload.op_jobs = 200000
//   failure.p_mmu = 0.8
//   faults.study_begin = 2022-01-01        # dates in ISO form
//
// Unknown keys are errors (typos should not silently do nothing); values are
// validated by the underlying config validate() calls at use time.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "analysis/campaign.h"
#include "common/error.h"

namespace gpures::analysis {

/// Apply `text` on top of `base`.  Returns the updated config or the first
/// error (line number + message).
common::Result<CampaignConfig> apply_config_text(std::string_view text,
                                                 CampaignConfig base);

/// Load from a file path.
common::Result<CampaignConfig> load_config_file(const std::string& path,
                                                CampaignConfig base);

/// The supported keys (for --help / error messages), sorted.
std::vector<std::string> supported_config_keys();

}  // namespace gpures::analysis
