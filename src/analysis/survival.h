// Survival analysis of GPU time-to-error, in the style of the Titan GPU
// lifetime study (Ostrouchov et al., SC'20) the paper builds on.
//
//  * Kaplan-Meier estimator of the survival function S(t) for per-GPU time
//    to first error, with right-censoring for GPUs that never erred during
//    the observation window;
//  * Weibull maximum-likelihood fit of inter-error times: shape k < 1 means
//    the hazard *decreases* with time since the last error (bursty/infant
//    behaviour), k ~ 1 memoryless, k > 1 wear-out.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/coalesce.h"
#include "analysis/periods.h"
#include "cluster/topology.h"
#include "common/thread_pool.h"

namespace gpures::analysis {

/// One step of a Kaplan-Meier survival curve.
struct KmPoint {
  double time_h = 0.0;   ///< event time (hours since window start)
  double survival = 1.0; ///< S(t) just after this event time
  std::uint64_t at_risk = 0;
  std::uint64_t events = 0;
};

struct KaplanMeier {
  std::vector<KmPoint> curve;
  std::uint64_t subjects = 0;
  std::uint64_t observed_events = 0;
  std::uint64_t censored = 0;
  /// Median time to event (hours); infinity if S never drops below 0.5.
  double median_h = 0.0;

  /// S(t) at an arbitrary time (step function; 1.0 before the first event).
  double survival_at(double time_h) const;
};

/// Time to *first* error of any tracked family per GPU, right-censored at
/// the window end for GPUs with no errors.  `total_gpus` supplies the number
/// of subjects (GPUs that never logged anything are censored at full window).
/// With a pool, the error list is sharded and per-shard first-error minima
/// are merged — min is exact, so the curve is identical to serial.
KaplanMeier km_time_to_first_error(const std::vector<CoalescedError>& errors,
                                   const Period& window,
                                   std::int32_t total_gpus,
                                   common::ThreadPool* pool = nullptr);

/// Weibull fit of a positive sample by maximum likelihood (Newton iteration
/// on the profile equation for the shape).
struct WeibullFit {
  double shape = 1.0;  ///< k
  double scale = 1.0;  ///< lambda (same unit as input)
  std::uint64_t n = 0;
  bool converged = false;
};

WeibullFit fit_weibull_mle(const std::vector<double>& samples,
                           int max_iterations = 100, double tol = 1e-9);

/// Inter-error gaps (hours) for a family within a window, pooled per GPU
/// (gaps are computed per GPU so device changes don't create fake gaps).
std::vector<double> interarrival_hours(const std::vector<CoalescedError>& errors,
                                       const Period& window, xid::Code family);

/// Render the survival report (KM summary + Weibull fits for key families).
/// With a pool, the KM scan is error-sharded and the per-family Weibull
/// fits run as parallel tasks; output is assembled in fixed family order,
/// so the report bytes match a serial render exactly.
std::string render_survival(const std::vector<CoalescedError>& errors,
                            const StudyPeriods& periods,
                            std::int32_t total_gpus,
                            common::ThreadPool* pool = nullptr);

}  // namespace gpures::analysis
