// Stage III: node unavailability and availability modeling (paper Fig. 2 and
// §V-C).  Drain/resume lifecycle records are paired per node into
// unavailability intervals; their distribution is Fig. 2, their mean is the
// MTTR, and together with the MTBE-derived MTTF (conservative: every GPU
// error interrupts the node) they give availability = MTTF / (MTTF + MTTR).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/extraction.h"
#include "analysis/periods.h"
#include "common/histogram.h"
#include "common/stats.h"
#include "common/thread_pool.h"

namespace gpures::analysis {

/// One recovered unavailability interval.
struct Unavailability {
  std::string host;
  common::TimePoint begin = 0;  ///< drain
  common::TimePoint end = 0;    ///< resume
  double hours() const { return common::to_hours(end - begin); }
};

struct AvailabilityConfig {
  /// Ignore pathological intervals longer than this (unpaired records).
  double max_interval_h = 24.0 * 30;
  /// Period to analyze (paper: operational period).
  Period period;
  std::int32_t node_count = 106;
};

struct AvailabilityStats {
  AvailabilityConfig cfg;
  std::vector<Unavailability> intervals;
  common::Summary duration_hours;     ///< Fig. 2 distribution summary
  std::vector<common::EcdfPoint> ecdf;///< Fig. 2 curve
  double total_node_hours_lost = 0.0; ///< paper: ~5,700 node-hours
  double mttr_h = 0.0;                ///< mean repair time (paper: ~0.88 h)
  std::uint64_t unpaired_drains = 0;  ///< drains with no matching resume
  std::uint64_t unpaired_resumes = 0;

  /// availability given an MTTF estimate (per-node MTBE in hours).
  double availability(double mttf_h) const;
  /// Downtime minutes per node per day implied by `availability`.
  static double downtime_minutes_per_day(double availability);
};

/// Pair lifecycle records (any order) into intervals and summarize.  With a
/// pool, hosts are sharded into contiguous ranges of the sorted host list
/// and paired concurrently; shard outputs merge in fixed shard order, so the
/// result (including every floating-point aggregate) is bit-identical to a
/// serial run for any worker count.
AvailabilityStats compute_availability(
    const std::vector<LifecycleRecord>& lifecycle,
    const AvailabilityConfig& cfg, common::ThreadPool* pool = nullptr);

}  // namespace gpures::analysis
