#include "analysis/mitigation.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/table.h"

namespace gpures::analysis {

LostWork compute_lost_work(const JobTable& table,
                           std::span<const JobExposure> exposures,
                           const JobImpactConfig& cfg) {
  LostWork out;
  for (const auto& j : table.jobs) {
    if (!cfg.period.contains(j.end)) continue;
    out.total_gpu_hours += j.gpu_hours();
  }
  for (const auto& exp : exposures) {
    if (!exp.gpu_failed) continue;
    ++out.gpu_failed_jobs;
    out.lost_gpu_hours += table.jobs[exp.job_index].gpu_hours();
  }
  if (out.total_gpu_hours > 0.0) {
    out.lost_fraction = out.lost_gpu_hours / out.total_gpu_hours;
  }
  return out;
}

LostWork compute_lost_work(const JobTable& table,
                           const std::vector<CoalescedError>& errors,
                           const JobImpactConfig& cfg) {
  return compute_lost_work(table, compute_exposures(table, errors, cfg), cfg);
}

CheckpointSweep sweep_checkpoint_interval(
    const JobTable& table, std::span<const JobExposure> exposures,
    const JobImpactConfig& cfg, const std::vector<double>& intervals_h,
    double checkpoint_cost_h, double restore_cost_h) {
  CheckpointSweep sweep;
  sweep.checkpoint_cost_h = checkpoint_cost_h;

  // Collect failed-job (elapsed_h, gpus) pairs and total per-job runtime for
  // the overhead term.
  struct FailedJob {
    double elapsed_h;
    double gpus;
  };
  std::vector<FailedJob> failures;
  double all_jobs_gpu_weighted_runtime_h = 0.0;  // sum elapsed_h * gpus
  for (const auto& j : table.jobs) {
    if (!cfg.period.contains(j.end)) continue;
    all_jobs_gpu_weighted_runtime_h +=
        common::to_hours(j.end - j.start) * static_cast<double>(j.gpus);
  }
  for (const auto& exp : exposures) {
    if (!exp.gpu_failed) continue;
    const auto& j = table.jobs[exp.job_index];
    failures.push_back({common::to_hours(j.end - j.start),
                        static_cast<double>(j.gpus)});
    sweep.no_checkpoint_waste +=
        common::to_hours(j.end - j.start) * static_cast<double>(j.gpus);
  }

  sweep.best_waste = std::numeric_limits<double>::infinity();
  for (const double c : intervals_h) {
    CheckpointPoint p;
    p.interval_h = c;
    for (const auto& f : failures) {
      // Work since the last checkpoint is lost: expected c/2 when the job
      // ran longer than a full interval, else half its runtime; plus the
      // restart/restore cost.
      const double recompute = 0.5 * std::min(f.elapsed_h, c) + restore_cost_h;
      p.recompute_gpu_hours += recompute * f.gpus;
    }
    // Every job pays (elapsed / c) checkpoints of `checkpoint_cost_h` each.
    p.overhead_gpu_hours =
        c > 0.0 ? all_jobs_gpu_weighted_runtime_h / c * checkpoint_cost_h : 0.0;
    p.wasted_gpu_hours = p.recompute_gpu_hours + p.overhead_gpu_hours;
    if (p.wasted_gpu_hours < sweep.best_waste) {
      sweep.best_waste = p.wasted_gpu_hours;
      sweep.best_interval_h = c;
    }
    sweep.points.push_back(p);
  }
  return sweep;
}

CheckpointSweep sweep_checkpoint_interval(
    const JobTable& table, const std::vector<CoalescedError>& errors,
    const JobImpactConfig& cfg, const std::vector<double>& intervals_h,
    double checkpoint_cost_h, double restore_cost_h) {
  return sweep_checkpoint_interval(table, compute_exposures(table, errors, cfg),
                                   cfg, intervals_h, checkpoint_cost_h,
                                   restore_cost_h);
}

MaskingWhatIf compute_masking_whatif(const JobTable& table,
                                     std::span<const JobExposure> exposures,
                                     const JobImpactConfig& /*cfg*/,
                                     const std::vector<xid::Code>& maskable) {
  std::uint32_t maskable_mask = 0;
  for (const auto code : maskable) {
    const int bit = exposure_bit(code);
    if (bit >= 0) maskable_mask |= 1u << static_cast<std::uint32_t>(bit);
  }
  MaskingWhatIf out;
  for (const auto& exp : exposures) {
    if (!exp.gpu_failed) continue;
    ++out.gpu_failed_jobs;
    // Maskable iff every error family in the attribution window could have
    // been absorbed by the application-level handler.
    if ((exp.window_mask & ~maskable_mask) == 0) {
      ++out.maskable_jobs;
      out.recoverable_gpu_hours += table.jobs[exp.job_index].gpu_hours();
    }
  }
  if (out.gpu_failed_jobs > 0) {
    out.maskable_fraction = static_cast<double>(out.maskable_jobs) /
                            static_cast<double>(out.gpu_failed_jobs);
  }
  return out;
}

MaskingWhatIf compute_masking_whatif(const JobTable& table,
                                     const std::vector<CoalescedError>& errors,
                                     const JobImpactConfig& cfg,
                                     const std::vector<xid::Code>& maskable) {
  return compute_masking_whatif(table, compute_exposures(table, errors, cfg),
                                cfg, maskable);
}

std::string render_mitigation(const JobTable& table,
                              const std::vector<CoalescedError>& errors,
                              const JobImpactConfig& cfg,
                              common::ThreadPool* pool) {
  std::string out;
  char buf[256];

  // One sharded join feeds all three what-ifs; each consumes the exposure
  // list in order, so results are independent of the worker count.
  const auto index = build_error_index(errors, cfg);
  const auto exposures = compute_exposures(table, index, cfg, pool);

  const auto lost = compute_lost_work(table, exposures, cfg);
  std::snprintf(buf, sizeof(buf),
                "Lost work: %s GPU-failed jobs wasted %.0f GPU-hours "
                "(%.3f%% of %.0f total GPU-hours)\n",
                common::fmt_int(lost.gpu_failed_jobs).c_str(),
                lost.lost_gpu_hours, lost.lost_fraction * 100.0,
                lost.total_gpu_hours);
  out += buf;

  const auto sweep = sweep_checkpoint_interval(
      table, exposures, cfg, {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 24.0});
  common::AsciiTable t({"checkpoint interval (h)", "recompute (GPU-h)",
                        "overhead (GPU-h)", "total waste (GPU-h)"});
  for (const auto& p : sweep.points) {
    t.add_row({common::fmt_fixed(p.interval_h, 2),
               common::fmt_fixed(p.recompute_gpu_hours, 0),
               common::fmt_fixed(p.overhead_gpu_hours, 0),
               common::fmt_fixed(p.wasted_gpu_hours, 0)});
  }
  out += "\nCheckpoint-interval sweep (vs ";
  out += common::fmt_fixed(sweep.no_checkpoint_waste, 0);
  out += " GPU-hours lost with no checkpointing):\n";
  out += t.render();
  std::snprintf(buf, sizeof(buf),
                "best interval ~%.2f h -> %.0f GPU-hours wasted (%.0f%% "
                "reduction)\n",
                sweep.best_interval_h, sweep.best_waste,
                sweep.no_checkpoint_waste > 0.0
                    ? (1.0 - sweep.best_waste / sweep.no_checkpoint_waste) *
                          100.0
                    : 0.0);
  out += buf;

  const auto mask = compute_masking_whatif(table, exposures, cfg);
  std::snprintf(buf, sizeof(buf),
                "\nException-handling what-if: %s of %s GPU-failed jobs "
                "(%.0f%%) saw only MMU errors in the window — the upper "
                "bound application-level handlers could absorb (%.0f "
                "GPU-hours)\n",
                common::fmt_int(mask.maskable_jobs).c_str(),
                common::fmt_int(mask.gpu_failed_jobs).c_str(),
                mask.maskable_fraction * 100.0, mask.recoverable_gpu_hours);
  out += buf;
  return out;
}

}  // namespace gpures::analysis
