#include "analysis/pipeline.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "common/strings.h"
#include "obs/trace.h"
#include "slurm/accounting.h"

namespace gpures::analysis {

namespace {

// Deterministic total order on coalesced errors: two distinct errors can
// never tie (same (gpu, code) errors are > window apart by construction).
bool error_before(const CoalescedError& a, const CoalescedError& b) {
  if (a.time != b.time) return a.time < b.time;
  if (a.gpu != b.gpu) return a.gpu < b.gpu;
  return xid::to_number(a.code) < xid::to_number(b.code);
}

std::unique_ptr<LineParser> make_parser(const PipelineConfig& cfg) {
  if (cfg.use_regex_parser) return std::make_unique<RegexLineParser>();
  return std::make_unique<FastLineParser>();
}

}  // namespace

AnalysisPipeline::AnalysisPipeline(const cluster::Topology& topo,
                                   PipelineConfig cfg)
    : topo_(topo), cfg_(cfg) {
  if (cfg_.metrics != nullptr) {
    metrics_ = cfg_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  m_.log_lines = &metrics_->counter("pipe.log_lines");
  m_.xid_records = &metrics_->counter("pipe.xid_records");
  m_.lifecycle_records = &metrics_->counter("pipe.lifecycle_records");
  m_.rejected_lines = &metrics_->counter("pipe.rejected_lines");
  m_.unknown_hosts = &metrics_->counter("pipe.unknown_hosts");
  m_.accounting_lines = &metrics_->counter("pipe.accounting_lines");
  m_.accounting_errors = &metrics_->counter("pipe.accounting_errors");
  m_.out_of_order = &metrics_->counter("pipe.out_of_order_observations");
  m_.errors_coalesced = &metrics_->counter("pipe.errors_coalesced");
  m_.day_parse_us =
      &metrics_->histogram("pipe.stage1.day_parse_us", obs::latency_buckets_us());
  m_.stage3_exposures = &metrics_->counter("pipe.stage3.exposures");
  m_.stage3_join_us = &metrics_->histogram("pipe.stage3.exposure_join_us",
                                           obs::latency_buckets_us());
  const std::size_t worker_slots =
      cfg_.num_threads == 0 ? 1 : cfg_.num_threads;
  worker_metrics_.resize(worker_slots);
  stage3_shard_metrics_.resize(worker_slots);
  for (std::size_t w = 0; w < worker_slots; ++w) {
    const std::string prefix = "pipe.worker." + std::to_string(w) + ".";
    worker_metrics_[w].days_parsed = &metrics_->counter(prefix + "days_parsed");
    worker_metrics_[w].lines = &metrics_->counter(prefix + "lines");
    worker_metrics_[w].parse_time_ns =
        &metrics_->counter(prefix + "parse_time_ns");
    const std::string s3 = "pipe.stage3.shard." + std::to_string(w) + ".";
    stage3_shard_metrics_[w].jobs = &metrics_->counter(s3 + "jobs");
    stage3_shard_metrics_[w].exposed = &metrics_->counter(s3 + "exposed");
  }

  if (cfg_.num_threads == 0) {
    parser_ = make_parser(cfg_);
    coalescer_ = std::make_unique<Coalescer>(
        cfg_.coalescer, [this](const CoalescedError& e) {
          errors_.push_back(e);
          m_.errors_coalesced->inc();
        });
    return;
  }
  // Parallel mode: N workers, each with a private Stage-I parser; N Stage-II
  // shards, each owning a private coalescer over a disjoint set of GPUs.
  const std::size_t n = cfg_.num_threads;
  pool_ = std::make_unique<common::ThreadPool>(n);
  worker_parsers_.reserve(n);
  shard_coalescers_.reserve(n);
  shard_errors_.resize(n);
  shard_feed_.resize(n);
  for (std::size_t s = 0; s < n; ++s) {
    worker_parsers_.push_back(make_parser(cfg_));
    auto* sink = &shard_errors_[s];
    auto* coalesced = m_.errors_coalesced;
    shard_coalescers_.push_back(std::make_unique<Coalescer>(
        cfg_.coalescer, [sink, coalesced](const CoalescedError& e) {
          sink->push_back(e);
          coalesced->inc();
        }));
  }
  batch_days_ = cfg_.stage1_batch_days > 0
                    ? cfg_.stage1_batch_days
                    : 4 * static_cast<std::size_t>(cfg_.num_threads);
}

AnalysisPipeline::~AnalysisPipeline() = default;

AnalysisPipeline::DayParse AnalysisPipeline::parse_day(
    const LineParser& parser, std::size_t worker, common::TimePoint day_start,
    const logsys::DayBuffer& day) const {
  OBS_SPAN("stage1.parse_day");
  const auto t0 = std::chrono::steady_clock::now();
  DayParse out;
  // Plain local tallies flushed to the registry once per day: the hot loop
  // touches no atomics, and per-day sums are order-independent so the
  // parallel schedule cannot change any metric value.
  std::uint64_t log_lines = 0, rejected = 0, unknown = 0;
  std::uint64_t xids = 0, lifecycles = 0;
  const std::size_t n_lines = day.size();
  for (std::size_t i = 0; i < n_lines; ++i) {
    ++log_lines;
    // The slice (and the XidRecord views borrowed from it) lives in the
    // day arena; hosts/PCI ids are resolved to indices right here, so
    // nothing outlives the iteration.
    auto parsed = parser.parse(day.line(i), day_start);
    if (!parsed) {
      ++rejected;
      continue;
    }
    if (auto* xrec = std::get_if<XidRecord>(&*parsed)) {
      const auto node = topo_.node_index(xrec->host);
      if (!node) {
        ++unknown;
        continue;
      }
      const auto slot = topo_.slot_for_pci(*node, xrec->pci);
      if (!slot) {
        ++unknown;
        continue;
      }
      ++xids;
      XidObservation obs;
      obs.time = xrec->time;
      obs.gpu = {*node, *slot};
      obs.xid = xrec->xid;
      out.obs.push_back(obs);
    } else if (auto* lrec = std::get_if<LifecycleRecord>(&*parsed)) {
      if (!topo_.node_index(lrec->host)) {
        ++unknown;
        continue;
      }
      ++lifecycles;
      out.lifecycle.push_back(std::move(*lrec));
    }
  }
  m_.log_lines->add(log_lines);
  m_.rejected_lines->add(rejected);
  m_.unknown_hosts->add(unknown);
  m_.xid_records->add(xids);
  m_.lifecycle_records->add(lifecycles);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  const auto ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  m_.day_parse_us->observe(static_cast<double>(ns) / 1000.0);
  const auto& wm = worker_metrics_[worker % worker_metrics_.size()];
  wm.days_parsed->inc();
  wm.lines->add(log_lines);
  wm.parse_time_ns->add(ns);
  return out;
}

std::size_t AnalysisPipeline::shard_of(xid::GpuId gpu) const {
  return static_cast<std::size_t>(xid::gpu_key(gpu)) %
         shard_coalescers_.size();
}

void AnalysisPipeline::ingest_day(common::TimePoint day_start,
                                  logsys::DayBuffer&& day) {
  if (finished_) throw std::logic_error("pipeline: ingest after finish()");
  if (pool_) {
    pending_days_.push_back(PendingDay{day_start, std::move(day)});
    if (pending_days_.size() >= batch_days_) flush_pending_days();
    return;
  }
  auto parsed = parse_day(*parser_, 0, day_start, day);
  for (auto& l : parsed.lifecycle) lifecycle_.push_back(std::move(l));
  for (const auto& o : parsed.obs) coalescer_->add(o);
}

void AnalysisPipeline::ingest_log_day(common::TimePoint day_start,
                                      std::span<const logsys::RawLine> lines) {
  logsys::DayBuffer day;
  std::size_t bytes = 0;
  for (const auto& l : lines) bytes += l.text.size() + 1;
  day.reserve(lines.size(), bytes);
  for (const auto& l : lines) day.append(l.time, l.text);
  ingest_day(day_start, std::move(day));
}

void AnalysisPipeline::flush_pending_days() {
  if (pending_days_.empty()) return;
  // Stage I: each worker parses a contiguous chunk of days with its private
  // parser; outputs are indexed by day, so merge order is ingestion order
  // regardless of which worker parsed what.
  std::vector<DayParse> parsed(pending_days_.size());
  pool_->parallel_for(
      pending_days_.size(), [&](std::size_t i, std::size_t w) {
        parsed[i] =
            parse_day(*worker_parsers_[w], w, pending_days_[i].day_start,
                      pending_days_[i].day);
      });
  // Deterministic ordered merge: day index order, stable within-day order —
  // exactly the sequence the serial path would have produced.
  {
    OBS_SPAN("stage1.merge_days");
    for (auto& day : parsed) {
      for (auto& l : day.lifecycle) lifecycle_.push_back(std::move(l));
      for (const auto& o : day.obs) shard_feed_[shard_of(o.gpu)].push_back(o);
    }
  }
  pending_days_.clear();
  // Stage II: shard s owns a disjoint set of (GPU, code) keys, so its
  // coalescer sees the same per-key subsequence as the serial coalescer.
  pool_->parallel_for(shard_feed_.size(), [&](std::size_t s, std::size_t) {
    OBS_SPAN("stage2.coalesce_shard");
    for (const auto& o : shard_feed_[s]) shard_coalescers_[s]->add(o);
    shard_feed_[s].clear();
  });
}

void AnalysisPipeline::ingest_log_text(common::TimePoint day_start,
                                       std::string&& text) {
  // The file text becomes the day arena outright; slicing on '\n' is the
  // only pass over the bytes (empty lines are skipped, as before).
  ingest_day(day_start,
             logsys::DayBuffer::from_text(day_start, std::move(text)));
}

void AnalysisPipeline::ingest_log_text(common::TimePoint day_start,
                                       std::string_view text) {
  ingest_log_text(day_start, std::string(text));
}

bool AnalysisPipeline::ingest_accounting_line(std::string_view line) {
  if (finished_) throw std::logic_error("pipeline: ingest after finish()");
  const auto trimmed = common::trim(line);
  if (trimmed.empty()) return true;
  m_.accounting_lines->inc();
  if (trimmed == slurm::accounting_header()) return true;
  auto rec = slurm::parse_accounting_line(trimmed, topo_);
  if (!rec.ok()) {
    m_.accounting_errors->inc();
    return false;
  }
  jobs_.add(rec.value());
  return true;
}

void AnalysisPipeline::finish() {
  if (finished_) return;
  finished_ = true;
  OBS_SPAN("pipeline.finish");
  if (pool_) {
    flush_pending_days();
    pool_->parallel_for(shard_coalescers_.size(),
                        [&](std::size_t s, std::size_t) {
                          shard_coalescers_[s]->flush();
                        });
    for (std::size_t s = 0; s < shard_coalescers_.size(); ++s) {
      errors_.insert(errors_.end(), shard_errors_[s].begin(),
                     shard_errors_[s].end());
      m_.out_of_order->add(shard_coalescers_[s]->out_of_order());
      shard_errors_[s].clear();
      shard_errors_[s].shrink_to_fit();
    }
  } else {
    coalescer_->flush();
    m_.out_of_order->add(coalescer_->out_of_order());
  }
  // error_before is a total order on the data (no distinct errors tie), so
  // the sorted sequence — and every downstream artifact — is identical no
  // matter how the errors were produced or interleaved upstream.
  std::sort(errors_.begin(), errors_.end(), error_before);
  // Lifecycle ties (same second) keep ingestion order in both modes: the
  // pre-sort sequence is identical (day order, within-day order) and
  // stable_sort preserves it.
  std::stable_sort(lifecycle_.begin(), lifecycle_.end(),
                   [](const LifecycleRecord& a, const LifecycleRecord& b) {
                     return a.time < b.time;
                   });
}

AnalysisPipeline::Counters AnalysisPipeline::counters() const {
  Counters c;
  c.log_lines = m_.log_lines->value();
  c.xid_records = m_.xid_records->value();
  c.lifecycle_records = m_.lifecycle_records->value();
  c.rejected_lines = m_.rejected_lines->value();
  c.unknown_hosts = m_.unknown_hosts->value();
  c.accounting_lines = m_.accounting_lines->value();
  c.accounting_errors = m_.accounting_errors->value();
  c.out_of_order_observations = m_.out_of_order->value();
  return c;
}

ErrorStats AnalysisPipeline::error_stats() const {
  OBS_SPAN("stage3.error_stats");
  ErrorStatsConfig cfg;
  cfg.node_count = topo_.node_count();
  cfg.outlier_share = cfg_.outlier_share;
  cfg.outlier_min = cfg_.outlier_min;
  return compute_error_stats(errors_, cfg_.periods, cfg);
}

JobStats AnalysisPipeline::job_stats() const {
  OBS_SPAN("stage3.job_stats");
  return compute_job_stats(jobs_, cfg_.periods.whole());
}

JobStats AnalysisPipeline::job_stats(const Period& w) const {
  OBS_SPAN("stage3.job_stats");
  return compute_job_stats(jobs_, w);
}

JobImpact AnalysisPipeline::job_impact() const {
  OBS_SPAN("stage3.job_impact");
  JobImpactConfig cfg;
  cfg.window = cfg_.attribution_window;
  cfg.period = cfg_.periods.op;
  cfg.attribution = cfg_.attribution;
  const auto t0 = std::chrono::steady_clock::now();
  ExposureJoinStats join;
  auto out = compute_job_impact(jobs_, errors_, cfg, pool_.get(), &join);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  m_.stage3_join_us->observe(
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              elapsed)
                              .count()) /
      1000.0);
  m_.stage3_exposures->add(join.total_exposed());
  for (std::size_t s = 0; s < join.shards.size(); ++s) {
    const auto& sm = stage3_shard_metrics_[s % stage3_shard_metrics_.size()];
    sm.jobs->add(join.shards[s].jobs_scanned);
    sm.exposed->add(join.shards[s].jobs_exposed);
  }
  return out;
}

AvailabilityStats AnalysisPipeline::availability() const {
  OBS_SPAN("stage3.availability");
  AvailabilityConfig cfg;
  cfg.period = cfg_.periods.op;
  cfg.node_count = topo_.node_count();
  return compute_availability(lifecycle_, cfg, pool_.get());
}

double AnalysisPipeline::mttf_estimate_h() const {
  const auto stats = error_stats();
  return stats.total.op.mtbe_per_node_h;
}

}  // namespace gpures::analysis
