#include "analysis/pipeline.h"

#include <algorithm>
#include <stdexcept>

#include "common/strings.h"
#include "slurm/accounting.h"

namespace gpures::analysis {

AnalysisPipeline::AnalysisPipeline(const cluster::Topology& topo,
                                   PipelineConfig cfg)
    : topo_(topo), cfg_(cfg) {
  if (cfg_.use_regex_parser) {
    parser_ = std::make_unique<RegexLineParser>();
  } else {
    parser_ = std::make_unique<FastLineParser>();
  }
  coalescer_ = std::make_unique<Coalescer>(
      cfg_.coalescer,
      [this](const CoalescedError& e) { errors_.push_back(e); });
}

void AnalysisPipeline::ingest_log_day(common::TimePoint day_start,
                                      std::span<const logsys::RawLine> lines) {
  if (finished_) throw std::logic_error("pipeline: ingest after finish()");
  for (const auto& l : lines) {
    ++counters_.log_lines;
    auto parsed = parser_->parse(l.text, day_start);
    if (!parsed) {
      ++counters_.rejected_lines;
      continue;
    }
    if (auto* xrec = std::get_if<XidRecord>(&*parsed)) {
      const auto node = topo_.node_index(xrec->host);
      if (!node) {
        ++counters_.unknown_hosts;
        continue;
      }
      const auto slot = topo_.slot_for_pci(*node, xrec->pci);
      if (!slot) {
        ++counters_.unknown_hosts;
        continue;
      }
      ++counters_.xid_records;
      XidObservation obs;
      obs.time = xrec->time;
      obs.gpu = {*node, *slot};
      obs.xid = xrec->xid;
      coalescer_->add(obs);
    } else if (auto* lrec = std::get_if<LifecycleRecord>(&*parsed)) {
      if (!topo_.node_index(lrec->host)) {
        ++counters_.unknown_hosts;
        continue;
      }
      ++counters_.lifecycle_records;
      lifecycle_.push_back(std::move(*lrec));
    }
  }
}

void AnalysisPipeline::ingest_log_text(common::TimePoint day_start,
                                       std::string_view text) {
  std::vector<logsys::RawLine> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) nl = text.size();
    if (nl > start) {
      lines.push_back(
          logsys::RawLine{day_start, std::string(text.substr(start, nl - start))});
    }
    start = nl + 1;
  }
  ingest_log_day(day_start, lines);
}

void AnalysisPipeline::ingest_accounting_line(std::string_view line) {
  if (finished_) throw std::logic_error("pipeline: ingest after finish()");
  const auto trimmed = common::trim(line);
  if (trimmed.empty()) return;
  ++counters_.accounting_lines;
  if (trimmed == slurm::accounting_header()) return;
  auto rec = slurm::parse_accounting_line(trimmed, topo_);
  if (!rec.ok()) {
    ++counters_.accounting_errors;
    return;
  }
  jobs_.add(rec.value());
}

void AnalysisPipeline::finish() {
  if (finished_) return;
  finished_ = true;
  coalescer_->flush();
  std::sort(errors_.begin(), errors_.end(),
            [](const CoalescedError& a, const CoalescedError& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.gpu != b.gpu) return a.gpu < b.gpu;
              return xid::to_number(a.code) < xid::to_number(b.code);
            });
  std::sort(lifecycle_.begin(), lifecycle_.end(),
            [](const LifecycleRecord& a, const LifecycleRecord& b) {
              return a.time < b.time;
            });
}

ErrorStats AnalysisPipeline::error_stats() const {
  ErrorStatsConfig cfg;
  cfg.node_count = topo_.node_count();
  cfg.outlier_share = cfg_.outlier_share;
  cfg.outlier_min = cfg_.outlier_min;
  return compute_error_stats(errors_, cfg_.periods, cfg);
}

JobStats AnalysisPipeline::job_stats() const {
  return compute_job_stats(jobs_, cfg_.periods.whole());
}

JobStats AnalysisPipeline::job_stats(const Period& w) const {
  return compute_job_stats(jobs_, w);
}

JobImpact AnalysisPipeline::job_impact() const {
  JobImpactConfig cfg;
  cfg.window = cfg_.attribution_window;
  cfg.period = cfg_.periods.op;
  cfg.attribution = cfg_.attribution;
  return compute_job_impact(jobs_, errors_, cfg);
}

AvailabilityStats AnalysisPipeline::availability() const {
  AvailabilityConfig cfg;
  cfg.period = cfg_.periods.op;
  cfg.node_count = topo_.node_count();
  return compute_availability(lifecycle_, cfg);
}

double AnalysisPipeline::mttf_estimate_h() const {
  const auto stats = error_stats();
  return stats.total.op.mtbe_per_node_h;
}

}  // namespace gpures::analysis
