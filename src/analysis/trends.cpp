#include "analysis/trends.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <functional>

#include "common/stats.h"
#include "common/table.h"

namespace gpures::analysis {

namespace {

/// Month key = year * 12 + (month - 1).
int month_key(common::TimePoint t) {
  const auto c = common::to_calendar(t);
  return c.year * 12 + (c.month - 1);
}

double days_in_month_of(int key) {
  return common::days_in_month(key / 12, key % 12 + 1);
}

}  // namespace

std::string MonthlyPoint::label() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d", year, month);
  return buf;
}

std::vector<MonthlyPoint> monthly_series(
    const std::vector<CoalescedError>& errors, const Period& window,
    std::optional<xid::Code> family) {
  std::map<int, std::uint64_t> by_month;
  for (const auto& e : errors) {
    if (!window.contains(e.time)) continue;
    if (family && e.code != *family) continue;
    ++by_month[month_key(e.time)];
  }
  std::vector<MonthlyPoint> out;
  if (by_month.empty()) return out;
  // Include empty months between the first and last observed ones.
  const int first = by_month.begin()->first;
  const int last = by_month.rbegin()->first;
  for (int k = first; k <= last; ++k) {
    MonthlyPoint p;
    p.year = k / 12;
    p.month = k % 12 + 1;
    const auto it = by_month.find(k);
    p.count = it == by_month.end() ? 0 : it->second;
    p.errors_per_day = static_cast<double>(p.count) / days_in_month_of(k);
    out.push_back(p);
  }
  return out;
}

Burstiness compute_burstiness(const std::vector<CoalescedError>& errors,
                              const Period& window, xid::Code family) {
  std::vector<common::TimePoint> times;
  for (const auto& e : errors) {
    if (window.contains(e.time) && e.code == family) times.push_back(e.time);
  }
  std::sort(times.begin(), times.end());

  Burstiness b;
  b.events = times.size();
  if (times.size() < 3) return b;

  common::RunningStats gaps;
  for (std::size_t i = 1; i < times.size(); ++i) {
    gaps.add(common::to_hours(times[i] - times[i - 1]));
  }
  b.mean_interarrival_h = gaps.mean();
  b.interarrival_cv = gaps.mean() > 0.0 ? gaps.stddev() / gaps.mean() : 0.0;
  b.burstiness_index =
      (b.interarrival_cv - 1.0) / (b.interarrival_cv + 1.0);

  // Fano factor over daily bins covering the window.
  std::map<std::int64_t, std::uint64_t> daily;
  for (const auto t : times) ++daily[common::day_index(t)];
  common::RunningStats counts;
  const std::int64_t first_day = common::day_index(window.begin);
  const std::int64_t last_day = common::day_index(window.end - 1);
  for (std::int64_t d = first_day; d <= last_day; ++d) {
    const auto it = daily.find(d);
    counts.add(it == daily.end() ? 0.0 : static_cast<double>(it->second));
  }
  b.daily_fano = counts.mean() > 0.0 ? counts.variance() / counts.mean() : 0.0;
  return b;
}

SpatialConcentration compute_concentration(
    const std::vector<CoalescedError>& errors, const Period& window,
    std::optional<xid::Code> family) {
  std::map<std::uint64_t, std::uint64_t> per_gpu;
  std::uint64_t total = 0;
  for (const auto& e : errors) {
    if (!window.contains(e.time)) continue;
    if (family && e.code != *family) continue;
    ++per_gpu[xid::gpu_key(e.gpu)];
    ++total;
  }
  SpatialConcentration s;
  s.gpus_affected = per_gpu.size();
  s.events = total;
  if (total == 0 || per_gpu.empty()) return s;

  std::vector<std::uint64_t> counts;
  counts.reserve(per_gpu.size());
  for (const auto& [gpu, n] : per_gpu) counts.push_back(n);
  std::sort(counts.rbegin(), counts.rend());

  const double total_d = static_cast<double>(total);
  s.top1_share = static_cast<double>(counts[0]) / total_d;
  std::uint64_t top5 = 0;
  for (std::size_t i = 0; i < std::min<std::size_t>(5, counts.size()); ++i) {
    top5 += counts[i];
  }
  s.top5_share = static_cast<double>(top5) / total_d;

  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    acc += counts[i];
    if (static_cast<double>(acc) >= 0.8 * total_d) {
      s.gpus_for_80pct = i + 1;
      break;
    }
  }

  // Gini over affected GPUs: G = sum_i (2i - n - 1) x_i / (n * sum x), with
  // x ascending.
  std::sort(counts.begin(), counts.end());
  const double n = static_cast<double>(counts.size());
  double weighted = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    weighted += (2.0 * static_cast<double>(i + 1) - n - 1.0) *
                static_cast<double>(counts[i]);
  }
  s.gini = weighted / (n * total_d);
  return s;
}

PropagationCorrelation compute_propagation(
    const std::vector<CoalescedError>& errors, const Period& window,
    xid::Code trigger, xid::Code effect, common::Duration horizon) {
  // Per-GPU sorted time lists for both families.
  std::map<std::uint64_t, std::vector<common::TimePoint>> triggers;
  std::map<std::uint64_t, std::vector<common::TimePoint>> effects;
  std::uint64_t effect_total = 0;
  for (const auto& e : errors) {
    if (!window.contains(e.time)) continue;
    if (e.code == trigger) triggers[xid::gpu_key(e.gpu)].push_back(e.time);
    if (e.code == effect) {
      effects[xid::gpu_key(e.gpu)].push_back(e.time);
      ++effect_total;
    }
  }
  PropagationCorrelation out;
  std::uint64_t gpus_seen = 0;
  for (auto& [gpu, ts] : triggers) {
    std::sort(ts.begin(), ts.end());
    auto eit = effects.find(gpu);
    if (eit != effects.end()) std::sort(eit->second.begin(), eit->second.end());
    for (const auto t : ts) {
      ++out.trigger_events;
      if (eit == effects.end()) continue;
      const auto& ev = eit->second;
      const auto lo = std::lower_bound(ev.begin(), ev.end(), t + 1);
      if (lo != ev.end() && *lo <= t + horizon) ++out.followed;
    }
    ++gpus_seen;
  }
  (void)gpus_seen;
  if (out.trigger_events > 0) {
    out.p_follow = static_cast<double>(out.followed) /
                   static_cast<double>(out.trigger_events);
  }
  // Baseline: effect events are spread over (gpus in the fleet x window);
  // approximate the per-GPU rate using the number of GPUs that logged ANY
  // tracked error as the fleet proxy is biased, so use the effect rate over
  // the whole window per *effect-affected* population size — conservative:
  // rate per GPU-hour = effect_total / (window_hours * fleet), with fleet
  // estimated as the union of GPUs seen in either family.
  std::map<std::uint64_t, bool> fleet;
  for (const auto& e : errors) {
    if (window.contains(e.time)) fleet[xid::gpu_key(e.gpu)] = true;
  }
  const double fleet_n = std::max<std::size_t>(fleet.size(), 1);
  const double rate_per_gpu_hour =
      static_cast<double>(effect_total) /
      (window.hours() * fleet_n);
  out.p_baseline =
      1.0 - std::exp(-rate_per_gpu_hour * common::to_hours(horizon));
  out.lift = out.p_baseline > 0.0 ? out.p_follow / out.p_baseline : 0.0;
  return out;
}

std::string render_trends(const std::vector<CoalescedError>& errors,
                          const StudyPeriods& periods,
                          common::ThreadPool* pool) {
  std::string out;
  char buf[256];

  // Every statistic below reads the shared error vector independently, so
  // the computations run as one task list (serial without a pool) and the
  // report is assembled afterwards in fixed order — the rendered bytes are
  // identical either way.
  constexpr xid::Code kBurstFamilies[] = {
      xid::Code::kMmuError, xid::Code::kNvlinkError, xid::Code::kGspRpcTimeout,
      xid::Code::kPmuSpiFailure};
  constexpr xid::Code kConcFamilies[] = {
      xid::Code::kMmuError, xid::Code::kNvlinkError, xid::Code::kGspRpcTimeout,
      xid::Code::kUncontainedEccError};
  std::vector<MonthlyPoint> gsp;
  std::array<Burstiness, std::size(kBurstFamilies)> bursts;
  std::array<SpatialConcentration, std::size(kConcFamilies)> concs;
  PropagationCorrelation prop;
  std::vector<std::function<void()>> tasks;
  tasks.push_back([&] {
    gsp = monthly_series(errors, periods.whole(), xid::Code::kGspRpcTimeout);
  });
  for (std::size_t i = 0; i < std::size(kBurstFamilies); ++i) {
    tasks.push_back([&, i] {
      bursts[i] = compute_burstiness(errors, periods.op, kBurstFamilies[i]);
    });
  }
  for (std::size_t i = 0; i < std::size(kConcFamilies); ++i) {
    tasks.push_back([&, i] {
      concs[i] =
          compute_concentration(errors, periods.whole(), kConcFamilies[i]);
    });
  }
  tasks.push_back([&] {
    prop = compute_propagation(errors, periods.whole(),
                               xid::Code::kPmuSpiFailure,
                               xid::Code::kMmuError);
  });
  if (pool != nullptr) {
    pool->parallel_for(tasks.size(),
                       [&](std::size_t i, std::size_t) { tasks[i](); });
  } else {
    for (auto& t : tasks) t();
  }

  // --- GSP monthly ramp (finding ii: degradation under production load) ---
  out += "GSP errors per month (the production-load degradation ramp):\n";
  double peak = 1.0;
  for (const auto& p : gsp) {
    peak = std::max(peak, p.errors_per_day);
  }
  for (std::size_t i = 0; i < gsp.size(); i += std::max<std::size_t>(1, gsp.size() / 24)) {
    const auto& p = gsp[i];
    const auto bar = static_cast<int>(40.0 * p.errors_per_day / peak);
    std::snprintf(buf, sizeof(buf), "  %s %6.2f/day |%s\n", p.label().c_str(),
                  p.errors_per_day, std::string(static_cast<std::size_t>(bar), '#').c_str());
    out += buf;
  }

  // --- burstiness table ---
  common::AsciiTable bt({"Family", "events (op)", "mean gap (h)",
                         "inter-arrival CV", "daily Fano", "burstiness B"});
  for (std::size_t i = 0; i < std::size(kBurstFamilies); ++i) {
    const auto code = kBurstFamilies[i];
    const auto& b = bursts[i];
    const auto d = xid::describe(code);
    bt.add_row({std::string(d->abbrev), common::fmt_int(b.events),
                common::fmt_fixed(b.mean_interarrival_h, 2),
                common::fmt_fixed(b.interarrival_cv, 2),
                common::fmt_fixed(b.daily_fano, 2),
                common::fmt_fixed(b.burstiness_index, 2)});
  }
  out += "\nArrival burstiness (CV=1, Fano=1, B=0 for Poisson):\n";
  out += bt.render();

  // --- spatial concentration ---
  common::AsciiTable st({"Family", "GPUs affected", "top-1 share %",
                         "top-5 share %", "GPUs for 80%", "Gini"});
  for (std::size_t i = 0; i < std::size(kConcFamilies); ++i) {
    const auto code = kConcFamilies[i];
    const auto& s = concs[i];
    const auto d = xid::describe(code);
    st.add_row({std::string(d->abbrev), common::fmt_int(s.gpus_affected),
                common::fmt_pct(s.top1_share), common::fmt_pct(s.top5_share),
                common::fmt_int(s.gpus_for_80pct),
                common::fmt_fixed(s.gini, 2)});
  }
  out += "\nSpatial concentration across GPUs (whole study):\n";
  out += st.render();

  // --- PMU -> MMU propagation (finding iii), recovered from logs alone ---
  std::snprintf(buf, sizeof(buf),
                "\nPMU -> MMU propagation: %llu of %llu PMU errors were "
                "followed by an MMU error on the same GPU within 30 min "
                "(P=%.2f vs baseline %.4f, lift %.0fx)\n",
                static_cast<unsigned long long>(prop.followed),
                static_cast<unsigned long long>(prop.trigger_events),
                prop.p_follow, prop.p_baseline, prop.lift);
  out += buf;
  return out;
}

}  // namespace gpures::analysis
