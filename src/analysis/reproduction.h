// Reproduction scorecard: a machine-checkable comparison of measured
// statistics against the paper's published values (paper_reference.h).
//
// Each metric records paper value, measured value, and their ratio; a metric
// "matches in shape" when the ratio stays inside a tolerance band.  Counts
// of rare events get wide bands (Poisson scatter); probabilities and the
// headline ratios get tight ones.  The scorecard is what EXPERIMENTS.md
// tabulates by hand, computed programmatically.
#pragma once

#include <string>
#include <vector>

#include "analysis/availability.h"
#include "analysis/error_stats.h"
#include "analysis/job_impact.h"
#include "analysis/job_stats.h"

namespace gpures::analysis {

struct ScoreRow {
  std::string metric;
  double paper = 0.0;
  double ours = 0.0;
  /// Allowed ratio band: matches iff ours/paper in [1/tolerance, tolerance]
  /// (for paper == 0, matches iff ours == 0).
  double tolerance = 2.0;

  double ratio() const;
  bool matches() const;
};

struct Scorecard {
  std::vector<ScoreRow> rows;

  std::size_t matched() const;
  std::size_t total() const { return rows.size(); }
  /// Fraction of metrics inside their band.
  double score() const;
  std::string render() const;
};

/// Build the scorecard from whatever artifacts are available (pass nullptr
/// to skip a section).  Only metrics computable at full Delta scale are
/// scored — callers running scaled-down campaigns should score error_stats
/// only (counts are scale-dependent, probabilities are not).
Scorecard score_reproduction(const ErrorStats* error_stats,
                             const JobImpact* job_impact,
                             const JobStats* job_stats,
                             const AvailabilityStats* availability,
                             double mttf_h);

}  // namespace gpures::analysis
