#include "analysis/reports.h"

#include <cmath>
#include <cstdio>

#include "common/histogram.h"
#include "common/table.h"

namespace gpures::analysis {

namespace {

using common::AsciiTable;
using common::fmt_fixed;
using common::fmt_int;
using common::fmt_mtbe;
using common::fmt_pct;

std::string row_label(xid::Code code) {
  const auto d = xid::describe(code);
  if (!d) return "XID " + std::to_string(xid::to_number(code));
  std::string label = "XID ";
  switch (code) {
    case xid::Code::kGspRpcTimeout: label += "119/120"; break;
    case xid::Code::kPmuSpiFailure: label += "122/123"; break;
    default: label += std::to_string(xid::to_number(code)); break;
  }
  label += " ";
  label += d->abbrev;
  return label;
}

void add_stats_row(AsciiTable& t, const std::string& label,
                   const CodeStats& cs, const std::string& category) {
  t.add_row({label, category, fmt_int(cs.pre.count), fmt_int(cs.op.count),
             fmt_mtbe(cs.pre.mtbe_system_h), fmt_mtbe(cs.pre.mtbe_per_node_h),
             fmt_mtbe(cs.op.mtbe_system_h), fmt_mtbe(cs.op.mtbe_per_node_h)});
}

}  // namespace

std::string render_table1(const ErrorStats& stats) {
  AsciiTable t({"Event", "Category", "Pre-op count", "Op count",
                "Pre sys MTBE(h)", "Pre node MTBE(h)", "Op sys MTBE(h)",
                "Op node MTBE(h)"});
  t.set_align(1, common::Align::kLeft);
  for (const auto& cs : stats.by_code) {
    const auto d = xid::describe(cs.code);
    add_stats_row(t, row_label(cs.code), cs,
                  d ? std::string(xid::to_string(d->category)) : "?");
  }
  t.add_separator();
  add_stats_row(t, "Uncorrectable ECC (RRE+RRF)", stats.uncorrectable_ecc,
                "Memory");
  t.add_separator();
  for (const auto& [cat, cs] : stats.by_category) {
    add_stats_row(t, std::string("All ") + std::string(xid::to_string(cat)),
                  cs, std::string(xid::to_string(cat)));
  }
  add_stats_row(t, "All non-memory (HW+NVLink)", stats.non_memory, "-");
  t.add_separator();
  add_stats_row(t, "TOTAL (outliers excluded)", stats.total, "-");
  add_stats_row(t, "TOTAL (incl. outliers)", stats.total_with_outliers, "-");
  return t.render();
}

std::string render_findings(const ErrorStats& stats) {
  std::string out;
  char buf[256];

  std::snprintf(buf, sizeof(buf),
                "Per-node MTBE: pre-op %.0f h -> op %.0f h (%.0f%% degradation;"
                " paper: 199 h -> 154 h, 23%%)\n",
                stats.total.pre.mtbe_per_node_h, stats.total.op.mtbe_per_node_h,
                stats.mtbe_degradation_fraction() * 100.0);
  out += buf;

  std::snprintf(buf, sizeof(buf),
                "Memory vs GPU-hardware per-node MTBE ratio (op): %.0fx "
                "(paper: ~160x; %.0f h vs %.0f h)\n",
                stats.memory_reliability_ratio_op(),
                stats.by_category.count(xid::Category::kMemory)
                    ? stats.by_category.at(xid::Category::kMemory)
                          .op.mtbe_per_node_h
                    : 0.0,
                stats.non_memory.op.mtbe_per_node_h);
  out += buf;

  std::snprintf(buf, sizeof(buf),
                "GSP per-node MTBE degradation pre->op: %.1fx (paper: 5.6x)\n",
                stats.gsp_degradation_ratio());
  out += buf;

  const double dedup_pre =
      stats.total_with_outliers.pre.count
          ? static_cast<double>(stats.raw_lines_pre) /
                static_cast<double>(stats.total_with_outliers.pre.count)
          : 0.0;
  const double dedup_op =
      stats.total_with_outliers.op.count
          ? static_cast<double>(stats.raw_lines_op) /
                static_cast<double>(stats.total_with_outliers.op.count)
          : 0.0;
  std::snprintf(buf, sizeof(buf),
                "Coalescing: %s raw pre-op lines -> %s errors (x%.1f); "
                "%s raw op lines -> %s errors (x%.1f)\n",
                fmt_int(stats.raw_lines_pre).c_str(),
                fmt_int(stats.total_with_outliers.pre.count).c_str(), dedup_pre,
                fmt_int(stats.raw_lines_op).c_str(),
                fmt_int(stats.total_with_outliers.op.count).c_str(), dedup_op);
  out += buf;

  for (const auto& o : stats.outliers) {
    std::snprintf(buf, sizeof(buf),
                  "Outlier: GPU (node %d, slot %d) produced %s %s errors "
                  "(%.0f%% of the family) in the %s period\n",
                  o.gpu.node, o.gpu.slot, fmt_int(o.count).c_str(),
                  std::string(row_label(o.code)).c_str(), o.share * 100.0,
                  to_string(o.period).c_str());
    out += buf;
  }
  return out;
}

std::string render_table2(const JobImpact& impact) {
  AsciiTable t({"XID", "GPU Error", "# GPU-failed jobs", "# Jobs encountering",
                "Failure probability (%)", "95% CI"});
  t.set_align(1, common::Align::kLeft);
  for (const auto& row : impact.rows) {
    if (row.encountering_jobs == 0) continue;
    const auto d = xid::describe(row.code);
    char ci[48];
    std::snprintf(ci, sizeof(ci), "[%.1f, %.1f]", row.ci.lo * 100.0,
                  row.ci.hi * 100.0);
    t.add_row({std::to_string(xid::to_number(row.code)),
               d ? std::string(d->abbrev) : "?", fmt_int(row.failed_jobs),
               fmt_int(row.encountering_jobs),
               fmt_pct(row.failure_probability), ci});
  }
  std::string out = t.render();
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "Total GPU-failed jobs: %s of %s analyzed (%s in any "
                "failure state)\n",
                fmt_int(impact.gpu_failed_jobs).c_str(),
                fmt_int(impact.jobs_analyzed).c_str(),
                fmt_int(impact.failed_jobs_total).c_str());
  out += buf;
  return out;
}

std::string render_table3(const JobStats& stats) {
  AsciiTable t({"GPU Count", "Count", "(%)", "Elapsed mean (min)", "P50",
                "P99", "ML GPU-hrs (k)", "Non-ML GPU-hrs (k)"});
  for (const auto& b : stats.buckets) {
    t.add_row({b.bucket.label, fmt_int(b.count), fmt_fixed(b.share * 100, 3),
               fmt_fixed(b.mean_minutes, 2), fmt_fixed(b.p50_minutes, 2),
               fmt_fixed(b.p99_minutes, 2),
               fmt_fixed(b.ml_gpu_hours / 1000.0, 1),
               fmt_fixed(b.non_ml_gpu_hours / 1000.0, 1)});
  }
  std::string out = t.render();
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "Jobs: %s; success rate %.2f%% (paper: 74.68%%); single-GPU "
                "%.2f%% / 2-4 GPU %.2f%% / >4 GPU %.2f%% "
                "(paper: 69.86 / 27.31 / 2.83)\n",
                fmt_int(stats.total_jobs).c_str(), stats.success_rate * 100.0,
                stats.single_gpu_share * 100.0,
                stats.small_multi_gpu_share * 100.0,
                stats.large_gpu_share * 100.0);
  out += buf;
  return out;
}

std::string render_fig2(const AvailabilityStats& stats, double mttf_h) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "Unavailability intervals: %zu; mean %.2f h (paper: 0.88 h); "
                "P50 %.2f h; P99 %.2f h; total %.0f node-hours lost "
                "(paper: ~5,700)\n",
                stats.intervals.size(), stats.duration_hours.mean,
                stats.duration_hours.p50, stats.duration_hours.p99,
                stats.total_node_hours_lost);
  out += buf;

  // Histogram of durations up to 4 hours (the bulk), as in Fig. 2.
  common::Histogram h(0.0, 4.0, 16);
  for (const auto& iv : stats.intervals) h.add(iv.hours());
  out += "Unavailability time distribution (hours):\n";
  out += h.render(44);

  out += "ECDF (hours -> cumulative fraction):\n";
  for (std::size_t i = 0; i < stats.ecdf.size(); i += 6) {
    std::snprintf(buf, sizeof(buf), "  %.3f h -> %.3f\n", stats.ecdf[i].x,
                  stats.ecdf[i].p);
    out += buf;
  }

  const double avail = stats.availability(mttf_h);
  std::snprintf(buf, sizeof(buf),
                "MTTF %.0f h, MTTR %.2f h -> availability %.4f%% "
                "(paper: 99.5%%), downtime %.1f min/node/day (paper: ~7)\n",
                mttf_h, stats.mttr_h, avail * 100.0,
                AvailabilityStats::downtime_minutes_per_day(avail));
  out += buf;
  return out;
}

}  // namespace gpures::analysis
