#include "analysis/data_quality.h"

#include "common/json.h"

namespace gpures::analysis {

std::string_view to_string(IngestPolicy policy) {
  switch (policy) {
    case IngestPolicy::kStrict:
      return "strict";
    case IngestPolicy::kLenient:
      return "lenient";
  }
  return "unknown";
}

std::optional<IngestPolicy> parse_ingest_policy(std::string_view name) {
  if (name == "strict") return IngestPolicy::kStrict;
  if (name == "lenient") return IngestPolicy::kLenient;
  return std::nullopt;
}

bool DataQualityReport::clean() const {
  return quarantined_lines() == 0 && missing_days.empty() &&
         skipped_days.empty() && stray_files.empty() &&
         degraded_sources.empty() && zero_byte_days == 0 &&
         accounting_present && accounting_error.empty() &&
         accounting_rows_rejected == 0;
}

std::string DataQualityReport::to_json() const {
  common::JsonWriter w;
  w.begin_object();
  w.kv("policy", to_string(policy));
  w.kv("error_budget", error_budget);
  w.kv("clean", clean());

  w.key("coverage");
  w.begin_object();
  w.kv("days_expected", days_expected);
  w.kv("days_present", days_present);
  w.kv("zero_byte_days", zero_byte_days);
  w.key("missing_days");
  w.begin_array();
  for (const auto& d : missing_days) w.value(d);
  w.end_array();
  w.key("skipped_days");
  w.begin_array();
  for (const auto& d : skipped_days) {
    w.begin_object();
    w.kv("date", d.date);
    w.kv("reason", d.reason);
    w.end_object();
  }
  w.end_array();
  w.key("stray_files");
  w.begin_array();
  for (const auto& f : stray_files) w.value(f);
  w.end_array();
  // Emitted only when present so batch-load quality documents are
  // byte-identical to the pre-serve schema.
  if (!degraded_sources.empty()) {
    w.key("degraded_sources");
    w.begin_array();
    for (const auto& d : degraded_sources) {
      w.begin_object();
      w.kv("name", d.name);
      w.kv("reason", d.reason);
      w.kv("bytes_ingested", d.bytes_ingested);
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();

  w.key("lines");
  w.begin_object();
  w.kv("kept", lines_kept);
  w.kv("kept_bytes", bytes_kept);
  w.kv("quarantined", quarantined_lines());
  w.kv("quarantined_bytes", quarantined_bytes());
  w.kv("binary", binary_lines);
  w.kv("binary_bytes", binary_bytes);
  w.kv("overlong", overlong_lines);
  w.kv("overlong_bytes", overlong_bytes);
  w.kv("torn", torn_lines);
  w.kv("torn_bytes", torn_bytes);
  w.kv("crlf_bytes_stripped", crlf_bytes);
  w.end_object();

  w.key("accounting");
  w.begin_object();
  w.kv("present", accounting_present);
  if (!accounting_error.empty()) w.kv("error", accounting_error);
  w.kv("rows_kept", accounting_rows_kept);
  w.kv("rows_rejected", accounting_rows_rejected);
  w.kv("bytes_rejected", accounting_bytes_rejected);
  w.end_object();

  w.key("days");
  w.begin_array();
  for (const auto& d : days) {
    w.begin_object();
    w.kv("date", d.date);
    w.kv("file_bytes", d.file_bytes);
    w.kv("lines_kept", d.lines_kept);
    w.kv("bytes_kept", d.bytes_kept);
    w.kv("binary", d.binary_lines);
    w.kv("binary_bytes", d.binary_bytes);
    w.kv("overlong", d.overlong_lines);
    w.kv("overlong_bytes", d.overlong_bytes);
    w.kv("torn", d.torn_lines);
    w.kv("torn_bytes", d.torn_bytes);
    w.kv("crlf_bytes_stripped", d.crlf_bytes);
    w.end_object();
  }
  w.end_array();

  w.end_object();
  return std::move(w).str();
}

std::string DataQualityReport::to_markdown() const {
  std::string out;
  out += "## Data quality\n\n";
  out += "Ingestion policy: `";
  out += to_string(policy);
  out += "`";
  if (error_budget > 0) {
    out += " (per-file error budget " + std::to_string(error_budget) + ")";
  }
  out += clean() ? " — input was clean.\n\n" : " — input had defects.\n\n";

  out += "| metric | value |\n|---|---|\n";
  out += "| day files ingested | " + std::to_string(days_present) + " / " +
         (days_expected > 0 ? std::to_string(days_expected) : "?") +
         " expected |\n";
  out += "| missing days | " + std::to_string(missing_days.size()) + " |\n";
  out += "| unreadable days skipped | " + std::to_string(skipped_days.size()) +
         " |\n";
  out += "| zero-byte days | " + std::to_string(zero_byte_days) + " |\n";
  out += "| stray files in syslog/ | " + std::to_string(stray_files.size()) +
         " |\n";
  out += "| log lines kept | " + std::to_string(lines_kept) + " |\n";
  out += "| log lines quarantined | " + std::to_string(quarantined_lines()) +
         " (" + std::to_string(quarantined_bytes()) + " bytes) |\n";
  out += "| — binary garbage | " + std::to_string(binary_lines) + " |\n";
  out += "| — overlong | " + std::to_string(overlong_lines) + " |\n";
  out += "| — torn at EOF | " + std::to_string(torn_lines) + " |\n";
  out += "| CRLF terminator bytes stripped | " + std::to_string(crlf_bytes) +
         " |\n";
  out += "| accounting dump | ";
  out += accounting_present ? "present" : "missing";
  if (!accounting_error.empty()) out += " (" + accounting_error + ")";
  out += " |\n";
  out += "| accounting rows kept | " + std::to_string(accounting_rows_kept) +
         " |\n";
  out += "| accounting rows rejected | " +
         std::to_string(accounting_rows_rejected) + " (" +
         std::to_string(accounting_bytes_rejected) + " bytes) |\n";

  if (!missing_days.empty()) {
    out += "\nMissing days:";
    for (const auto& d : missing_days) out += " " + d;
    out += "\n";
  }
  if (!skipped_days.empty()) {
    out += "\nSkipped days:\n";
    for (const auto& d : skipped_days) {
      out += "- " + d.date + ": " + d.reason + "\n";
    }
  }
  if (!degraded_sources.empty()) {
    out += "\nDegraded sources (retry budget exhausted):\n";
    for (const auto& d : degraded_sources) {
      out += "- " + d.name + ": " + d.reason + " (" +
             std::to_string(d.bytes_ingested) + " bytes ingested)\n";
    }
  }
  return out;
}

}  // namespace gpures::analysis
