// Measurement periods: the study splits its window into a pre-operational
// (bring-up and testing) period and an operational (production) period and
// reports every statistic per period.
#pragma once

#include <optional>
#include <string>

#include "common/time.h"

namespace gpures::analysis {

enum class PeriodId { kPreOp, kOp };

struct Period {
  common::TimePoint begin = 0;
  common::TimePoint end = 0;  ///< exclusive

  bool contains(common::TimePoint t) const { return t >= begin && t < end; }
  double hours() const { return common::to_hours(end - begin); }
  double days() const { return common::to_days(end - begin); }
};

struct StudyPeriods {
  Period pre;  ///< pre-operational
  Period op;   ///< operational

  /// The paper's window: 2022-01-01 .. 2022-10-01 .. 2025-03-16.
  static StudyPeriods delta();

  /// Build from boundaries; throws std::invalid_argument on bad ordering.
  static StudyPeriods make(common::TimePoint begin, common::TimePoint op_begin,
                           common::TimePoint end);

  std::optional<PeriodId> which(common::TimePoint t) const;
  Period whole() const { return {pre.begin, op.end}; }
};

std::string to_string(PeriodId p);

}  // namespace gpures::analysis
