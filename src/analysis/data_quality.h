// Data-quality accounting for dataset ingestion.
//
// The reproduced study ran over three years of production syslogs; real
// logs arrive truncated, interleaved with garbage, and partially missing.
// The loader therefore runs under an explicit policy:
//
//  * strict  — any corrupt input fails the run immediately with a
//              structured error naming file, line, and byte offset;
//  * lenient — corrupt lines are quarantined, unreadable days are skipped
//              as coverage gaps, and the run completes with a
//              DataQualityReport that accounts for every dropped line and
//              byte by category.  A per-day error budget bounds how much
//              corruption a lenient run will absorb before aborting.
//
// On clean input the two policies are byte-identical to each other and to
// the unhardened loader — the screen only ever matches corruption, never
// well-formed lines (see DESIGN.md "Quarantine semantics").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace gpures::analysis {

enum class IngestPolicy : std::uint8_t {
  kStrict,   ///< fail fast on the first corrupt input
  kLenient,  ///< quarantine, record coverage gaps, enforce the error budget
};

std::string_view to_string(IngestPolicy policy);
std::optional<IngestPolicy> parse_ingest_policy(std::string_view name);

/// Per-day ingestion tally.  Only days with something to report (quarantined
/// lines, zero bytes, or CRLF terminators) are kept in the report's `days`
/// list.
struct DayQuality {
  std::string date;  ///< YYYY-MM-DD
  std::uint64_t file_bytes = 0;
  std::uint64_t lines_kept = 0;
  std::uint64_t bytes_kept = 0;
  std::uint64_t binary_lines = 0;
  std::uint64_t binary_bytes = 0;
  std::uint64_t overlong_lines = 0;
  std::uint64_t overlong_bytes = 0;
  std::uint64_t torn_lines = 0;
  std::uint64_t torn_bytes = 0;
  std::uint64_t crlf_bytes = 0;  ///< '\r' terminator bytes stripped (lossless)

  std::uint64_t quarantined_lines() const {
    return binary_lines + overlong_lines + torn_lines;
  }
  std::uint64_t quarantined_bytes() const {
    return binary_bytes + overlong_bytes + torn_bytes;
  }
};

/// A day the lenient loader could not read at all (mid-read I/O failure).
struct SkippedDay {
  std::string date;
  std::string reason;
};

/// A follow-mode source the serve daemon quarantined after exhausting its
/// retry budget.  Unlike a SkippedDay, a degraded source may have been
/// partially ingested before the fault hit — the bytes already consumed
/// stay in the analysis and are recorded here.
struct DegradedSource {
  std::string name;    ///< file name (day file or slurm_accounting.txt)
  std::string reason;  ///< last I/O error before quarantine
  std::uint64_t bytes_ingested = 0;
};

/// Everything a run dropped or could not see, accounted by category.
/// Serialized as data_quality.json (machine-readable) and as a markdown
/// section of the analysis report (human-readable).
struct DataQualityReport {
  IngestPolicy policy = IngestPolicy::kStrict;
  std::uint64_t error_budget = 0;  ///< per-file quarantine cap; 0 = unlimited

  // ---- coverage ----
  std::uint64_t days_expected = 0;  ///< from the manifest period; 0 = unknown
  std::uint64_t days_present = 0;   ///< day files successfully ingested
  std::uint64_t zero_byte_days = 0;
  std::vector<std::string> missing_days;  ///< expected dates with no file
  std::vector<SkippedDay> skipped_days;   ///< unreadable days (lenient)
  std::vector<std::string> stray_files;   ///< non-day entries in syslog/
  /// Sources quarantined by the serve daemon after retry exhaustion
  /// (follow mode only; always empty for batch loads).
  std::vector<DegradedSource> degraded_sources;

  // ---- line quarantine totals (sum over `days`) ----
  std::uint64_t lines_kept = 0;
  std::uint64_t bytes_kept = 0;
  std::uint64_t binary_lines = 0;
  std::uint64_t binary_bytes = 0;
  std::uint64_t overlong_lines = 0;
  std::uint64_t overlong_bytes = 0;
  std::uint64_t torn_lines = 0;
  std::uint64_t torn_bytes = 0;
  /// '\r' bytes stripped while normalizing CRLF line terminators.  Lossless
  /// (line content is preserved), so it does not affect clean(); reported so
  /// every byte difference between file and arena stays accounted for.
  std::uint64_t crlf_bytes = 0;
  std::vector<DayQuality> days;  ///< days with quarantines/zero bytes/CRLF

  // ---- accounting dump ----
  bool accounting_present = false;
  std::string accounting_error;  ///< read-failure reason (lenient), if any
  std::uint64_t accounting_rows_kept = 0;
  std::uint64_t accounting_rows_rejected = 0;
  std::uint64_t accounting_bytes_rejected = 0;

  std::uint64_t quarantined_lines() const {
    return binary_lines + overlong_lines + torn_lines;
  }
  std::uint64_t quarantined_bytes() const {
    return binary_bytes + overlong_bytes + torn_bytes;
  }
  /// True when nothing was dropped, skipped, or missing.
  bool clean() const;

  /// Machine-readable data_quality.json document.
  std::string to_json() const;
  /// Markdown "Data quality" section for the analysis report.
  std::string to_markdown() const;
};

}  // namespace gpures::analysis
