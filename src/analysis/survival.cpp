#include "analysis/survival.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>

#include "common/table.h"

namespace gpures::analysis {

double KaplanMeier::survival_at(double time_h) const {
  double s = 1.0;
  for (const auto& p : curve) {
    if (p.time_h > time_h) break;
    s = p.survival;
  }
  return s;
}

KaplanMeier km_time_to_first_error(const std::vector<CoalescedError>& errors,
                                   const Period& window,
                                   std::int32_t total_gpus,
                                   common::ThreadPool* pool) {
  // First-error time per GPU.  Parallel mode shards the error list into
  // contiguous chunks and merges per-chunk minima; min over exact integer
  // timestamps is order-independent, so the map is identical to serial.
  std::map<std::uint64_t, common::TimePoint> first;
  const std::size_t shards = pool != nullptr ? pool->size() : 1;
  if (shards > 1) {
    std::vector<std::map<std::uint64_t, common::TimePoint>> partial(shards);
    pool->parallel_for(shards, [&](std::size_t s, std::size_t) {
      const std::size_t lo = errors.size() * s / shards;
      const std::size_t hi = errors.size() * (s + 1) / shards;
      auto& mine = partial[s];
      for (std::size_t i = lo; i < hi; ++i) {
        const auto& e = errors[i];
        if (!window.contains(e.time)) continue;
        const auto key = xid::gpu_key(e.gpu);
        const auto it = mine.find(key);
        if (it == mine.end() || e.time < it->second) mine[key] = e.time;
      }
    });
    for (const auto& m : partial) {
      for (const auto& [key, t] : m) {
        const auto it = first.find(key);
        if (it == first.end() || t < it->second) first[key] = t;
      }
    }
  } else {
    for (const auto& e : errors) {
      if (!window.contains(e.time)) continue;
      const auto key = xid::gpu_key(e.gpu);
      const auto it = first.find(key);
      if (it == first.end() || e.time < it->second) first[key] = e.time;
    }
  }

  KaplanMeier km;
  km.subjects = static_cast<std::uint64_t>(total_gpus);
  km.observed_events = first.size();
  km.censored = km.subjects >= km.observed_events
                    ? km.subjects - km.observed_events
                    : 0;

  // Event times in hours since window start; censored subjects all carry the
  // full window, which is >= every event time, so the at-risk set at each
  // event time is simply subjects - (events strictly earlier).
  std::vector<double> times;
  times.reserve(first.size());
  for (const auto& [gpu, t] : first) {
    times.push_back(common::to_hours(t - window.begin));
  }
  std::sort(times.begin(), times.end());

  double s = 1.0;
  km.median_h = std::numeric_limits<double>::infinity();
  std::size_t i = 0;
  while (i < times.size()) {
    // Tie group at one event time.
    std::size_t j = i;
    while (j < times.size() && times[j] == times[i]) ++j;
    const auto d = static_cast<std::uint64_t>(j - i);
    const std::uint64_t at_risk = km.subjects - static_cast<std::uint64_t>(i);
    if (at_risk == 0) break;
    s *= 1.0 - static_cast<double>(d) / static_cast<double>(at_risk);
    km.curve.push_back({times[i], s, at_risk, d});
    if (s <= 0.5 && std::isinf(km.median_h)) km.median_h = times[i];
    i = j;
  }
  return km;
}

WeibullFit fit_weibull_mle(const std::vector<double>& samples,
                           int max_iterations, double tol) {
  WeibullFit fit;
  fit.n = samples.size();
  if (samples.size() < 3) return fit;
  for (const double x : samples) {
    if (!(x > 0.0)) return fit;  // requires strictly positive support
  }

  // Profile likelihood: the shape k solves
  //   g(k) = sum(y^k ln y)/sum(y^k) - 1/k - mean(ln y) = 0,
  // where scale-invariance lets us normalize y = x / geometric-mean(x)
  // (then mean(ln y) = 0 and y^k stays numerically tame).  g is monotone
  // increasing in k, so a bracketed bisection is robust where Newton can
  // diverge on heavy mixtures.
  const double n = static_cast<double>(samples.size());
  double mean_log = 0.0;
  for (const double x : samples) mean_log += std::log(x);
  mean_log /= n;
  const double gm = std::exp(mean_log);

  std::vector<double> y;
  y.reserve(samples.size());
  for (const double x : samples) y.push_back(x / gm);

  const auto g = [&y](double k) {
    double sum_yk = 0.0;
    double sum_yk_log = 0.0;
    for (const double v : y) {
      const double lv = std::log(v);
      const double vk = std::exp(k * lv);
      sum_yk += vk;
      sum_yk_log += vk * lv;
    }
    return sum_yk_log / sum_yk - 1.0 / k;
  };

  double lo = 1e-3;
  double hi = 1.0;
  while (g(hi) < 0.0 && hi < 1024.0) hi *= 2.0;
  if (g(lo) > 0.0 || g(hi) < 0.0) return fit;  // no bracket: degenerate data

  bool converged = false;
  for (int it = 0; it < max_iterations * 4; ++it) {
    const double mid = 0.5 * (lo + hi);
    (g(mid) < 0.0 ? lo : hi) = mid;
    if (hi - lo < tol * std::max(1.0, hi)) {
      converged = true;
      break;
    }
  }
  const double k = 0.5 * (lo + hi);

  double sum_yk = 0.0;
  for (const double v : y) sum_yk += std::pow(v, k);
  fit.shape = k;
  fit.scale = gm * std::pow(sum_yk / n, 1.0 / k);
  fit.converged = converged;
  return fit;
}

std::vector<double> interarrival_hours(const std::vector<CoalescedError>& errors,
                                       const Period& window, xid::Code family) {
  std::map<std::uint64_t, std::vector<common::TimePoint>> per_gpu;
  for (const auto& e : errors) {
    if (!window.contains(e.time) || e.code != family) continue;
    per_gpu[xid::gpu_key(e.gpu)].push_back(e.time);
  }
  std::vector<double> gaps;
  for (auto& [gpu, times] : per_gpu) {
    std::sort(times.begin(), times.end());
    for (std::size_t i = 1; i < times.size(); ++i) {
      const double h = common::to_hours(times[i] - times[i - 1]);
      if (h > 0.0) gaps.push_back(h);
    }
  }
  return gaps;
}

std::string render_survival(const std::vector<CoalescedError>& errors,
                            const StudyPeriods& periods,
                            std::int32_t total_gpus,
                            common::ThreadPool* pool) {
  std::string out;
  char buf[256];

  const auto km = km_time_to_first_error(errors, periods.op, total_gpus, pool);
  std::snprintf(buf, sizeof(buf),
                "Kaplan-Meier, time to first error per GPU (op period): %llu "
                "GPUs, %llu erred, %llu censored; median %.0f h\n",
                static_cast<unsigned long long>(km.subjects),
                static_cast<unsigned long long>(km.observed_events),
                static_cast<unsigned long long>(km.censored),
                km.median_h);
  out += buf;
  for (const double t : {24.0 * 7, 24.0 * 30, 24.0 * 90, 24.0 * 365}) {
    std::snprintf(buf, sizeof(buf), "  S(%5.0f d) = %.3f\n", t / 24.0,
                  km.survival_at(t));
    out += buf;
  }

  out += "\nWeibull MLE of per-GPU inter-error times (op period):\n";
  common::AsciiTable t({"Family", "gaps", "shape k", "scale (h)",
                        "interpretation"});
  // Each family's gap extraction + MLE is independent; run them as parallel
  // tasks and render in fixed family order, so the table bytes never depend
  // on completion order.
  const xid::Code kFamilies[] = {xid::Code::kMmuError, xid::Code::kNvlinkError,
                                 xid::Code::kGspRpcTimeout};
  std::array<WeibullFit, std::size(kFamilies)> fits;
  const auto fit_family = [&](std::size_t i, std::size_t) {
    fits[i] = fit_weibull_mle(interarrival_hours(errors, periods.op,
                                                 kFamilies[i]));
  };
  if (pool != nullptr) {
    pool->parallel_for(std::size(kFamilies), fit_family);
  } else {
    for (std::size_t i = 0; i < std::size(kFamilies); ++i) fit_family(i, 0);
  }
  for (std::size_t i = 0; i < std::size(kFamilies); ++i) {
    const auto code = kFamilies[i];
    const auto& fit = fits[i];
    const auto d = xid::describe(code);
    const char* meaning = fit.n < 3 ? "insufficient data"
                          : fit.shape < 0.95
                              ? "k<1: clustered / decreasing hazard"
                          : fit.shape > 1.05 ? "k>1: wear-out"
                                             : "k~1: memoryless";
    t.add_row({std::string(d->abbrev), common::fmt_int(fit.n),
               common::fmt_fixed(fit.shape, 2), common::fmt_fixed(fit.scale, 1),
               meaning});
  }
  out += t.render();
  return out;
}

}  // namespace gpures::analysis
