#include "analysis/config_file.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <functional>
#include <map>

#include "common/io.h"
#include "common/strings.h"
#include "common/time.h"

namespace gpures::analysis {

namespace {

using Setter = std::function<bool(std::string_view, CampaignConfig&)>;

bool set_double(double* slot, std::string_view v) {
  const double d = common::parse_double(v);
  if (std::isnan(d)) return false;
  *slot = d;
  return true;
}

bool set_bool(bool* slot, std::string_view v) {
  if (v == "true" || v == "1") {
    *slot = true;
    return true;
  }
  if (v == "false" || v == "0") {
    *slot = false;
    return true;
  }
  return false;
}

bool set_date(common::TimePoint* slot, std::string_view v) {
  const auto t = common::parse_iso(v);
  if (!t) return false;
  *slot = *t;
  return true;
}

// Build the key table once.  Member-pointer lambdas keep each entry one line.
const std::map<std::string, Setter>& key_table() {
  static const auto* table = [] {
    auto* m = new std::map<std::string, Setter>;
    auto dbl = [m](const std::string& key, auto member) {
      (*m)[key] = [member](std::string_view v, CampaignConfig& c) {
        return set_double(member(c), v);
      };
    };
    auto date = [m](const std::string& key, auto member) {
      (*m)[key] = [member](std::string_view v, CampaignConfig& c) {
        return set_date(member(c), v);
      };
    };

    // --- top level ---
    (*m)["seed"] = [](std::string_view v, CampaignConfig& c) {
      const long long s = common::parse_ll(v);
      if (s < 0) return false;
      c.seed = static_cast<std::uint64_t>(s);
      return true;
    };
    (*m)["with_jobs"] = [](std::string_view v, CampaignConfig& c) {
      return set_bool(&c.with_jobs, v);
    };
    (*m)["sim.shards"] = [](std::string_view v, CampaignConfig& c) {
      const long long s = common::parse_ll(v);
      if (s < 0) return false;
      c.sim_shards = static_cast<std::int32_t>(s);
      return true;
    };
    dbl("noise_lines_per_day",
        [](CampaignConfig& c) { return &c.noise_lines_per_day; });
    dbl("workload_scale", [](CampaignConfig& c) { return &c.workload_scale; });

    // --- study window ---
    date("faults.study_begin",
         [](CampaignConfig& c) { return &c.faults.study_begin; });
    date("faults.op_begin", [](CampaignConfig& c) { return &c.faults.op_begin; });
    date("faults.study_end", [](CampaignConfig& c) { return &c.faults.study_end; });

    // --- fault families ---
    auto family = [&dbl](const std::string& name,
                         cluster::ProcessSpec* (*get)(CampaignConfig&)) {
      dbl("faults." + name + ".pre_count",
          [get](CampaignConfig& c) { return &get(c)->pre_count; });
      dbl("faults." + name + ".op_count",
          [get](CampaignConfig& c) { return &get(c)->op_count; });
      dbl("faults." + name + ".dup_extra_mean",
          [get](CampaignConfig& c) { return &get(c)->dup_extra_mean; });
      dbl("faults." + name + ".idle_affinity",
          [get](CampaignConfig& c) { return &get(c)->idle_affinity; });
    };
    family("mmu", [](CampaignConfig& c) { return &c.faults.mmu; });
    family("mem_fault", [](CampaignConfig& c) { return &c.faults.mem_fault; });
    family("nvlink", [](CampaignConfig& c) { return &c.faults.nvlink_incident; });
    family("off_bus", [](CampaignConfig& c) { return &c.faults.off_bus; });
    family("gsp", [](CampaignConfig& c) { return &c.faults.gsp; });
    family("pmu", [](CampaignConfig& c) { return &c.faults.pmu; });

    // --- NVLink storms ---
    dbl("faults.nvlink_storms.storms_pre",
        [](CampaignConfig& c) { return &c.faults.nvlink_storms.storms_pre; });
    dbl("faults.nvlink_storms.storms_op",
        [](CampaignConfig& c) { return &c.faults.nvlink_storms.storms_op; });
    dbl("faults.nvlink_storms.incident_gap_s",
        [](CampaignConfig& c) { return &c.faults.nvlink_storms.incident_gap_s; });

    // --- recovery ---
    dbl("faults.recovery.health_check_period_s", [](CampaignConfig& c) {
      return &c.faults.recovery.health_check_period_s;
    });
    dbl("faults.recovery.drain_cap_s",
        [](CampaignConfig& c) { return &c.faults.recovery.drain_cap_s; });
    dbl("faults.recovery.reboot_lognormal_mu", [](CampaignConfig& c) {
      return &c.faults.recovery.reboot_lognormal_mu;
    });
    dbl("faults.recovery.reboot_lognormal_sigma", [](CampaignConfig& c) {
      return &c.faults.recovery.reboot_lognormal_sigma;
    });
    dbl("faults.recovery.reset_failure_probability", [](CampaignConfig& c) {
      return &c.faults.recovery.reset_failure_probability;
    });
    dbl("faults.recovery.replacement_lo_h", [](CampaignConfig& c) {
      return &c.faults.recovery.replacement_lo_h;
    });
    dbl("faults.recovery.replacement_hi_h", [](CampaignConfig& c) {
      return &c.faults.recovery.replacement_hi_h;
    });

    // --- workload ---
    dbl("workload.op_jobs", [](CampaignConfig& c) { return &c.workload.op_jobs; });
    dbl("workload.preop_intensity",
        [](CampaignConfig& c) { return &c.workload.preop_intensity; });
    dbl("workload.diurnal_amplitude",
        [](CampaignConfig& c) { return &c.workload.diurnal_amplitude; });
    dbl("workload.weekend_intensity",
        [](CampaignConfig& c) { return &c.workload.weekend_intensity; });
    dbl("workload.p_user_failed",
        [](CampaignConfig& c) { return &c.workload.p_user_failed; });
    dbl("workload.p_cancelled",
        [](CampaignConfig& c) { return &c.workload.p_cancelled; });

    // --- failure propagation ---
    dbl("failure.p_mmu", [](CampaignConfig& c) { return &c.failure.p_mmu; });
    dbl("failure.p_pmu", [](CampaignConfig& c) { return &c.failure.p_pmu; });
    dbl("failure.p_gsp", [](CampaignConfig& c) { return &c.failure.p_gsp; });
    dbl("failure.p_nvlink_recovered",
        [](CampaignConfig& c) { return &c.failure.p_nvlink_recovered; });
    dbl("failure.p_nvlink_unrecovered",
        [](CampaignConfig& c) { return &c.failure.p_nvlink_unrecovered; });

    // --- pipeline knobs ---
    (*m)["pipeline.coalesce_window"] = [](std::string_view v,
                                          CampaignConfig& c) {
      const long long w = common::parse_ll(v);
      if (w < 0) return false;
      c.pipeline.coalescer.window = w;
      return true;
    };
    (*m)["pipeline.attribution_window"] = [](std::string_view v,
                                             CampaignConfig& c) {
      const long long w = common::parse_ll(v);
      if (w < 0) return false;
      c.pipeline.attribution_window = w;
      return true;
    };
    return m;
  }();
  return *table;
}

}  // namespace

common::Result<CampaignConfig> apply_config_text(std::string_view text,
                                                 CampaignConfig base) {
  int line_no = 0;
  for (const auto raw_line : common::split(text, '\n')) {
    ++line_no;
    auto line = raw_line;
    // Strip trailing comment.
    const auto hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = common::trim(line);
    if (line.empty()) continue;

    const auto eq = line.find('=');
    if (eq == std::string_view::npos) {
      return common::Error::make("config line " + std::to_string(line_no) +
                                 ": expected key = value");
    }
    const auto key = std::string(common::trim(line.substr(0, eq)));
    const auto value = common::trim(line.substr(eq + 1));

    const auto& table = key_table();
    const auto it = table.find(key);
    if (it == table.end()) {
      return common::Error::make("config line " + std::to_string(line_no) +
                                 ": unknown key '" + key + "'");
    }
    if (!it->second(value, base)) {
      return common::Error::make("config line " + std::to_string(line_no) +
                                 ": bad value '" + std::string(value) +
                                 "' for " + key);
    }
  }
  // Fail fast on inconsistent results.
  try {
    base.faults.validate();
    base.workload.validate();
  } catch (const std::invalid_argument& e) {
    return common::Error::make(std::string("config: ") + e.what());
  }
  return base;
}

common::Result<CampaignConfig> load_config_file(const std::string& path,
                                                CampaignConfig base) {
  auto text = common::read_file(path);
  if (!text.ok()) return common::Error::make("config: cannot open " + path);
  return apply_config_text(text.value(), std::move(base));
}

std::vector<std::string> supported_config_keys() {
  std::vector<std::string> keys;
  for (const auto& [k, setter] : key_table()) keys.push_back(k);
  return keys;
}

}  // namespace gpures::analysis
