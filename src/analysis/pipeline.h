// The end-to-end analysis pipeline (paper Fig. 1).
//
// Stage I:  ingest per-day raw syslog text (regex or fast matcher) and the
//           Slurm accounting dump; resolve hostnames/PCI ids to GPUs.
// Stage II: coalesce duplicated XID records into errors; compute error
//           counts and MTBE per family/category/period.
// Stage III:correlate errors with job records (Table II), job population
//           statistics (Table III), and node availability (Fig. 2, §V-C).
//
// The pipeline consumes raw artifacts only — never simulator ground truth —
// so validating its outputs against ground truth is a genuine end-to-end
// test of the measurement methodology.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "analysis/availability.h"
#include "analysis/coalesce.h"
#include "analysis/error_stats.h"
#include "analysis/extraction.h"
#include "analysis/job_impact.h"
#include "analysis/job_stats.h"
#include "analysis/periods.h"
#include "cluster/topology.h"
#include "logsys/log_store.h"

namespace gpures::analysis {

struct PipelineConfig {
  StudyPeriods periods = StudyPeriods::delta();
  CoalescerConfig coalescer;
  /// Outlier handling for the aggregate MTBE (see ErrorStatsConfig).
  double outlier_share = 0.5;
  std::uint64_t outlier_min = 1000;
  /// Job-failure attribution window (paper: 20 s).
  common::Duration attribution_window = 20;
  /// Error-to-job attribution granularity (see job_impact.h).
  Attribution attribution = Attribution::kGpuLevel;
  /// Use the std::regex Stage-I matcher instead of the fast scanner.
  bool use_regex_parser = false;
};

class AnalysisPipeline {
 public:
  AnalysisPipeline(const cluster::Topology& topo, PipelineConfig cfg);

  // ---- Stage I ingestion ----
  /// Ingest one consolidated day of raw log lines.
  void ingest_log_day(common::TimePoint day_start,
                      std::span<const logsys::RawLine> lines);
  /// Same, from newline-separated text.
  void ingest_log_text(common::TimePoint day_start, std::string_view text);
  /// Ingest one accounting line (header and malformed lines are counted and
  /// skipped).
  void ingest_accounting_line(std::string_view line);

  /// Flush the coalescer and sort results.  Call once after all ingestion.
  void finish();

  // ---- results (valid after finish()) ----
  const std::vector<CoalescedError>& errors() const { return errors_; }
  const std::vector<LifecycleRecord>& lifecycle() const { return lifecycle_; }
  const JobTable& jobs() const { return jobs_; }

  ErrorStats error_stats() const;
  JobStats job_stats() const;                 ///< full characterization window
  JobStats job_stats(const Period& w) const;  ///< custom window
  JobImpact job_impact() const;               ///< operational period
  AvailabilityStats availability() const;     ///< operational period

  /// Conservative MTTF estimate: the all-error per-node MTBE in op (the
  /// paper assumes every GPU error interrupts the node).
  double mttf_estimate_h() const;

  // ---- diagnostics ----
  struct Counters {
    std::uint64_t log_lines = 0;
    std::uint64_t xid_records = 0;
    std::uint64_t lifecycle_records = 0;
    std::uint64_t rejected_lines = 0;     ///< noise / non-matching
    std::uint64_t unknown_hosts = 0;      ///< matched but unresolvable
    std::uint64_t accounting_lines = 0;
    std::uint64_t accounting_errors = 0;
  };
  const Counters& counters() const { return counters_; }
  const PipelineConfig& config() const { return cfg_; }

 private:
  const cluster::Topology& topo_;
  PipelineConfig cfg_;
  std::unique_ptr<LineParser> parser_;
  std::unique_ptr<Coalescer> coalescer_;

  std::vector<CoalescedError> errors_;
  std::vector<LifecycleRecord> lifecycle_;
  JobTable jobs_;
  Counters counters_;
  bool finished_ = false;
};

}  // namespace gpures::analysis
