// The end-to-end analysis pipeline (paper Fig. 1).
//
// Stage I:  ingest per-day raw syslog text (regex or fast matcher) and the
//           Slurm accounting dump; resolve hostnames/PCI ids to GPUs.
// Stage II: coalesce duplicated XID records into errors; compute error
//           counts and MTBE per family/category/period.
// Stage III:correlate errors with job records (Table II), job population
//           statistics (Table III), and node availability (Fig. 2, §V-C).
//
// The pipeline consumes raw artifacts only — never simulator ground truth —
// so validating its outputs against ground truth is a genuine end-to-end
// test of the measurement methodology.
//
// Parallel mode (PipelineConfig::num_threads > 0) shards Stage I by day,
// Stage II by GPU, and Stage III by job range (the exposure join runs
// against a read-only per-location error index) and by host for
// availability, then merges deterministically; the output is byte-identical
// to a serial run (see DESIGN.md "Parallel pipeline determinism").
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "analysis/availability.h"
#include "analysis/coalesce.h"
#include "analysis/error_stats.h"
#include "analysis/extraction.h"
#include "analysis/job_impact.h"
#include "analysis/job_stats.h"
#include "analysis/periods.h"
#include "cluster/topology.h"
#include "common/thread_pool.h"
#include "logsys/day_buffer.h"
#include "logsys/log_store.h"
#include "obs/metrics.h"

namespace gpures::analysis {

struct PipelineConfig {
  StudyPeriods periods = StudyPeriods::delta();
  CoalescerConfig coalescer;
  /// Outlier handling for the aggregate MTBE (see ErrorStatsConfig).
  double outlier_share = 0.5;
  std::uint64_t outlier_min = 1000;
  /// Job-failure attribution window (paper: 20 s).
  common::Duration attribution_window = 20;
  /// Error-to-job attribution granularity (see job_impact.h).
  Attribution attribution = Attribution::kGpuLevel;
  /// Use the std::regex Stage-I matcher instead of the fast scanner.
  bool use_regex_parser = false;
  /// Worker threads for every stage.  0 (the default) runs fully serial;
  /// N > 0 runs Stage I day-sharded, Stage II GPU-sharded, and Stage III
  /// job-/host-sharded on N workers with a deterministic ordered merge —
  /// results are byte-identical to serial for any N.
  std::uint32_t num_threads = 0;
  /// Days buffered per parallel Stage-I batch (bounds memory when streaming
  /// a long campaign).  0 picks 4 * num_threads.  Has no effect on results.
  std::uint32_t stage1_batch_days = 0;
  /// Observability registry for the pipe.* metrics (stage counters,
  /// per-worker parse totals, day-parse latency histogram).  When null the
  /// pipeline owns a private registry, so metrics are always collected;
  /// the flag only controls where they can be read from.  Give each
  /// pipeline its own registry unless aggregate counts are wanted.
  /// Metrics never feed back into analysis results.
  obs::MetricsRegistry* metrics = nullptr;
};

class AnalysisPipeline {
 public:
  AnalysisPipeline(const cluster::Topology& topo, PipelineConfig cfg);
  ~AnalysisPipeline();

  AnalysisPipeline(const AnalysisPipeline&) = delete;
  AnalysisPipeline& operator=(const AnalysisPipeline&) = delete;

  // ---- Stage I ingestion ----
  /// Ingest one consolidated day as an arena: the pipeline takes ownership
  /// and Stage-I workers parse string_view slices straight out of the day
  /// buffer — zero per-line copies.  This is the hot path; the overloads
  /// below are copying conveniences that funnel into it.
  void ingest_day(common::TimePoint day_start, logsys::DayBuffer&& day);
  /// Ingest one consolidated day of raw log lines (copies into an arena).
  void ingest_log_day(common::TimePoint day_start,
                      std::span<const logsys::RawLine> lines);
  /// Ingest newline-separated day text by taking ownership of the string:
  /// the text becomes the day's arena with no copy (loaders pass the whole
  /// file straight through).
  void ingest_log_text(common::TimePoint day_start, std::string&& text);
  /// Same, from borrowed text (copies once into an arena).
  void ingest_log_text(common::TimePoint day_start, std::string_view text);
  /// Disambiguates string literals (would match both overloads above).
  void ingest_log_text(common::TimePoint day_start, const char* text) {
    ingest_log_text(day_start, std::string_view(text));
  }
  /// Ingest one accounting line.  Returns false when the line is malformed
  /// (counted and skipped here; the loader's ingest policy decides whether
  /// that aborts the run).  Header and blank lines are accepted trivially.
  bool ingest_accounting_line(std::string_view line);

  /// Flush the coalescer and sort results.  Call once after all ingestion.
  void finish();

  // ---- results (valid after finish()) ----
  const std::vector<CoalescedError>& errors() const { return errors_; }
  const std::vector<LifecycleRecord>& lifecycle() const { return lifecycle_; }
  const JobTable& jobs() const { return jobs_; }

  ErrorStats error_stats() const;
  JobStats job_stats() const;                 ///< full characterization window
  JobStats job_stats(const Period& w) const;  ///< custom window
  JobImpact job_impact() const;               ///< operational period
  AvailabilityStats availability() const;     ///< operational period
  /// Conservative MTTF estimate: the all-error per-node MTBE in op (the
  /// paper assumes every GPU error interrupts the node).
  double mttf_estimate_h() const;

  // ---- diagnostics ----
  /// Snapshot view of the pipe.* metrics, kept as a plain struct for API
  /// compatibility.  The values themselves live on the obs metrics
  /// registry (PipelineConfig::metrics or the pipeline's private one).
  struct Counters {
    std::uint64_t log_lines = 0;
    std::uint64_t xid_records = 0;
    std::uint64_t lifecycle_records = 0;
    std::uint64_t rejected_lines = 0;     ///< noise / non-matching
    std::uint64_t unknown_hosts = 0;      ///< matched but unresolvable
    std::uint64_t accounting_lines = 0;
    std::uint64_t accounting_errors = 0;
    /// Observations violating the coalescer's per-(GPU, code) nondecreasing-
    /// time contract (valid after finish(); see Coalescer::out_of_order()).
    std::uint64_t out_of_order_observations = 0;
  };
  Counters counters() const;
  /// The registry collecting this pipeline's metrics (never null).  The
  /// mutable overload lets collaborators that feed the pipeline (the dataset
  /// loader, the query layer) register their own families on the same
  /// registry, so one --metrics artifact covers the whole run.
  const obs::MetricsRegistry& metrics() const { return *metrics_; }
  obs::MetricsRegistry& metrics() { return *metrics_; }
  const PipelineConfig& config() const { return cfg_; }
  /// The worker pool shared by every stage; null in serial mode.  Callers
  /// running Stage-III renders outside the pipeline (trends, survival,
  /// mitigation) pass this through so --threads governs them too.
  common::ThreadPool* pool() const { return pool_.get(); }

 private:
  /// Pure Stage-I output of one day: records in line order.  Counter deltas
  /// go straight to the metrics registry (sharded per-thread cells; sums
  /// are order-independent, so parallel parsing stays deterministic).
  struct DayParse {
    std::vector<XidObservation> obs;
    std::vector<LifecycleRecord> lifecycle;
  };
  struct PendingDay {
    common::TimePoint day_start = 0;
    logsys::DayBuffer day;
  };
  /// Handles into the registry, resolved once at construction.
  struct StageMetrics {
    obs::Counter* log_lines = nullptr;
    obs::Counter* xid_records = nullptr;
    obs::Counter* lifecycle_records = nullptr;
    obs::Counter* rejected_lines = nullptr;
    obs::Counter* unknown_hosts = nullptr;
    obs::Counter* accounting_lines = nullptr;
    obs::Counter* accounting_errors = nullptr;
    obs::Counter* out_of_order = nullptr;
    obs::Counter* errors_coalesced = nullptr;
    obs::Histogram* day_parse_us = nullptr;
    obs::Counter* stage3_exposures = nullptr;   ///< exposed jobs, all joins
    obs::Histogram* stage3_join_us = nullptr;   ///< exposure-join latency
  };
  /// Per-worker-slot Stage-I totals (slot 0 in serial mode).
  struct WorkerMetrics {
    obs::Counter* days_parsed = nullptr;
    obs::Counter* lines = nullptr;
    obs::Counter* parse_time_ns = nullptr;
  };
  /// Per-shard Stage-III exposure-join totals (shard 0 in serial mode).
  struct Stage3ShardMetrics {
    obs::Counter* jobs = nullptr;     ///< jobs scanned by this shard
    obs::Counter* exposed = nullptr;  ///< of those, jobs with >= 1 error
  };

  DayParse parse_day(const LineParser& parser, std::size_t worker,
                     common::TimePoint day_start,
                     const logsys::DayBuffer& day) const;
  std::size_t shard_of(xid::GpuId gpu) const;
  /// Parallel mode: Stage-I parse all pending days on the pool, merge the
  /// per-day batches in day order, and drain each Stage-II shard.
  void flush_pending_days();

  const cluster::Topology& topo_;
  PipelineConfig cfg_;

  // Serial mode.
  std::unique_ptr<LineParser> parser_;
  std::unique_ptr<Coalescer> coalescer_;

  // Parallel mode (num_threads > 0).
  std::unique_ptr<common::ThreadPool> pool_;
  std::vector<std::unique_ptr<LineParser>> worker_parsers_;
  std::vector<std::unique_ptr<Coalescer>> shard_coalescers_;
  std::vector<std::vector<CoalescedError>> shard_errors_;
  std::vector<std::vector<XidObservation>> shard_feed_;
  std::vector<PendingDay> pending_days_;
  std::size_t batch_days_ = 0;

  std::vector<CoalescedError> errors_;
  std::vector<LifecycleRecord> lifecycle_;
  JobTable jobs_;

  obs::MetricsRegistry* metrics_ = nullptr;  ///< effective registry
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  StageMetrics m_;
  std::vector<WorkerMetrics> worker_metrics_;
  std::vector<Stage3ShardMetrics> stage3_shard_metrics_;

  bool finished_ = false;
};

}  // namespace gpures::analysis
