// On-disk dataset format: the bridge between the simulator and the analysis
// CLI, and the format a site would drop its *real* logs into to use this
// pipeline on production data.
//
// A dataset directory contains:
//   manifest.txt               key=value: cluster spec, period boundaries
//   syslog/syslog-YYYY-MM-DD.log   one consolidated day file per day
//   slurm_accounting.txt       sacct-style dump (header + one job per line)
//
// `DatasetWriter` materializes a campaign's raw artifacts; `load_dataset`
// streams a directory through an AnalysisPipeline day by day.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/periods.h"
#include "analysis/pipeline.h"
#include "cluster/topology.h"
#include "common/error.h"
#include "logsys/log_store.h"
#include "obs/progress.h"

namespace gpures::analysis {

/// Dataset metadata persisted in manifest.txt.
struct DatasetManifest {
  std::string name = "gpures-dataset";
  cluster::ClusterSpec spec;
  StudyPeriods periods = StudyPeriods::delta();

  std::string serialize() const;
  static common::Result<DatasetManifest> parse(std::string_view text);
};

/// Writes a dataset directory incrementally (day consumer + accounting).
class DatasetWriter {
 public:
  /// Creates `dir` (and syslog/) if needed; truncates existing files.
  DatasetWriter(std::filesystem::path dir, DatasetManifest manifest);
  ~DatasetWriter();

  DatasetWriter(const DatasetWriter&) = delete;
  DatasetWriter& operator=(const DatasetWriter&) = delete;

  /// Write one consolidated day file straight from the arena: the sorted
  /// slices are streamed as maximal contiguous runs, so a fully in-order
  /// day is a single large write with no intermediate copy.
  void write_day(common::TimePoint day_start, const logsys::DayBuffer& day);

  /// Write one consolidated day file (convenience for tests/fixtures).
  void write_day(common::TimePoint day_start,
                 const std::vector<logsys::RawLine>& lines);

  /// Append one accounting line (header is written automatically first).
  void write_accounting_line(std::string_view line);

  /// Flush and write the manifest.  Called by the destructor too.
  /// Throws if any write since construction failed (a full disk mid-dump
  /// must not produce a silently truncated dataset); the destructor
  /// swallows, so call finalize() explicitly to observe failures.
  void finalize();

  const std::filesystem::path& dir() const { return dir_; }
  std::uint64_t days_written() const { return days_; }

 private:
  /// Record the first write failure; finalize() re-throws it.
  void note_write_failure(const std::string& what);

  std::filesystem::path dir_;
  DatasetManifest manifest_;
  std::ofstream accounting_;  ///< kept open: the dump has ~1.5M lines
  std::string write_error_;   ///< first deferred write failure, if any
  std::uint64_t days_ = 0;
  bool finalized_ = false;
};

/// Read manifest.txt from a dataset directory.
common::Result<DatasetManifest> read_manifest(const std::filesystem::path& dir);

/// Stream a dataset directory through a pipeline: every syslog day file in
/// date order, then the accounting dump; finishes the pipeline.  Returns the
/// number of day files ingested or an error.  An optional progress reporter
/// receives (days ingested, total day files).
common::Result<std::uint64_t> load_dataset(const std::filesystem::path& dir,
                                           AnalysisPipeline& pipeline,
                                           obs::ProgressReporter* progress =
                                               nullptr);

}  // namespace gpures::analysis
