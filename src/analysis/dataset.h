// On-disk dataset format: the bridge between the simulator and the analysis
// CLI, and the format a site would drop its *real* logs into to use this
// pipeline on production data.
//
// A dataset directory contains:
//   manifest.txt               key=value: cluster spec, period boundaries
//   syslog/syslog-YYYY-MM-DD.log   one consolidated day file per day
//   slurm_accounting.txt       sacct-style dump (header + one job per line)
//
// `DatasetWriter` materializes a campaign's raw artifacts; `load_dataset`
// streams a directory through an AnalysisPipeline day by day.
//
// Real logs arrive hostile — truncated, interleaved with garbage, partially
// missing — so ingestion runs under an IngestPolicy: strict fails fast with
// an error naming file/line/byte offset; lenient quarantines corrupt lines,
// skips unreadable days as recorded coverage gaps, enforces a per-file
// error budget, and fills a DataQualityReport accounting for every dropped
// line and byte (see data_quality.h and DESIGN.md "Quarantine semantics").
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "analysis/data_quality.h"
#include "analysis/periods.h"
#include "analysis/pipeline.h"
#include "cluster/topology.h"
#include "common/error.h"
#include "logsys/day_buffer.h"
#include "logsys/log_store.h"
#include "obs/progress.h"

namespace gpures::analysis {

/// Dataset metadata persisted in manifest.txt.
struct DatasetManifest {
  std::string name = "gpures-dataset";
  cluster::ClusterSpec spec;
  StudyPeriods periods = StudyPeriods::delta();

  std::string serialize() const;
  /// Parse manifest text.  Rejects malformed lines, unknown and duplicate
  /// keys, bad dates, and a `nodes=` count that disagrees with the `node=`
  /// entries; every error names the offending line.
  static common::Result<DatasetManifest> parse(std::string_view text);
};

/// Writes a dataset directory incrementally (day consumer + accounting).
class DatasetWriter {
 public:
  /// Creates `dir` (and syslog/) if needed; truncates existing files.
  DatasetWriter(std::filesystem::path dir, DatasetManifest manifest);
  ~DatasetWriter();

  DatasetWriter(const DatasetWriter&) = delete;
  DatasetWriter& operator=(const DatasetWriter&) = delete;

  /// Write one consolidated day file straight from the arena: the sorted
  /// slices are streamed as maximal contiguous runs, so a fully in-order
  /// day is a single large write with no intermediate copy.
  void write_day(common::TimePoint day_start, const logsys::DayBuffer& day);

  /// Write one consolidated day file (convenience for tests/fixtures).
  void write_day(common::TimePoint day_start,
                 const std::vector<logsys::RawLine>& lines);

  /// Append one accounting line (header is written automatically first).
  void write_accounting_line(std::string_view line);

  /// Flush and write the manifest.  Called by the destructor too (which
  /// discards the status).  Returns the first write failure since
  /// construction (a full disk mid-dump must not produce a silently
  /// truncated dataset); repeat calls return the same status.
  common::Status finalize();

  const std::filesystem::path& dir() const { return dir_; }
  std::uint64_t days_written() const { return days_; }

 private:
  /// Record the first write failure; finalize() reports it.
  void note_write_failure(const std::string& what);

  std::filesystem::path dir_;
  DatasetManifest manifest_;
  std::ofstream accounting_;  ///< kept open: the dump has ~1.5M lines
  std::string write_error_;   ///< first deferred write failure, if any
  common::Status final_status_;
  std::uint64_t days_ = 0;
  bool finalized_ = false;
};

/// Read manifest.txt from a dataset directory.
common::Result<DatasetManifest> read_manifest(const std::filesystem::path& dir);

/// The date encoded in a day-file name, or nullopt when `filename` is not
/// exactly `syslog-YYYY-MM-DD.log` with a valid calendar date.  Anything
/// else in syslog/ (editor backups, .swp droppings, stray directories) is
/// skipped with a warning, never ingested as a day.
std::optional<common::TimePoint> day_file_date(std::string_view filename);

/// Options controlling how load_dataset treats hostile input.
struct IngestOptions {
  IngestPolicy policy = IngestPolicy::kStrict;
  /// Max quarantined lines per day file and max rejected accounting rows; a
  /// lenient run exceeding it aborts with an error.  0 = unlimited.
  std::uint64_t error_budget = 0;
  /// Line screen (max line length) applied while slicing day files.
  logsys::LineScreen screen;
  /// Expected day range [expect_begin, expect_end) for coverage accounting
  /// (pass the manifest periods).  When expect_end <= expect_begin the
  /// range is inferred from the day files actually present.
  common::TimePoint expect_begin = 0;
  common::TimePoint expect_end = 0;
  /// Filled with the run's data-quality accounting when non-null.
  DataQualityReport* quality = nullptr;
  /// Receives human-readable warnings (stray files, quarantines, skipped
  /// days); null = silent (everything is still recorded in `quality`).
  std::function<void(const std::string&)> warn;
};

/// Stream a dataset directory through a pipeline: every syslog day file in
/// date order, then the accounting dump; finishes the pipeline.  Returns the
/// number of day files ingested or an error.  An optional progress reporter
/// receives (days ingested, total day files).
///
/// On clean input the ingested byte sequence — and therefore every
/// downstream artifact — is identical under both policies, any thread
/// count, and the pre-hardening loader.
common::Result<std::uint64_t> load_dataset(const std::filesystem::path& dir,
                                           AnalysisPipeline& pipeline,
                                           const IngestOptions& options,
                                           obs::ProgressReporter* progress =
                                               nullptr);

/// Strict-policy convenience overload (the pre-hardening signature).
common::Result<std::uint64_t> load_dataset(const std::filesystem::path& dir,
                                           AnalysisPipeline& pipeline,
                                           obs::ProgressReporter* progress =
                                               nullptr);

}  // namespace gpures::analysis
