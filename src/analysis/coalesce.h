// Stage II: error coalescing.
//
// The same GPU error produces many near-identical log lines in close
// succession; counting lines as errors would grossly underestimate GPU
// resilience.  The coalescer merges identical (GPU, XID) records that fall
// within `window` of the current leader record into a single error, counting
// only the first occurrence — the semantics used by the paper and by the
// field-data studies it cites.  A record later than leader + window starts a
// new error (renewal/leader semantics).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/time.h"
#include "xid/event.h"

namespace gpures::analysis {

/// Input record: an extracted XID observation resolved to a GPU.
struct XidObservation {
  common::TimePoint time = 0;
  xid::GpuId gpu;
  std::uint16_t xid = 0;
};

/// Output: one coalesced error (leader time, merged line count).
struct CoalescedError {
  common::TimePoint time = 0;   ///< first occurrence
  common::TimePoint last = 0;   ///< last merged occurrence
  xid::GpuId gpu;
  xid::Code code = xid::Code::kMmuError;  ///< canonical (merged family) code
  std::uint16_t raw_xid = 0;              ///< as logged (119 vs 120 etc.)
  std::uint32_t raw_lines = 1;            ///< lines merged into this error
};

struct CoalescerConfig {
  /// Merge window Delta-t.
  common::Duration window = 30;
  /// Drop XIDs the study excludes (13, 43) and unknown codes.
  bool filter_to_catalog = true;
  /// Merge family codes (119/120 -> GSP, 122/123 -> PMU) before keying, so a
  /// 119 followed by a 120 on the same GPU within the window is one error.
  bool merge_families = true;
  /// Debug-mode enforcement of the input contract (see class comment): throw
  /// std::logic_error on an out-of-order observation instead of only counting
  /// it in out_of_order().
  bool enforce_order = false;
};

/// Resumable snapshot of a coalescer's in-flight state: the still-open
/// (GPU, code) groups plus the counters.  `open` is sorted by (gpu, code)
/// so the serialized form — and thus the serve daemon's checkpoint bytes —
/// never depends on hash-map iteration order.
struct CoalescerState {
  std::vector<CoalescedError> open;
  std::uint64_t records_in = 0;
  std::uint64_t errors_out = 0;
  std::uint64_t out_of_order = 0;
};

/// Streaming coalescer.  Feed observations in (approximately) nondecreasing
/// time order per (GPU, code) key — per-day sorted input satisfies this.
/// Completed errors are delivered to the sink; call flush() at end of input.
class Coalescer {
 public:
  using Sink = std::function<void(const CoalescedError&)>;

  Coalescer(CoalescerConfig cfg, Sink sink);

  void add(const XidObservation& obs);
  void flush();

  /// Snapshot the in-flight state for checkpointing.  The coalescer remains
  /// usable; a later restore() of this state into a fresh coalescer (same
  /// config) resumes the exact merge behavior — feeding the same suffix of
  /// observations then produces the same emissions.
  CoalescerState state() const;
  /// Replace the current state with `state` (open groups are re-keyed from
  /// their stored (gpu, code)).  The emitted-errors stream is the caller's
  /// to restore; this only rebuilds what add()/flush() consult.
  void restore(const CoalescerState& state);

  std::uint64_t records_in() const { return in_; }
  std::uint64_t errors_out() const { return out_; }
  /// Observations that violated the per-(GPU, code) nondecreasing-time input
  /// contract.  They are still merged (the window math tolerates them), but a
  /// nonzero count means upstream ordering is broken and coalesced leader
  /// times are suspect.
  std::uint64_t out_of_order() const { return out_of_order_; }

 private:
  struct Open {
    CoalescedError err;
  };

  CoalescerConfig cfg_;
  Sink sink_;
  std::unordered_map<std::uint64_t, Open> open_;  ///< by (gpu, code) key
  std::uint64_t in_ = 0;
  std::uint64_t out_ = 0;
  std::uint64_t out_of_order_ = 0;
};

/// Convenience: coalesce a whole batch (sorts a copy by time first).
std::vector<CoalescedError> coalesce_all(std::vector<XidObservation> obs,
                                         const CoalescerConfig& cfg);

}  // namespace gpures::analysis
