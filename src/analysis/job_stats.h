// Stage III inputs and job-population statistics (paper Table III + §V-A).
//
// `JobView` is the pipeline's compact internal form of an accounting record:
// the analysis holds ~1.5M of them, so node lists are stored inline for the
// common 1–2 node case with a spill table for wide jobs, and the ML label is
// re-derived from the job name by keyword matching — mirroring the paper's
// methodology (exact submission scripts were not available to them either).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/periods.h"
#include "common/stats.h"
#include "slurm/job.h"

namespace gpures::analysis {

/// Packed GPU id: (node << 8) | slot — matches xid::gpu_key truncated to 32
/// bits (node counts are far below 2^23).
using PackedGpu = std::int32_t;

constexpr PackedGpu pack_gpu(std::int32_t node, std::int32_t slot) {
  return (node << 8) | (slot & 0xff);
}
constexpr std::int32_t packed_node(PackedGpu g) { return g >> 8; }
constexpr std::int32_t packed_slot(PackedGpu g) { return g & 0xff; }

/// Compact per-job record used by Stage III analyses.
struct JobView {
  std::uint64_t id = 0;
  common::TimePoint start = 0;
  common::TimePoint end = 0;
  std::int32_t gpus = 1;
  slurm::JobState state = slurm::JobState::kCompleted;
  bool is_ml = false;             ///< derived from the job name
  std::uint8_t inline_count = 0;  ///< valid gpus_inline entries
  std::array<PackedGpu, 4> gpus_inline{{-1, -1, -1, -1}};
  std::int32_t spill_index = -1;  ///< index into JobTable::spill for wide jobs

  double elapsed_minutes() const {
    return static_cast<double>(end - start) / 60.0;
  }
  double gpu_hours() const {
    return common::to_hours(end - start) * static_cast<double>(gpus);
  }
};

/// The job population plus spilled GPU lists for wide jobs.
struct JobTable {
  std::vector<JobView> jobs;
  std::vector<std::vector<PackedGpu>> spill;

  /// Allocated GPUs of a job (inline or spilled), packed.
  std::span<const PackedGpu> gpus_of(const JobView& j) const;

  /// Unique node indices of a job, appended to `out` (cleared first).
  void nodes_of(const JobView& j, std::vector<std::int32_t>& out) const;

  /// Append a job converted from an accounting record.
  void add(const slurm::JobRecord& rec);
};

/// Keyword classifier approximating ML workloads from job names (the paper
/// treats names containing e.g. "model" or "train" as ML-indicative).
bool is_ml_name(std::string_view name);

/// Table III GPU-count buckets.
struct GpuBucket {
  std::string label;
  std::int32_t lo = 1;   ///< inclusive
  std::int32_t hi = 1;   ///< inclusive
};

/// The paper's bucket boundaries: 1, 2-4, 4-8, 8-32, 32-64, 64-128,
/// 128-256, 256+.
std::vector<GpuBucket> paper_gpu_buckets();

/// One Table III row.
struct BucketStats {
  GpuBucket bucket;
  std::uint64_t count = 0;
  double share = 0.0;
  double mean_minutes = 0.0;
  double p50_minutes = 0.0;
  double p99_minutes = 0.0;
  double ml_gpu_hours = 0.0;
  double non_ml_gpu_hours = 0.0;
};

struct JobStats {
  std::uint64_t total_jobs = 0;
  double success_rate = 0.0;           ///< COMPLETED / total
  double single_gpu_share = 0.0;       ///< paper: 69.86%
  double small_multi_gpu_share = 0.0;  ///< 2-4 GPUs (paper: 27.31%)
  double large_gpu_share = 0.0;        ///< >4 GPUs (paper: 2.83%)
  std::vector<BucketStats> buckets;
  /// Share of jobs classified ML by name.
  double ml_job_share = 0.0;
};

/// Compute Table III-style statistics over jobs whose *end* falls inside
/// `window` (pass periods.whole() for the full characterization period).
JobStats compute_job_stats(const JobTable& table, const Period& window);

}  // namespace gpures::analysis
