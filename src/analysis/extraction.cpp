#include "analysis/extraction.h"

#include <charconv>
#include <memory>
#include <regex>

#include "common/strings.h"
#include "simd/scan.h"

namespace gpures::analysis {

namespace {

constexpr std::string_view kXidPrefix = "kernel: NVRM: Xid (PCI:";
constexpr std::string_view kSlurmctldPrefix = "slurmctld[";
constexpr std::string_view kUpdateNode = "]: update_node: node ";
constexpr std::string_view kReasonDrain = "reason set to: ";
constexpr std::string_view kDrainSuffix = " [drain]";
constexpr std::string_view kStateResume = "state set to: resume";

// Tokens matched by the reference regex's \S+ must not contain any regex
// whitespace; the space delimiter already terminates the token, so only the
// exotic whitespace characters need rejecting here.
bool valid_token(std::string_view s) {
  return !s.empty() &&
         s.find_first_of("\t\v\f") == std::string_view::npos;
}

// The reference regex constrains the PCI field to [0-9A-Fa-f:].
bool valid_pci(std::string_view s) {
  if (s.empty()) return false;
  for (const char c : s) {
    const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
                     (c >= 'A' && c <= 'F') || c == ':';
    if (!hex) return false;
  }
  return true;
}

}  // namespace

std::optional<common::TimePoint> parse_line_time(std::string_view line,
                                                 common::TimePoint day_start) {
  if (line.size() < 16) return std::nullopt;
  const int file_year = common::to_calendar(day_start).year;
  auto t = common::parse_syslog(line.substr(0, 15), file_year);
  if (!t) return std::nullopt;
  // Syslog timestamps carry no year.  A duplicate written moments after
  // midnight on New Year's Day can land in the previous year's Dec 31 file;
  // parsing it with the file's year puts it ~a year in the past.  Detect and
  // roll forward.
  if (*t < day_start - common::kDay) {
    t = common::parse_syslog(line.substr(0, 15), file_year + 1);
    if (!t) return std::nullopt;
  }
  return t;
}

std::optional<ParsedLine> FastLineParser::parse(
    std::string_view line, common::TimePoint day_start) const {
  const auto& k = simd::active_ops();
  // A "line" can never contain a line terminator; anything that does is
  // corrupted input (and the regex reference rejects it too, since '.'
  // excludes terminators).  One fused kernel pass checks both '\n' and '\r'
  // where the pre-SIMD code ran two separate finds.
  if (k.find_terminator(line.data(), line.size()) != line.size()) {
    return std::nullopt;
  }
  // Cheap pre-filter before any time parsing: the interesting lines all
  // contain either "NVRM: Xid" or "update_node:".
  const bool maybe_xid =
      k.find_substr(line.data(), line.size(), "NVRM: Xid", 9) != line.size();
  const bool maybe_lifecycle =
      !maybe_xid &&
      k.find_substr(line.data(), line.size(), "update_node:", 12) !=
          line.size();
  if (!maybe_xid && !maybe_lifecycle) return std::nullopt;

  const auto t = parse_line_time(line, day_start);
  if (!t) return std::nullopt;
  if (line.size() < 17 || line[15] != ' ') return std::nullopt;
  std::string_view rest = line.substr(16);
  const std::size_t host_end = k.find_byte(rest.data(), rest.size(), ' ');
  if (host_end == rest.size() || host_end == 0) return std::nullopt;
  const std::string_view host = rest.substr(0, host_end);
  if (!valid_token(host)) return std::nullopt;
  rest.remove_prefix(host_end + 1);

  if (maybe_xid) {
    if (!common::starts_with(rest, kXidPrefix)) return std::nullopt;
    rest.remove_prefix(kXidPrefix.size());
    const std::size_t pci_end = k.find_byte(rest.data(), rest.size(), ')');
    if (pci_end == rest.size()) return std::nullopt;
    const std::string_view pci = rest.substr(0, pci_end);
    if (!valid_pci(pci)) return std::nullopt;
    rest.remove_prefix(pci_end);
    if (!common::starts_with(rest, "): ")) return std::nullopt;
    rest.remove_prefix(3);
    std::uint16_t xid = 0;
    const auto* begin = rest.data();
    const auto* end = rest.data() + rest.size();
    auto [ptr, ec] = std::from_chars(begin, end, xid);
    if (ec != std::errc{} || ptr == begin) return std::nullopt;
    rest.remove_prefix(static_cast<std::size_t>(ptr - begin));
    if (common::starts_with(rest, ", ")) {
      rest.remove_prefix(2);
    } else if (!rest.empty()) {
      return std::nullopt;
    }
    XidRecord rec;
    rec.time = *t;
    rec.host = host;
    rec.pci = pci;
    rec.xid = xid;
    rec.detail = rest;
    return ParsedLine{rec};
  }

  // Lifecycle line: "slurmctld[<pid>]: update_node: node <host> ...", with
  // the pid strictly numeric (mirrors the reference regex's \[\d+\]).
  if (!common::starts_with(rest, kSlurmctldPrefix)) return std::nullopt;
  rest.remove_prefix(kSlurmctldPrefix.size());
  std::size_t digits = 0;
  while (digits < rest.size() && rest[digits] >= '0' && rest[digits] <= '9') {
    ++digits;
  }
  if (digits == 0) return std::nullopt;
  rest.remove_prefix(digits);
  if (!common::starts_with(rest, kUpdateNode)) return std::nullopt;
  rest.remove_prefix(kUpdateNode.size());
  const std::size_t node_end = k.find_byte(rest.data(), rest.size(), ' ');
  if (node_end == rest.size() || node_end == 0) return std::nullopt;
  const std::string_view node = rest.substr(0, node_end);
  if (!valid_token(node)) return std::nullopt;
  rest.remove_prefix(node_end + 1);

  LifecycleRecord rec;
  rec.time = *t;
  rec.host = std::string(node);
  if (common::starts_with(rest, kReasonDrain) &&
      rest.size() >= kDrainSuffix.size() &&
      rest.substr(rest.size() - kDrainSuffix.size()) == kDrainSuffix) {
    rec.kind = LifecycleRecord::Kind::kDrain;
    return ParsedLine{std::move(rec)};
  }
  if (rest == kStateResume) {
    rec.kind = LifecycleRecord::Kind::kResume;
    return ParsedLine{std::move(rec)};
  }
  return std::nullopt;
}

struct RegexLineParser::Impl {
  // "May  5 07:23:01 gpua042 kernel: NVRM: Xid (PCI:0000:27:00): 95, ..."
  std::regex xid{
      R"(^(\w{3} [ \d]\d \d\d:\d\d:\d\d) (\S+) kernel: NVRM: Xid \(PCI:([0-9A-Fa-f:]+)\): (\d+)(?:, (.*))?$)"};
  // drain / resume
  std::regex drain{
      R"(^(\w{3} [ \d]\d \d\d:\d\d:\d\d) (\S+) slurmctld\[\d+\]: update_node: node (\S+) reason set to: .* \[drain\]$)"};
  std::regex resume{
      R"(^(\w{3} [ \d]\d \d\d:\d\d:\d\d) (\S+) slurmctld\[\d+\]: update_node: node (\S+) state set to: resume$)"};
};

RegexLineParser::RegexLineParser() : impl_(std::make_shared<Impl>()) {}

std::optional<ParsedLine> RegexLineParser::parse(
    std::string_view line, common::TimePoint day_start) const {
  std::cmatch m;
  const char* begin = line.data();
  const char* end = line.data() + line.size();
  if (std::regex_match(begin, end, m, impl_->xid)) {
    const auto t = parse_line_time(line, day_start);
    if (!t) return std::nullopt;
    // cmatch sub-matches are pointer pairs into `line`, so the views borrow
    // from the caller's storage just like the fast parser's.
    const auto view = [](const std::csub_match& sm) {
      return std::string_view(sm.first,
                              static_cast<std::size_t>(sm.second - sm.first));
    };
    XidRecord rec;
    rec.time = *t;
    rec.host = view(m[2]);
    rec.pci = view(m[3]);
    const long long xid = common::parse_ll(view(m[4]));
    if (xid < 0 || xid > 0xffff) return std::nullopt;
    rec.xid = static_cast<std::uint16_t>(xid);
    rec.detail = m[5].matched ? view(m[5]) : std::string_view{};
    return ParsedLine{rec};
  }
  if (std::regex_match(begin, end, m, impl_->drain)) {
    const auto t = parse_line_time(line, day_start);
    if (!t) return std::nullopt;
    LifecycleRecord rec;
    rec.time = *t;
    rec.host = m[3].str();
    rec.kind = LifecycleRecord::Kind::kDrain;
    return ParsedLine{std::move(rec)};
  }
  if (std::regex_match(begin, end, m, impl_->resume)) {
    const auto t = parse_line_time(line, day_start);
    if (!t) return std::nullopt;
    LifecycleRecord rec;
    rec.time = *t;
    rec.host = m[3].str();
    rec.kind = LifecycleRecord::Kind::kResume;
    return ParsedLine{std::move(rec)};
  }
  return std::nullopt;
}

}  // namespace gpures::analysis
