#include "analysis/error_stats.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"

namespace gpures::analysis {

namespace {

void fill_period(PeriodStats& ps, std::uint64_t count, double hours,
                 std::int32_t nodes) {
  ps.count = count;
  ps.mtbe_system_h = common::mtbe(hours, count);
  ps.mtbe_per_node_h = ps.mtbe_system_h * static_cast<double>(nodes);
}

}  // namespace

double ErrorStats::mtbe_degradation_fraction() const {
  const double pre = total.pre.mtbe_per_node_h;
  const double op = total.op.mtbe_per_node_h;
  if (!std::isfinite(pre) || pre <= 0.0 || !std::isfinite(op)) return 0.0;
  return (pre - op) / pre;
}

double ErrorStats::memory_reliability_ratio_op() const {
  const auto mem = by_category.find(xid::Category::kMemory);
  if (mem == by_category.end()) return 0.0;
  const double mem_mtbe = mem->second.op.mtbe_per_node_h;
  const double hw_mtbe = non_memory.op.mtbe_per_node_h;
  if (!std::isfinite(mem_mtbe) || !std::isfinite(hw_mtbe) || hw_mtbe <= 0.0) {
    return 0.0;
  }
  return mem_mtbe / hw_mtbe;
}

double ErrorStats::gsp_degradation_ratio() const {
  const CodeStats* gsp = find(xid::Code::kGspRpcTimeout);
  if (gsp == nullptr) return 0.0;
  const double pre = gsp->pre.mtbe_per_node_h;
  const double op = gsp->op.mtbe_per_node_h;
  if (!std::isfinite(pre) || !std::isfinite(op) || op <= 0.0) return 0.0;
  return pre / op;
}

const CodeStats* ErrorStats::find(xid::Code code) const {
  for (const auto& cs : by_code) {
    if (cs.code == code) return &cs;
  }
  return nullptr;
}

ErrorStats compute_error_stats(const std::vector<CoalescedError>& errors,
                               const StudyPeriods& periods,
                               const ErrorStatsConfig& cfg) {
  ErrorStats out;
  out.periods = periods;
  out.cfg = cfg;

  const double pre_h = periods.pre.hours();
  const double op_h = periods.op.hours();

  struct Cell {
    std::uint64_t pre = 0;
    std::uint64_t op = 0;
  };
  std::map<xid::Code, Cell> per_code;
  // (gpu, code) -> per-period counts, for outlier detection.
  std::map<std::pair<std::uint64_t, xid::Code>, Cell> per_gpu_code;

  for (const auto& e : errors) {
    const auto period = periods.which(e.time);
    if (!period) continue;
    auto& cell = per_code[e.code];
    auto& gcell = per_gpu_code[{xid::gpu_key(e.gpu), e.code}];
    if (*period == PeriodId::kPreOp) {
      ++cell.pre;
      ++gcell.pre;
      out.raw_lines_pre += e.raw_lines;
    } else {
      ++cell.op;
      ++gcell.op;
      out.raw_lines_op += e.raw_lines;
    }
  }

  // ---- outlier detection ----
  std::map<std::pair<xid::Code, int>, std::uint64_t> outlier_counts;
  for (const auto& [key, gcell] : per_gpu_code) {
    const auto& [gpu_key, code] = key;
    const auto total_cell = per_code[code];
    const auto check = [&](std::uint64_t gpu_count, std::uint64_t code_count,
                           PeriodId period) {
      if (code_count == 0 || gpu_count < cfg.outlier_min) return;
      const double share = static_cast<double>(gpu_count) /
                           static_cast<double>(code_count);
      if (share < cfg.outlier_share) return;
      Outlier o;
      o.gpu = {static_cast<std::int32_t>(gpu_key >> 8),
               static_cast<std::int32_t>(gpu_key & 0xff)};
      o.code = code;
      o.period = period;
      o.count = gpu_count;
      o.share = share;
      out.outliers.push_back(o);
      outlier_counts[{code, period == PeriodId::kPreOp ? 0 : 1}] += gpu_count;
    };
    check(gcell.pre, total_cell.pre, PeriodId::kPreOp);
    check(gcell.op, total_cell.op, PeriodId::kOp);
  }

  // ---- per-code rows (paper Table I order) ----
  for (const xid::Code code : xid::report_order()) {
    CodeStats cs;
    cs.code = code;
    const auto it = per_code.find(code);
    const Cell cell = it == per_code.end() ? Cell{} : it->second;
    fill_period(cs.pre, cell.pre, pre_h, cfg.node_count);
    fill_period(cs.op, cell.op, op_h, cfg.node_count);
    out.by_code.push_back(cs);
  }

  // ---- derived "uncorrectable ECC" row: RRE + RRF ----
  {
    const auto rre = per_code.find(xid::Code::kRowRemapEvent);
    const auto rrf = per_code.find(xid::Code::kRowRemapFailure);
    const std::uint64_t pre = (rre != per_code.end() ? rre->second.pre : 0) +
                              (rrf != per_code.end() ? rrf->second.pre : 0);
    const std::uint64_t op = (rre != per_code.end() ? rre->second.op : 0) +
                             (rrf != per_code.end() ? rrf->second.op : 0);
    out.uncorrectable_ecc.code = xid::Code::kRowRemapEvent;
    fill_period(out.uncorrectable_ecc.pre, pre, pre_h, cfg.node_count);
    fill_period(out.uncorrectable_ecc.op, op, op_h, cfg.node_count);
  }

  // ---- rollups ----
  // The paper's aggregate counts treat the derived "uncorrectable ECC
  // memory errors" row (RRE + RRF) as a row of its own on top of the RRE and
  // RRF rows — its published totals (42,405 pre-op, 14,821 op) and the
  // memory-category MTBE behind the 160x comparison only reconcile with that
  // convention, so we follow it.
  std::map<xid::Category, Cell> cat_cells;
  cat_cells[xid::Category::kMemory].pre += out.uncorrectable_ecc.pre.count;
  cat_cells[xid::Category::kMemory].op += out.uncorrectable_ecc.op.count;
  Cell non_mem;
  Cell total{out.uncorrectable_ecc.pre.count, out.uncorrectable_ecc.op.count};
  Cell total_excl = total;
  for (const auto& [code, cell] : per_code) {
    const auto desc = xid::describe(code);
    if (!desc) continue;
    auto& c = cat_cells[desc->category];
    c.pre += cell.pre;
    c.op += cell.op;
    if (desc->category != xid::Category::kMemory) {
      non_mem.pre += cell.pre;
      non_mem.op += cell.op;
    }
    total.pre += cell.pre;
    total.op += cell.op;

    std::uint64_t excl_pre = cell.pre;
    std::uint64_t excl_op = cell.op;
    if (cfg.exclude_outliers_from_totals) {
      const auto opre = outlier_counts.find({code, 0});
      const auto oop = outlier_counts.find({code, 1});
      if (opre != outlier_counts.end()) excl_pre -= std::min(excl_pre, opre->second);
      if (oop != outlier_counts.end()) excl_op -= std::min(excl_op, oop->second);
    }
    total_excl.pre += excl_pre;
    total_excl.op += excl_op;
  }
  for (const auto& [cat, cell] : cat_cells) {
    CodeStats cs;
    cs.code = xid::Code::kMmuError;  // unused for rollups
    fill_period(cs.pre, cell.pre, pre_h, cfg.node_count);
    fill_period(cs.op, cell.op, op_h, cfg.node_count);
    out.by_category[cat] = cs;
  }
  fill_period(out.non_memory.pre, non_mem.pre, pre_h, cfg.node_count);
  fill_period(out.non_memory.op, non_mem.op, op_h, cfg.node_count);
  fill_period(out.total.pre, total_excl.pre, pre_h, cfg.node_count);
  fill_period(out.total.op, total_excl.op, op_h, cfg.node_count);
  fill_period(out.total_with_outliers.pre, total.pre, pre_h, cfg.node_count);
  fill_period(out.total_with_outliers.op, total.op, op_h, cfg.node_count);

  std::sort(out.outliers.begin(), out.outliers.end(),
            [](const Outlier& a, const Outlier& b) { return a.count > b.count; });
  return out;
}

}  // namespace gpures::analysis
