#include "analysis/availability.h"

#include <algorithm>
#include <map>

namespace gpures::analysis {

namespace {

/// Pair one host's records (already grouped, any order) into intervals,
/// appending accepted durations/intervals in drain order.
struct HostAccum {
  std::vector<Unavailability> intervals;
  std::vector<double> durations;
  std::uint64_t unpaired_drains = 0;
  std::uint64_t unpaired_resumes = 0;
};

void pair_host(const std::string& host, std::vector<LifecycleRecord>& recs,
               const AvailabilityConfig& cfg, HostAccum& acc) {
  std::sort(recs.begin(), recs.end(),
            [](const LifecycleRecord& a, const LifecycleRecord& b) {
              return a.time < b.time;
            });
  bool open = false;
  common::TimePoint drain_at = 0;
  for (const auto& r : recs) {
    if (r.kind == LifecycleRecord::Kind::kDrain) {
      if (open) ++acc.unpaired_drains;  // drain while already draining
      open = true;
      drain_at = r.time;
    } else {
      if (!open) {
        ++acc.unpaired_resumes;
        continue;
      }
      open = false;
      if (!cfg.period.contains(drain_at)) continue;
      Unavailability u;
      u.host = host;
      u.begin = drain_at;
      u.end = r.time;
      if (u.hours() < 0.0 || u.hours() > cfg.max_interval_h) continue;
      acc.durations.push_back(u.hours());
      acc.intervals.push_back(std::move(u));
    }
  }
  if (open) ++acc.unpaired_drains;  // study ended while down
}

}  // namespace

double AvailabilityStats::availability(double mttf_h) const {
  if (mttf_h <= 0.0 || mttr_h < 0.0) return 1.0;
  return mttf_h / (mttf_h + mttr_h);
}

double AvailabilityStats::downtime_minutes_per_day(double availability) {
  return (1.0 - availability) * 24.0 * 60.0;
}

AvailabilityStats compute_availability(
    const std::vector<LifecycleRecord>& lifecycle,
    const AvailabilityConfig& cfg, common::ThreadPool* pool) {
  AvailabilityStats out;
  out.cfg = cfg;

  // Group records per host; the map fixes the host processing order, and
  // within a host records keep input order, independent of sharding.
  std::map<std::string, std::vector<LifecycleRecord>> by_host;
  for (const auto& r : lifecycle) by_host[r.host].push_back(r);

  std::vector<std::pair<const std::string*, std::vector<LifecycleRecord>*>>
      hosts;
  hosts.reserve(by_host.size());
  for (auto& [host, recs] : by_host) hosts.push_back({&host, &recs});

  // Shard contiguous host ranges (hosts are in map = sorted order); each
  // shard pairs its hosts independently.  Concatenating shard outputs in
  // shard order reproduces the serial host-by-host emission sequence, so the
  // duration vector — and every float folded over it — is bit-identical.
  const std::size_t shards = pool != nullptr ? pool->size() : 1;
  std::vector<HostAccum> accum(shards);
  const auto run_shard = [&](std::size_t s) {
    const std::size_t lo = hosts.size() * s / shards;
    const std::size_t hi = hosts.size() * (s + 1) / shards;
    for (std::size_t i = lo; i < hi; ++i) {
      pair_host(*hosts[i].first, *hosts[i].second, cfg, accum[s]);
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(shards, [&](std::size_t s, std::size_t) {
      run_shard(s);
    });
  } else {
    run_shard(0);
  }

  std::vector<double> durations;
  for (auto& a : accum) {
    out.unpaired_drains += a.unpaired_drains;
    out.unpaired_resumes += a.unpaired_resumes;
    durations.insert(durations.end(), a.durations.begin(), a.durations.end());
    out.intervals.insert(out.intervals.end(),
                         std::make_move_iterator(a.intervals.begin()),
                         std::make_move_iterator(a.intervals.end()));
  }
  // Left fold in emission order — the same accumulation sequence as pairing
  // and summing in one serial pass.
  for (const double h : durations) out.total_node_hours_lost += h;

  std::sort(out.intervals.begin(), out.intervals.end(),
            [](const Unavailability& a, const Unavailability& b) {
              return a.begin < b.begin;
            });
  out.duration_hours = common::summarize(durations);
  out.mttr_h = out.duration_hours.mean;
  out.ecdf = common::make_ecdf(durations, 60);
  return out;
}

}  // namespace gpures::analysis
