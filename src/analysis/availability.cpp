#include "analysis/availability.h"

#include <algorithm>
#include <map>

namespace gpures::analysis {

double AvailabilityStats::availability(double mttf_h) const {
  if (mttf_h <= 0.0 || mttr_h < 0.0) return 1.0;
  return mttf_h / (mttf_h + mttr_h);
}

double AvailabilityStats::downtime_minutes_per_day(double availability) {
  return (1.0 - availability) * 24.0 * 60.0;
}

AvailabilityStats compute_availability(
    const std::vector<LifecycleRecord>& lifecycle,
    const AvailabilityConfig& cfg) {
  AvailabilityStats out;
  out.cfg = cfg;

  // Group records per host, sort by time, and pair drain -> next resume.
  std::map<std::string, std::vector<LifecycleRecord>> by_host;
  for (const auto& r : lifecycle) by_host[r.host].push_back(r);

  std::vector<double> durations;
  for (auto& [host, recs] : by_host) {
    std::sort(recs.begin(), recs.end(),
              [](const LifecycleRecord& a, const LifecycleRecord& b) {
                return a.time < b.time;
              });
    bool open = false;
    common::TimePoint drain_at = 0;
    for (const auto& r : recs) {
      if (r.kind == LifecycleRecord::Kind::kDrain) {
        if (open) ++out.unpaired_drains;  // drain while already draining
        open = true;
        drain_at = r.time;
      } else {
        if (!open) {
          ++out.unpaired_resumes;
          continue;
        }
        open = false;
        if (!cfg.period.contains(drain_at)) continue;
        Unavailability u;
        u.host = host;
        u.begin = drain_at;
        u.end = r.time;
        if (u.hours() < 0.0 || u.hours() > cfg.max_interval_h) continue;
        durations.push_back(u.hours());
        out.total_node_hours_lost += u.hours();
        out.intervals.push_back(std::move(u));
      }
    }
    if (open) ++out.unpaired_drains;  // study ended while down
  }

  std::sort(out.intervals.begin(), out.intervals.end(),
            [](const Unavailability& a, const Unavailability& b) {
              return a.begin < b.begin;
            });
  out.duration_hours = common::summarize(durations);
  out.mttr_h = out.duration_hours.mean;
  out.ecdf = common::make_ecdf(durations, 60);
  return out;
}

}  // namespace gpures::analysis
