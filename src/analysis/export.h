// Machine-readable export of every analysis artifact: CSV (one file per
// table/series) and a single JSON document, so external tooling (notebooks,
// plotting) can consume reproduction results without parsing ASCII tables.
#pragma once

#include <iosfwd>
#include <string>

#include "analysis/availability.h"
#include "analysis/error_stats.h"
#include "analysis/job_impact.h"
#include "analysis/job_stats.h"

namespace gpures::analysis {

// ---- CSV: one writer per artifact (header + rows) ----

/// Table I rows (per-code + derived + rollups + totals).
void write_table1_csv(std::ostream& os, const ErrorStats& stats);

/// Table II rows.
void write_table2_csv(std::ostream& os, const JobImpact& impact);

/// Table III rows.
void write_table3_csv(std::ostream& os, const JobStats& stats);

/// Fig. 2 ECDF series (hours, cumulative fraction).
void write_fig2_csv(std::ostream& os, const AvailabilityStats& stats);

// ---- JSON: everything in one document ----

struct ExportBundle {
  const ErrorStats* error_stats = nullptr;       ///< optional
  const JobStats* job_stats = nullptr;           ///< optional
  const JobImpact* job_impact = nullptr;         ///< optional
  const AvailabilityStats* availability = nullptr;  ///< optional
  double mttf_h = 0.0;  ///< used with availability when present
};

/// Serialize the provided artifacts (missing ones are omitted).
std::string to_json(const ExportBundle& bundle);

}  // namespace gpures::analysis
