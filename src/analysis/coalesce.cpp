#include "analysis/coalesce.h"

#include <algorithm>
#include <stdexcept>

#include "xid/xid.h"

namespace gpures::analysis {

namespace {

std::uint64_t key_of(xid::GpuId gpu, xid::Code code) {
  return (xid::gpu_key(gpu) << 16) | xid::to_number(code);
}

}  // namespace

Coalescer::Coalescer(CoalescerConfig cfg, Sink sink)
    : cfg_(cfg), sink_(std::move(sink)) {
  if (!sink_) throw std::invalid_argument("Coalescer: null sink");
  if (cfg_.window < 0) throw std::invalid_argument("Coalescer: negative window");
}

void Coalescer::add(const XidObservation& obs) {
  ++in_;
  const auto desc = xid::describe(obs.xid);
  if (cfg_.filter_to_catalog) {
    if (!desc || desc->excluded_from_study) return;
  }
  xid::Code code = desc ? desc->code : static_cast<xid::Code>(obs.xid);
  if (cfg_.merge_families && desc) code = xid::merge_key(code);

  const std::uint64_t key = key_of(obs.gpu, code);
  auto it = open_.find(key);
  if (it != open_.end()) {
    auto& cur = it->second.err;
    if (obs.time <= cur.time + cfg_.window) {
      // Merge into the open error; keep the first occurrence as the error.
      // A record stamped before the latest merged record violates the
      // nondecreasing-time input contract (any record older than an already
      // *emitted* window would land here too, since the merge condition is
      // only an upper bound) — count it, and in debug mode fail loudly.
      if (obs.time < cur.last) {
        ++out_of_order_;
        if (cfg_.enforce_order) {
          throw std::logic_error(
              "Coalescer: out-of-order observation for open (GPU, code) key");
        }
      }
      ++cur.raw_lines;
      cur.last = std::max(cur.last, obs.time);
      return;
    }
    // Window expired: emit and start a new error in place.
    ++out_;
    sink_(cur);
    cur.time = obs.time;
    cur.last = obs.time;
    cur.raw_xid = obs.xid;
    cur.raw_lines = 1;
    return;
  }
  CoalescedError err;
  err.time = obs.time;
  err.last = obs.time;
  err.gpu = obs.gpu;
  err.code = code;
  err.raw_xid = obs.xid;
  err.raw_lines = 1;
  open_.emplace(key, Open{err});
}

void Coalescer::flush() {
  // Emit in deterministic (time, gpu, code) order.
  std::vector<CoalescedError> remaining;
  remaining.reserve(open_.size());
  for (auto& [k, o] : open_) remaining.push_back(o.err);
  open_.clear();
  std::sort(remaining.begin(), remaining.end(),
            [](const CoalescedError& a, const CoalescedError& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.gpu != b.gpu) return a.gpu < b.gpu;
              return xid::to_number(a.code) < xid::to_number(b.code);
            });
  for (const auto& e : remaining) {
    ++out_;
    sink_(e);
  }
}

CoalescerState Coalescer::state() const {
  CoalescerState st;
  st.records_in = in_;
  st.errors_out = out_;
  st.out_of_order = out_of_order_;
  st.open.reserve(open_.size());
  for (const auto& [k, o] : open_) st.open.push_back(o.err);
  // (gpu, code) is the map key, so it orders the snapshot uniquely no matter
  // how the unordered_map iterates.
  std::sort(st.open.begin(), st.open.end(),
            [](const CoalescedError& a, const CoalescedError& b) {
              if (a.gpu != b.gpu) return a.gpu < b.gpu;
              return xid::to_number(a.code) < xid::to_number(b.code);
            });
  return st;
}

void Coalescer::restore(const CoalescerState& state) {
  in_ = state.records_in;
  out_ = state.errors_out;
  out_of_order_ = state.out_of_order;
  open_.clear();
  for (const auto& err : state.open) {
    open_.emplace(key_of(err.gpu, err.code), Open{err});
  }
}

std::vector<CoalescedError> coalesce_all(std::vector<XidObservation> obs,
                                         const CoalescerConfig& cfg) {
  std::sort(obs.begin(), obs.end(),
            [](const XidObservation& a, const XidObservation& b) {
              return a.time < b.time;
            });
  std::vector<CoalescedError> out;
  Coalescer c(cfg, [&out](const CoalescedError& e) { out.push_back(e); });
  for (const auto& o : obs) c.add(o);
  c.flush();
  // The streaming coalescer emits an error only when its window closes or at
  // flush, so output order is not globally sorted; normalize here.
  std::sort(out.begin(), out.end(),
            [](const CoalescedError& a, const CoalescedError& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.gpu != b.gpu) return a.gpu < b.gpu;
              return xid::to_number(a.code) < xid::to_number(b.code);
            });
  return out;
}

}  // namespace gpures::analysis
