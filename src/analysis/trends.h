// Extended characterization beyond the paper's tables: temporal trends,
// burstiness, and spatial concentration of GPU errors.  These are the
// standard follow-up analyses in large-scale field studies (Blue Waters,
// Titan, Summit) and directly extend the reproduced paper's findings:
//
//  * monthly error-rate series expose the GSP degradation ramp after the
//    system entered production;
//  * burstiness metrics (inter-arrival coefficient of variation, Fano
//    factor) quantify how far each family departs from a Poisson process —
//    NVLink storms and the uncontained episode are extreme cases;
//  * spatial concentration (top-k share, Gini coefficient) shows that a few
//    "lemon" devices dominate — the basis of the SREs' replace-early policy.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/coalesce.h"
#include "analysis/periods.h"
#include "common/thread_pool.h"

namespace gpures::analysis {

/// One month of a family's error series.
struct MonthlyPoint {
  int year = 0;
  int month = 0;             ///< 1..12
  std::uint64_t count = 0;
  double errors_per_day = 0.0;

  std::string label() const;  ///< "2023-04"
};

/// Monthly error counts for one XID family (or all families combined).
std::vector<MonthlyPoint> monthly_series(
    const std::vector<CoalescedError>& errors, const Period& window,
    std::optional<xid::Code> family = std::nullopt);

/// Burstiness of a family's arrival process.
struct Burstiness {
  std::uint64_t events = 0;
  double mean_interarrival_h = 0.0;
  /// Coefficient of variation of inter-arrival times; 1 for Poisson,
  /// >> 1 for bursty/clustered arrivals.
  double interarrival_cv = 0.0;
  /// Fano factor of daily counts (variance/mean); 1 for Poisson.
  double daily_fano = 0.0;
  /// Burstiness index B = (cv - 1) / (cv + 1) in [-1, 1]; 0 for Poisson.
  double burstiness_index = 0.0;
};

Burstiness compute_burstiness(const std::vector<CoalescedError>& errors,
                              const Period& window, xid::Code family);

/// Spatial concentration of a family's errors across GPUs.
struct SpatialConcentration {
  std::uint64_t gpus_affected = 0;
  std::uint64_t events = 0;
  double top1_share = 0.0;   ///< share of errors from the worst GPU
  double top5_share = 0.0;
  /// Gini coefficient over per-GPU error counts of *affected* GPUs
  /// (0 = uniform, ->1 = fully concentrated).
  double gini = 0.0;
  /// GPUs needed to cover 80% of the errors.
  std::uint64_t gpus_for_80pct = 0;
};

SpatialConcentration compute_concentration(
    const std::vector<CoalescedError>& errors, const Period& window,
    std::optional<xid::Code> family = std::nullopt);

/// Cross-family propagation: does family A's occurrence raise the short-term
/// probability of family B on the same GPU?  (Paper finding iii: PMU SPI
/// communication errors "exhibited high correlations with MMU errors".)
struct PropagationCorrelation {
  std::uint64_t trigger_events = 0;   ///< A errors observed
  std::uint64_t followed = 0;         ///< A errors with >=1 B within horizon
  double p_follow = 0.0;              ///< followed / triggers
  /// Baseline: probability a random same-length window on the same GPU
  /// contains a B error (from B's per-GPU rate).
  double p_baseline = 0.0;
  /// Lift = p_follow / p_baseline; >> 1 indicates propagation.
  double lift = 0.0;
};

/// Measure P(B within `horizon` after A on the same GPU) against the rate
/// baseline.  Errors may be in any order.
PropagationCorrelation compute_propagation(
    const std::vector<CoalescedError>& errors, const Period& window,
    xid::Code trigger, xid::Code effect, common::Duration horizon = 1800);

/// Render a compact trends report (monthly GSP ramp, burstiness table,
/// concentration table, PMU->MMU propagation) for the families that matter
/// in the paper.  With a pool, the independent statistics run as parallel
/// tasks; the report is assembled in fixed order, so its bytes match a
/// serial render exactly.
std::string render_trends(const std::vector<CoalescedError>& errors,
                          const StudyPeriods& periods,
                          common::ThreadPool* pool = nullptr);

}  // namespace gpures::analysis
