#include "analysis/campaign.h"

#include <algorithm>

#include "logsys/syslog.h"
#include "obs/trace.h"
#include "slurm/accounting.h"

namespace gpures::analysis {

CampaignConfig CampaignConfig::delta_a100() { return CampaignConfig{}; }

CampaignConfig CampaignConfig::quick() {
  CampaignConfig c;
  c.faults = cluster::FaultConfig::test_config();
  // ~20k jobs over the 60-day operational slice of the quick window.
  c.workload_scale =
      20000.0 / (c.workload.op_jobs * (c.faults.op_hours() / 21528.0));
  c.noise_lines_per_day = 50.0;
  return c;
}

// Replays one merged shard event into the consumer-side stack.  This is the
// serial tail of the sharded simulation: by the time an event gets here its
// global position is fixed by the (time, node, seq) merge, so rendering and
// job-layer propagation are pure functions of the merged stream.
void DeltaCampaign::apply_event(const cluster::SimEvent& e) {
  switch (e.kind) {
    case cluster::SimEvent::Kind::kRawXid: {
      // pci_bus returns a 10-char string — SSO, so still allocation-free.
      const auto pci = topo_.pci_bus({e.node, e.slot});
      log_stream_->append_with(e.time, [&](std::string& out) {
        logsys::append_xid_line(out, e.time, topo_.node(e.node).name, pci,
                                e.code, e.detail);
      });
      ++raw_lines_;
      break;
    }
    case cluster::SimEvent::Kind::kError:
      if (failure_) failure_->on_error(e.note);
      break;
    case cluster::SimEvent::Kind::kDrainBegin:
      log_stream_->append_with(e.time, [&](std::string& out) {
        logsys::append_drain_line(out, e.time, topo_.node(e.node).name);
      });
      ++raw_lines_;
      if (failure_) failure_->on_drain_begin(e.node, e.time);
      break;
    case cluster::SimEvent::Kind::kNodeDown:
      if (failure_) failure_->on_node_down(e.node, e.time);
      break;
    case cluster::SimEvent::Kind::kNodeUp:
      log_stream_->append_with(e.time, [&](std::string& out) {
        logsys::append_resume_line(out, e.time, topo_.node(e.node).name);
      });
      ++raw_lines_;
      if (failure_) failure_->on_node_up(e.node, e.time);
      break;
  }
}

DeltaCampaign::DeltaCampaign(CampaignConfig cfg)
    : cfg_(std::move(cfg)),
      periods_(StudyPeriods::make(cfg_.faults.study_begin, cfg_.faults.op_begin,
                                  cfg_.faults.study_end)),
      topo_(cfg_.spec),
      engine_(cfg_.faults.study_begin),
      noise_rng_(common::Rng(cfg_.seed).fork("noise")) {
  common::Rng root(cfg_.seed);

  cfg_.pipeline.periods = periods_;
  if (cfg_.pipeline.metrics == nullptr) cfg_.pipeline.metrics = cfg_.metrics;
  pipeline_ = std::make_unique<AnalysisPipeline>(topo_, cfg_.pipeline);
  engine_.set_metrics(cfg_.metrics);

  log_stream_ = std::make_unique<logsys::DayLogStream>(
      [this](common::TimePoint day_start, logsys::DayBuffer&& day) {
        if (dataset_ != nullptr) dataset_->write_day(day_start, day);
        pipeline_->ingest_day(day_start, std::move(day));
      });

  cluster::ShardedClusterSim::Options sim_opts;
  sim_opts.shards = cfg_.sim_shards;
  // Shards run on the pipeline's pool when one exists (--threads > 0); the
  // shard structure itself never depends on the pool, so thread count only
  // changes wall-clock, never output.
  sim_opts.pool = pipeline_->pool();
  sim_ = std::make_unique<cluster::ShardedClusterSim>(topo_, cfg_.faults,
                                                      root.fork("sim"),
                                                      sim_opts);
  sim_->set_metrics(cfg_.metrics);

  if (cfg_.with_jobs) {
    slurm::SchedulerConfig sched_cfg = cfg_.scheduler;
    sched_cfg.p_user_failed = cfg_.workload.p_user_failed;
    sched_cfg.p_cancelled = cfg_.workload.p_cancelled;
    scheduler_ = std::make_unique<slurm::Scheduler>(engine_, topo_, sched_cfg,
                                                    root.fork("sched"));
    scheduler_->set_metrics(cfg_.metrics);
    auto wl_cfg = cfg_.workload;
    wl_cfg.op_jobs *= cfg_.workload_scale;
    workload_ = std::make_unique<slurm::WorkloadModel>(wl_cfg,
                                                       root.fork("workload"));
    failure_ = std::make_unique<slurm::FailurePropagator>(
        *scheduler_, cfg_.failure, root.fork("failure"));
    sim_->set_busy_snapshot_provider(
        [this](std::vector<common::TimePoint>& out) {
          scheduler_->snapshot_busy_until(out);
        });
  }
}

DeltaCampaign::~DeltaCampaign() = default;

void DeltaCampaign::set_progress_reporter(obs::ProgressReporter* reporter) {
  if (reporter == nullptr) {
    progress_ = nullptr;
    return;
  }
  progress_ = [reporter](int done, int total) {
    reporter->update(static_cast<std::size_t>(done),
                     static_cast<std::size_t>(total));
  };
}

const std::vector<slurm::JobRecord>& DeltaCampaign::job_records() const {
  static const std::vector<slurm::JobRecord> kEmpty;
  return scheduler_ ? scheduler_->records() : kEmpty;
}

std::uint64_t DeltaCampaign::jobs_killed_by_errors() const {
  return failure_ ? failure_->jobs_killed() : 0;
}

void DeltaCampaign::schedule_next_arrival(common::TimePoint from) {
  const auto t = workload_->next_arrival(from, cfg_.faults.study_begin,
                                         cfg_.faults.op_begin,
                                         cfg_.faults.study_end);
  if (t >= cfg_.faults.study_end) return;
  engine_.schedule_at(t, [this] {
    scheduler_->submit(workload_->draw_job(engine_.now()));
    schedule_next_arrival(engine_.now());
  });
}

void DeltaCampaign::emit_noise_for_day(common::TimePoint day_start) {
  const auto n = noise_rng_.poisson(cfg_.noise_lines_per_day);
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto t = day_start + static_cast<common::Duration>(
                                   noise_rng_.uniform_u64(common::kDay));
    const auto node = static_cast<std::int32_t>(
        noise_rng_.uniform_u64(static_cast<std::uint64_t>(topo_.node_count())));
    log_stream_->append_with(t, [&](std::string& out) {
      logsys::append_noise_line(out, noise_rng_, t, topo_.node(node).name);
    });
    ++raw_lines_;
  }
}

void DeltaCampaign::run() {
  if (ran_) return;
  ran_ = true;
  OBS_SPAN("campaign.run");

  sim_->start();
  if (workload_) schedule_next_arrival(cfg_.faults.study_begin);

  const auto begin = cfg_.faults.study_begin;
  const auto end = cfg_.faults.study_end;
  const int total_days =
      static_cast<int>(common::day_index(end) - common::day_index(begin));
  int day = 0;
  for (common::TimePoint t = begin; t < end; t += common::kDay, ++day) {
    const common::TimePoint day_end = std::min(t + common::kDay, end);
    // Day epoch: freeze the scheduler's busy snapshot, let every shard
    // simulate the day against it (in parallel when a pool is set), then
    // replay the merged event stream into the consumer engine so scheduler,
    // workload, and failure propagation advance in lockstep with the faults.
    sim_->begin_day();
    const auto events = sim_->advance_to(day_end);
    for (const auto& e : events) {
      // Raw records may be future-dated past day_end (duplicate-line and
      // NVLink offsets); clamp so the consumer clock never leaves the epoch.
      engine_.run_until(std::min(e.time, day_end));
      apply_event(e);
    }
    engine_.run_until(day_end);
    emit_noise_for_day(t);
    log_stream_->flush_through(engine_.now());
    if (progress_ && (day % 64 == 0 || day + 1 == total_days)) {
      progress_(day + 1, total_days);
    }
  }

  if (scheduler_) scheduler_->finalize(end);
  log_stream_->finalize();

  if (scheduler_) {
    OBS_SPAN("campaign.ingest_accounting");
    const auto header = slurm::accounting_header();
    if (dataset_ != nullptr) dataset_->write_accounting_line(header);
    pipeline_->ingest_accounting_line(header);
    std::string line;  // reused scratch: no per-record allocation
    for (const auto& rec : scheduler_->records()) {
      line.clear();
      slurm::append_accounting_line(line, rec, topo_);
      if (dataset_ != nullptr) dataset_->write_accounting_line(line);
      pipeline_->ingest_accounting_line(line);
    }
  }
  pipeline_->finish();
  if (dataset_ != nullptr) dataset_->finalize().throw_if_error();
}

}  // namespace gpures::analysis
