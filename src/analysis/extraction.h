// Stage I: raw-log extraction.
//
// Consumes consolidated per-day syslog text and extracts (a) NVRM XID
// error records and (b) node drain/resume lifecycle records, rejecting all
// other lines.  Two interchangeable matchers are provided:
//
//  * FastLineParser — a hand-rolled scanner (the production path);
//  * RegexLineParser — a std::regex reference implementation mirroring the
//    paper's "RegEX pattern-matching for filtering system logs".
//
// Property tests assert the two agree line-for-line; the pipeline benchmark
// compares their throughput (ablation A3 in DESIGN.md).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>

#include "common/time.h"

namespace gpures::analysis {

/// A parsed NVRM XID line.  The text fields are views borrowed from the
/// input line (zero-copy Stage I): they are valid only as long as the line's
/// backing storage — consume or resolve them before the next line.  XID
/// lines outnumber everything the pipeline keeps, so this is the record type
/// that must not allocate.
struct XidRecord {
  common::TimePoint time = 0;
  std::string_view host;
  std::string_view pci;   ///< e.g. "0000:27:00"
  std::uint16_t xid = 0;  ///< raw XID number (not yet validated/merged)
  std::string_view detail;  ///< payload after "<xid>, "
};

/// A parsed node lifecycle line (slurmctld drain / resume).  Keeps an owned
/// host string: lifecycle records are rare and stored long-term by the
/// availability analysis, so they must outlive the parsed line.
struct LifecycleRecord {
  enum class Kind : std::uint8_t { kDrain, kResume };
  common::TimePoint time = 0;
  std::string host;
  Kind kind = Kind::kDrain;
};

using ParsedLine = std::variant<XidRecord, LifecycleRecord>;

/// Shared interface so the pipeline can swap matchers.
class LineParser {
 public:
  virtual ~LineParser() = default;

  /// `day_start` provides the year context that classic syslog timestamps
  /// lack (day files are consolidated per calendar day).
  virtual std::optional<ParsedLine> parse(std::string_view line,
                                          common::TimePoint day_start) const = 0;
};

/// Hand-rolled scanner; no allocation on the reject path.
class FastLineParser final : public LineParser {
 public:
  std::optional<ParsedLine> parse(std::string_view line,
                                  common::TimePoint day_start) const override;
};

/// std::regex reference implementation.
class RegexLineParser final : public LineParser {
 public:
  RegexLineParser();
  std::optional<ParsedLine> parse(std::string_view line,
                                  common::TimePoint day_start) const override;

 private:
  struct Impl;
  std::shared_ptr<const Impl> impl_;
};

/// Parse the syslog timestamp at the head of `line` using the year of
/// `day_start`, correcting for the Dec->Jan rollover (a line stamped Jan 1
/// can sit in a Dec 31 day file when duplicates straddle midnight).
std::optional<common::TimePoint> parse_line_time(std::string_view line,
                                                 common::TimePoint day_start);

}  // namespace gpures::analysis
