// Campaign driver: one-call "simulate Delta 2022-2025, emit raw artifacts,
// run the analysis pipeline over them".
//
// The campaign owns the sharded cluster simulator, a consumer DES engine
// hosting the Slurm workload/scheduler/failure-propagation stack, and the
// analysis pipeline.  Each day: the node-range shards simulate the day
// independently (in parallel when the pipeline has a worker pool), their
// merged event stream replays into the consumer engine, and the day's raw
// lines flow day-bucketed stream -> Stage I parser (the log is never held in
// memory whole); accounting records round-trip through their textual sacct
// form.  Ground truth is retained solely for validation.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "analysis/dataset.h"
#include "analysis/pipeline.h"
#include "cluster/fault_config.h"
#include "cluster/sharded_sim.h"
#include "cluster/topology.h"
#include "des/event_queue.h"
#include "logsys/log_store.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "slurm/failure_model.h"
#include "slurm/scheduler.h"
#include "slurm/workload_model.h"

namespace gpures::analysis {

struct CampaignConfig {
  cluster::ClusterSpec spec = cluster::ClusterSpec::delta_a100();
  cluster::FaultConfig faults = cluster::FaultConfig::delta_a100();
  slurm::WorkloadConfig workload = slurm::WorkloadConfig::delta_a100();
  slurm::FailureModelConfig failure;
  slurm::SchedulerConfig scheduler;
  PipelineConfig pipeline;  ///< periods are overridden from `faults`
  std::uint64_t seed = 42;
  bool with_jobs = true;
  /// Cluster-wide non-XID noise lines per day (exercises Stage-I rejection).
  double noise_lines_per_day = 200.0;
  /// Multiplies the workload's expected job count (quick runs use << 1).
  double workload_scale = 1.0;
  /// Simulation shard count; 0 picks one shard per ~16 nodes (capped at
  /// 256).  Changing it changes per-shard RNG streams (a different but
  /// equally valid sample path); for a fixed value, results are
  /// byte-identical at any pipeline.num_threads.
  std::int32_t sim_shards = 0;
  /// Observability registry shared by every layer of the campaign (DES
  /// engine, cluster sim, fault injector, scheduler, pipeline).  Null runs
  /// with the same code paths but no metric emission from the sim layers;
  /// the pipeline still keeps its private registry.  Metrics never feed
  /// back into simulation or analysis results.
  obs::MetricsRegistry* metrics = nullptr;

  /// Full paper-scale campaign (1170 days, 106 nodes, ~1.4M jobs).
  static CampaignConfig delta_a100();
  /// Fast campaign for tests/examples: 90-day window, ~20k jobs.
  static CampaignConfig quick();
};

class DeltaCampaign {
 public:
  explicit DeltaCampaign(CampaignConfig cfg);
  ~DeltaCampaign();

  /// Optional progress hook: (days simulated, total days).
  void set_progress(std::function<void(int, int)> cb) { progress_ = std::move(cb); }

  /// Route day-level progress to an obs reporter (preferred over the raw
  /// callback; throttling and terminal handling live in the reporter).
  /// Must outlive run().
  void set_progress_reporter(obs::ProgressReporter* reporter);

  /// Optional: tee every raw artifact (day logs, accounting dump) to a
  /// dataset directory while the campaign runs.  Must outlive run().
  void set_dataset_writer(DatasetWriter* writer) { dataset_ = writer; }

  /// Run the full campaign; idempotent (second call is a no-op).
  void run();

  // ---- results ----
  const AnalysisPipeline& pipeline() const { return *pipeline_; }
  const xid::GroundTruth& ground_truth() const { return sim_->ground_truth(); }
  const std::vector<slurm::JobRecord>& job_records() const;
  const cluster::Topology& topology() const { return topo_; }
  const CampaignConfig& config() const { return cfg_; }
  const StudyPeriods& periods() const { return periods_; }
  std::uint64_t raw_log_lines() const { return raw_lines_; }
  std::uint64_t jobs_killed_by_errors() const;
  /// Effective simulation shard count (resolves sim_shards = 0).
  std::int32_t sim_shards() const { return sim_->shard_count(); }

 private:
  CampaignConfig cfg_;
  StudyPeriods periods_;
  cluster::Topology topo_;
  des::Engine engine_;  ///< consumer engine: scheduler/workload/failure clock
  std::unique_ptr<AnalysisPipeline> pipeline_;
  std::unique_ptr<cluster::ShardedClusterSim> sim_;
  std::unique_ptr<slurm::Scheduler> scheduler_;
  std::unique_ptr<slurm::WorkloadModel> workload_;
  std::unique_ptr<slurm::FailurePropagator> failure_;
  std::unique_ptr<logsys::DayLogStream> log_stream_;
  common::Rng noise_rng_;
  DatasetWriter* dataset_ = nullptr;
  std::function<void(int, int)> progress_;
  std::uint64_t raw_lines_ = 0;
  bool ran_ = false;

  void schedule_next_arrival(common::TimePoint from);
  void emit_noise_for_day(common::TimePoint day_start);
  /// Replay one merged shard event into the consumer-side stack: render raw
  /// lines, forward error/lifecycle notifications to the job layer.
  void apply_event(const cluster::SimEvent& e);
};

}  // namespace gpures::analysis
