#include "analysis/job_stats.h"

#include <algorithm>
#include <array>

#include "common/strings.h"

namespace gpures::analysis {

std::span<const PackedGpu> JobTable::gpus_of(const JobView& j) const {
  if (j.spill_index >= 0) {
    const auto& v = spill[static_cast<std::size_t>(j.spill_index)];
    return {v.data(), v.size()};
  }
  return {j.gpus_inline.data(), static_cast<std::size_t>(j.inline_count)};
}

void JobTable::nodes_of(const JobView& j, std::vector<std::int32_t>& out) const {
  out.clear();
  for (const PackedGpu g : gpus_of(j)) {
    const std::int32_t node = packed_node(g);
    if (std::find(out.begin(), out.end(), node) == out.end()) {
      out.push_back(node);
    }
  }
}

void JobTable::add(const slurm::JobRecord& rec) {
  JobView v;
  v.id = rec.id;
  v.start = rec.start;
  v.end = rec.end;
  v.gpus = rec.gpus;
  v.state = rec.state;
  v.is_ml = is_ml_name(rec.name);
  std::vector<PackedGpu> packed;
  packed.reserve(rec.gpu_list.size());
  for (const auto& g : rec.gpu_list) packed.push_back(pack_gpu(g.node, g.slot));
  if (packed.size() <= v.gpus_inline.size()) {
    v.inline_count = static_cast<std::uint8_t>(packed.size());
    for (std::size_t i = 0; i < packed.size(); ++i) v.gpus_inline[i] = packed[i];
  } else {
    v.spill_index = static_cast<std::int32_t>(spill.size());
    spill.push_back(std::move(packed));
  }
  jobs.push_back(v);
}

bool is_ml_name(std::string_view name) {
  static constexpr std::array<std::string_view, 16> kKeywords = {
      "train", "model", "bert",  "gpt",   "llm",        "torch",
      "tensorflow", "resnet", "diffusion", "gnn",  "vit_", "unet",
      "finetune", "pretrain", "keras", "rl_"};
  for (const auto kw : kKeywords) {
    if (common::icontains(name, kw)) return true;
  }
  return false;
}

std::vector<GpuBucket> paper_gpu_buckets() {
  // The paper's labels overlap at the boundaries ("2-4" then "4-8"); we
  // interpret them as left-exclusive: (1], (1,4], (4,8], (8,32], ...
  return {
      {"1", 1, 1},        {"2-4", 2, 4},      {"4-8", 5, 8},
      {"8-32", 9, 32},    {"32-64", 33, 64},  {"64-128", 65, 128},
      {"128-256", 129, 256}, {"256+", 257, 1 << 20},
  };
}

JobStats compute_job_stats(const JobTable& table, const Period& window) {
  JobStats out;
  const auto buckets = paper_gpu_buckets();
  out.buckets.resize(buckets.size());
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    out.buckets[i].bucket = buckets[i];
  }
  std::vector<std::vector<double>> elapsed(buckets.size());

  std::uint64_t completed = 0;
  std::uint64_t single = 0;
  std::uint64_t small_multi = 0;
  std::uint64_t large = 0;
  std::uint64_t ml_jobs = 0;

  for (const auto& j : table.jobs) {
    if (!window.contains(j.end)) continue;
    ++out.total_jobs;
    if (j.state == slurm::JobState::kCompleted) ++completed;
    if (j.gpus == 1) {
      ++single;
    } else if (j.gpus <= 4) {
      ++small_multi;
    } else {
      ++large;
    }
    if (j.is_ml) ++ml_jobs;

    for (std::size_t i = 0; i < buckets.size(); ++i) {
      if (j.gpus >= buckets[i].lo && j.gpus <= buckets[i].hi) {
        auto& b = out.buckets[i];
        ++b.count;
        elapsed[i].push_back(j.elapsed_minutes());
        if (j.is_ml) {
          b.ml_gpu_hours += j.gpu_hours();
        } else {
          b.non_ml_gpu_hours += j.gpu_hours();
        }
        break;
      }
    }
  }

  if (out.total_jobs == 0) return out;
  const auto total_d = static_cast<double>(out.total_jobs);
  out.success_rate = static_cast<double>(completed) / total_d;
  out.single_gpu_share = static_cast<double>(single) / total_d;
  out.small_multi_gpu_share = static_cast<double>(small_multi) / total_d;
  out.large_gpu_share = static_cast<double>(large) / total_d;
  out.ml_job_share = static_cast<double>(ml_jobs) / total_d;

  for (std::size_t i = 0; i < out.buckets.size(); ++i) {
    auto& b = out.buckets[i];
    b.share = static_cast<double>(b.count) / total_d;
    if (!elapsed[i].empty()) {
      const auto s = common::summarize(elapsed[i]);
      b.mean_minutes = s.mean;
      b.p50_minutes = s.p50;
      b.p99_minutes = s.p99;
    }
  }
  return out;
}

}  // namespace gpures::analysis
