#include "analysis/export.h"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "common/csv.h"
#include "common/json.h"

namespace gpures::analysis {

namespace {

std::string num_or_empty(double v) {
  if (!std::isfinite(v)) return "";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void write_code_row(common::CsvWriter& w, const std::string& label,
                    const std::string& category, const CodeStats& cs) {
  w.write_row({label, category, std::to_string(cs.pre.count),
               std::to_string(cs.op.count), num_or_empty(cs.pre.mtbe_system_h),
               num_or_empty(cs.pre.mtbe_per_node_h),
               num_or_empty(cs.op.mtbe_system_h),
               num_or_empty(cs.op.mtbe_per_node_h)});
}

void json_period(common::JsonWriter& j, const PeriodStats& ps) {
  j.begin_object();
  j.kv("count", ps.count);
  j.key("mtbe_system_h");
  std::isfinite(ps.mtbe_system_h) ? j.value(ps.mtbe_system_h) : j.null();
  j.key("mtbe_per_node_h");
  std::isfinite(ps.mtbe_per_node_h) ? j.value(ps.mtbe_per_node_h) : j.null();
  j.end_object();
}

void json_code_stats(common::JsonWriter& j, const CodeStats& cs) {
  j.begin_object();
  j.key("pre");
  json_period(j, cs.pre);
  j.key("op");
  json_period(j, cs.op);
  j.end_object();
}

}  // namespace

void write_table1_csv(std::ostream& os, const ErrorStats& stats) {
  common::CsvWriter w(os);
  w.write_row({"event", "category", "pre_count", "op_count",
               "pre_mtbe_system_h", "pre_mtbe_per_node_h", "op_mtbe_system_h",
               "op_mtbe_per_node_h"});
  for (const auto& cs : stats.by_code) {
    const auto d = xid::describe(cs.code);
    write_code_row(w, std::string(d ? d->abbrev : "?"),
                   std::string(d ? xid::to_string(d->category) : "?"), cs);
  }
  write_code_row(w, "uncorrectable_ecc", "Memory", stats.uncorrectable_ecc);
  for (const auto& [cat, cs] : stats.by_category) {
    write_code_row(w, "all_" + std::string(xid::to_string(cat)),
                   std::string(xid::to_string(cat)), cs);
  }
  write_code_row(w, "non_memory", "-", stats.non_memory);
  write_code_row(w, "total", "-", stats.total);
  write_code_row(w, "total_with_outliers", "-", stats.total_with_outliers);
}

void write_table2_csv(std::ostream& os, const JobImpact& impact) {
  common::CsvWriter w(os);
  w.write_row({"xid", "event", "gpu_failed_jobs", "jobs_encountering",
               "failure_probability", "ci_lo", "ci_hi"});
  for (const auto& row : impact.rows) {
    const auto d = xid::describe(row.code);
    w.write_row({std::to_string(xid::to_number(row.code)),
                 std::string(d ? d->abbrev : "?"),
                 std::to_string(row.failed_jobs),
                 std::to_string(row.encountering_jobs),
                 num_or_empty(row.failure_probability),
                 num_or_empty(row.ci.lo), num_or_empty(row.ci.hi)});
  }
}

void write_table3_csv(std::ostream& os, const JobStats& stats) {
  common::CsvWriter w(os);
  w.write_row({"gpu_bucket", "count", "share", "mean_minutes", "p50_minutes",
               "p99_minutes", "ml_gpu_hours", "non_ml_gpu_hours"});
  for (const auto& b : stats.buckets) {
    w.write_row({b.bucket.label, std::to_string(b.count),
                 num_or_empty(b.share), num_or_empty(b.mean_minutes),
                 num_or_empty(b.p50_minutes), num_or_empty(b.p99_minutes),
                 num_or_empty(b.ml_gpu_hours),
                 num_or_empty(b.non_ml_gpu_hours)});
  }
}

void write_fig2_csv(std::ostream& os, const AvailabilityStats& stats) {
  common::CsvWriter w(os);
  w.write_row({"hours", "cumulative_fraction"});
  for (const auto& p : stats.ecdf) {
    w.write_row({num_or_empty(p.x), num_or_empty(p.p)});
  }
}

std::string to_json(const ExportBundle& bundle) {
  common::JsonWriter j;
  j.begin_object();

  if (bundle.error_stats != nullptr) {
    const auto& s = *bundle.error_stats;
    j.key("error_stats");
    j.begin_object();
    j.key("by_code");
    j.begin_object();
    for (const auto& cs : s.by_code) {
      j.key("xid_" + std::to_string(xid::to_number(cs.code)));
      json_code_stats(j, cs);
    }
    j.end_object();
    j.key("uncorrectable_ecc");
    json_code_stats(j, s.uncorrectable_ecc);
    j.key("total");
    json_code_stats(j, s.total);
    j.key("total_with_outliers");
    json_code_stats(j, s.total_with_outliers);
    j.kv("mtbe_degradation_fraction", s.mtbe_degradation_fraction());
    j.kv("memory_reliability_ratio_op", s.memory_reliability_ratio_op());
    j.kv("gsp_degradation_ratio", s.gsp_degradation_ratio());
    j.key("outliers");
    j.begin_array();
    for (const auto& o : s.outliers) {
      j.begin_object();
      j.kv("node", static_cast<std::int64_t>(o.gpu.node));
      j.kv("slot", static_cast<std::int64_t>(o.gpu.slot));
      j.kv("xid", static_cast<std::int64_t>(xid::to_number(o.code)));
      j.kv("period", to_string(o.period));
      j.kv("count", o.count);
      j.kv("share", o.share);
      j.end_object();
    }
    j.end_array();
    j.end_object();
  }

  if (bundle.job_stats != nullptr) {
    const auto& s = *bundle.job_stats;
    j.key("job_stats");
    j.begin_object();
    j.kv("total_jobs", s.total_jobs);
    j.kv("success_rate", s.success_rate);
    j.kv("single_gpu_share", s.single_gpu_share);
    j.kv("ml_job_share", s.ml_job_share);
    j.key("buckets");
    j.begin_array();
    for (const auto& b : s.buckets) {
      j.begin_object();
      j.kv("label", b.bucket.label);
      j.kv("count", b.count);
      j.kv("share", b.share);
      j.kv("mean_minutes", b.mean_minutes);
      j.kv("p50_minutes", b.p50_minutes);
      j.kv("p99_minutes", b.p99_minutes);
      j.kv("ml_gpu_hours", b.ml_gpu_hours);
      j.kv("non_ml_gpu_hours", b.non_ml_gpu_hours);
      j.end_object();
    }
    j.end_array();
    j.end_object();
  }

  if (bundle.job_impact != nullptr) {
    const auto& s = *bundle.job_impact;
    j.key("job_impact");
    j.begin_object();
    j.kv("gpu_failed_jobs", s.gpu_failed_jobs);
    j.kv("jobs_analyzed", s.jobs_analyzed);
    j.key("rows");
    j.begin_array();
    for (const auto& row : s.rows) {
      if (row.encountering_jobs == 0) continue;
      j.begin_object();
      j.kv("xid", static_cast<std::int64_t>(xid::to_number(row.code)));
      j.kv("failed_jobs", row.failed_jobs);
      j.kv("encountering_jobs", row.encountering_jobs);
      j.kv("failure_probability", row.failure_probability);
      j.end_object();
    }
    j.end_array();
    j.end_object();
  }

  if (bundle.availability != nullptr) {
    const auto& s = *bundle.availability;
    j.key("availability");
    j.begin_object();
    j.kv("intervals", static_cast<std::uint64_t>(s.intervals.size()));
    j.kv("mttr_h", s.mttr_h);
    j.kv("total_node_hours_lost", s.total_node_hours_lost);
    j.kv("mttf_h", bundle.mttf_h);
    j.kv("availability", s.availability(bundle.mttf_h));
    j.key("ecdf");
    j.begin_array();
    for (const auto& p : s.ecdf) {
      j.begin_array();
      j.value(p.x);
      j.value(p.p);
      j.end_array();
    }
    j.end_array();
    j.end_object();
  }

  j.end_object();
  return std::move(j).str();
}

}  // namespace gpures::analysis
