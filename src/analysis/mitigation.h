// Mitigation what-if analysis (paper Section V-B): checkpointing and
// application-level exception handling as defenses against GPU errors.
//
// The paper examines "potential mitigation techniques such as checkpointing
// and exception handling" and notes that ML frameworks can mask MMU errors
// by skipping faulty iterations.  This module quantifies both on measured
// data:
//
//  * lost work: GPU-hours consumed by jobs that ended GPU-failed — all of it
//    is wasted without checkpointing, only the tail since the last
//    checkpoint is wasted with an interval-C checkpoint scheme (plus the
//    checkpoint overhead paid by *every* job);
//  * exception handling: recompute the GPU-failed population assuming a
//    fraction of MMU-induced failures are masked at the framework level.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "analysis/coalesce.h"
#include "analysis/job_impact.h"
#include "analysis/job_stats.h"

namespace gpures::analysis {

/// GPU-hours lost to GPU-error-induced failures in a window.
struct LostWork {
  std::uint64_t gpu_failed_jobs = 0;
  double lost_gpu_hours = 0.0;        ///< full runtime of GPU-failed jobs
  double total_gpu_hours = 0.0;       ///< all jobs in the window
  double lost_fraction = 0.0;         ///< lost / total
};

/// Identify GPU-failed jobs (same rule as compute_job_impact) and sum their
/// GPU-hours.
LostWork compute_lost_work(const JobTable& table,
                           const std::vector<CoalescedError>& errors,
                           const JobImpactConfig& cfg);
/// Same, over a precomputed exposure join (compute_exposures output for the
/// same table/cfg) — lets callers run the join once and share it.
LostWork compute_lost_work(const JobTable& table,
                           std::span<const JobExposure> exposures,
                           const JobImpactConfig& cfg);

/// Expected waste under an interval-C checkpoint scheme:
///   waste(C) = sum over failed jobs of (min(elapsed, C)/2 + restore) * gpus
///              + (checkpoint_cost * elapsed/C) * gpus summed over ALL jobs.
/// The first term is the re-computation since the last checkpoint (expected
/// C/2 for jobs longer than C); the second is the overhead every job pays.
struct CheckpointPoint {
  double interval_h = 0.0;
  double wasted_gpu_hours = 0.0;      ///< recompute + overhead
  double recompute_gpu_hours = 0.0;
  double overhead_gpu_hours = 0.0;
};

struct CheckpointSweep {
  double checkpoint_cost_h = 0.05;    ///< time to write one checkpoint
  double no_checkpoint_waste = 0.0;   ///< baseline: all failed work lost
  std::vector<CheckpointPoint> points;
  double best_interval_h = 0.0;
  double best_waste = 0.0;
};

CheckpointSweep sweep_checkpoint_interval(
    const JobTable& table, const std::vector<CoalescedError>& errors,
    const JobImpactConfig& cfg, const std::vector<double>& intervals_h,
    double checkpoint_cost_h = 0.05, double restore_cost_h = 0.1);
CheckpointSweep sweep_checkpoint_interval(
    const JobTable& table, std::span<const JobExposure> exposures,
    const JobImpactConfig& cfg, const std::vector<double>& intervals_h,
    double checkpoint_cost_h = 0.05, double restore_cost_h = 0.1);

/// Exception-handling what-if: fraction of GPU-failed jobs whose window
/// errors were exclusively maskable families (MMU by default) — the upper
/// bound on failures an application-level handler could absorb.
struct MaskingWhatIf {
  std::uint64_t gpu_failed_jobs = 0;
  std::uint64_t maskable_jobs = 0;     ///< only maskable codes in the window
  double maskable_fraction = 0.0;
  double recoverable_gpu_hours = 0.0;  ///< their GPU-hours
};

MaskingWhatIf compute_masking_whatif(
    const JobTable& table, const std::vector<CoalescedError>& errors,
    const JobImpactConfig& cfg,
    const std::vector<xid::Code>& maskable = {xid::Code::kMmuError});
MaskingWhatIf compute_masking_whatif(
    const JobTable& table, std::span<const JobExposure> exposures,
    const JobImpactConfig& cfg,
    const std::vector<xid::Code>& maskable = {xid::Code::kMmuError});

/// Render the mitigation report.  Runs the exposure join once (sharded over
/// `pool` when given — same deterministic merge as compute_exposures) and
/// feeds all three what-ifs from it.
std::string render_mitigation(const JobTable& table,
                              const std::vector<CoalescedError>& errors,
                              const JobImpactConfig& cfg,
                              common::ThreadPool* pool = nullptr);

}  // namespace gpures::analysis
