#include "analysis/dataset.h"

#include <algorithm>
#include <fstream>

#include "common/strings.h"
#include "obs/trace.h"

namespace gpures::analysis {

namespace fs = std::filesystem;

std::string DatasetManifest::serialize() const {
  std::string out;
  out += "name=" + name + "\n";
  out += "study_begin=" + common::format_date(periods.pre.begin) + "\n";
  out += "op_begin=" + common::format_date(periods.op.begin) + "\n";
  out += "study_end=" + common::format_date(periods.op.end) + "\n";
  out += "nodes=" + std::to_string(spec.node_count()) + "\n";
  for (const auto& n : spec.nodes) {
    out += "node=" + n.name + ":" + std::to_string(n.gpu_count) + "\n";
  }
  return out;
}

common::Result<DatasetManifest> DatasetManifest::parse(std::string_view text) {
  DatasetManifest m;
  m.spec.nodes.clear();
  common::TimePoint begin = 0;
  common::TimePoint op = 0;
  common::TimePoint end = 0;
  bool have_begin = false;
  bool have_op = false;
  bool have_end = false;
  for (const auto raw_line : common::split(text, '\n')) {
    const auto line = common::trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    const auto eq = line.find('=');
    if (eq == std::string_view::npos) {
      return common::Error::make("manifest: malformed line '" +
                                 std::string(line) + "'");
    }
    const auto key = line.substr(0, eq);
    const auto value = line.substr(eq + 1);
    if (key == "name") {
      m.name = std::string(value);
    } else if (key == "study_begin" || key == "op_begin" || key == "study_end") {
      const auto t = common::parse_iso(value);
      if (!t) return common::Error::make("manifest: bad date in " + std::string(key));
      if (key == "study_begin") { begin = *t; have_begin = true; }
      if (key == "op_begin") { op = *t; have_op = true; }
      if (key == "study_end") { end = *t; have_end = true; }
    } else if (key == "node") {
      const auto colon = value.rfind(':');
      if (colon == std::string_view::npos) {
        return common::Error::make("manifest: bad node entry");
      }
      const long long gpus = common::parse_ll(value.substr(colon + 1));
      if (gpus <= 0 || gpus > 8) {
        return common::Error::make("manifest: bad node GPU count");
      }
      m.spec.nodes.push_back({std::string(value.substr(0, colon)),
                              static_cast<std::int32_t>(gpus)});
    } else if (key == "nodes") {
      // informational; validated below
    } else {
      return common::Error::make("manifest: unknown key '" + std::string(key) + "'");
    }
  }
  if (!have_begin || !have_op || !have_end) {
    return common::Error::make("manifest: missing period boundaries");
  }
  if (m.spec.nodes.empty()) {
    return common::Error::make("manifest: no nodes");
  }
  try {
    m.periods = StudyPeriods::make(begin, op, end);
  } catch (const std::invalid_argument& e) {
    return common::Error::make(std::string("manifest: ") + e.what());
  }
  return m;
}

DatasetWriter::DatasetWriter(fs::path dir, DatasetManifest manifest)
    : dir_(std::move(dir)), manifest_(std::move(manifest)) {
  fs::create_directories(dir_ / "syslog");
  accounting_.open(dir_ / "slurm_accounting.txt",
                   std::ios::trunc | std::ios::binary);
  if (!accounting_) {
    throw std::runtime_error("DatasetWriter: cannot create accounting file in " +
                             dir_.string());
  }
}

DatasetWriter::~DatasetWriter() {
  try {
    finalize();
  } catch (...) {
    // Destructors must not throw; an explicit finalize() surfaces errors.
  }
}

void DatasetWriter::write_day(common::TimePoint day_start,
                              const std::vector<logsys::RawLine>& lines) {
  const auto path =
      dir_ / "syslog" / ("syslog-" + common::format_date(day_start) + ".log");
  std::ofstream os(path, std::ios::trunc | std::ios::binary);
  if (!os) {
    throw std::runtime_error("DatasetWriter: cannot write " + path.string());
  }
  os << logsys::render_day(lines);
  ++days_;
}

void DatasetWriter::write_accounting_line(std::string_view line) {
  accounting_ << line << '\n';
}

void DatasetWriter::finalize() {
  if (finalized_) return;
  finalized_ = true;
  accounting_.flush();
  accounting_.close();
  std::ofstream os(dir_ / "manifest.txt", std::ios::trunc | std::ios::binary);
  if (!os) {
    throw std::runtime_error("DatasetWriter: cannot write manifest in " +
                             dir_.string());
  }
  os << manifest_.serialize();
}

common::Result<DatasetManifest> read_manifest(const fs::path& dir) {
  std::ifstream is(dir / "manifest.txt", std::ios::binary);
  if (!is) {
    return common::Error::make("dataset: missing manifest.txt in " +
                               dir.string());
  }
  std::string text((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  return DatasetManifest::parse(text);
}

common::Result<std::uint64_t> load_dataset(const fs::path& dir,
                                           AnalysisPipeline& pipeline,
                                           obs::ProgressReporter* progress) {
  OBS_SPAN("dataset.load");
  const auto syslog_dir = dir / "syslog";
  if (!fs::is_directory(syslog_dir)) {
    return common::Error::make("dataset: missing syslog/ in " + dir.string());
  }
  // Collect day files; names encode the date, so lexicographic order is
  // chronological order.
  std::vector<fs::path> days;
  for (const auto& entry : fs::directory_iterator(syslog_dir)) {
    if (!entry.is_regular_file()) continue;
    const auto name = entry.path().filename().string();
    if (common::starts_with(name, "syslog-")) days.push_back(entry.path());
  }
  std::sort(days.begin(), days.end());

  std::uint64_t ingested = 0;
  for (const auto& path : days) {
    const auto name = path.filename().string();  // syslog-YYYY-MM-DD.log
    if (name.size() < 17) {
      return common::Error::make("dataset: bad day file name " + name);
    }
    const auto date = common::parse_iso(std::string_view(name).substr(7, 10));
    if (!date) {
      return common::Error::make("dataset: bad date in file name " + name);
    }
    std::ifstream is(path, std::ios::binary);
    if (!is) return common::Error::make("dataset: cannot read " + path.string());
    std::string text((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    pipeline.ingest_log_text(*date, text);
    ++ingested;
    if (progress != nullptr) {
      progress->update(static_cast<std::size_t>(ingested), days.size());
    }
  }

  std::ifstream acc(dir / "slurm_accounting.txt", std::ios::binary);
  if (acc) {
    std::string line;
    while (std::getline(acc, line)) {
      pipeline.ingest_accounting_line(line);
    }
  }
  pipeline.finish();
  return ingested;
}

}  // namespace gpures::analysis
