#include "analysis/dataset.h"

#include <algorithm>
#include <fstream>
#include <future>

#include "common/io.h"
#include "common/strings.h"
#include "obs/trace.h"
#include "slurm/accounting.h"

namespace gpures::analysis {

namespace fs = std::filesystem;

std::string DatasetManifest::serialize() const {
  std::string out;
  out += "name=" + name + "\n";
  out += "study_begin=" + common::format_date(periods.pre.begin) + "\n";
  out += "op_begin=" + common::format_date(periods.op.begin) + "\n";
  out += "study_end=" + common::format_date(periods.op.end) + "\n";
  out += "nodes=" + std::to_string(spec.node_count()) + "\n";
  for (const auto& n : spec.nodes) {
    out += "node=" + n.name + ":" + std::to_string(n.gpu_count) + "\n";
  }
  return out;
}

common::Result<DatasetManifest> DatasetManifest::parse(std::string_view text) {
  DatasetManifest m;
  m.spec.nodes.clear();
  common::TimePoint begin = 0;
  common::TimePoint op = 0;
  common::TimePoint end = 0;
  bool have_begin = false;
  bool have_op = false;
  bool have_end = false;
  bool have_name = false;
  long long declared_nodes = -1;
  std::uint64_t line_no = 0;
  const auto fail = [&](std::string msg) {
    return common::Error::at("manifest: " + std::move(msg), "manifest.txt",
                             line_no);
  };
  for (const auto raw_line : common::split(text, '\n')) {
    ++line_no;
    const auto line = common::trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    const auto eq = line.find('=');
    if (eq == std::string_view::npos) {
      return fail("malformed line '" + std::string(line) + "'");
    }
    const auto key = line.substr(0, eq);
    const auto value = line.substr(eq + 1);
    if (key == "name") {
      if (have_name) return fail("duplicate key 'name'");
      have_name = true;
      m.name = std::string(value);
    } else if (key == "study_begin" || key == "op_begin" || key == "study_end") {
      const auto t = common::parse_iso(value);
      if (!t) return fail("bad date in " + std::string(key));
      if (key == "study_begin") {
        if (have_begin) return fail("duplicate key 'study_begin'");
        begin = *t;
        have_begin = true;
      }
      if (key == "op_begin") {
        if (have_op) return fail("duplicate key 'op_begin'");
        op = *t;
        have_op = true;
      }
      if (key == "study_end") {
        if (have_end) return fail("duplicate key 'study_end'");
        end = *t;
        have_end = true;
      }
    } else if (key == "node") {
      const auto colon = value.rfind(':');
      if (colon == std::string_view::npos) {
        return fail("bad node entry");
      }
      const long long gpus = common::parse_ll(value.substr(colon + 1));
      if (gpus <= 0 || gpus > 8) {
        return fail("bad node GPU count");
      }
      m.spec.nodes.push_back({std::string(value.substr(0, colon)),
                              static_cast<std::int32_t>(gpus)});
    } else if (key == "nodes") {
      if (declared_nodes >= 0) return fail("duplicate key 'nodes'");
      declared_nodes = common::parse_ll(value);
      if (declared_nodes < 0) return fail("bad value for 'nodes'");
    } else {
      return fail("unknown key '" + std::string(key) + "'");
    }
  }
  if (!have_begin || !have_op || !have_end) {
    return common::Error::make("manifest: missing period boundaries");
  }
  if (m.spec.nodes.empty()) {
    return common::Error::make("manifest: no nodes");
  }
  // A declared count that disagrees with the entries means the manifest was
  // truncated or spliced — exactly the corruption this check exists to catch.
  if (declared_nodes >= 0 &&
      declared_nodes != static_cast<long long>(m.spec.nodes.size())) {
    return common::Error::make(
        "manifest: nodes=" + std::to_string(declared_nodes) + " but " +
        std::to_string(m.spec.nodes.size()) + " node entries");
  }
  try {
    m.periods = StudyPeriods::make(begin, op, end);
  } catch (const std::invalid_argument& e) {
    return common::Error::make(std::string("manifest: ") + e.what());
  }
  return m;
}

DatasetWriter::DatasetWriter(fs::path dir, DatasetManifest manifest)
    : dir_(std::move(dir)), manifest_(std::move(manifest)) {
  fs::create_directories(dir_ / "syslog");
  accounting_.open(dir_ / "slurm_accounting.txt",
                   std::ios::trunc | std::ios::binary);
  if (!accounting_) {
    throw std::runtime_error("DatasetWriter: cannot create accounting file in " +
                             dir_.string());
  }
}

DatasetWriter::~DatasetWriter() {
  // Destructors must not fail; an explicit finalize() observes the status.
  (void)finalize();
}

void DatasetWriter::note_write_failure(const std::string& what) {
  if (write_error_.empty()) write_error_ = what;
}

void DatasetWriter::write_day(common::TimePoint day_start,
                              const logsys::DayBuffer& day) {
  const auto path =
      dir_ / "syslog" / ("syslog-" + common::format_date(day_start) + ".log");
  std::ofstream os(path, std::ios::trunc | std::ios::binary);
  if (!os) {
    note_write_failure("DatasetWriter: cannot write " + path.string());
    return;
  }
  day.for_each_run([&os](std::string_view run) {
    os.write(run.data(), static_cast<std::streamsize>(run.size()));
  });
  os.flush();
  if (!os) {
    note_write_failure("DatasetWriter: write failed on " + path.string());
    return;
  }
  ++days_;
}

void DatasetWriter::write_day(common::TimePoint day_start,
                              const std::vector<logsys::RawLine>& lines) {
  logsys::DayBuffer day;
  std::size_t bytes = 0;
  for (const auto& l : lines) bytes += l.text.size() + 1;
  day.reserve(lines.size(), bytes);
  for (const auto& l : lines) day.append(l.time, l.text);
  write_day(day_start, day);
}

void DatasetWriter::write_accounting_line(std::string_view line) {
  accounting_ << line << '\n';
  if (!accounting_) {
    note_write_failure("DatasetWriter: accounting write failed in " +
                       dir_.string());
  }
}

common::Status DatasetWriter::finalize() {
  if (finalized_) return final_status_;
  finalized_ = true;
  accounting_.flush();
  if (!accounting_) {
    note_write_failure("DatasetWriter: accounting flush failed in " +
                       dir_.string());
  }
  accounting_.close();
  std::ofstream os(dir_ / "manifest.txt", std::ios::trunc | std::ios::binary);
  if (!os) {
    note_write_failure("DatasetWriter: cannot write manifest in " +
                       dir_.string());
  } else {
    os << manifest_.serialize();
    os.flush();
    if (!os) {
      note_write_failure("DatasetWriter: manifest write failed in " +
                         dir_.string());
    }
  }
  if (!write_error_.empty()) {
    final_status_ = common::Error::make(write_error_);
  }
  return final_status_;
}

common::Result<DatasetManifest> read_manifest(const fs::path& dir) {
  auto text = common::read_file((dir / "manifest.txt").string());
  if (!text.ok()) {
    return common::Error::make("dataset: missing manifest.txt in " +
                               dir.string());
  }
  return DatasetManifest::parse(text.value());
}

std::optional<common::TimePoint> day_file_date(std::string_view filename) {
  // Exactly "syslog-YYYY-MM-DD.log": 7 + 10 + 4 chars.
  if (filename.size() != 21) return std::nullopt;
  if (!common::starts_with(filename, "syslog-")) return std::nullopt;
  if (filename.substr(17) != ".log") return std::nullopt;
  const auto date = filename.substr(7, 10);
  for (std::size_t i = 0; i < date.size(); ++i) {
    const char c = date[i];
    if (i == 4 || i == 7) {
      if (c != '-') return std::nullopt;
    } else if (c < '0' || c > '9') {
      return std::nullopt;
    }
  }
  return common::parse_iso(date);
}

namespace {

/// Shared per-day ingestion: screen, apply policy, account, feed pipeline.
/// Returns an error to abort the whole load (strict offense or exceeded
/// budget); success otherwise.
class DayIngestor {
 public:
  DayIngestor(AnalysisPipeline& pipeline, const IngestOptions& opt)
      : pipeline_(pipeline), opt_(opt) {
    // Quarantine reasons as one labeled family on the pipeline's registry,
    // so the --metrics artifact breaks dropped lines down by cause.
    auto& reg = pipeline.metrics();
    reg.describe("ingest.lines_dropped",
                 "Raw log lines quarantined by the ingest screen, by reason",
                 "lines");
    m_dropped_torn_ = &reg.counter("ingest.lines_dropped", {{"reason", "torn"}});
    m_dropped_binary_ =
        &reg.counter("ingest.lines_dropped", {{"reason", "binary"}});
    m_dropped_overlong_ =
        &reg.counter("ingest.lines_dropped", {{"reason", "overlong"}});
  }

  common::Status ingest(const fs::path& path, common::TimePoint date,
                        std::string&& text) {
    const std::uint64_t file_bytes = text.size();
    logsys::ScreenCounts sc;
    auto day =
        logsys::DayBuffer::from_text(date, std::move(text), opt_.screen, sc);
    if (sc.torn_lines > 0) m_dropped_torn_->add(sc.torn_lines);
    if (sc.binary_lines > 0) m_dropped_binary_->add(sc.binary_lines);
    if (sc.overlong_lines > 0) m_dropped_overlong_->add(sc.overlong_lines);
    if (sc.quarantined_lines() > 0) {
      if (opt_.policy == IngestPolicy::kStrict) {
        return common::Error::at(
            "dataset: " + std::string(sc.first_category) +
                " line rejected by strict ingest",
            path.string(), sc.first_line, sc.first_offset);
      }
      if (opt_.error_budget > 0 && sc.quarantined_lines() > opt_.error_budget) {
        return common::Error::make(
            "dataset: per-day error budget exceeded: " +
            std::to_string(sc.quarantined_lines()) + " quarantined lines in " +
            path.string() + " (budget " + std::to_string(opt_.error_budget) +
            ")");
      }
      if (opt_.warn) {
        opt_.warn("quarantined " + std::to_string(sc.quarantined_lines()) +
                  " corrupt lines (" +
                  std::to_string(sc.quarantined_bytes()) + " bytes) in " +
                  path.string());
      }
    }
    if (sc.crlf_bytes > 0 && opt_.warn) {
      opt_.warn("normalized " + std::to_string(sc.crlf_bytes) +
                " CRLF line terminators in " + path.string());
    }
    if (auto* q = opt_.quality) {
      q->days_present += 1;
      q->lines_kept += sc.kept_lines;
      q->bytes_kept += sc.kept_bytes;
      q->binary_lines += sc.binary_lines;
      q->binary_bytes += sc.binary_bytes;
      q->overlong_lines += sc.overlong_lines;
      q->overlong_bytes += sc.overlong_bytes;
      q->torn_lines += sc.torn_lines;
      q->torn_bytes += sc.torn_bytes;
      q->crlf_bytes += sc.crlf_bytes;
      if (file_bytes == 0) q->zero_byte_days += 1;
      if (sc.quarantined_lines() > 0 || file_bytes == 0 || sc.crlf_bytes > 0) {
        DayQuality dq;
        dq.date = common::format_date(date);
        dq.file_bytes = file_bytes;
        dq.lines_kept = sc.kept_lines;
        dq.bytes_kept = sc.kept_bytes;
        dq.binary_lines = sc.binary_lines;
        dq.binary_bytes = sc.binary_bytes;
        dq.overlong_lines = sc.overlong_lines;
        dq.overlong_bytes = sc.overlong_bytes;
        dq.torn_lines = sc.torn_lines;
        dq.torn_bytes = sc.torn_bytes;
        dq.crlf_bytes = sc.crlf_bytes;
        q->days.push_back(std::move(dq));
      }
    }
    pipeline_.ingest_day(date, std::move(day));
    return {};
  }

 private:
  AnalysisPipeline& pipeline_;
  const IngestOptions& opt_;
  obs::Counter* m_dropped_torn_ = nullptr;
  obs::Counter* m_dropped_binary_ = nullptr;
  obs::Counter* m_dropped_overlong_ = nullptr;
};

/// An unreadable day: strict aborts, lenient records a coverage gap.
common::Status handle_read_failure(const fs::path& path,
                                   common::TimePoint date,
                                   const common::Error& err,
                                   const IngestOptions& opt) {
  if (opt.policy == IngestPolicy::kStrict) {
    return common::Error::make("dataset: cannot read " + path.string() + ": " +
                               err.message);
  }
  if (opt.quality != nullptr) {
    opt.quality->skipped_days.push_back(
        SkippedDay{common::format_date(date), err.message});
  }
  if (opt.warn) {
    opt.warn("skipping unreadable day " + path.string() + ": " + err.message);
  }
  return {};
}

common::Status ingest_accounting(const fs::path& dir,
                                 AnalysisPipeline& pipeline,
                                 const IngestOptions& opt) {
  const auto path = dir / "slurm_accounting.txt";
  // A wholly absent dump is a coverage gap, not corruption: like a missing
  // day, absent evidence is reported under both policies and fatal under
  // neither (log-only datasets are legitimate).  Only a dump that exists
  // but cannot be read — or carries malformed rows — is an error.
  std::error_code exists_ec;
  if (!fs::exists(path, exists_ec)) {
    if (opt.quality != nullptr) {
      opt.quality->accounting_present = false;
    }
    if (opt.warn) {
      opt.warn("no slurm_accounting.txt in " + dir.string() +
               ", job analyses will be empty");
    }
    return {};
  }
  auto acc = common::read_file(path.string());
  if (!acc.ok()) {
    if (opt.policy == IngestPolicy::kStrict) {
      return common::Error::make("dataset: " + acc.error().message);
    }
    if (opt.quality != nullptr) {
      opt.quality->accounting_present = false;
      opt.quality->accounting_error = acc.error().message;
    }
    if (opt.warn) {
      opt.warn("accounting dump unreadable, job analyses will be empty: " +
               acc.error().message);
    }
    return {};
  }
  if (opt.quality != nullptr) opt.quality->accounting_present = true;
  const std::string header = slurm::accounting_header();
  const std::string text = std::move(acc).take();
  std::size_t start = 0;
  std::uint64_t line_no = 0;
  std::uint64_t rejected = 0;
  while (start < text.size()) {
    std::size_t nl = text.find('\n', start);
    const std::size_t end = nl == std::string::npos ? text.size() : nl;
    const auto line = std::string_view(text).substr(start, end - start);
    ++line_no;
    const auto trimmed = common::trim(line);
    const bool accepted = pipeline.ingest_accounting_line(line);
    if (!accepted) {
      if (opt.policy == IngestPolicy::kStrict) {
        return common::Error::at("dataset: malformed accounting row",
                                 path.string(), line_no, start);
      }
      ++rejected;
      if (opt.quality != nullptr) {
        opt.quality->accounting_rows_rejected += 1;
        opt.quality->accounting_bytes_rejected += trimmed.size();
      }
      if (opt.error_budget > 0 && rejected > opt.error_budget) {
        return common::Error::make(
            "dataset: accounting error budget exceeded: " +
            std::to_string(rejected) + " rejected rows in " + path.string() +
            " (budget " + std::to_string(opt.error_budget) + ")");
      }
    } else if (opt.quality != nullptr && !trimmed.empty() &&
               trimmed != header) {
      opt.quality->accounting_rows_kept += 1;
    }
    if (nl == std::string::npos) break;
    start = nl + 1;
  }
  if (rejected > 0 && opt.warn) {
    opt.warn("rejected " + std::to_string(rejected) +
             " malformed accounting rows in " + path.string());
  }
  return {};
}

}  // namespace

common::Result<std::uint64_t> load_dataset(const fs::path& dir,
                                           AnalysisPipeline& pipeline,
                                           const IngestOptions& options,
                                           obs::ProgressReporter* progress) {
  OBS_SPAN("dataset.load");
  const auto syslog_dir = dir / "syslog";
  if (!fs::is_directory(syslog_dir)) {
    return common::Error::make("dataset: missing syslog/ in " + dir.string());
  }
  // Collect day files; names encode the date, so lexicographic order is
  // chronological order.  Anything that is not exactly a day file — editor
  // backups, .swp droppings, stray directories — is skipped and recorded,
  // never treated as a day.
  struct DayFile {
    fs::path path;
    common::TimePoint date = 0;
  };
  std::vector<DayFile> days;
  for (const auto& entry : fs::directory_iterator(syslog_dir)) {
    const auto name = entry.path().filename().string();
    const auto date = day_file_date(name);
    if (!date || !entry.is_regular_file()) {
      if (options.quality != nullptr) {
        options.quality->stray_files.push_back(name);
      }
      if (options.warn) {
        options.warn("ignoring stray entry in syslog/: " + name);
      }
      continue;
    }
    days.push_back(DayFile{entry.path(), *date});
  }
  std::sort(days.begin(), days.end(),
            [](const DayFile& a, const DayFile& b) { return a.path < b.path; });
  if (options.quality != nullptr) {
    // Stray-file order must not depend on directory iteration order.
    std::sort(options.quality->stray_files.begin(),
              options.quality->stray_files.end());
  }

  // Coverage: every date in the expected range (the manifest periods, or the
  // span of the files present) must have a day file.
  if (options.quality != nullptr) {
    auto* q = options.quality;
    q->policy = options.policy;
    q->error_budget = options.error_budget;
    common::TimePoint begin = options.expect_begin;
    common::TimePoint end = options.expect_end;
    if (end <= begin && !days.empty()) {
      begin = days.front().date;
      end = days.back().date + common::kDay;
    }
    if (end > begin) {
      std::size_t next = 0;
      for (common::TimePoint t = common::start_of_day(begin); t < end;
           t += common::kDay) {
        q->days_expected += 1;
        while (next < days.size() && days[next].date < t) ++next;
        if (next >= days.size() || days[next].date != t) {
          q->missing_days.push_back(common::format_date(t));
        }
      }
    }
  }

  // Day ingestion.  Serial mode reads each file with one sized read and
  // hands the string to the pipeline, which adopts it as the day's arena.
  // Parallel mode overlaps I/O with parsing: a sliding window of read tasks
  // runs on the pipeline's own pool (day N parses while days N+1..N+k load),
  // but days are *consumed* strictly in file order, so the ingestion
  // sequence — and thus every downstream artifact — is identical to serial.
  common::ThreadPool* pool = pipeline.pool();
  DayIngestor ingestor(pipeline, options);
  std::uint64_t ingested = 0;
  const auto note_progress = [&] {
    ++ingested;
    if (progress != nullptr) {
      progress->update(static_cast<std::size_t>(ingested), days.size());
    }
  };
  if (pool == nullptr) {
    for (std::size_t i = 0; i < days.size(); ++i) {
      auto text = common::read_file(days[i].path.string());
      if (!text.ok()) {
        auto st = handle_read_failure(days[i].path, days[i].date, text.error(),
                                      options);
        if (!st.ok()) return st.error();
        continue;
      }
      auto st = ingestor.ingest(days[i].path, days[i].date,
                                std::move(text).take());
      if (!st.ok()) return st.error();
      note_progress();
    }
  } else {
    struct Slot {
      std::string text;
      common::Error error;
      bool failed = false;
    };
    const std::size_t window = pool->size() + 1;
    std::vector<Slot> slots(days.size());
    std::vector<std::future<void>> reads(days.size());
    // Prefetch depth: schedule/consume both happen on this thread, so the
    // gauge (and its max — the peak window fill) is deterministic.
    auto& reg = pipeline.metrics();
    reg.describe("ingest.prefetch.in_flight",
                 "Day-file read tasks scheduled but not yet consumed", "days");
    obs::Gauge& prefetch_depth = reg.gauge("ingest.prefetch.in_flight");
    // Any early return below (strict offense, exceeded error budget, read
    // failure) unwinds while up to `window` read tasks are still queued or
    // running against `slots` and `days` — and these futures come from
    // packaged_task, whose destructor does not block.  Drain whatever is
    // still in flight on every exit path; on the success path all futures
    // have been consumed by .get() and this is a no-op.
    struct DrainInFlight {
      std::vector<std::future<void>>& reads;
      ~DrainInFlight() {
        for (auto& f : reads) {
          if (f.valid()) f.wait();
        }
      }
    } drain{reads};
    const auto schedule = [&](std::size_t i) {
      prefetch_depth.add(1);
      reads[i] = pool->submit([&slots, &days, i] {
        auto text = common::read_file(days[i].path.string());
        if (text.ok()) {
          slots[i].text = std::move(text).take();
        } else {
          slots[i].error = text.error();
          slots[i].failed = true;
        }
      });
    };
    for (std::size_t i = 0; i < std::min(window, days.size()); ++i) {
      schedule(i);
    }
    for (std::size_t i = 0; i < days.size(); ++i) {
      reads[i].get();
      prefetch_depth.add(-1);
      // Keep the read window full before parsing blocks this thread.
      if (i + window < days.size()) schedule(i + window);
      if (slots[i].failed) {
        auto st = handle_read_failure(days[i].path, days[i].date,
                                      slots[i].error, options);
        if (!st.ok()) return st.error();
        continue;
      }
      auto st = ingestor.ingest(days[i].path, days[i].date,
                                std::move(slots[i].text));
      if (!st.ok()) return st.error();
      note_progress();
    }
  }

  // Accounting: one sized read, then an in-place newline split (getline
  // pulled ~1.5M lines through the streambuf one character at a time).
  auto acc_status = ingest_accounting(dir, pipeline, options);
  if (!acc_status.ok()) return acc_status.error();

  pipeline.finish();
  return ingested;
}

common::Result<std::uint64_t> load_dataset(const fs::path& dir,
                                           AnalysisPipeline& pipeline,
                                           obs::ProgressReporter* progress) {
  return load_dataset(dir, pipeline, IngestOptions{}, progress);
}

}  // namespace gpures::analysis
