#include "analysis/dataset.h"

#include <algorithm>
#include <fstream>
#include <future>

#include "common/io.h"
#include "common/strings.h"
#include "obs/trace.h"

namespace gpures::analysis {

namespace fs = std::filesystem;

std::string DatasetManifest::serialize() const {
  std::string out;
  out += "name=" + name + "\n";
  out += "study_begin=" + common::format_date(periods.pre.begin) + "\n";
  out += "op_begin=" + common::format_date(periods.op.begin) + "\n";
  out += "study_end=" + common::format_date(periods.op.end) + "\n";
  out += "nodes=" + std::to_string(spec.node_count()) + "\n";
  for (const auto& n : spec.nodes) {
    out += "node=" + n.name + ":" + std::to_string(n.gpu_count) + "\n";
  }
  return out;
}

common::Result<DatasetManifest> DatasetManifest::parse(std::string_view text) {
  DatasetManifest m;
  m.spec.nodes.clear();
  common::TimePoint begin = 0;
  common::TimePoint op = 0;
  common::TimePoint end = 0;
  bool have_begin = false;
  bool have_op = false;
  bool have_end = false;
  for (const auto raw_line : common::split(text, '\n')) {
    const auto line = common::trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    const auto eq = line.find('=');
    if (eq == std::string_view::npos) {
      return common::Error::make("manifest: malformed line '" +
                                 std::string(line) + "'");
    }
    const auto key = line.substr(0, eq);
    const auto value = line.substr(eq + 1);
    if (key == "name") {
      m.name = std::string(value);
    } else if (key == "study_begin" || key == "op_begin" || key == "study_end") {
      const auto t = common::parse_iso(value);
      if (!t) return common::Error::make("manifest: bad date in " + std::string(key));
      if (key == "study_begin") { begin = *t; have_begin = true; }
      if (key == "op_begin") { op = *t; have_op = true; }
      if (key == "study_end") { end = *t; have_end = true; }
    } else if (key == "node") {
      const auto colon = value.rfind(':');
      if (colon == std::string_view::npos) {
        return common::Error::make("manifest: bad node entry");
      }
      const long long gpus = common::parse_ll(value.substr(colon + 1));
      if (gpus <= 0 || gpus > 8) {
        return common::Error::make("manifest: bad node GPU count");
      }
      m.spec.nodes.push_back({std::string(value.substr(0, colon)),
                              static_cast<std::int32_t>(gpus)});
    } else if (key == "nodes") {
      // informational; validated below
    } else {
      return common::Error::make("manifest: unknown key '" + std::string(key) + "'");
    }
  }
  if (!have_begin || !have_op || !have_end) {
    return common::Error::make("manifest: missing period boundaries");
  }
  if (m.spec.nodes.empty()) {
    return common::Error::make("manifest: no nodes");
  }
  try {
    m.periods = StudyPeriods::make(begin, op, end);
  } catch (const std::invalid_argument& e) {
    return common::Error::make(std::string("manifest: ") + e.what());
  }
  return m;
}

DatasetWriter::DatasetWriter(fs::path dir, DatasetManifest manifest)
    : dir_(std::move(dir)), manifest_(std::move(manifest)) {
  fs::create_directories(dir_ / "syslog");
  accounting_.open(dir_ / "slurm_accounting.txt",
                   std::ios::trunc | std::ios::binary);
  if (!accounting_) {
    throw std::runtime_error("DatasetWriter: cannot create accounting file in " +
                             dir_.string());
  }
}

DatasetWriter::~DatasetWriter() {
  try {
    finalize();
  } catch (...) {
    // Destructors must not throw; an explicit finalize() surfaces errors.
  }
}

void DatasetWriter::note_write_failure(const std::string& what) {
  if (write_error_.empty()) write_error_ = what;
}

void DatasetWriter::write_day(common::TimePoint day_start,
                              const logsys::DayBuffer& day) {
  const auto path =
      dir_ / "syslog" / ("syslog-" + common::format_date(day_start) + ".log");
  std::ofstream os(path, std::ios::trunc | std::ios::binary);
  if (!os) {
    note_write_failure("DatasetWriter: cannot write " + path.string());
    return;
  }
  day.for_each_run([&os](std::string_view run) {
    os.write(run.data(), static_cast<std::streamsize>(run.size()));
  });
  os.flush();
  if (!os) {
    note_write_failure("DatasetWriter: write failed on " + path.string());
    return;
  }
  ++days_;
}

void DatasetWriter::write_day(common::TimePoint day_start,
                              const std::vector<logsys::RawLine>& lines) {
  logsys::DayBuffer day;
  std::size_t bytes = 0;
  for (const auto& l : lines) bytes += l.text.size() + 1;
  day.reserve(lines.size(), bytes);
  for (const auto& l : lines) day.append(l.time, l.text);
  write_day(day_start, day);
}

void DatasetWriter::write_accounting_line(std::string_view line) {
  accounting_ << line << '\n';
  if (!accounting_) {
    note_write_failure("DatasetWriter: accounting write failed in " +
                       dir_.string());
  }
}

void DatasetWriter::finalize() {
  if (finalized_) return;
  finalized_ = true;
  accounting_.flush();
  if (!accounting_) {
    note_write_failure("DatasetWriter: accounting flush failed in " +
                       dir_.string());
  }
  accounting_.close();
  std::ofstream os(dir_ / "manifest.txt", std::ios::trunc | std::ios::binary);
  if (!os) {
    note_write_failure("DatasetWriter: cannot write manifest in " +
                       dir_.string());
  } else {
    os << manifest_.serialize();
    os.flush();
    if (!os) {
      note_write_failure("DatasetWriter: manifest write failed in " +
                         dir_.string());
    }
  }
  if (!write_error_.empty()) throw std::runtime_error(write_error_);
}

common::Result<DatasetManifest> read_manifest(const fs::path& dir) {
  auto text = common::read_file((dir / "manifest.txt").string());
  if (!text.ok()) {
    return common::Error::make("dataset: missing manifest.txt in " +
                               dir.string());
  }
  return DatasetManifest::parse(text.value());
}

common::Result<std::uint64_t> load_dataset(const fs::path& dir,
                                           AnalysisPipeline& pipeline,
                                           obs::ProgressReporter* progress) {
  OBS_SPAN("dataset.load");
  const auto syslog_dir = dir / "syslog";
  if (!fs::is_directory(syslog_dir)) {
    return common::Error::make("dataset: missing syslog/ in " + dir.string());
  }
  // Collect day files; names encode the date, so lexicographic order is
  // chronological order.
  std::vector<fs::path> days;
  for (const auto& entry : fs::directory_iterator(syslog_dir)) {
    if (!entry.is_regular_file()) continue;
    const auto name = entry.path().filename().string();
    if (common::starts_with(name, "syslog-")) days.push_back(entry.path());
  }
  std::sort(days.begin(), days.end());

  // Validate all file names up front so the prefetcher never reads a file
  // the loop would later refuse to ingest.
  std::vector<common::TimePoint> dates;
  dates.reserve(days.size());
  for (const auto& path : days) {
    const auto name = path.filename().string();  // syslog-YYYY-MM-DD.log
    if (name.size() < 17) {
      return common::Error::make("dataset: bad day file name " + name);
    }
    const auto date = common::parse_iso(std::string_view(name).substr(7, 10));
    if (!date) {
      return common::Error::make("dataset: bad date in file name " + name);
    }
    dates.push_back(*date);
  }

  // Day ingestion.  Serial mode reads each file with one sized read and
  // hands the string to the pipeline, which adopts it as the day's arena.
  // Parallel mode overlaps I/O with parsing: a sliding window of read tasks
  // runs on the pipeline's own pool (day N parses while days N+1..N+k load),
  // but days are *consumed* strictly in file order, so the ingestion
  // sequence — and thus every downstream artifact — is identical to serial.
  common::ThreadPool* pool = pipeline.pool();
  std::uint64_t ingested = 0;
  const auto ingest_day_text = [&](std::size_t i, std::string&& text) {
    pipeline.ingest_log_text(dates[i], std::move(text));
    ++ingested;
    if (progress != nullptr) {
      progress->update(static_cast<std::size_t>(ingested), days.size());
    }
  };
  if (pool == nullptr) {
    for (std::size_t i = 0; i < days.size(); ++i) {
      auto text = common::read_file(days[i].string());
      if (!text.ok()) {
        return common::Error::make("dataset: cannot read " + days[i].string());
      }
      ingest_day_text(i, std::move(text).take());
    }
  } else {
    struct Slot {
      std::string text;
      bool failed = false;
    };
    const std::size_t window = pool->size() + 1;
    std::vector<Slot> slots(days.size());
    std::vector<std::future<void>> reads(days.size());
    const auto schedule = [&](std::size_t i) {
      reads[i] = pool->submit([&slots, &days, i] {
        auto text = common::read_file(days[i].string());
        if (text.ok()) {
          slots[i].text = std::move(text).take();
        } else {
          slots[i].failed = true;
        }
      });
    };
    for (std::size_t i = 0; i < std::min(window, days.size()); ++i) {
      schedule(i);
    }
    for (std::size_t i = 0; i < days.size(); ++i) {
      reads[i].get();
      // Keep the read window full before parsing blocks this thread.
      if (i + window < days.size()) schedule(i + window);
      if (slots[i].failed) {
        return common::Error::make("dataset: cannot read " + days[i].string());
      }
      ingest_day_text(i, std::move(slots[i].text));
    }
  }

  // Accounting: one sized read, then an in-place newline split (getline
  // pulled ~1.5M lines through the streambuf one character at a time).
  auto acc = common::read_file((dir / "slurm_accounting.txt").string());
  if (acc.ok()) {
    const std::string text = std::move(acc).take();
    std::size_t start = 0;
    while (start < text.size()) {
      std::size_t nl = text.find('\n', start);
      const std::size_t end = nl == std::string::npos ? text.size() : nl;
      pipeline.ingest_accounting_line(
          std::string_view(text).substr(start, end - start));
      if (nl == std::string::npos) break;
      start = nl + 1;
    }
  }
  pipeline.finish();
  return ingested;
}

}  // namespace gpures::analysis
