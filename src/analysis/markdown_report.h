// Markdown report generation: one self-contained document with every table,
// figure series, finding, and extension analysis a pipeline produced — the
// artifact a reliability team would attach to a quarterly review.  The
// `gpures-analyze --report-md FILE` flag writes it.
#pragma once

#include <string>

#include "analysis/data_quality.h"
#include "analysis/pipeline.h"

namespace gpures::analysis {

struct MarkdownReportOptions {
  std::string title = "GPU resilience characterization";
  /// When non-null, a "Data quality" section describing what ingestion
  /// dropped or quarantined is rendered first (readers must know how much
  /// of the input the numbers below actually saw).
  const DataQualityReport* quality = nullptr;
  bool include_table1 = true;
  bool include_findings = true;
  bool include_table2 = true;       ///< skipped automatically without jobs
  bool include_table3 = true;       ///< skipped automatically without jobs
  bool include_fig2 = true;
  bool include_trends = true;
  bool include_survival = true;
  bool include_mitigation = true;   ///< skipped automatically without jobs
  bool include_scorecard = false;   ///< only meaningful at full Delta scale
};

/// Render the full report from a finished pipeline.
std::string render_markdown_report(const AnalysisPipeline& pipe,
                                   const cluster::Topology& topo,
                                   const MarkdownReportOptions& opts = {});

}  // namespace gpures::analysis
