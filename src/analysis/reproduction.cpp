#include "analysis/reproduction.h"

#include <cmath>
#include <cstdio>
#include <limits>

#include "analysis/paper_reference.h"
#include "common/table.h"

namespace gpures::analysis {

double ScoreRow::ratio() const {
  if (paper == 0.0) return ours == 0.0 ? 1.0 : std::numeric_limits<double>::infinity();
  return ours / paper;
}

bool ScoreRow::matches() const {
  if (paper == 0.0) return ours == 0.0;
  const double r = ratio();
  return std::isfinite(r) && r >= 1.0 / tolerance && r <= tolerance;
}

std::size_t Scorecard::matched() const {
  std::size_t n = 0;
  for (const auto& r : rows) n += r.matches();
  return n;
}

double Scorecard::score() const {
  if (rows.empty()) return 0.0;
  return static_cast<double>(matched()) / static_cast<double>(rows.size());
}

std::string Scorecard::render() const {
  common::AsciiTable t({"metric", "paper", "ours", "ratio", "band", "ok"});
  for (const auto& r : rows) {
    char ratio[32];
    if (std::isfinite(r.ratio())) {
      std::snprintf(ratio, sizeof(ratio), "%.2f", r.ratio());
    } else {
      std::snprintf(ratio, sizeof(ratio), "-");
    }
    char band[32];
    std::snprintf(band, sizeof(band), "%.2gx", r.tolerance);
    t.add_row({r.metric, common::fmt_sig(r.paper, 4), common::fmt_sig(r.ours, 4),
               ratio, band, r.matches() ? "yes" : "NO"});
  }
  std::string out = t.render();
  char buf[96];
  std::snprintf(buf, sizeof(buf), "shape match: %zu/%zu metrics (%.0f%%)\n",
                matched(), total(), score() * 100.0);
  out += buf;
  return out;
}

Scorecard score_reproduction(const ErrorStats* error_stats,
                             const JobImpact* job_impact,
                             const JobStats* job_stats,
                             const AvailabilityStats* availability,
                             double mttf_h) {
  Scorecard card;
  auto add = [&card](std::string metric, double paper_v, double ours,
                     double tol) {
    card.rows.push_back({std::move(metric), paper_v, ours, tol});
  };

  if (error_stats != nullptr) {
    for (const auto& ref : paper::kTable1) {
      const auto* row = error_stats->find(ref.code);
      if (row == nullptr) continue;
      const auto d = xid::describe(ref.code);
      // Rare families (<20 events) scatter hard; give them a wide band.
      const auto band = [](std::uint64_t n) {
        return n >= 100 ? 1.35 : n >= 20 ? 2.0 : 4.0;
      };
      if (ref.pre_count > 0 || row->pre.count > 0) {
        add("count.pre." + std::string(d->abbrev),
            static_cast<double>(ref.pre_count),
            static_cast<double>(row->pre.count), band(ref.pre_count));
      }
      if (ref.op_count > 0 || row->op.count > 0) {
        add("count.op." + std::string(d->abbrev),
            static_cast<double>(ref.op_count),
            static_cast<double>(row->op.count), band(ref.op_count));
      }
    }
    add("mtbe.per_node.pre_h", paper::kPreNodeMtbeH,
        error_stats->total.pre.mtbe_per_node_h, 1.25);
    add("mtbe.per_node.op_h", paper::kOpNodeMtbeH,
        error_stats->total.op.mtbe_per_node_h, 1.25);
    add("ratio.memory_vs_hardware", paper::kMemoryVsHardwareRatio,
        error_stats->memory_reliability_ratio_op(), 2.0);
    add("ratio.gsp_degradation", paper::kGspDegradationRatio,
        error_stats->gsp_degradation_ratio(), 1.5);
  }

  if (job_impact != nullptr) {
    for (const auto& ref : paper::kTable2) {
      const auto* row = job_impact->find(ref.code);
      if (row == nullptr || row->encountering_jobs == 0) continue;
      const auto d = xid::describe(ref.code);
      add("p_fail." + std::string(d->abbrev), ref.failure_probability,
          row->failure_probability * 100.0, 1.25);
    }
    add("gpu_failed_jobs", static_cast<double>(paper::kGpuFailedJobs),
        static_cast<double>(job_impact->gpu_failed_jobs), 1.5);
  }

  if (job_stats != nullptr) {
    add("jobs.success_pct", paper::kGpuJobSuccessPct,
        job_stats->success_rate * 100.0, 1.05);
    for (std::size_t i = 0;
         i < std::min(paper::kTable3.size(), job_stats->buckets.size()); ++i) {
      const auto& ref = paper::kTable3[i];
      const auto& b = job_stats->buckets[i];
      add(std::string("jobs.share.") + ref.label, ref.share_pct,
          b.share * 100.0, 1.25);
      add(std::string("jobs.p50_min.") + ref.label, ref.p50_min,
          b.p50_minutes, 2.0);
    }
  }

  if (availability != nullptr) {
    add("mttr_h", paper::kMttrH, availability->mttr_h, 1.5);
    const double a = availability->availability(mttf_h);
    add("availability_pct", paper::kAvailabilityPct, a * 100.0, 1.01);
    add("downtime_min_per_day", paper::kDowntimeMinPerDay,
        AvailabilityStats::downtime_minutes_per_day(a), 2.0);
  }
  return card;
}

}  // namespace gpures::analysis
