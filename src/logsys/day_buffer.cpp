#include "logsys/day_buffer.h"

#include <algorithm>
#include <cstring>

#include "simd/scan.h"

namespace gpures::logsys {

DayBuffer DayBuffer::from_text(common::TimePoint default_time,
                               std::string&& text) {
  // One kernel table fetch per file; every scan below goes through the
  // active SIMD backend (scalar/SWAR/AVX2), all of which return identical
  // slices (see simd/scan.h and tests/test_simd.cpp).
  const auto& k = simd::active_ops();
  DayBuffer buf;
  if (!text.empty() && text.back() != '\n') text.push_back('\n');
  buf.arena_ = std::move(text);
  // One line per newline is exact for written day files; reserve up front so
  // the slice scan never reallocates mid-flight.
  const char* base = buf.arena_.data();
  const std::size_t n = buf.arena_.size();
  buf.slices_.reserve(k.count_byte(base, n, '\n'));
  std::size_t pos = 0;
  while (pos < n) {
    const std::size_t eol = pos + k.find_byte(base + pos, n - pos, '\n');
    if (eol > pos) {  // skip empty lines, matching pipeline line ingestion
      buf.slices_.push_back(LineSlice{default_time, pos,
                                      static_cast<std::uint32_t>(eol - pos)});
    }
    pos = eol + 1;
  }
  return buf;
}

DayBuffer DayBuffer::from_text(common::TimePoint default_time,
                               std::string&& text, const LineScreen& screen,
                               ScreenCounts& counts) {
  const auto& k = simd::active_ops();
  DayBuffer buf;
  // CRLF archives are messy-but-real input, not corruption: a '\r' that
  // immediately precedes '\n' is part of the line terminator, not the line.
  // Normalize to LF in place before classification so CRLF days parse the
  // same as LF days instead of every line being quarantined as binary; the
  // stripped bytes are tallied as terminator bytes (like '\n', excluded
  // from kept/quarantined counts).  LF-only input never enters this branch.
  // The rewrite jumps '\r' to '\r' with the byte-search kernel and moves
  // whole clean spans at once instead of copying byte by byte.
  if (k.find_substr(text.data(), text.size(), "\r\n", 2) != text.size()) {
    const std::size_t size = text.size();
    std::size_t w = 0, r = 0;
    while (r < size) {
      const std::size_t next = r + k.find_byte(text.data() + r, size - r, '\r');
      if (next > r && w != r) std::memmove(&text[w], &text[r], next - r);
      w += next - r;
      if (next == size) break;
      if (next + 1 < size && text[next + 1] == '\n') {
        ++counts.crlf_bytes;  // drop the '\r'; the '\n' is copied next round
      } else {
        text[w++] = '\r';  // lone '\r' is content (classified binary below)
      }
      r = next + 1;
    }
    text.resize(w);
  }
  const bool had_final_newline = text.empty() || text.back() == '\n';
  if (!had_final_newline) text.push_back('\n');
  buf.arena_ = std::move(text);
  const char* base = buf.arena_.data();
  const std::size_t n = buf.arena_.size();
  buf.slices_.reserve(k.count_byte(base, n, '\n'));
  std::size_t pos = 0;
  std::uint64_t line_no = 0;
  const auto offend = [&](const char* category, std::uint64_t len,
                          std::uint64_t& lines, std::uint64_t& bytes) {
    lines += 1;
    bytes += len;
    if (counts.first_category == nullptr) {
      counts.first_category = category;
      counts.first_line = line_no;
      counts.first_offset = pos;
    }
  };
  while (pos < n) {
    // One fused pass finds the newline AND classifies control bytes — the
    // pre-SIMD path paid a memchr scan plus a separate is_binary_line byte
    // loop over every kept line.
    const simd::LineScan scan = k.next_line(base + pos, n - pos);
    const std::size_t eol = pos + scan.eol;  // < n: final '\n' guaranteed
    ++line_no;
    if (eol > pos) {
      const std::size_t len = eol - pos;
      // One category per line, checked most- to least-specific: a torn EOF
      // fragment is torn no matter its content, then length, then bytes.
      if (eol == n - 1 && !had_final_newline) {
        offend("torn", len, counts.torn_lines, counts.torn_bytes);
      } else if (len > screen.max_line_len) {
        offend("overlong", len, counts.overlong_lines, counts.overlong_bytes);
      } else if (scan.binary) {
        offend("binary", len, counts.binary_lines, counts.binary_bytes);
      } else {
        counts.kept_lines += 1;
        counts.kept_bytes += len;
        buf.slices_.push_back(
            LineSlice{default_time, pos, static_cast<std::uint32_t>(len)});
      }
    }
    pos = eol + 1;
  }
  return buf;
}

void DayBuffer::sort_by_time() {
  common::check(!open_, "DayBuffer: sort_by_time with a line open");
  std::stable_sort(slices_.begin(), slices_.end(),
                   [](const LineSlice& a, const LineSlice& b) {
                     return a.time < b.time;
                   });
}

std::string render_day(const DayBuffer& buf) {
  std::string out;
  out.reserve(buf.bytes());
  buf.for_each_run([&out](std::string_view run) { out += run; });
  return out;
}

}  // namespace gpures::logsys
