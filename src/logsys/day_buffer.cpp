#include "logsys/day_buffer.h"

#include <algorithm>
#include <cstring>

namespace gpures::logsys {

DayBuffer DayBuffer::from_text(common::TimePoint default_time,
                               std::string&& text) {
  DayBuffer buf;
  if (!text.empty() && text.back() != '\n') text.push_back('\n');
  buf.arena_ = std::move(text);
  // One line per newline is exact for written day files; reserve up front so
  // the slice scan never reallocates mid-flight.
  buf.slices_.reserve(
      static_cast<std::size_t>(std::count(buf.arena_.begin(), buf.arena_.end(), '\n')));
  const char* base = buf.arena_.data();
  const std::size_t n = buf.arena_.size();
  std::size_t pos = 0;
  while (pos < n) {
    const void* nl = std::memchr(base + pos, '\n', n - pos);
    const std::size_t eol = static_cast<std::size_t>(static_cast<const char*>(nl) - base);
    if (eol > pos) {  // skip empty lines, matching pipeline line ingestion
      buf.slices_.push_back(LineSlice{default_time, pos,
                                      static_cast<std::uint32_t>(eol - pos)});
    }
    pos = eol + 1;
  }
  return buf;
}

void DayBuffer::sort_by_time() {
  common::check(!open_, "DayBuffer: sort_by_time with a line open");
  std::stable_sort(slices_.begin(), slices_.end(),
                   [](const LineSlice& a, const LineSlice& b) {
                     return a.time < b.time;
                   });
}

std::string render_day(const DayBuffer& buf) {
  std::string out;
  out.reserve(buf.bytes());
  buf.for_each_run([&out](std::string_view run) { out += run; });
  return out;
}

}  // namespace gpures::logsys
