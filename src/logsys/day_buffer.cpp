#include "logsys/day_buffer.h"

#include <algorithm>
#include <cstring>

namespace gpures::logsys {

DayBuffer DayBuffer::from_text(common::TimePoint default_time,
                               std::string&& text) {
  DayBuffer buf;
  if (!text.empty() && text.back() != '\n') text.push_back('\n');
  buf.arena_ = std::move(text);
  // One line per newline is exact for written day files; reserve up front so
  // the slice scan never reallocates mid-flight.
  buf.slices_.reserve(
      static_cast<std::size_t>(std::count(buf.arena_.begin(), buf.arena_.end(), '\n')));
  const char* base = buf.arena_.data();
  const std::size_t n = buf.arena_.size();
  std::size_t pos = 0;
  while (pos < n) {
    const void* nl = std::memchr(base + pos, '\n', n - pos);
    const std::size_t eol = static_cast<std::size_t>(static_cast<const char*>(nl) - base);
    if (eol > pos) {  // skip empty lines, matching pipeline line ingestion
      buf.slices_.push_back(LineSlice{default_time, pos,
                                      static_cast<std::uint32_t>(eol - pos)});
    }
    pos = eol + 1;
  }
  return buf;
}

namespace {

// Control bytes other than '\t' (and the line-structure '\n', which never
// appears inside a slice) cannot occur in a text log line; DEL rounds out
// the set.  High-bit bytes are allowed: real logs legitimately carry UTF-8.
bool is_binary_line(const char* p, std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) {
    const unsigned char c = static_cast<unsigned char>(p[i]);
    if ((c < 0x20 && c != '\t') || c == 0x7f) return true;
  }
  return false;
}

}  // namespace

DayBuffer DayBuffer::from_text(common::TimePoint default_time,
                               std::string&& text, const LineScreen& screen,
                               ScreenCounts& counts) {
  DayBuffer buf;
  // CRLF archives are messy-but-real input, not corruption: a '\r' that
  // immediately precedes '\n' is part of the line terminator, not the line.
  // Normalize to LF in place before classification so CRLF days parse the
  // same as LF days instead of every line being quarantined as binary; the
  // stripped bytes are tallied as terminator bytes (like '\n', excluded
  // from kept/quarantined counts).  LF-only input never enters this branch.
  if (text.find("\r\n") != std::string::npos) {
    std::size_t w = 0;
    for (std::size_t r = 0; r < text.size(); ++r) {
      if (text[r] == '\r' && r + 1 < text.size() && text[r + 1] == '\n') {
        ++counts.crlf_bytes;
        continue;
      }
      text[w++] = text[r];
    }
    text.resize(w);
  }
  const bool had_final_newline = text.empty() || text.back() == '\n';
  if (!had_final_newline) text.push_back('\n');
  buf.arena_ = std::move(text);
  buf.slices_.reserve(static_cast<std::size_t>(
      std::count(buf.arena_.begin(), buf.arena_.end(), '\n')));
  const char* base = buf.arena_.data();
  const std::size_t n = buf.arena_.size();
  std::size_t pos = 0;
  std::uint64_t line_no = 0;
  const auto offend = [&](const char* category, std::uint64_t len,
                          std::uint64_t& lines, std::uint64_t& bytes) {
    lines += 1;
    bytes += len;
    if (counts.first_category == nullptr) {
      counts.first_category = category;
      counts.first_line = line_no;
      counts.first_offset = pos;
    }
  };
  while (pos < n) {
    const void* nl = std::memchr(base + pos, '\n', n - pos);
    const std::size_t eol =
        static_cast<std::size_t>(static_cast<const char*>(nl) - base);
    ++line_no;
    if (eol > pos) {  // skip empty lines, matching pipeline line ingestion
      const std::size_t len = eol - pos;
      // One category per line, checked most- to least-specific: a torn EOF
      // fragment is torn no matter its content, then length, then bytes.
      if (eol == n - 1 && !had_final_newline) {
        offend("torn", len, counts.torn_lines, counts.torn_bytes);
      } else if (len > screen.max_line_len) {
        offend("overlong", len, counts.overlong_lines, counts.overlong_bytes);
      } else if (is_binary_line(base + pos, len)) {
        offend("binary", len, counts.binary_lines, counts.binary_bytes);
      } else {
        counts.kept_lines += 1;
        counts.kept_bytes += len;
        buf.slices_.push_back(
            LineSlice{default_time, pos, static_cast<std::uint32_t>(len)});
      }
    }
    pos = eol + 1;
  }
  return buf;
}

void DayBuffer::sort_by_time() {
  common::check(!open_, "DayBuffer: sort_by_time with a line open");
  std::stable_sort(slices_.begin(), slices_.end(),
                   [](const LineSlice& a, const LineSlice& b) {
                     return a.time < b.time;
                   });
}

std::string render_day(const DayBuffer& buf) {
  std::string out;
  out.reserve(buf.bytes());
  buf.for_each_run([&out](std::string_view run) { out += run; });
  return out;
}

}  // namespace gpures::logsys
