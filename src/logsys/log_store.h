// Day-bucketed log streaming.
//
// Delta consolidates system logs per day across all nodes; the pipeline's
// Stage I consumes day files.  DayLogStream reproduces that artifact shape
// without holding the whole campaign's multi-million-line log in memory: the
// simulator appends lines in rough time order into one DayBuffer arena per
// open day, and whole days are flushed (slices stably sorted by timestamp)
// to a consumer as soon as they are complete.  Emitters render in place via
// append_with, so a day's worth of log text is built with zero per-line
// heap allocations.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.h"
#include "logsys/day_buffer.h"

namespace gpures::logsys {

/// One raw log line with the timestamp used for bucketing/sorting.  Kept as
/// the convenience unit for tests and small fixtures; the streaming path
/// itself stores lines in DayBuffer arenas.
struct RawLine {
  common::TimePoint time = 0;
  std::string text;
};

class DayLogStream {
 public:
  /// Called once per finished day with that day's midnight and its arena,
  /// slices sorted by time (stable).
  using DayConsumer =
      std::function<void(common::TimePoint day_start, DayBuffer&&)>;

  explicit DayLogStream(DayConsumer consumer);

  /// Append a line (mostly in time order; small backwards jitter is fine).
  void append(common::TimePoint t, std::string_view text) {
    append_with(t, [text](std::string& out) { out.append(text); });
  }

  /// Append a line rendered directly into the day's arena: `render` receives
  /// the arena string and appends the line text (no trailing newline).  This
  /// is the zero-allocation emit path.
  template <typename RenderFn>
  void append_with(common::TimePoint t, RenderFn&& render) {
    render(open_line(t));
    close_line();
  }

  /// Flush every day that ends strictly before `t`'s day.
  void flush_through(common::TimePoint t);

  /// Flush everything (end of campaign).
  void finalize();

  std::uint64_t lines_appended() const { return appended_; }
  std::uint64_t days_flushed() const { return flushed_; }

 private:
  std::string& open_line(common::TimePoint t);
  void close_line();
  void flush_day(std::int64_t day);

  DayConsumer consumer_;
  std::map<std::int64_t, DayBuffer> buffers_;  ///< by day index
  DayBuffer* open_buffer_ = nullptr;           ///< buffer of the open line
  std::int64_t min_open_day_ = std::numeric_limits<std::int64_t>::min();
  std::uint64_t appended_ = 0;
  std::uint64_t flushed_ = 0;
};

/// Convenience: write one day's lines as text (one per line) to a string —
/// used by tests and by examples that materialize day files on disk.
std::string render_day(const std::vector<RawLine>& lines);

}  // namespace gpures::logsys
