// Day-bucketed log streaming.
//
// Delta consolidates system logs per day across all nodes; the pipeline's
// Stage I consumes day files.  DayLogStream reproduces that artifact shape
// without holding the whole campaign's multi-million-line log in memory: the
// simulator appends lines in rough time order, and whole days are flushed
// (sorted by timestamp) to a consumer as soon as they are complete.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/time.h"

namespace gpures::logsys {

/// One raw log line with the timestamp used for bucketing/sorting.  The text
/// itself also carries the (syslog-format) timestamp; consumers parse text.
struct RawLine {
  common::TimePoint time = 0;
  std::string text;
};

class DayLogStream {
 public:
  /// Called once per finished day with that day's midnight and its lines
  /// sorted by time (stable).
  using DayConsumer =
      std::function<void(common::TimePoint day_start, std::vector<RawLine>&&)>;

  explicit DayLogStream(DayConsumer consumer);

  /// Append a line (mostly in time order; small backwards jitter is fine).
  void append(common::TimePoint t, std::string text);

  /// Flush every day that ends strictly before `t`'s day.
  void flush_through(common::TimePoint t);

  /// Flush everything (end of campaign).
  void finalize();

  std::uint64_t lines_appended() const { return appended_; }
  std::uint64_t days_flushed() const { return flushed_; }

 private:
  void flush_day(std::int64_t day);

  DayConsumer consumer_;
  std::map<std::int64_t, std::vector<RawLine>> buffers_;  ///< by day index
  std::int64_t min_open_day_ = std::numeric_limits<std::int64_t>::min();
  std::uint64_t appended_ = 0;
  std::uint64_t flushed_ = 0;
};

/// Convenience: write one day's lines as text (one per line) to a string —
/// used by tests and by examples that materialize day files on disk.
std::string render_day(const std::vector<RawLine>& lines);

}  // namespace gpures::logsys
