#include "logsys/log_store.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace gpures::logsys {

DayLogStream::DayLogStream(DayConsumer consumer)
    : consumer_(std::move(consumer)) {
  if (!consumer_) throw std::invalid_argument("DayLogStream: null consumer");
}

std::string& DayLogStream::open_line(common::TimePoint t) {
  const std::int64_t day = common::day_index(t);
  if (day < min_open_day_) {
    throw std::logic_error("DayLogStream: line appended to already-flushed day");
  }
  open_buffer_ = &buffers_[day];
  return open_buffer_->open_line(t);
}

void DayLogStream::close_line() {
  open_buffer_->close_line();
  open_buffer_ = nullptr;
  ++appended_;
}

void DayLogStream::flush_through(common::TimePoint t) {
  const std::int64_t cutoff = common::day_index(t);
  while (!buffers_.empty() && buffers_.begin()->first < cutoff) {
    flush_day(buffers_.begin()->first);
  }
  min_open_day_ = std::max(min_open_day_, cutoff);
}

void DayLogStream::finalize() {
  while (!buffers_.empty()) {
    flush_day(buffers_.begin()->first);
  }
}

void DayLogStream::flush_day(std::int64_t day) {
  auto it = buffers_.find(day);
  if (it == buffers_.end()) return;
  DayBuffer buf = std::move(it->second);
  buffers_.erase(it);
  buf.sort_by_time();
  ++flushed_;
  consumer_(day * common::kDay, std::move(buf));
}

std::string render_day(const std::vector<RawLine>& lines) {
  std::string out;
  std::size_t total = 0;
  for (const auto& l : lines) total += l.text.size() + 1;
  out.reserve(total);
  for (const auto& l : lines) {
    out += l.text;
    out += '\n';
  }
  return out;
}

}  // namespace gpures::logsys
