#include "logsys/log_store.h"

#include <algorithm>
#include <stdexcept>

namespace gpures::logsys {

DayLogStream::DayLogStream(DayConsumer consumer)
    : consumer_(std::move(consumer)) {
  if (!consumer_) throw std::invalid_argument("DayLogStream: null consumer");
}

void DayLogStream::append(common::TimePoint t, std::string text) {
  const std::int64_t day = common::day_index(t);
  if (day < min_open_day_) {
    throw std::logic_error("DayLogStream: line appended to already-flushed day");
  }
  buffers_[day].push_back(RawLine{t, std::move(text)});
  ++appended_;
}

void DayLogStream::flush_through(common::TimePoint t) {
  const std::int64_t cutoff = common::day_index(t);
  while (!buffers_.empty() && buffers_.begin()->first < cutoff) {
    flush_day(buffers_.begin()->first);
  }
  min_open_day_ = std::max(min_open_day_, cutoff);
}

void DayLogStream::finalize() {
  while (!buffers_.empty()) {
    flush_day(buffers_.begin()->first);
  }
}

void DayLogStream::flush_day(std::int64_t day) {
  auto it = buffers_.find(day);
  if (it == buffers_.end()) return;
  auto lines = std::move(it->second);
  buffers_.erase(it);
  std::stable_sort(lines.begin(), lines.end(),
                   [](const RawLine& a, const RawLine& b) { return a.time < b.time; });
  ++flushed_;
  consumer_(day * common::kDay, std::move(lines));
}

std::string render_day(const std::vector<RawLine>& lines) {
  std::string out;
  std::size_t total = 0;
  for (const auto& l : lines) total += l.text.size() + 1;
  out.reserve(total);
  for (const auto& l : lines) {
    out += l.text;
    out += '\n';
  }
  return out;
}

}  // namespace gpures::logsys
