// Syslog-format rendering for the raw artifacts the pipeline ingests.
//
// The cluster's raw log is classic RFC3164-style text.  XID errors use the
// NVIDIA kernel-driver format the paper's Stage-I regex targets:
//
//   May  5 07:23:01 gpua042 kernel: NVRM: Xid (PCI:0000:27:00): 95,
//       pid=12345, Uncontained ECC error ...
//
// Node lifecycle events (drain / resume) come from slurmctld and are used by
// the availability analysis; everything else is noise the Stage-I filter
// must reject.
//
// Each line has two forms: an append_* variant that renders straight into a
// caller-owned buffer (the DayBuffer arena — the zero-allocation hot path)
// and a render_* wrapper returning a fresh std::string for tests and small
// fixtures.  The wrappers delegate to the appenders, so the two paths are
// byte-identical by construction.
#pragma once

#include <string>
#include <string_view>

#include "common/rng.h"
#include "common/time.h"
#include "xid/xid.h"

namespace gpures::logsys {

/// Append a kernel NVRM XID line to `out`.
void append_xid_line(std::string& out, common::TimePoint t,
                     std::string_view host, std::string_view pci_bus,
                     xid::Code code, std::string_view detail);

/// Append the slurmctld drain line the SRE health checks produce.
void append_drain_line(std::string& out, common::TimePoint t,
                       std::string_view host,
                       std::string_view reason = "gpu_health_check_failed");

/// Append the slurmctld resume (return-to-service) line.
void append_resume_line(std::string& out, common::TimePoint t,
                        std::string_view host);

/// Append a realistic non-XID noise line (sshd, lustre, systemd, ...).
void append_noise_line(std::string& out, common::Rng& rng, common::TimePoint t,
                       std::string_view host);

/// Render a kernel NVRM XID line.
std::string render_xid_line(common::TimePoint t, std::string_view host,
                            std::string_view pci_bus, xid::Code code,
                            std::string_view detail);

/// Render the slurmctld drain line the SRE health checks produce.
std::string render_drain_line(common::TimePoint t, std::string_view host,
                              std::string_view reason = "gpu_health_check_failed");

/// Render the slurmctld resume (return-to-service) line.
std::string render_resume_line(common::TimePoint t, std::string_view host);

/// Render a realistic non-XID noise line (sshd, lustre, systemd, ...).
std::string render_noise_line(common::Rng& rng, common::TimePoint t,
                              std::string_view host);

}  // namespace gpures::logsys
