// Syslog-format rendering for the raw artifacts the pipeline ingests.
//
// The cluster's raw log is classic RFC3164-style text.  XID errors use the
// NVIDIA kernel-driver format the paper's Stage-I regex targets:
//
//   May  5 07:23:01 gpua042 kernel: NVRM: Xid (PCI:0000:27:00): 95,
//       pid=12345, Uncontained ECC error ...
//
// Node lifecycle events (drain / resume) come from slurmctld and are used by
// the availability analysis; everything else is noise the Stage-I filter
// must reject.
#pragma once

#include <string>
#include <string_view>

#include "common/rng.h"
#include "common/time.h"
#include "xid/xid.h"

namespace gpures::logsys {

/// Render a kernel NVRM XID line.
std::string render_xid_line(common::TimePoint t, std::string_view host,
                            std::string_view pci_bus, xid::Code code,
                            std::string_view detail);

/// Render the slurmctld drain line the SRE health checks produce.
std::string render_drain_line(common::TimePoint t, std::string_view host,
                              std::string_view reason = "gpu_health_check_failed");

/// Render the slurmctld resume (return-to-service) line.
std::string render_resume_line(common::TimePoint t, std::string_view host);

/// Render a realistic non-XID noise line (sshd, lustre, systemd, ...).
std::string render_noise_line(common::Rng& rng, common::TimePoint t,
                              std::string_view host);

}  // namespace gpures::logsys
