// Contiguous per-day log arena.
//
// The seed data model kept every simulated syslog line as its own heap
// std::string (logsys::RawLine); at paper scale — hundreds of millions of
// lines, one faulty GPU alone emitting >1M lines in 17 days — that is one
// allocation, one copy, and one pointer chase per line on both the emit and
// the parse path.  DayBuffer replaces it with the arena discipline of
// high-throughput solvers: one char buffer per day plus a flat vector of
// {time, offset, len} slices.  Emitters append straight into the arena,
// sorting permutes 16-byte slices instead of strings, writers stream the
// arena out in maximal contiguous runs, and Stage-I parses std::string_view
// slices with zero per-line copies.
//
// Invariants:
//  - Every slice's text occupies arena[offset, offset+len) and is followed
//    by exactly one '\n' at arena[offset+len].  (from_text appends a final
//    '\n' if the source file lacked one, so the invariant is unconditional.)
//  - Slice text never contains '\n'.
//  - `slices` is the only ordering that matters; sort_by_time() permutes it
//    stably, so equal timestamps keep emission order and the rendered bytes
//    are identical to the seed's stable_sort over RawLine strings.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.h"
#include "common/time.h"

namespace gpures::logsys {

/// One log line inside a DayBuffer arena: bucketing/sorting timestamp plus
/// the [offset, offset+len) extent of the text (newline excluded).
struct LineSlice {
  common::TimePoint time = 0;
  std::uint64_t offset = 0;
  std::uint32_t len = 0;
};

class DayBuffer {
 public:
  DayBuffer() = default;

  // Movable, not copyable: a day can be tens of MB and accidental copies are
  // exactly the cost this type exists to remove.
  DayBuffer(const DayBuffer&) = delete;
  DayBuffer& operator=(const DayBuffer&) = delete;
  DayBuffer(DayBuffer&&) = default;
  DayBuffer& operator=(DayBuffer&&) = default;

  /// Start a line at `t` and hand the caller the arena to append the line
  /// text into (no trailing newline).  Must be paired with close_line().
  std::string& open_line(common::TimePoint t) {
    common::check(!open_, "DayBuffer: open_line with a line already open");
    open_ = true;
    pending_time_ = t;
    pending_offset_ = arena_.size();
    return arena_;
  }

  /// Seal the line opened by open_line(): record its slice and terminate it
  /// with '\n' in the arena.
  void close_line() {
    common::check(open_, "DayBuffer: close_line without open_line");
    open_ = false;
    const std::uint64_t len = arena_.size() - pending_offset_;
    arena_.push_back('\n');
    slices_.push_back(LineSlice{pending_time_, pending_offset_,
                                static_cast<std::uint32_t>(len)});
  }

  /// Append a complete line (convenience over open_line/close_line).
  void append(common::TimePoint t, std::string_view text) {
    open_line(t).append(text);
    close_line();
  }

  /// Build a DayBuffer by taking ownership of a loaded day file: the text is
  /// moved (not copied) into the arena and sliced on '\n'.  Empty lines are
  /// skipped, matching the pipeline's line ingestion; every slice gets
  /// `default_time` (day files carry their real timestamps in the text).
  static DayBuffer from_text(common::TimePoint default_time, std::string&& text);

  std::size_t size() const { return slices_.size(); }
  bool empty() const { return slices_.empty(); }

  common::TimePoint time(std::size_t i) const { return slices_[i].time; }

  /// Line text without the trailing newline.  Borrowed from the arena: valid
  /// until the buffer is destroyed or cleared (slices never move the arena).
  std::string_view line(std::size_t i) const {
    const LineSlice& s = slices_[i];
    return std::string_view(arena_).substr(s.offset, s.len);
  }

  const std::string& arena() const { return arena_; }
  const std::vector<LineSlice>& slices() const { return slices_; }

  /// Total arena bytes (line texts + newlines).
  std::uint64_t bytes() const { return arena_.size(); }

  /// Pre-size for an expected day (called once per day, not per line).
  void reserve(std::size_t lines, std::size_t arena_bytes) {
    slices_.reserve(lines);
    arena_.reserve(arena_bytes);
  }

  void clear() {
    arena_.clear();
    slices_.clear();
    open_ = false;
  }

  /// Stable sort of the slices by time: equal timestamps keep append order,
  /// so rendered output is byte-identical to sorting the old per-line
  /// strings.  The arena itself never moves.
  void sort_by_time();

  /// Visit the sorted lines as maximal contiguous arena runs (newlines
  /// included), so a fully in-order day becomes a single write syscall.
  /// `fn` receives std::string_view chunks in output order.
  template <typename Fn>
  void for_each_run(Fn&& fn) const {
    std::size_t i = 0;
    while (i < slices_.size()) {
      const std::uint64_t start = slices_[i].offset;
      std::uint64_t end = slices_[i].offset + slices_[i].len + 1;  // + '\n'
      ++i;
      while (i < slices_.size() && slices_[i].offset == end) {
        end = slices_[i].offset + slices_[i].len + 1;
        ++i;
      }
      fn(std::string_view(arena_).substr(start, end - start));
    }
  }

 private:
  std::string arena_;
  std::vector<LineSlice> slices_;
  common::TimePoint pending_time_ = 0;
  std::uint64_t pending_offset_ = 0;
  bool open_ = false;
};

/// Render the buffer's lines in slice order, one per line with trailing
/// newlines — the view the old render_day(vector<RawLine>) used to copy.
std::string render_day(const DayBuffer& buf);

}  // namespace gpures::logsys
