// Contiguous per-day log arena.
//
// The seed data model kept every simulated syslog line as its own heap
// std::string (logsys::RawLine); at paper scale — hundreds of millions of
// lines, one faulty GPU alone emitting >1M lines in 17 days — that is one
// allocation, one copy, and one pointer chase per line on both the emit and
// the parse path.  DayBuffer replaces it with the arena discipline of
// high-throughput solvers: one char buffer per day plus a flat vector of
// {time, offset, len} slices.  Emitters append straight into the arena,
// sorting permutes 16-byte slices instead of strings, writers stream the
// arena out in maximal contiguous runs, and Stage-I parses std::string_view
// slices with zero per-line copies.
//
// Invariants:
//  - Every slice's text occupies arena[offset, offset+len) and is followed
//    by exactly one '\n' at arena[offset+len].  (from_text appends a final
//    '\n' if the source file lacked one, so the invariant is unconditional.)
//  - Slice text never contains '\n'.
//  - `slices` is the only ordering that matters; sort_by_time() permutes it
//    stably, so equal timestamps keep emission order and the rendered bytes
//    are identical to the seed's stable_sort over RawLine strings.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.h"
#include "common/time.h"

namespace gpures::logsys {

/// One log line inside a DayBuffer arena: bucketing/sorting timestamp plus
/// the [offset, offset+len) extent of the text (newline excluded).
struct LineSlice {
  common::TimePoint time = 0;
  std::uint64_t offset = 0;
  std::uint32_t len = 0;
};

/// Ingestion screen applied while slicing a loaded day file: lines that can
/// only be corruption — not merely "noise Stage I will reject" — are
/// excluded from the buffer and tallied so the loader can quarantine
/// (lenient) or fail fast (strict).  On clean simulator output the screen
/// matches nothing, so screened and unscreened slicing are byte-identical.
struct LineScreen {
  /// Longest plausible log line; anything longer is quarantined.  Simulator
  /// lines top out well under 300 bytes; real syslog lines under 2 KiB.
  std::uint32_t max_line_len = 8192;
};

/// Per-file tallies produced by the screen.  Quarantined lines fall in
/// exactly one category (checked in order: torn, overlong, binary), so
/// lines and bytes sum exactly — the reconciliation contract the chaos
/// harness asserts against the corrupter's ledger.
struct ScreenCounts {
  std::uint64_t kept_lines = 0;
  std::uint64_t kept_bytes = 0;      ///< slice text bytes, newlines excluded
  std::uint64_t binary_lines = 0;    ///< control bytes other than '\t'
  std::uint64_t binary_bytes = 0;
  std::uint64_t overlong_lines = 0;  ///< longer than LineScreen::max_line_len
  std::uint64_t overlong_bytes = 0;
  std::uint64_t torn_lines = 0;      ///< newline-less fragment at EOF (0|1)
  std::uint64_t torn_bytes = 0;
  /// '\r' bytes stripped from CRLF line terminators.  Terminator bytes, not
  /// content: excluded from both kept and quarantined byte counts, like the
  /// '\n' they precede.  Nonzero means the file was a CRLF archive.
  std::uint64_t crlf_bytes = 0;
  // First offense, for strict-mode errors naming the exact spot.
  std::uint64_t first_line = 0;     ///< 1-based physical line; 0 = clean
  std::uint64_t first_offset = 0;   ///< byte offset of the offending line
  const char* first_category = nullptr;

  std::uint64_t quarantined_lines() const {
    return binary_lines + overlong_lines + torn_lines;
  }
  std::uint64_t quarantined_bytes() const {
    return binary_bytes + overlong_bytes + torn_bytes;
  }
};

class DayBuffer {
 public:
  DayBuffer() = default;

  // Movable, not copyable: a day can be tens of MB and accidental copies are
  // exactly the cost this type exists to remove.
  DayBuffer(const DayBuffer&) = delete;
  DayBuffer& operator=(const DayBuffer&) = delete;
  DayBuffer(DayBuffer&&) = default;
  DayBuffer& operator=(DayBuffer&&) = default;

  /// Start a line at `t` and hand the caller the arena to append the line
  /// text into (no trailing newline).  Must be paired with close_line().
  std::string& open_line(common::TimePoint t) {
    common::check(!open_, "DayBuffer: open_line with a line already open");
    open_ = true;
    pending_time_ = t;
    pending_offset_ = arena_.size();
    return arena_;
  }

  /// Seal the line opened by open_line(): record its slice and terminate it
  /// with '\n' in the arena.
  void close_line() {
    common::check(open_, "DayBuffer: close_line without open_line");
    open_ = false;
    const std::uint64_t len = arena_.size() - pending_offset_;
    arena_.push_back('\n');
    slices_.push_back(LineSlice{pending_time_, pending_offset_,
                                static_cast<std::uint32_t>(len)});
  }

  /// Append a complete line (convenience over open_line/close_line).
  void append(common::TimePoint t, std::string_view text) {
    open_line(t).append(text);
    close_line();
  }

  /// Build a DayBuffer by taking ownership of a loaded day file: the text is
  /// moved (not copied) into the arena and sliced on '\n'.  Empty lines are
  /// skipped, matching the pipeline's line ingestion; every slice gets
  /// `default_time` (day files carry their real timestamps in the text).
  static DayBuffer from_text(common::TimePoint default_time, std::string&& text);

  /// from_text with an ingestion screen: quarantinable lines (binary,
  /// overlong, torn EOF fragment) are excluded from the slices and tallied
  /// into `counts`.  With no offending lines the result is identical to
  /// from_text — same arena bytes, same slices.
  static DayBuffer from_text(common::TimePoint default_time, std::string&& text,
                             const LineScreen& screen, ScreenCounts& counts);

  std::size_t size() const { return slices_.size(); }
  bool empty() const { return slices_.empty(); }

  common::TimePoint time(std::size_t i) const { return slices_[i].time; }

  /// Line text without the trailing newline.  Borrowed from the arena: valid
  /// until the buffer is destroyed or cleared (slices never move the arena).
  std::string_view line(std::size_t i) const {
    const LineSlice& s = slices_[i];
    return std::string_view(arena_).substr(s.offset, s.len);
  }

  const std::string& arena() const { return arena_; }
  const std::vector<LineSlice>& slices() const { return slices_; }

  /// Total arena bytes (line texts + newlines).
  std::uint64_t bytes() const { return arena_.size(); }

  /// Pre-size for an expected day (called once per day, not per line).
  void reserve(std::size_t lines, std::size_t arena_bytes) {
    slices_.reserve(lines);
    arena_.reserve(arena_bytes);
  }

  void clear() {
    arena_.clear();
    slices_.clear();
    open_ = false;
  }

  /// Stable sort of the slices by time: equal timestamps keep append order,
  /// so rendered output is byte-identical to sorting the old per-line
  /// strings.  The arena itself never moves.
  void sort_by_time();

  /// Visit the sorted lines as maximal contiguous arena runs (newlines
  /// included), so a fully in-order day becomes a single write syscall.
  /// `fn` receives std::string_view chunks in output order.
  template <typename Fn>
  void for_each_run(Fn&& fn) const {
    std::size_t i = 0;
    while (i < slices_.size()) {
      const std::uint64_t start = slices_[i].offset;
      std::uint64_t end = slices_[i].offset + slices_[i].len + 1;  // + '\n'
      ++i;
      while (i < slices_.size() && slices_[i].offset == end) {
        end = slices_[i].offset + slices_[i].len + 1;
        ++i;
      }
      fn(std::string_view(arena_).substr(start, end - start));
    }
  }

 private:
  std::string arena_;
  std::vector<LineSlice> slices_;
  common::TimePoint pending_time_ = 0;
  std::uint64_t pending_offset_ = 0;
  bool open_ = false;
};

/// Render the buffer's lines in slice order, one per line with trailing
/// newlines — the view the old render_day(vector<RawLine>) used to copy.
std::string render_day(const DayBuffer& buf);

}  // namespace gpures::logsys
