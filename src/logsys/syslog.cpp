#include "logsys/syslog.h"

#include <array>
#include <cstdio>

#include "common/fmt.h"

namespace gpures::logsys {

namespace {

void append_header(std::string& out, common::TimePoint t,
                   std::string_view host) {
  common::append_syslog_time(out, t);
  out += ' ';
  out += host;
  out += ' ';
}

}  // namespace

void append_xid_line(std::string& out, common::TimePoint t,
                     std::string_view host, std::string_view pci_bus,
                     xid::Code code, std::string_view detail) {
  append_header(out, t, host);
  out += "kernel: NVRM: Xid (PCI:";
  out += pci_bus;
  out += "): ";
  common::append_uint(out, xid::to_number(code));
  out += ", ";
  out += detail;
}

void append_drain_line(std::string& out, common::TimePoint t,
                       std::string_view host, std::string_view reason) {
  append_header(out, t, host);
  out += "slurmctld[2112]: update_node: node ";
  out += host;
  out += " reason set to: ";
  out += reason;
  out += " [drain]";
}

void append_resume_line(std::string& out, common::TimePoint t,
                        std::string_view host) {
  append_header(out, t, host);
  out += "slurmctld[2112]: update_node: node ";
  out += host;
  out += " state set to: resume";
}

void append_noise_line(std::string& out, common::Rng& rng, common::TimePoint t,
                       std::string_view host) {
  static constexpr std::array<const char*, 8> kTemplates = {
      "sshd[%u]: Accepted publickey for user%u from 10.0.%u.%u",
      "systemd[1]: Started Session %u of user hpcuser%u.",
      "kernel: Lustre: %u:0:(client.c:2114) Skipped %u previous similar "
      "messages",
      "slurmd[%u]: launch task StepId=%u.0 request from UID:%u",
      "kernel: perf: interrupt took too long (%u > %u), lowering rate",
      "ntpd[%u]: adjusting local clock by %u.%us",
      "kernel: EDAC MC0: 1 CE memory read error on CPU_SrcID#0_MC#%u "
      "(channel:%u slot:0)",
      "munged[%u]: Purged %u credentials from replay cache",
  };
  const char* tmpl = kTemplates[rng.uniform_u64(kTemplates.size())];
  char buf[256];
  int n = std::snprintf(buf, sizeof(buf), tmpl,
                        static_cast<unsigned>(rng.uniform_u64(30000) + 1000),
                        static_cast<unsigned>(rng.uniform_u64(900) + 10),
                        static_cast<unsigned>(rng.uniform_u64(250)),
                        static_cast<unsigned>(rng.uniform_u64(250)));
  // snprintf returns the would-be length: negative on encoding error, and
  // >= sizeof(buf) when truncated (only sizeof(buf)-1 chars were written).
  if (n < 0) n = 0;
  if (n >= static_cast<int>(sizeof(buf))) n = static_cast<int>(sizeof(buf)) - 1;
  append_header(out, t, host);
  out.append(buf, static_cast<std::size_t>(n));
}

std::string render_xid_line(common::TimePoint t, std::string_view host,
                            std::string_view pci_bus, xid::Code code,
                            std::string_view detail) {
  std::string s;
  append_xid_line(s, t, host, pci_bus, code, detail);
  return s;
}

std::string render_drain_line(common::TimePoint t, std::string_view host,
                              std::string_view reason) {
  std::string s;
  append_drain_line(s, t, host, reason);
  return s;
}

std::string render_resume_line(common::TimePoint t, std::string_view host) {
  std::string s;
  append_resume_line(s, t, host);
  return s;
}

std::string render_noise_line(common::Rng& rng, common::TimePoint t,
                              std::string_view host) {
  std::string s;
  append_noise_line(s, rng, t, host);
  return s;
}

}  // namespace gpures::logsys
