#include "logsys/syslog.h"

#include <array>
#include <cstdio>

namespace gpures::logsys {

namespace {

std::string header(common::TimePoint t, std::string_view host) {
  std::string s = common::format_syslog(t);
  s += ' ';
  s += host;
  s += ' ';
  return s;
}

}  // namespace

std::string render_xid_line(common::TimePoint t, std::string_view host,
                            std::string_view pci_bus, xid::Code code,
                            std::string_view detail) {
  std::string s = header(t, host);
  s += "kernel: NVRM: Xid (PCI:";
  s += pci_bus;
  s += "): ";
  s += std::to_string(xid::to_number(code));
  s += ", ";
  s += detail;
  return s;
}

std::string render_drain_line(common::TimePoint t, std::string_view host,
                              std::string_view reason) {
  std::string s = header(t, host);
  s += "slurmctld[2112]: update_node: node ";
  s += host;
  s += " reason set to: ";
  s += reason;
  s += " [drain]";
  return s;
}

std::string render_resume_line(common::TimePoint t, std::string_view host) {
  std::string s = header(t, host);
  s += "slurmctld[2112]: update_node: node ";
  s += host;
  s += " state set to: resume";
  return s;
}

std::string render_noise_line(common::Rng& rng, common::TimePoint t,
                              std::string_view host) {
  static constexpr std::array<const char*, 8> kTemplates = {
      "sshd[%u]: Accepted publickey for user%u from 10.0.%u.%u",
      "systemd[1]: Started Session %u of user hpcuser%u.",
      "kernel: Lustre: %u:0:(client.c:2114) Skipped %u previous similar "
      "messages",
      "slurmd[%u]: launch task StepId=%u.0 request from UID:%u",
      "kernel: perf: interrupt took too long (%u > %u), lowering rate",
      "ntpd[%u]: adjusting local clock by %u.%us",
      "kernel: EDAC MC0: 1 CE memory read error on CPU_SrcID#0_MC#%u "
      "(channel:%u slot:0)",
      "munged[%u]: Purged %u credentials from replay cache",
  };
  const char* tmpl = kTemplates[rng.uniform_u64(kTemplates.size())];
  char buf[256];
  std::snprintf(buf, sizeof(buf), tmpl,
                static_cast<unsigned>(rng.uniform_u64(30000) + 1000),
                static_cast<unsigned>(rng.uniform_u64(900) + 10),
                static_cast<unsigned>(rng.uniform_u64(250)),
                static_cast<unsigned>(rng.uniform_u64(250)));
  return header(t, host) + buf;
}

}  // namespace gpures::logsys
