// gpures.idx on-disk format (see DESIGN.md "The persistent error index").
//
// The artifact is a little-endian columnar file, written once after
// Stage II/III and served forever after by a zero-copy memory-mapped
// reader.  Layout:
//
//   [0, 48)                 fixed header
//   [48, 48 + 22 * 32)      section table, one 32-byte entry per section
//   [752, file_size)        the 22 sections, gapless, each 8-aligned and
//                           zero-padded to a multiple of 8 bytes
//
// Header (all integers little-endian):
//   off  0  u8[8]  magic "GPURESIX"
//   off  8  u32    format version (currently 1)
//   off 12  u32    endian tag 0x01020304 (reads back scrambled on a
//                  byte-swapped interpretation)
//   off 16  u64    file size in bytes
//   off 24  u32    section count (currently 22)
//   off 28  u32    reserved, zero
//   off 32  u64    XXH64 of the section-table bytes
//   off 40  u64    XXH64 of header bytes [0, 40)
//
// Section-table entry:
//   off  0  u32    section id (SectionId; entries in id order)
//   off  4  u32    reserved, zero
//   off  8  u64    absolute byte offset (multiple of 8)
//   off 16  u64    padded size in bytes (multiple of 8)
//   off 24  u64    XXH64 of the section bytes [offset, offset + size)
//
// Integrity: every byte of the file is under exactly one checksum — the
// header hash covers [0, 40), the stored header hash is self-checking, the
// table hash covers the table, and each section hash covers its payload
// *including* the zero padding.  Any single flipped bit therefore fails
// verification at open (the corruption fuzz test's core property).
//
// Versioning: readers accept exactly kFormatVersion.  A bumped version is
// reported as "unsupported format version" *before* any payload is trusted;
// adding sections or fields means bumping the version (there is no
// silent-skip path for unknown sections by design — the artifact is cheap
// to regenerate from the dataset).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace gpures::index {

inline constexpr char kMagic[8] = {'G', 'P', 'U', 'R', 'E', 'S', 'I', 'X'};
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::uint32_t kEndianTag = 0x01020304u;
inline constexpr std::size_t kHeaderSize = 48;
inline constexpr std::size_t kSectionEntrySize = 32;
inline constexpr std::uint32_t kSectionCount = 22;
inline constexpr std::size_t kSectionTableOffset = kHeaderSize;
inline constexpr std::size_t kSectionBase =
    kHeaderSize + kSectionCount * kSectionEntrySize;

// Header field offsets.
inline constexpr std::size_t kOffMagic = 0;
inline constexpr std::size_t kOffVersion = 8;
inline constexpr std::size_t kOffEndianTag = 12;
inline constexpr std::size_t kOffFileSize = 16;
inline constexpr std::size_t kOffSectionCount = 24;
inline constexpr std::size_t kOffTableHash = 32;
inline constexpr std::size_t kOffHeaderHash = 40;
/// The header hash covers bytes [0, kHeaderHashedBytes).
inline constexpr std::size_t kHeaderHashedBytes = kOffHeaderHash;

/// Sections in file order.  Ids are explicit (they are written to disk) and
/// dense from 1 so the reader can verify entry i carries id i + 1.
enum class SectionId : std::uint32_t {
  kMeta = 1,             ///< fixed-size IndexMeta block
  kNodeNameOffsets = 2,  ///< u32[node_count + 1] into the name blob
  kNodeNameBlob = 3,     ///< concatenated node names, no terminators
  // Coalesced errors, sorted by (time, gpu, code, raw_xid).
  kErrTime = 4,          ///< i64[E] leader timestamps
  kErrLast = 5,          ///< i64[E] last merged occurrence
  kErrGpu = 6,           ///< i32[E] packed GPU (node << 8 | slot)
  kErrCode = 7,          ///< u16[E] canonical (family-merged) XID
  kErrRawXid = 8,        ///< u16[E] XID as logged
  kErrRawLines = 9,      ///< u32[E] raw lines merged into the error
  // Exposure-join view: reported-family errors grouped by packed-GPU key
  // (groups sorted by key, entries by (time, bit)) — the on-disk twin of
  // analysis::ErrorIndex.
  kLocKeys = 10,         ///< i64[K] distinct location keys, ascending
  kLocOffsets = 11,      ///< u64[K + 1] group bounds into the entry columns
  kLocTime = 12,         ///< i64[L] entry timestamps
  kLocBit = 13,          ///< u32[L] xid::report_order() bit
  // Job exposure intervals, sorted by (end, start, id) for binary search on
  // end time (the impact analysis selects jobs by end).
  kJobId = 14,           ///< u64[J]
  kJobStart = 15,        ///< i64[J]
  kJobEnd = 16,          ///< i64[J]
  kJobState = 17,        ///< u8[J] slurm::JobState
  kJobGpuOffsets = 18,   ///< u64[J + 1] bounds into kJobGpuList
  kJobGpuList = 19,      ///< i32[G] packed GPUs per job, CSR
  // Unavailability intervals, sorted by (begin, node, end).
  kUnavailNode = 20,     ///< i32[U] topology node index
  kUnavailBegin = 21,    ///< i64[U] drain time
  kUnavailEnd = 22,      ///< i64[U] resume time
};

std::string_view section_name(SectionId id);

/// Fixed-size meta block (section 1).  All counts are redundant with the
/// section sizes; the reader cross-checks them.
inline constexpr std::size_t kMetaSize = 120;
inline constexpr std::size_t kMetaPreBegin = 0;    // i64
inline constexpr std::size_t kMetaPreEnd = 8;      // i64
inline constexpr std::size_t kMetaOpBegin = 16;    // i64
inline constexpr std::size_t kMetaOpEnd = 24;      // i64
inline constexpr std::size_t kMetaWindow = 32;     // i64 attribution window, s
inline constexpr std::size_t kMetaMaxIntervalH = 40;  // f64
inline constexpr std::size_t kMetaNodeCount = 48;  // u32
inline constexpr std::size_t kMetaAttribution = 52;  // u32: 0 gpu, 1 node
inline constexpr std::size_t kMetaErrorCount = 56;    // u64
inline constexpr std::size_t kMetaLocEntryCount = 64; // u64
inline constexpr std::size_t kMetaJobCount = 72;      // u64
inline constexpr std::size_t kMetaJobGpuCount = 80;   // u64
inline constexpr std::size_t kMetaUnavailCount = 88;  // u64
// Aggregate-MTBE (ErrorStatsConfig) parameters the pipeline ran with; the
// query engine replays them so an availability answer over the operational
// window is bitwise-equal to the batch Fig. 2 computation.
inline constexpr std::size_t kMetaOutlierShare = 96;      // f64
inline constexpr std::size_t kMetaOutlierMin = 104;       // u64
inline constexpr std::size_t kMetaExcludeOutliers = 112;  // u32: 0 no, 1 yes
// bytes [116, 120) reserved, zero

/// Round a byte count up to the 8-byte section granule.
constexpr std::uint64_t pad8(std::uint64_t n) { return (n + 7) & ~std::uint64_t{7}; }

// ---- little-endian field codecs -------------------------------------------
// The file defines fields as little-endian byte sequences; these helpers are
// correct on any host.  (The zero-copy column views additionally require a
// little-endian host; IndexReader::open enforces that.)

inline void store_le16(unsigned char* p, std::uint16_t v) {
  p[0] = static_cast<unsigned char>(v);
  p[1] = static_cast<unsigned char>(v >> 8);
}
inline void store_le32(unsigned char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}
inline void store_le64(unsigned char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}
inline void store_f64(unsigned char* p, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  store_le64(p, bits);
}

inline std::uint16_t load_le16(const unsigned char* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}
inline std::uint32_t load_le32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}
inline std::uint64_t load_le64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}
inline double load_f64(const unsigned char* p) {
  const std::uint64_t bits = load_le64(p);
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

}  // namespace gpures::index
