#include "index/reader.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>

#include "common/hash.h"
#include "index/format.h"
#include "xid/xid.h"

namespace gpures::index {

namespace {

common::Error at(std::string msg, const std::string& path,
                 std::uint64_t offset) {
  return common::Error::at(std::move(msg), path, std::nullopt, offset);
}

struct Section {
  std::uint64_t offset = 0;
  std::uint64_t size = 0;  ///< padded
};

/// Typed view of a column section: verifies the padded size matches the
/// element count exactly, then casts.  T is limited to the little-endian
/// fixed-width types the format defines (alignment <= 8, matching the
/// 8-aligned section offsets).
template <typename T>
common::Result<std::span<const T>> column(const unsigned char* base,
                                          const Section& s,
                                          std::uint64_t count, SectionId id,
                                          const std::string& path) {
  if (count > s.size / sizeof(T) || pad8(count * sizeof(T)) != s.size) {
    return at("index section '" + std::string(section_name(id)) +
                  "' size does not match its element count",
              path, s.offset);
  }
  return std::span<const T>(reinterpret_cast<const T*>(base + s.offset),
                            count);
}

}  // namespace

common::Result<IndexReader> IndexReader::open(const std::string& path) {
  if constexpr (std::endian::native != std::endian::little) {
    return common::Error::make(
        "the gpures index format is little-endian; zero-copy reads are not "
        "supported on big-endian hosts");
  }

  auto mapped = common::MappedFile::open(path);
  if (!mapped.ok()) return mapped.error();
  IndexReader r;
  r.file_ = std::move(mapped).take();
  const auto* base = reinterpret_cast<const unsigned char*>(r.file_.data());
  const std::uint64_t size = r.file_.size();

  // ---- header ---------------------------------------------------------------
  if (size < kHeaderSize) {
    return at("index file too small for a header (" + std::to_string(size) +
                  " bytes)",
              path, 0);
  }
  if (std::memcmp(base + kOffMagic, kMagic, sizeof(kMagic)) != 0) {
    return at("not a gpures index (bad magic)", path, kOffMagic);
  }
  if (load_le32(base + kOffEndianTag) != kEndianTag) {
    return at("index endian tag mismatch (file written with incompatible "
              "byte order?)",
              path, kOffEndianTag);
  }
  const std::uint32_t version = load_le32(base + kOffVersion);
  if (version != kFormatVersion) {
    return at("unsupported index format version " + std::to_string(version) +
                  " (this reader understands version " +
                  std::to_string(kFormatVersion) + ")",
              path, kOffVersion);
  }
  if (common::xxhash64(base, kHeaderHashedBytes) !=
      load_le64(base + kOffHeaderHash)) {
    return at("index header checksum mismatch", path, kOffHeaderHash);
  }
  if (load_le64(base + kOffFileSize) != size) {
    return at("index file size mismatch: header says " +
                  std::to_string(load_le64(base + kOffFileSize)) +
                  ", file has " + std::to_string(size),
              path, kOffFileSize);
  }
  const std::uint32_t section_count = load_le32(base + kOffSectionCount);
  if (section_count != kSectionCount) {
    return at("unexpected section count " + std::to_string(section_count),
              path, kOffSectionCount);
  }

  // ---- section table --------------------------------------------------------
  if (size < kSectionBase) {
    return at("index file truncated inside the section table", path,
              kSectionTableOffset);
  }
  if (common::xxhash64(base + kSectionTableOffset,
                       kSectionCount * kSectionEntrySize) !=
      load_le64(base + kOffTableHash)) {
    return at("index section-table checksum mismatch", path, kOffTableHash);
  }
  std::array<Section, kSectionCount> secs;
  std::uint64_t expect_offset = kSectionBase;
  for (std::uint32_t i = 0; i < kSectionCount; ++i) {
    const unsigned char* e =
        base + kSectionTableOffset + i * kSectionEntrySize;
    const std::uint64_t entry_off =
        kSectionTableOffset + i * kSectionEntrySize;
    if (load_le32(e) != i + 1) {
      return at("index section entry " + std::to_string(i) +
                    " carries id " + std::to_string(load_le32(e)) +
                    ", expected " + std::to_string(i + 1),
                path, entry_off);
    }
    secs[i].offset = load_le64(e + 8);
    secs[i].size = load_le64(e + 16);
    if (secs[i].offset != expect_offset) {
      return at("index section '" +
                    std::string(section_name(static_cast<SectionId>(i + 1))) +
                    "' is not gapless: offset " +
                    std::to_string(secs[i].offset) + ", expected " +
                    std::to_string(expect_offset),
                path, entry_off);
    }
    if (secs[i].size % 8 != 0 || secs[i].size > size - secs[i].offset) {
      return at("index section '" +
                    std::string(section_name(static_cast<SectionId>(i + 1))) +
                    "' extends past the end of the file",
                path, entry_off);
    }
    expect_offset += secs[i].size;
  }
  if (expect_offset != size) {
    return at("index has " + std::to_string(size - expect_offset) +
                  " trailing bytes after the last section",
              path, expect_offset);
  }
  for (std::uint32_t i = 0; i < kSectionCount; ++i) {
    const unsigned char* e =
        base + kSectionTableOffset + i * kSectionEntrySize;
    if (common::xxhash64(base + secs[i].offset, secs[i].size) !=
        load_le64(e + 24)) {
      return at("index section '" +
                    std::string(section_name(static_cast<SectionId>(i + 1))) +
                    "' checksum mismatch",
                path, secs[i].offset);
    }
  }
  const auto sec = [&](SectionId id) -> const Section& {
    return secs[static_cast<std::size_t>(id) - 1];
  };

  // ---- meta -----------------------------------------------------------------
  const Section& ms = sec(SectionId::kMeta);
  if (ms.size != pad8(kMetaSize)) {
    return at("index meta section has unexpected size " +
                  std::to_string(ms.size),
              path, ms.offset);
  }
  const unsigned char* m = base + ms.offset;
  IndexMeta& meta = r.meta_;
  meta.periods.pre.begin =
      static_cast<std::int64_t>(load_le64(m + kMetaPreBegin));
  meta.periods.pre.end = static_cast<std::int64_t>(load_le64(m + kMetaPreEnd));
  meta.periods.op.begin =
      static_cast<std::int64_t>(load_le64(m + kMetaOpBegin));
  meta.periods.op.end = static_cast<std::int64_t>(load_le64(m + kMetaOpEnd));
  meta.attribution_window =
      static_cast<std::int64_t>(load_le64(m + kMetaWindow));
  meta.max_interval_h = load_f64(m + kMetaMaxIntervalH);
  meta.node_count = load_le32(m + kMetaNodeCount);
  meta.attribution = load_le32(m + kMetaAttribution);
  meta.error_count = load_le64(m + kMetaErrorCount);
  meta.loc_entry_count = load_le64(m + kMetaLocEntryCount);
  meta.job_count = load_le64(m + kMetaJobCount);
  meta.job_gpu_count = load_le64(m + kMetaJobGpuCount);
  meta.unavail_count = load_le64(m + kMetaUnavailCount);
  meta.outlier_share = load_f64(m + kMetaOutlierShare);
  meta.outlier_min = load_le64(m + kMetaOutlierMin);
  meta.exclude_outliers_from_totals = load_le32(m + kMetaExcludeOutliers) != 0;
  if (meta.attribution > 1) {
    return at("index meta: attribution must be 0 (device) or 1 (node), got " +
                  std::to_string(meta.attribution),
              path, ms.offset + kMetaAttribution);
  }

  // ---- typed columns --------------------------------------------------------
  const auto bind = [&](auto& span_member, SectionId id,
                        std::uint64_t count) -> common::Status {
    using Span = std::remove_reference_t<decltype(span_member)>;
    using T = typename Span::element_type;
    auto col = column<std::remove_const_t<T>>(base, sec(id), count, id, path);
    if (!col.ok()) return col.error();
    span_member = col.value();
    return common::Status::ok_status();
  };
  const std::uint64_t nodes1 = std::uint64_t{meta.node_count} + 1;
  const std::uint64_t jobs1 = meta.job_count + 1;
  // Key count is implied by the key section's own size (i64 elements pack
  // the 8-byte granule exactly, so size / 8 is the element count).
  const std::uint64_t key_count = sec(SectionId::kLocKeys).size / 8;
  if (auto s = bind(r.name_offsets_, SectionId::kNodeNameOffsets, nodes1);
      !s.ok()) {
    return s.error();
  }
  {
    const Section& bs = sec(SectionId::kNodeNameBlob);
    const std::uint32_t blob_len = r.name_offsets_.back();
    if (pad8(blob_len) != bs.size) {
      return at("index node-name blob size does not match the offset table",
                path, bs.offset);
    }
    r.name_blob_ = std::string_view(
        reinterpret_cast<const char*>(base + bs.offset), blob_len);
  }
  if (auto s = bind(r.err_time_, SectionId::kErrTime, meta.error_count);
      !s.ok()) {
    return s.error();
  }
  if (auto s = bind(r.err_last_, SectionId::kErrLast, meta.error_count);
      !s.ok()) {
    return s.error();
  }
  if (auto s = bind(r.err_gpu_, SectionId::kErrGpu, meta.error_count);
      !s.ok()) {
    return s.error();
  }
  if (auto s = bind(r.err_code_, SectionId::kErrCode, meta.error_count);
      !s.ok()) {
    return s.error();
  }
  if (auto s = bind(r.err_raw_xid_, SectionId::kErrRawXid, meta.error_count);
      !s.ok()) {
    return s.error();
  }
  if (auto s =
          bind(r.err_raw_lines_, SectionId::kErrRawLines, meta.error_count);
      !s.ok()) {
    return s.error();
  }
  if (auto s = bind(r.loc_keys_, SectionId::kLocKeys, key_count); !s.ok()) {
    return s.error();
  }
  if (auto s = bind(r.loc_offsets_, SectionId::kLocOffsets, key_count + 1);
      !s.ok()) {
    return s.error();
  }
  if (auto s = bind(r.loc_time_, SectionId::kLocTime, meta.loc_entry_count);
      !s.ok()) {
    return s.error();
  }
  if (auto s = bind(r.loc_bit_, SectionId::kLocBit, meta.loc_entry_count);
      !s.ok()) {
    return s.error();
  }
  if (auto s = bind(r.job_id_, SectionId::kJobId, meta.job_count); !s.ok()) {
    return s.error();
  }
  if (auto s = bind(r.job_start_, SectionId::kJobStart, meta.job_count);
      !s.ok()) {
    return s.error();
  }
  if (auto s = bind(r.job_end_, SectionId::kJobEnd, meta.job_count); !s.ok()) {
    return s.error();
  }
  if (auto s = bind(r.job_state_, SectionId::kJobState, meta.job_count);
      !s.ok()) {
    return s.error();
  }
  if (auto s = bind(r.job_gpu_offsets_, SectionId::kJobGpuOffsets, jobs1);
      !s.ok()) {
    return s.error();
  }
  if (auto s =
          bind(r.job_gpu_list_, SectionId::kJobGpuList, meta.job_gpu_count);
      !s.ok()) {
    return s.error();
  }
  if (auto s =
          bind(r.unavail_node_, SectionId::kUnavailNode, meta.unavail_count);
      !s.ok()) {
    return s.error();
  }
  if (auto s =
          bind(r.unavail_begin_, SectionId::kUnavailBegin, meta.unavail_count);
      !s.ok()) {
    return s.error();
  }
  if (auto s =
          bind(r.unavail_end_, SectionId::kUnavailEnd, meta.unavail_count);
      !s.ok()) {
    return s.error();
  }

  // ---- column invariants ----------------------------------------------------
  // Everything binary search or CSR indexing relies on is proven here, once,
  // so per-query code can trust the views unconditionally.
  const auto check = [&](bool ok, std::string msg,
                         SectionId id) -> common::Status {
    if (ok) return common::Status::ok_status();
    return at("index invariant violated: " + std::move(msg), path,
              sec(id).offset);
  };
  const std::int64_t max_key =
      (static_cast<std::int64_t>(meta.node_count) << 8) - 1;
  for (std::size_t i = 0; i + 1 < r.name_offsets_.size(); ++i) {
    if (auto s = check(r.name_offsets_[i] <= r.name_offsets_[i + 1],
                       "node-name offsets must be nondecreasing",
                       SectionId::kNodeNameOffsets);
        !s.ok()) {
      return s.error();
    }
  }
  for (std::size_t i = 0; i < r.err_time_.size(); ++i) {
    if (auto s = check(i == 0 || r.err_time_[i - 1] <= r.err_time_[i],
                       "error times must be nondecreasing",
                       SectionId::kErrTime);
        !s.ok()) {
      return s.error();
    }
    if (auto s = check(r.err_gpu_[i] >= 0 && r.err_gpu_[i] <= max_key,
                       "error GPU key out of topology range",
                       SectionId::kErrGpu);
        !s.ok()) {
      return s.error();
    }
  }
  for (std::size_t i = 0; i < r.loc_keys_.size(); ++i) {
    if (auto s = check(i == 0 || r.loc_keys_[i - 1] < r.loc_keys_[i],
                       "location keys must be strictly increasing",
                       SectionId::kLocKeys);
        !s.ok()) {
      return s.error();
    }
    if (auto s = check(r.loc_keys_[i] >= 0 && r.loc_keys_[i] <= max_key,
                       "location key out of topology range",
                       SectionId::kLocKeys);
        !s.ok()) {
      return s.error();
    }
  }
  for (std::size_t i = 0; i < r.loc_offsets_.size(); ++i) {
    const bool mono = i == 0 ? r.loc_offsets_[0] == 0
                             : r.loc_offsets_[i - 1] <= r.loc_offsets_[i];
    if (auto s = check(mono && r.loc_offsets_[i] <= meta.loc_entry_count,
                       "location offsets must be nondecreasing and in range",
                       SectionId::kLocOffsets);
        !s.ok()) {
      return s.error();
    }
  }
  if (auto s = check(r.loc_offsets_.back() == meta.loc_entry_count,
                     "location offsets must cover every entry",
                     SectionId::kLocOffsets);
      !s.ok()) {
    return s.error();
  }
  for (std::size_t k = 0; k + 1 < r.loc_offsets_.size(); ++k) {
    for (std::uint64_t i = r.loc_offsets_[k] + 1; i < r.loc_offsets_[k + 1];
         ++i) {
      if (auto s = check(r.loc_time_[i - 1] <= r.loc_time_[i],
                         "location entries must be time-sorted per key",
                         SectionId::kLocTime);
          !s.ok()) {
        return s.error();
      }
    }
  }
  for (const std::uint32_t b : r.loc_bit_) {
    if (auto s = check(b < xid::report_order().size(),
                       "location bit out of family range", SectionId::kLocBit);
        !s.ok()) {
      return s.error();
    }
  }
  for (std::size_t i = 1; i < r.job_end_.size(); ++i) {
    if (auto s = check(r.job_end_[i - 1] <= r.job_end_[i],
                       "job end times must be nondecreasing",
                       SectionId::kJobEnd);
        !s.ok()) {
      return s.error();
    }
  }
  for (std::size_t i = 0; i < r.job_gpu_offsets_.size(); ++i) {
    const bool mono = i == 0 ? r.job_gpu_offsets_[0] == 0
                             : r.job_gpu_offsets_[i - 1] <=
                                   r.job_gpu_offsets_[i];
    if (auto s = check(mono && r.job_gpu_offsets_[i] <= meta.job_gpu_count,
                       "job GPU offsets must be nondecreasing and in range",
                       SectionId::kJobGpuOffsets);
        !s.ok()) {
      return s.error();
    }
  }
  if (auto s = check(r.job_gpu_offsets_.empty() ||
                         r.job_gpu_offsets_.back() == meta.job_gpu_count,
                     "job GPU offsets must cover every allocation",
                     SectionId::kJobGpuOffsets);
      !s.ok()) {
    return s.error();
  }
  for (const std::int32_t g : r.job_gpu_list_) {
    if (auto s = check(g >= 0 && g <= max_key,
                       "job GPU key out of topology range",
                       SectionId::kJobGpuList);
        !s.ok()) {
      return s.error();
    }
  }
  for (std::size_t i = 0; i < r.unavail_node_.size(); ++i) {
    if (auto s = check(r.unavail_node_[i] >= 0 &&
                           static_cast<std::uint32_t>(r.unavail_node_[i]) <
                               meta.node_count,
                       "unavailability node out of topology range",
                       SectionId::kUnavailNode);
        !s.ok()) {
      return s.error();
    }
    if (auto s = check(i == 0 || r.unavail_begin_[i - 1] <= r.unavail_begin_[i],
                       "unavailability intervals must be begin-sorted",
                       SectionId::kUnavailBegin);
        !s.ok()) {
      return s.error();
    }
  }
  return r;
}

std::string_view IndexReader::node_name(std::uint32_t idx) const {
  if (idx + 1 >= name_offsets_.size()) return {};
  return name_blob_.substr(name_offsets_[idx],
                           name_offsets_[idx + 1] - name_offsets_[idx]);
}

std::optional<std::int32_t> IndexReader::node_index(
    std::string_view name) const {
  for (std::uint32_t i = 0; i < meta_.node_count; ++i) {
    if (node_name(i) == name) return static_cast<std::int32_t>(i);
  }
  return std::nullopt;
}

IndexReader::LocGroup IndexReader::loc_at(std::int64_t key) const {
  const auto it = std::lower_bound(loc_keys_.begin(), loc_keys_.end(), key);
  if (it == loc_keys_.end() || *it != key) return {};
  return loc_group(static_cast<std::size_t>(it - loc_keys_.begin()));
}

std::pair<std::size_t, std::size_t> IndexReader::loc_key_range(
    std::int64_t key_lo, std::int64_t key_hi) const {
  const auto lo = std::lower_bound(loc_keys_.begin(), loc_keys_.end(), key_lo);
  const auto hi = std::upper_bound(lo, loc_keys_.end(), key_hi);
  return {static_cast<std::size_t>(lo - loc_keys_.begin()),
          static_cast<std::size_t>(hi - loc_keys_.begin())};
}

IndexReader::LocGroup IndexReader::loc_group(std::size_t key_idx) const {
  const std::uint64_t lo = loc_offsets_[key_idx];
  const std::uint64_t hi = loc_offsets_[key_idx + 1];
  return {loc_time_.subspan(lo, hi - lo), loc_bit_.subspan(lo, hi - lo)};
}

std::span<const std::int32_t> IndexReader::job_gpus(std::size_t j) const {
  if (j + 1 >= job_gpu_offsets_.size()) return {};
  const std::uint64_t lo = job_gpu_offsets_[j];
  const std::uint64_t hi = job_gpu_offsets_[j + 1];
  return job_gpu_list_.subspan(lo, hi - lo);
}

}  // namespace gpures::index
