// Zero-copy memory-mapped reader for gpures.idx.
//
// `open` maps the file, verifies the full integrity chain (magic, endian
// tag, version, header hash, table hash, per-section hashes, section
// geometry, column invariants), and only then exposes typed column views
// straight into the mapping — no deserialization, no allocation per query.
//
// Lifetime and aliasing rules: every span returned by a reader aliases the
// mapping and is valid exactly as long as the IndexReader that produced it
// (moving the reader keeps views valid — the mapping moves with it).  The
// mapping is immutable, so any number of threads may share one reader, or
// open their own readers onto the same file, without synchronization.
//
// A corrupt, truncated, or version-skewed file yields a located
// common::Error from open (never a crash or a wrong answer): nothing past
// the failed check is ever dereferenced.  The format is little-endian by
// definition; big-endian hosts are refused up front rather than served
// byte-swapped garbage.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "analysis/periods.h"
#include "common/error.h"
#include "common/mmap.h"
#include "common/time.h"

namespace gpures::index {

/// Decoded meta block (section 1).
struct IndexMeta {
  analysis::StudyPeriods periods;
  common::Duration attribution_window = 20;
  double max_interval_h = 24.0 * 30;
  /// ErrorStatsConfig the aggregate MTBE was computed with (see query.h).
  double outlier_share = 0.5;
  std::uint64_t outlier_min = 1000;
  bool exclude_outliers_from_totals = true;
  std::uint32_t node_count = 0;
  /// 0 = device-level attribution, 1 = node-level (the pipeline's setting).
  std::uint32_t attribution = 0;
  std::uint64_t error_count = 0;
  std::uint64_t loc_entry_count = 0;
  std::uint64_t job_count = 0;
  std::uint64_t job_gpu_count = 0;
  std::uint64_t unavail_count = 0;
};

class IndexReader {
 public:
  /// Map and fully verify `path`.  Every failure is a located Error naming
  /// the file and the byte offset of the offending structure.
  static common::Result<IndexReader> open(const std::string& path);

  IndexReader(IndexReader&&) = default;
  IndexReader& operator=(IndexReader&&) = default;
  IndexReader(const IndexReader&) = delete;
  IndexReader& operator=(const IndexReader&) = delete;

  const IndexMeta& meta() const { return meta_; }
  const std::string& path() const { return file_.path(); }
  std::uint64_t file_bytes() const { return file_.size(); }

  std::string_view node_name(std::uint32_t idx) const;
  /// Inverse lookup; nullopt for names not in the artifact.
  std::optional<std::int32_t> node_index(std::string_view name) const;

  // Coalesced-error columns, sorted by (time, gpu, code, raw_xid).
  std::span<const std::int64_t> err_time() const { return err_time_; }
  std::span<const std::int64_t> err_last() const { return err_last_; }
  std::span<const std::int32_t> err_gpu() const { return err_gpu_; }
  std::span<const std::uint16_t> err_code() const { return err_code_; }
  std::span<const std::uint16_t> err_raw_xid() const { return err_raw_xid_; }
  std::span<const std::uint32_t> err_raw_lines() const {
    return err_raw_lines_;
  }

  // Exposure-join view (reported families only, grouped by packed GPU).
  std::span<const std::int64_t> loc_keys() const { return loc_keys_; }
  std::span<const std::uint64_t> loc_offsets() const { return loc_offsets_; }
  std::span<const std::int64_t> loc_time() const { return loc_time_; }
  std::span<const std::uint32_t> loc_bit() const { return loc_bit_; }
  /// Time-sorted (time, bit) entries at a location key; empty when clean.
  struct LocGroup {
    std::span<const std::int64_t> time;
    std::span<const std::uint32_t> bit;
  };
  LocGroup loc_at(std::int64_t key) const;
  /// Index range [lo, hi) of loc_keys() whose keys fall in [key_lo, key_hi].
  std::pair<std::size_t, std::size_t> loc_key_range(std::int64_t key_lo,
                                                    std::int64_t key_hi) const;
  LocGroup loc_group(std::size_t key_idx) const;

  // Job columns, sorted by (end, start, id).
  std::span<const std::uint64_t> job_id() const { return job_id_; }
  std::span<const std::int64_t> job_start() const { return job_start_; }
  std::span<const std::int64_t> job_end() const { return job_end_; }
  std::span<const std::uint8_t> job_state() const { return job_state_; }
  std::span<const std::uint64_t> job_gpu_offsets() const {
    return job_gpu_offsets_;
  }
  std::span<const std::int32_t> job_gpu_list() const { return job_gpu_list_; }
  /// Packed GPUs allocated to job `j` (index into the job columns).
  std::span<const std::int32_t> job_gpus(std::size_t j) const;

  // Unavailability columns, sorted by (begin, node, end).
  std::span<const std::int32_t> unavail_node() const { return unavail_node_; }
  std::span<const std::int64_t> unavail_begin() const {
    return unavail_begin_;
  }
  std::span<const std::int64_t> unavail_end() const { return unavail_end_; }

 private:
  IndexReader() = default;

  common::MappedFile file_;
  IndexMeta meta_;

  std::span<const std::uint32_t> name_offsets_;
  std::string_view name_blob_;
  std::span<const std::int64_t> err_time_;
  std::span<const std::int64_t> err_last_;
  std::span<const std::int32_t> err_gpu_;
  std::span<const std::uint16_t> err_code_;
  std::span<const std::uint16_t> err_raw_xid_;
  std::span<const std::uint32_t> err_raw_lines_;
  std::span<const std::int64_t> loc_keys_;
  std::span<const std::uint64_t> loc_offsets_;
  std::span<const std::int64_t> loc_time_;
  std::span<const std::uint32_t> loc_bit_;
  std::span<const std::uint64_t> job_id_;
  std::span<const std::int64_t> job_start_;
  std::span<const std::int64_t> job_end_;
  std::span<const std::uint8_t> job_state_;
  std::span<const std::uint64_t> job_gpu_offsets_;
  std::span<const std::int32_t> job_gpu_list_;
  std::span<const std::int32_t> unavail_node_;
  std::span<const std::int64_t> unavail_begin_;
  std::span<const std::int64_t> unavail_end_;
};

}  // namespace gpures::index
