#include "index/query.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "analysis/error_stats.h"
#include "analysis/job_impact.h"
#include "analysis/job_stats.h"
#include "obs/log.h"
#include "slurm/job.h"

namespace gpures::index {

namespace {

/// Canonical stored code for a raw XID predicate: reported families are
/// merged exactly like Stage II does (120 -> 119, 123 -> 122), everything
/// else passes through (and matches only if stored verbatim).
std::uint16_t canonical_xid(std::uint16_t xid) {
  if (!xid::is_known(xid)) return xid;
  return xid::to_number(xid::merge_key(static_cast<xid::Code>(xid)));
}

std::size_t lower_idx(std::span<const std::int64_t> v, std::int64_t t) {
  return static_cast<std::size_t>(
      std::lower_bound(v.begin(), v.end(), t) - v.begin());
}

std::string key_of(std::string_view verb, const Predicate& p) {
  std::string k(verb);
  k += '|';
  if (p.node.has_value()) k += std::to_string(*p.node);
  k += '|';
  if (p.xid.has_value()) k += std::to_string(*p.xid);
  k += '|';
  k += std::to_string(p.from);
  k += '|';
  k += std::to_string(p.to);
  return k;
}

}  // namespace

QueryEngine::QueryEngine(const IndexReader& reader, QueryOptions opts)
    : reader_(reader),
      window_(opts.attribution_window >= 0 ? opts.attribution_window
                                           : reader.meta().attribution_window),
      node_level_(opts.attribution >= 0 ? opts.attribution == 1
                                        : reader.meta().attribution == 1),
      capacity_(opts.cache_capacity),
      slow_query_us_(opts.slow_query_us) {
  if (opts.metrics != nullptr) {
    auto& reg = *opts.metrics;
    reg.describe("query.cache.hits", "Query LRU cache hits", "queries");
    reg.describe("query.cache.misses", "Query LRU cache misses", "queries");
    reg.describe("query.cache.evictions",
                 "Query results evicted from the LRU cache", "queries");
    reg.describe("query.latency_us", "End-to-end query latency by verb", "us");
    m_hits_ = &reg.counter("query.cache.hits");
    m_misses_ = &reg.counter("query.cache.misses");
    m_evictions_ = &reg.counter("query.cache.evictions");
    m_count_calls_ = &reg.counter("query.calls.count");
    m_impact_calls_ = &reg.counter("query.calls.impact");
    m_avail_calls_ = &reg.counter("query.calls.availability");
    m_latency_count_ = &reg.histogram("query.latency_us", {{"op", "count"}},
                                      obs::latency_buckets_us());
    m_latency_impact_ = &reg.histogram("query.latency_us", {{"op", "impact"}},
                                       obs::latency_buckets_us());
    m_latency_avail_ =
        &reg.histogram("query.latency_us", {{"op", "availability"}},
                       obs::latency_buckets_us());
  }
}

Predicate QueryEngine::whole_period() const {
  Predicate p;
  p.from = reader_.meta().periods.pre.begin;
  p.to = reader_.meta().periods.op.end;
  return p;
}

template <typename T, typename Fn>
T QueryEngine::cached(const char* op, obs::Histogram* latency,
                      const std::string& key, Fn&& compute) {
  const auto t0 = std::chrono::steady_clock::now();
  bool hit = false;
  const auto observe_latency = [&] {
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (latency != nullptr) latency->observe(us);
    if (slow_query_us_ > 0.0 && us >= slow_query_us_) {
      obs::Logger::current().warn(
          "query", "slow query",
          {{"op", op}, {"latency_us", us}, {"key", key}, {"cached", hit}});
    }
  };
  if (capacity_ > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      cache_hits_.inc();
      if (m_hits_ != nullptr) m_hits_->inc();
      T out = std::get<T>(it->second->second);
      hit = true;
      observe_latency();
      return out;
    }
  }
  cache_misses_.inc();
  if (m_misses_ != nullptr) m_misses_->inc();
  T out = compute();
  if (capacity_ > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    if (map_.find(key) == map_.end()) {
      lru_.emplace_front(key, Cached(out));
      map_.emplace(key, lru_.begin());
      while (map_.size() > capacity_) {
        map_.erase(lru_.back().first);
        lru_.pop_back();
        if (m_evictions_ != nullptr) m_evictions_->inc();
      }
    }
  }
  observe_latency();
  return out;
}

CountResult QueryEngine::count(const Predicate& p) {
  if (m_count_calls_ != nullptr) m_count_calls_->inc();
  return cached<CountResult>("count", m_latency_count_, key_of("count", p),
                             [&] { return compute_count(p); });
}

ImpactResult QueryEngine::impact(const Predicate& p) {
  if (m_impact_calls_ != nullptr) m_impact_calls_->inc();
  // The effective window/attribution are fixed per engine, but key them
  // anyway so engines sharing a future external cache could not collide.
  std::string key = key_of("impact", p);
  key += '|';
  key += std::to_string(window_);
  key += node_level_ ? "|n" : "|g";
  return cached<ImpactResult>("impact", m_latency_impact_, key,
                              [&] { return compute_impact(p); });
}

AvailabilityResult QueryEngine::availability(const Predicate& p) {
  if (m_avail_calls_ != nullptr) m_avail_calls_->inc();
  return cached<AvailabilityResult>("availability", m_latency_avail_,
                                    key_of("avail", p),
                                    [&] { return compute_availability(p); });
}

CountResult QueryEngine::compute_count(const Predicate& p) const {
  CountResult out;
  out.window_hours = common::to_hours(p.to - p.from);

  const auto times = reader_.err_time();
  const auto gpus = reader_.err_gpu();
  const auto codes = reader_.err_code();
  const std::size_t lo = lower_idx(times, p.from);
  const std::size_t hi = lower_idx(times, p.to);
  const std::optional<std::uint16_t> want_code =
      p.xid.has_value() ? std::optional<std::uint16_t>(canonical_xid(*p.xid))
                        : std::nullopt;
  for (std::size_t i = lo; i < hi; ++i) {
    if (p.node.has_value() && analysis::packed_node(gpus[i]) != *p.node) {
      continue;
    }
    if (want_code.has_value() && codes[i] != *want_code) continue;
    ++out.count;
  }
  out.mtbe_system_h = common::mtbe(out.window_hours, out.count);
  const double nodes =
      p.node.has_value() ? 1.0
                         : static_cast<double>(reader_.meta().node_count);
  out.mtbe_per_node_h = out.mtbe_system_h * nodes;
  return out;
}

ImpactResult QueryEngine::compute_impact(const Predicate& p) const {
  ImpactResult out;
  const auto order = xid::report_order();
  const analysis::Period period{p.from, p.to};

  const auto job_end = reader_.job_end();
  const auto job_start = reader_.job_start();
  const auto job_state = reader_.job_state();
  const std::size_t lo = lower_idx(job_end, p.from);
  const std::size_t hi = lower_idx(job_end, p.to);

  std::vector<std::uint64_t> encountering(order.size(), 0);
  std::vector<std::uint64_t> failed(order.size(), 0);
  std::vector<std::int32_t> node_scratch;

  for (std::size_t idx = lo; idx < hi; ++idx) {
    const auto job_gpu = reader_.job_gpus(idx);
    if (p.node.has_value()) {
      bool on_node = false;
      for (const std::int32_t g : job_gpu) {
        if (analysis::packed_node(g) == *p.node) {
          on_node = true;
          break;
        }
      }
      if (!on_node) continue;
    }
    ++out.jobs_analyzed;
    const auto state = static_cast<slurm::JobState>(job_state[idx]);
    if (slurm::is_failure(state)) ++out.failed_jobs_total;

    const std::int64_t start = job_start[idx];
    const std::int64_t end = job_end[idx];
    std::uint32_t run_mask = 0;
    std::uint32_t window_mask = 0;
    // Identical attribution to analysis::scan_job_range: strictly after the
    // job's start second, up to and including its end, restricted to errors
    // inside the query period (the batch join bakes the period into its
    // ErrorIndex; here it is a per-entry filter over the same sorted data).
    const auto scan_group = [&](const IndexReader::LocGroup& g) {
      std::size_t i = lower_idx(g.time, start + 1);
      for (; i < g.time.size() && g.time[i] <= end; ++i) {
        if (!period.contains(g.time[i])) continue;
        run_mask |= 1u << g.bit[i];
        if (g.time[i] >= end - window_) window_mask |= 1u << g.bit[i];
      }
    };
    if (!node_level_) {
      for (const std::int32_t g : job_gpu) scan_group(reader_.loc_at(g));
    } else {
      node_scratch.clear();
      for (const std::int32_t g : job_gpu) {
        const std::int32_t node = analysis::packed_node(g);
        if (std::find(node_scratch.begin(), node_scratch.end(), node) ==
            node_scratch.end()) {
          node_scratch.push_back(node);
        }
      }
      for (const std::int32_t node : node_scratch) {
        const auto [klo, khi] = reader_.loc_key_range(
            analysis::pack_gpu(node, 0), analysis::pack_gpu(node, 0xff));
        for (std::size_t k = klo; k < khi; ++k) {
          scan_group(reader_.loc_group(k));
        }
      }
    }
    if (run_mask == 0) continue;

    const bool gpu_failed = slurm::is_failure(state) && window_mask != 0;
    if (gpu_failed) ++out.gpu_failed_jobs;
    for (std::size_t b = 0; b < order.size(); ++b) {
      if (run_mask & (1u << b)) ++encountering[b];
      if (gpu_failed && (window_mask & (1u << b))) ++failed[b];
    }
  }

  const int want_bit =
      p.xid.has_value()
          ? analysis::exposure_bit(
                static_cast<xid::Code>(canonical_xid(*p.xid)))
          : -1;
  for (std::size_t b = 0; b < order.size(); ++b) {
    if (p.xid.has_value() && static_cast<int>(b) != want_bit) continue;
    ImpactRowResult row;
    row.code = order[b];
    row.failed_jobs = failed[b];
    row.encountering_jobs = encountering[b];
    if (encountering[b] > 0) {
      row.failure_probability = static_cast<double>(failed[b]) /
                                static_cast<double>(encountering[b]);
      row.ci = common::wilson_interval(failed[b], encountering[b]);
    }
    out.rows.push_back(row);
  }
  return out;
}

double QueryEngine::aggregate_mtbe_per_node_h(const Predicate& p) const {
  const auto times = reader_.err_time();
  const auto lasts = reader_.err_last();
  const auto gpus = reader_.err_gpu();
  const auto codes = reader_.err_code();
  const auto raw_xids = reader_.err_raw_xid();
  const auto raw_lines = reader_.err_raw_lines();
  const std::size_t lo = lower_idx(times, p.from);
  const std::size_t hi = lower_idx(times, p.to);

  std::vector<analysis::CoalescedError> errs;
  errs.reserve(hi - lo);
  for (std::size_t i = lo; i < hi; ++i) {
    if (p.node.has_value() && analysis::packed_node(gpus[i]) != *p.node) {
      continue;
    }
    analysis::CoalescedError e;
    e.time = times[i];
    e.last = lasts[i];
    e.gpu = {analysis::packed_node(gpus[i]),
             static_cast<std::int32_t>(gpus[i] & 0xff)};
    e.code = static_cast<xid::Code>(codes[i]);
    e.raw_xid = raw_xids[i];
    e.raw_lines = raw_lines[i];
    errs.push_back(e);
  }

  // The query window plays the operational period; an empty pre-op period
  // keeps every rebuilt error classified kOp.
  analysis::StudyPeriods periods;
  periods.pre = {p.from, p.from};
  periods.op = {p.from, p.to};
  analysis::ErrorStatsConfig cfg;
  cfg.node_count =
      p.node.has_value() ? 1
                         : static_cast<std::int32_t>(reader_.meta().node_count);
  cfg.outlier_share = reader_.meta().outlier_share;
  cfg.outlier_min = reader_.meta().outlier_min;
  cfg.exclude_outliers_from_totals =
      reader_.meta().exclude_outliers_from_totals;
  return analysis::compute_error_stats(errs, periods, cfg)
      .total.op.mtbe_per_node_h;
}

AvailabilityResult QueryEngine::compute_availability(const Predicate& p) const {
  AvailabilityResult out;
  const auto begins = reader_.unavail_begin();
  const auto ends = reader_.unavail_end();
  const auto nodes = reader_.unavail_node();
  const std::size_t lo = lower_idx(begins, p.from);
  const std::size_t hi = lower_idx(begins, p.to);

  // Fold in stored (begin, node, end) order; the differential reference
  // reproduces this exact accumulation sequence.
  std::vector<double> durations;
  for (std::size_t i = lo; i < hi; ++i) {
    if (p.node.has_value() && nodes[i] != *p.node) continue;
    const double h = common::to_hours(ends[i] - begins[i]);
    durations.push_back(h);
    out.hours_lost += h;
  }
  out.intervals = durations.size();
  out.mttr_h = common::summarize(durations).mean;

  // MTTF: the aggregate per-node MTBE under the same node/time predicate
  // (the paper's conservative every-error-interrupts-the-node assumption; an
  // XID filter deliberately does not narrow it).  "Aggregate" is the batch
  // pipeline's total — outliers excluded, derived uncorrectable-ECC row
  // double-counted — so the errors are rebuilt from the columns and handed
  // to compute_error_stats with the recorded config, not re-counted here.
  out.mttf_h = aggregate_mtbe_per_node_h(p);
  if (!std::isfinite(out.mttf_h) || out.mttf_h <= 0.0 || out.mttr_h < 0.0) {
    out.availability = 1.0;
  } else {
    out.availability = out.mttf_h / (out.mttf_h + out.mttr_h);
  }
  return out;
}

}  // namespace gpures::index
