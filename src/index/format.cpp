#include "index/format.h"

namespace gpures::index {

std::string_view section_name(SectionId id) {
  switch (id) {
    case SectionId::kMeta: return "meta";
    case SectionId::kNodeNameOffsets: return "node_name_offsets";
    case SectionId::kNodeNameBlob: return "node_name_blob";
    case SectionId::kErrTime: return "err_time";
    case SectionId::kErrLast: return "err_last";
    case SectionId::kErrGpu: return "err_gpu";
    case SectionId::kErrCode: return "err_code";
    case SectionId::kErrRawXid: return "err_raw_xid";
    case SectionId::kErrRawLines: return "err_raw_lines";
    case SectionId::kLocKeys: return "loc_keys";
    case SectionId::kLocOffsets: return "loc_offsets";
    case SectionId::kLocTime: return "loc_time";
    case SectionId::kLocBit: return "loc_bit";
    case SectionId::kJobId: return "job_id";
    case SectionId::kJobStart: return "job_start";
    case SectionId::kJobEnd: return "job_end";
    case SectionId::kJobState: return "job_state";
    case SectionId::kJobGpuOffsets: return "job_gpu_offsets";
    case SectionId::kJobGpuList: return "job_gpu_list";
    case SectionId::kUnavailNode: return "unavail_node";
    case SectionId::kUnavailBegin: return "unavail_begin";
    case SectionId::kUnavailEnd: return "unavail_end";
  }
  return "unknown";
}

}  // namespace gpures::index
