// Writer for the persistent error index (gpures.idx).
//
// Serializes the pipeline's Stage II/III outputs — coalesced errors, job
// exposure intervals, unavailability intervals — into the columnar format
// defined in format.h.  The writer is a pure function of its input: columns
// are sorted with total-order keys, padding is zeroed, and nothing
// time-of-day- or thread-dependent is emitted, so a pipeline run that is
// byte-identical across --threads produces a byte-identical artifact too.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/availability.h"
#include "analysis/coalesce.h"
#include "analysis/job_impact.h"
#include "analysis/job_stats.h"
#include "analysis/periods.h"
#include "cluster/topology.h"
#include "common/error.h"

namespace gpures::index {

/// Everything the artifact captures.  Pointers are borrowed for the call.
struct IndexBuildInput {
  analysis::StudyPeriods periods;
  /// Job-failure attribution window the pipeline ran with (queries may
  /// override it per call; this is the recorded default).
  common::Duration attribution_window = 20;
  analysis::Attribution attribution = analysis::Attribution::kGpuLevel;
  /// AvailabilityConfig::max_interval_h the intervals were computed with.
  double max_interval_h = 24.0 * 30;
  /// Aggregate-MTBE outlier handling (ErrorStatsConfig) the pipeline ran
  /// with; recorded so query-time MTTF replays the exact batch semantics.
  double outlier_share = 0.5;
  std::uint64_t outlier_min = 1000;
  bool exclude_outliers_from_totals = true;
  const cluster::Topology* topo = nullptr;
  const std::vector<analysis::CoalescedError>* errors = nullptr;
  const analysis::JobTable* jobs = nullptr;
  const std::vector<analysis::Unavailability>* unavailability = nullptr;
};

struct IndexWriteStats {
  std::uint64_t bytes = 0;
  std::uint64_t errors = 0;
  std::uint64_t loc_entries = 0;
  std::uint64_t jobs = 0;
  std::uint64_t job_gpus = 0;
  std::uint64_t unavailability = 0;
  /// Unavailability intervals dropped because their host is not in the
  /// topology (the artifact stores node indices, not names).
  std::uint64_t dropped_unknown_hosts = 0;
};

/// Serialize to bytes.  Deterministic: equal inputs yield equal strings.
common::Result<std::string> serialize_index(const IndexBuildInput& in);

/// Serialize and write to `path` (atomically via a temp file + rename, so a
/// crashed writer never leaves a half-written artifact under the real name).
common::Result<IndexWriteStats> write_index(const IndexBuildInput& in,
                                            const std::string& path);

}  // namespace gpures::index
