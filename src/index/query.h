// Query API over a mapped gpures.idx: counts, MTBE, job-failure
// probability, and availability for arbitrary node / XID / time-window
// predicates, without re-running the pipeline.
//
// Semantics are the batch pipeline's, re-executed over the mapped columns
// with identical arithmetic — the differential suite
// (tests/test_index_query_differential.cpp) holds every answer bit-equal to
// the same statistic computed fresh from pipeline outputs:
//
//  * count/MTBE: coalesced errors with leader time in [from, to) matching
//    the node/XID filters; MTBE = window_hours / count (+inf when clean),
//    per-node MTBE = system MTBE x node count (x1 under a node predicate).
//    An XID predicate is canonicalized through xid::merge_key, so --xid 120
//    counts the merged GSP family exactly like Table I does.
//  * impact: compute_job_impact with period = [from, to) — same strictly-
//    after-start error attribution, same window mask, same Wilson interval.
//    Under a node predicate only jobs allocated on that node participate.
//  * availability: stored unavailability intervals with drain time in
//    [from, to) (and on the node, if given); MTTR is their summarize() mean,
//    MTTF is the aggregate per-node MTBE over the same node/time predicate —
//    computed by compute_error_stats itself over errors rebuilt from the
//    columns, with the recorded ErrorStatsConfig (outlier exclusion, derived
//    uncorrectable-ECC row), so a [op.begin, op.end) query reproduces the
//    batch mttf_estimate_h / Fig. 2 bitwise — and availability =
//    MTTF / (MTTF + MTTR) with the pipeline's guards.  An XID filter
//    deliberately does not narrow the MTTF.
//
// Results are cached in a small LRU keyed by the full predicate; cached and
// uncached answers are identical by construction (queries are pure functions
// of the immutable mapping), which the differential suite also asserts.
// The engine is safe for concurrent callers sharing one reader.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/stats.h"
#include "common/time.h"
#include "index/reader.h"
#include "obs/metrics.h"
#include "xid/xid.h"

namespace gpures::index {

/// What to select.  `from`/`to` bound the leader-time window [from, to).
struct Predicate {
  std::optional<std::int32_t> node;  ///< topology node index
  std::optional<std::uint16_t> xid; ///< raw XID; canonicalized via merge_key
  common::TimePoint from = 0;
  common::TimePoint to = 0;
};

struct CountResult {
  std::uint64_t count = 0;
  double window_hours = 0.0;
  double mtbe_system_h = 0.0;
  double mtbe_per_node_h = 0.0;
};

/// One Table II-style row (mirrors analysis::ImpactRow).
struct ImpactRowResult {
  xid::Code code = xid::Code::kMmuError;
  std::uint64_t failed_jobs = 0;
  std::uint64_t encountering_jobs = 0;
  double failure_probability = 0.0;
  common::Proportion ci;
};

struct ImpactResult {
  std::uint64_t jobs_analyzed = 0;
  std::uint64_t failed_jobs_total = 0;
  std::uint64_t gpu_failed_jobs = 0;
  /// Report order; restricted to the predicate's family when an XID filter
  /// names a reported family (empty for non-family XIDs).
  std::vector<ImpactRowResult> rows;
};

struct AvailabilityResult {
  std::uint64_t intervals = 0;
  double hours_lost = 0.0;
  double mttr_h = 0.0;
  double mttf_h = 0.0;
  double availability = 1.0;
};

struct QueryOptions {
  /// LRU capacity in cached results; 0 disables caching entirely.
  std::size_t cache_capacity = 64;
  /// Attribution window in seconds; negative means "as recorded at write
  /// time" (IndexMeta::attribution_window).
  common::Duration attribution_window = -1;
  /// -1: as recorded; 0: device-level; 1: node-level.
  int attribution = -1;
  /// Optional sink for query.* metrics (per-op latency histograms under
  /// `query.latency_us{op=...}`, cache hit/miss/eviction counters, per-verb
  /// call counts).  Never affects results.
  obs::MetricsRegistry* metrics = nullptr;
  /// Log queries slower than this many microseconds as warn records on the
  /// installed obs::Logger (op, latency, predicate key, cache outcome).
  /// 0 disables the slow-query log.  Diagnostics only — never affects
  /// results.
  double slow_query_us = 0.0;
};

class QueryEngine {
 public:
  explicit QueryEngine(const IndexReader& reader, QueryOptions opts = {});

  CountResult count(const Predicate& p);
  ImpactResult impact(const Predicate& p);
  AvailabilityResult availability(const Predicate& p);

  /// Predicate spanning the whole recorded study window.
  Predicate whole_period() const;

  std::uint64_t cache_hits() const { return cache_hits_.value(); }
  std::uint64_t cache_misses() const { return cache_misses_.value(); }

  common::Duration effective_window() const { return window_; }
  bool node_level() const { return node_level_; }

 private:
  using Cached = std::variant<CountResult, ImpactResult, AvailabilityResult>;

  CountResult compute_count(const Predicate& p) const;
  ImpactResult compute_impact(const Predicate& p) const;
  AvailabilityResult compute_availability(const Predicate& p) const;
  /// Batch-total MTBE (compute_error_stats over rebuilt window errors) used
  /// as the availability MTTF; ignores any XID filter on `p`.
  double aggregate_mtbe_per_node_h(const Predicate& p) const;

  /// Look up `key`; on miss, compute() runs outside the lock (possibly
  /// concurrently with an identical miss — results are pure, so the race is
  /// benign) and the result is inserted.  `op` names the verb for the
  /// latency histogram and the slow-query log.
  template <typename T, typename Fn>
  T cached(const char* op, obs::Histogram* latency, const std::string& key,
           Fn&& compute);

  const IndexReader& reader_;
  common::Duration window_;
  bool node_level_;
  std::size_t capacity_;
  double slow_query_us_;

  std::mutex mu_;
  std::list<std::pair<std::string, Cached>> lru_;  ///< front = most recent
  std::unordered_map<std::string,
                     std::list<std::pair<std::string, Cached>>::iterator>
      map_;
  obs::Counter cache_hits_;
  obs::Counter cache_misses_;

  obs::Counter* m_hits_ = nullptr;
  obs::Counter* m_misses_ = nullptr;
  obs::Counter* m_evictions_ = nullptr;
  obs::Counter* m_count_calls_ = nullptr;
  obs::Counter* m_impact_calls_ = nullptr;
  obs::Counter* m_avail_calls_ = nullptr;
  /// Per-op children of `query.latency_us{op=...}`.
  obs::Histogram* m_latency_count_ = nullptr;
  obs::Histogram* m_latency_impact_ = nullptr;
  obs::Histogram* m_latency_avail_ = nullptr;
};

}  // namespace gpures::index
