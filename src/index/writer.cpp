#include "index/writer.h"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "common/hash.h"
#include "common/io.h"
#include "index/format.h"
#include "xid/event.h"

namespace gpures::index {

namespace {

namespace an = gpures::analysis;

void append_u8(std::string& s, std::uint8_t v) {
  s.push_back(static_cast<char>(v));
}
void append_le16(std::string& s, std::uint16_t v) {
  unsigned char b[2];
  store_le16(b, v);
  s.append(reinterpret_cast<const char*>(b), 2);
}
void append_le32(std::string& s, std::uint32_t v) {
  unsigned char b[4];
  store_le32(b, v);
  s.append(reinterpret_cast<const char*>(b), 4);
}
void append_le64(std::string& s, std::uint64_t v) {
  unsigned char b[8];
  store_le64(b, v);
  s.append(reinterpret_cast<const char*>(b), 8);
}
void append_i64(std::string& s, std::int64_t v) {
  append_le64(s, static_cast<std::uint64_t>(v));
}
void append_i32(std::string& s, std::int32_t v) {
  append_le32(s, static_cast<std::uint32_t>(v));
}
void append_f64(std::string& s, double v) {
  unsigned char b[8];
  store_f64(b, v);
  s.append(reinterpret_cast<const char*>(b), 8);
}

}  // namespace

common::Result<std::string> serialize_index(const IndexBuildInput& in) {
  if (in.topo == nullptr || in.errors == nullptr || in.jobs == nullptr ||
      in.unavailability == nullptr) {
    return common::Error::make(
        "index writer: topology, errors, jobs, and unavailability inputs are "
        "all required");
  }
  const auto& topo = *in.topo;
  const auto& errors = *in.errors;
  const auto& jobs = *in.jobs;

  // ---- sort orders (total-order keys: deterministic for any input order) --
  std::vector<std::size_t> err_order(errors.size());
  std::iota(err_order.begin(), err_order.end(), std::size_t{0});
  std::sort(err_order.begin(), err_order.end(),
            [&](std::size_t a, std::size_t b) {
              const auto& x = errors[a];
              const auto& y = errors[b];
              if (x.time != y.time) return x.time < y.time;
              if (x.gpu != y.gpu) return x.gpu < y.gpu;
              if (x.code != y.code) return x.code < y.code;
              if (x.raw_xid != y.raw_xid) return x.raw_xid < y.raw_xid;
              if (x.last != y.last) return x.last < y.last;
              return x.raw_lines < y.raw_lines;
            });

  // Location-grouped exposure view: same keying and sort as
  // analysis::build_error_index, minus the period filter (applied at query
  // time so one artifact serves any window).
  struct Loc {
    std::int64_t key;
    common::TimePoint time;
    std::uint32_t bit;
  };
  std::vector<Loc> loc;
  loc.reserve(errors.size());
  for (const auto& e : errors) {
    const int bit = an::exposure_bit(e.code);
    if (bit < 0) continue;
    loc.push_back({an::pack_gpu(e.gpu.node, e.gpu.slot), e.time,
                   static_cast<std::uint32_t>(bit)});
  }
  std::sort(loc.begin(), loc.end(), [](const Loc& a, const Loc& b) {
    if (a.key != b.key) return a.key < b.key;
    if (a.time != b.time) return a.time < b.time;
    return a.bit < b.bit;
  });

  std::vector<std::size_t> job_order(jobs.jobs.size());
  std::iota(job_order.begin(), job_order.end(), std::size_t{0});
  std::sort(job_order.begin(), job_order.end(),
            [&](std::size_t a, std::size_t b) {
              const auto& x = jobs.jobs[a];
              const auto& y = jobs.jobs[b];
              if (x.end != y.end) return x.end < y.end;
              if (x.start != y.start) return x.start < y.start;
              return x.id < y.id;
            });

  struct Interval {
    std::int32_t node;
    common::TimePoint begin;
    common::TimePoint end;
  };
  std::vector<Interval> unavail;
  unavail.reserve(in.unavailability->size());
  std::uint64_t dropped_hosts = 0;
  for (const auto& u : *in.unavailability) {
    const auto node = topo.node_index(u.host);
    if (!node.has_value()) {
      ++dropped_hosts;
      continue;
    }
    unavail.push_back({*node, u.begin, u.end});
  }
  std::sort(unavail.begin(), unavail.end(),
            [](const Interval& a, const Interval& b) {
              if (a.begin != b.begin) return a.begin < b.begin;
              if (a.node != b.node) return a.node < b.node;
              return a.end < b.end;
            });

  std::uint64_t job_gpus = 0;
  for (const auto& j : jobs.jobs) {
    job_gpus += jobs.gpus_of(j).size();
  }

  // ---- section payloads, in id order ---------------------------------------
  std::vector<std::string> sections(kSectionCount);
  const auto sec = [&](SectionId id) -> std::string& {
    return sections[static_cast<std::size_t>(id) - 1];
  };

  {
    std::string& s = sec(SectionId::kMeta);
    s.reserve(kMetaSize);
    append_i64(s, in.periods.pre.begin);
    append_i64(s, in.periods.pre.end);
    append_i64(s, in.periods.op.begin);
    append_i64(s, in.periods.op.end);
    append_i64(s, in.attribution_window);
    append_f64(s, in.max_interval_h);
    append_le32(s, static_cast<std::uint32_t>(topo.node_count()));
    append_le32(s, in.attribution == an::Attribution::kGpuLevel ? 0u : 1u);
    append_le64(s, errors.size());
    append_le64(s, loc.size());
    append_le64(s, jobs.jobs.size());
    append_le64(s, job_gpus);
    append_le64(s, unavail.size());
    append_f64(s, in.outlier_share);
    append_le64(s, in.outlier_min);
    append_le32(s, in.exclude_outliers_from_totals ? 1u : 0u);
    append_le32(s, 0);
  }
  {
    std::string& offs = sec(SectionId::kNodeNameOffsets);
    std::string& blob = sec(SectionId::kNodeNameBlob);
    append_le32(offs, 0);
    for (std::int32_t n = 0; n < topo.node_count(); ++n) {
      blob += topo.node(n).name;
      append_le32(offs, static_cast<std::uint32_t>(blob.size()));
    }
  }
  for (const std::size_t i : err_order) {
    const auto& e = errors[i];
    append_i64(sec(SectionId::kErrTime), e.time);
    append_i64(sec(SectionId::kErrLast), e.last);
    append_i32(sec(SectionId::kErrGpu), an::pack_gpu(e.gpu.node, e.gpu.slot));
    append_le16(sec(SectionId::kErrCode), xid::to_number(e.code));
    append_le16(sec(SectionId::kErrRawXid), e.raw_xid);
    append_le32(sec(SectionId::kErrRawLines), e.raw_lines);
  }
  {
    std::string& keys = sec(SectionId::kLocKeys);
    std::string& offs = sec(SectionId::kLocOffsets);
    for (std::size_t i = 0; i < loc.size(); ++i) {
      if (i == 0 || loc[i].key != loc[i - 1].key) {
        append_i64(keys, loc[i].key);
        append_le64(offs, i);
      }
      append_i64(sec(SectionId::kLocTime), loc[i].time);
      append_le32(sec(SectionId::kLocBit), loc[i].bit);
    }
    append_le64(offs, loc.size());
  }
  {
    std::string& goffs = sec(SectionId::kJobGpuOffsets);
    std::uint64_t gcount = 0;
    append_le64(goffs, 0);
    for (const std::size_t i : job_order) {
      const auto& j = jobs.jobs[i];
      append_le64(sec(SectionId::kJobId), j.id);
      append_i64(sec(SectionId::kJobStart), j.start);
      append_i64(sec(SectionId::kJobEnd), j.end);
      append_u8(sec(SectionId::kJobState), static_cast<std::uint8_t>(j.state));
      for (const an::PackedGpu g : jobs.gpus_of(j)) {
        append_i32(sec(SectionId::kJobGpuList), g);
        ++gcount;
      }
      append_le64(goffs, gcount);
    }
  }
  for (const auto& u : unavail) {
    append_i32(sec(SectionId::kUnavailNode), u.node);
    append_i64(sec(SectionId::kUnavailBegin), u.begin);
    append_i64(sec(SectionId::kUnavailEnd), u.end);
  }

  // ---- assemble: header + table + gapless padded sections ------------------
  for (auto& s : sections) {
    s.resize(pad8(s.size()), '\0');
  }
  std::uint64_t file_size = kSectionBase;
  for (const auto& s : sections) file_size += s.size();

  std::string table;
  table.reserve(kSectionCount * kSectionEntrySize);
  std::uint64_t offset = kSectionBase;
  for (std::size_t i = 0; i < sections.size(); ++i) {
    append_le32(table, static_cast<std::uint32_t>(i + 1));
    append_le32(table, 0);
    append_le64(table, offset);
    append_le64(table, sections[i].size());
    append_le64(table, common::xxhash64(sections[i]));
    offset += sections[i].size();
  }

  std::string out;
  out.reserve(file_size);
  out.append(kMagic, sizeof(kMagic));
  append_le32(out, kFormatVersion);
  append_le32(out, kEndianTag);
  append_le64(out, file_size);
  append_le32(out, kSectionCount);
  append_le32(out, 0);
  append_le64(out, common::xxhash64(table));
  append_le64(out, common::xxhash64(std::string_view(out).substr(
                       0, kHeaderHashedBytes)));
  out += table;
  for (const auto& s : sections) out += s;
  return out;
}

common::Result<IndexWriteStats> write_index(const IndexBuildInput& in,
                                            const std::string& path) {
  auto bytes = serialize_index(in);
  if (!bytes.ok()) return bytes.error();

  const auto written = common::write_file_atomic(path, bytes.value());
  if (!written.ok()) {
    return common::Error::at("cannot write index: " + written.error().message,
                             path, std::nullopt);
  }

  IndexWriteStats stats;
  stats.bytes = bytes.value().size();
  const auto* meta = reinterpret_cast<const unsigned char*>(
                         bytes.value().data()) + kSectionBase;
  stats.errors = load_le64(meta + kMetaErrorCount);
  stats.loc_entries = load_le64(meta + kMetaLocEntryCount);
  stats.jobs = load_le64(meta + kMetaJobCount);
  stats.job_gpus = load_le64(meta + kMetaJobGpuCount);
  stats.unavailability = load_le64(meta + kMetaUnavailCount);
  std::uint64_t dropped = 0;
  for (const auto& u : *in.unavailability) {
    if (!in.topo->node_index(u.host).has_value()) ++dropped;
  }
  stats.dropped_unknown_hosts = dropped;
  return stats;
}

}  // namespace gpures::index
