file(REMOVE_RECURSE
  "libgpures.a"
)
